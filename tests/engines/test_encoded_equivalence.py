"""Encoded execution must be bit-identical to raw execution.

The compressed storage tier (:mod:`repro.storage.encoding`) promises
that operating on codes changes *nothing observable*: values, tuple
counts, work profiles, per-operator attribution and modeled cycles all
match a database whose columns are plain arrays -- for every engine,
every workload, and any morsel partitioning.  This module builds a
decoded twin of the (encoded) test database and checks the full matrix
exactly, the same way :mod:`tests.engines.test_morsel_equivalence`
pins the morsel protocol.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import MicroArchProfiler
from repro.engines import ALL_ENGINES
from repro.engines.morsel import morsel_ranges
from repro.storage import ColumnTable, Database, EncodedColumn
from repro.tpch.queries import q6_predicates

WORKLOADS = [
    ("run_projection", {"degree": 4}),
    ("run_selection", {"selectivity": 0.5}),
    ("run_selection", {"selectivity": 0.1, "predicated": True}),
    ("run_join", {"size": "large"}),
    ("run_groupby", {}),
    ("run_q1", {}),
    ("run_q6", {}),
    ("run_q9", {}),
    ("run_q18", {}),
]

WORKLOAD_IDS = [
    f"{method[len('run_'):]}-{'-'.join(f'{k}{v}' for k, v in kwargs.items()) or 'default'}"
    for method, kwargs in WORKLOADS
]


@pytest.fixture(scope="module")
def raw_twin(tiny_db):
    """``tiny_db`` with every column decoded to a plain array.

    A distinct Database identity, so the execution cache can never
    alias the two (its keys include the database identity)."""
    twin = Database(name=tiny_db.name, scale_factor=tiny_db.scale_factor)
    for name in tiny_db.table_names:
        table = tiny_db.table(name)
        twin.add_table(ColumnTable(
            name,
            {c: np.asarray(table[c]) for c in table.column_names},
        ))
    return twin


@pytest.fixture(scope="module")
def encoded_db(tiny_db):
    """The shared fixture database; skip the matrix if the encoding
    toggle is off (nothing to compare)."""
    encoded = sum(
        1
        for name in tiny_db.table_names
        for column in tiny_db.table(name).column_names
        if tiny_db.table(name).encoding(column) is not None
    )
    if not encoded:
        pytest.skip("REPRO_ENCODING=off: database holds no encoded columns")
    return tiny_db


@pytest.fixture(scope="module", params=ALL_ENGINES, ids=lambda cls: cls.name)
def engine(request):
    return request.param()


def assert_identical(encoded, raw, context: str) -> None:
    assert encoded.value == raw.value, context
    assert encoded.tuples == raw.tuples, context
    assert encoded.work == raw.work, context
    assert encoded.operator_work.keys() == raw.operator_work.keys(), context
    for name, profile in encoded.operator_work.items():
        assert profile == raw.operator_work[name], f"{context} operator={name}"


class TestSingleShot:
    @pytest.mark.parametrize(("method", "kwargs"), WORKLOADS, ids=WORKLOAD_IDS)
    def test_results_and_work_match(
        self, encoded_db, raw_twin, engine, method, kwargs
    ):
        encoded = getattr(engine, method)(encoded_db, **kwargs)
        raw = getattr(engine, method)(raw_twin, **kwargs)
        assert_identical(encoded, raw, f"{engine.name} {method} {kwargs}")

    def test_modeled_cycles_match(self, encoded_db, raw_twin, engine):
        """Identical work must model to identical cycles: the default
        cycle path never sees encoded widths."""
        profiler = MicroArchProfiler()
        for method in ("run_q1", "run_q6"):
            encoded = profiler.run(engine, method, encoded_db)
            raw = profiler.run(engine, method, raw_twin)
            assert encoded.cycles == raw.cycles, f"{engine.name} {method}"


class TestMorsels:
    """Encoded columns under ``row_range`` slicing: the codecs must
    produce per-morsel masks equal to slicing the decoded column, and
    the merged result must match the raw merged result."""

    @pytest.mark.parametrize(("method", "kwargs"), [
        ("run_q1", {}),
        ("run_q6", {}),
        ("run_selection", {"selectivity": 0.5}),
        ("run_groupby", {}),
    ], ids=["q1", "q6", "selection", "groupby"])
    @pytest.mark.parametrize("pieces", [2, 5])
    def test_merged_matches_raw_merged(
        self, encoded_db, raw_twin, engine, method, kwargs, pieces
    ):
        def merged(db):
            n_rows = engine.partition_rows(db, method, kwargs)
            partials = [
                getattr(engine, method)(db, row_range=row_range, **kwargs)
                for row_range in morsel_ranges(n_rows, pieces)
            ]
            return engine.merge_morsels(db, method, kwargs, partials)

        assert_identical(
            merged(encoded_db), merged(raw_twin),
            f"{engine.name} {method} pieces={pieces}",
        )


class TestAggToggle:
    """``REPRO_ENCODED_AGG`` only changes execution strategy: flipping
    it must leave values, work and raw-twin equivalence untouched, and
    with the toggle off every aggregate must report a decoded mode."""

    @pytest.mark.parametrize(("method", "kwargs"), [
        ("run_q1", {}),
        ("run_groupby", {}),
        ("run_projection", {"degree": 1}),
        ("run_projection", {"degree": 4}),
    ], ids=["q1", "groupby", "projection-p1", "projection-p4"])
    def test_toggle_off_matches_toggle_on(
        self, encoded_db, raw_twin, engine, method, kwargs, monkeypatch
    ):
        on = getattr(engine, method)(encoded_db, **kwargs)
        monkeypatch.setenv("REPRO_ENCODED_AGG", "0")
        off = getattr(engine, method)(encoded_db, **kwargs)
        raw = getattr(engine, method)(raw_twin, **kwargs)
        assert_identical(on, off, f"{engine.name} {method} toggle flip")
        assert_identical(off, raw, f"{engine.name} {method} toggle-off vs raw")
        decision = off.details.get("encoded_agg")
        if decision is not None:
            assert decision["code_domain"] == 0


class TestPredicateMasks:
    """The shared scan kernels, checked directly against numpy on the
    decoded arrays for every encoded lineitem column."""

    def test_every_encoded_column_compares_exactly(self, encoded_db):
        lineitem = encoded_db.table("lineitem")
        n = lineitem.n_rows
        for name in lineitem.column_names:
            column = lineitem.encoding(name)
            if column is None:
                continue
            decoded = np.asarray(lineitem[name])
            for threshold in (
                decoded.min(), decoded.max(),
                decoded[n // 2], float(np.median(decoded)),
            ):
                for op, numpy_op in (
                    ("le", np.less_equal), ("lt", np.less),
                    ("ge", np.greater_equal), ("gt", np.greater),
                    ("eq", np.equal),
                ):
                    np.testing.assert_array_equal(
                        column.compare(op, threshold, 0, n),
                        numpy_op(decoded, threshold),
                        err_msg=f"{name} {op} {threshold}",
                    )

    def test_q6_predicates_match_raw(self, encoded_db, raw_twin):
        for (label, got), (_, expected) in zip(
            q6_predicates(encoded_db), q6_predicates(raw_twin)
        ):
            np.testing.assert_array_equal(got, expected, err_msg=label)


class TestTransportEquivalence:
    """Payload round-trips (the shm/disk format) preserve execution."""

    def test_rebuilt_columns_execute_identically(self, encoded_db, engine):
        rebuilt = Database(
            name=encoded_db.name, scale_factor=encoded_db.scale_factor
        )
        for name in encoded_db.table_names:
            table = encoded_db.table(name)
            columns = {}
            for c in table.column_names:
                encoding = table.encoding(c)
                if encoding is None:
                    columns[c] = np.asarray(table[c])
                else:
                    meta, arrays = encoding.payload()
                    columns[c] = EncodedColumn.from_payload(c, meta, arrays)
            rebuilt.add_table(ColumnTable(name, columns))
        assert_identical(
            engine.run_q1(rebuilt), engine.run_q1(encoded_db),
            f"{engine.name} rebuilt q1",
        )
        assert_identical(
            engine.run_q6(rebuilt), engine.run_q6(encoded_db),
            f"{engine.name} rebuilt q6",
        )
