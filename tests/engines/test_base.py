"""Engine-interface helper tests."""

import numpy as np
import pytest

from repro.engines import (
    JOIN_SPECS,
    TyperEngine,
    line_density,
    projection_columns,
    selection_predicate_masks,
    selection_thresholds,
)


class TestProjectionColumns:
    def test_degree_one_to_four(self):
        assert projection_columns(1) == ("l_extendedprice",)
        assert projection_columns(4) == (
            "l_extendedprice", "l_discount", "l_tax", "l_quantity",
        )

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            projection_columns(0)
        with pytest.raises(ValueError):
            projection_columns(5)


class TestSelectionThresholds:
    @pytest.mark.parametrize("selectivity", [0.1, 0.5, 0.9])
    def test_individual_selectivity_achieved(self, small_db, selectivity):
        thresholds = selection_thresholds(small_db, selectivity)
        assert set(thresholds) == {"l_shipdate", "l_commitdate", "l_receiptdate"}
        for column, (name, mask) in zip(
            thresholds, selection_predicate_masks(small_db, thresholds)
        ):
            assert name == column
            assert mask.mean() == pytest.approx(selectivity, abs=0.02)

    def test_rejects_degenerate_selectivity(self, small_db):
        with pytest.raises(ValueError):
            selection_thresholds(small_db, 0.0)
        with pytest.raises(ValueError):
            selection_thresholds(small_db, 1.0)


class TestLineDensity:
    def test_dense_gather(self):
        assert line_density(np.arange(800), 800) == pytest.approx(1.0)

    def test_sparse_gather(self):
        # One value per line of 8: touches every line.
        assert line_density(np.arange(0, 800, 8), 800) == pytest.approx(1.0)
        # One value per 16: touches half the lines.
        assert line_density(np.arange(0, 800, 16), 800) == pytest.approx(0.5)

    def test_empty_indices(self):
        assert line_density(np.array([], dtype=np.int64), 100) == 1.0

    def test_bounded_by_one(self):
        indices = np.repeat(np.arange(10), 50)
        assert 0.0 < line_density(indices, 80) <= 1.0


class TestJoinSpecs:
    def test_paper_join_definitions(self):
        """Section 2: the three join micro-benchmarks."""
        assert JOIN_SPECS["small"].build_table == "nation"
        assert JOIN_SPECS["small"].probe_table == "supplier"
        assert JOIN_SPECS["medium"].build_table == "supplier"
        assert JOIN_SPECS["medium"].probe_table == "partsupp"
        assert JOIN_SPECS["large"].build_table == "orders"
        assert JOIN_SPECS["large"].probe_table == "lineitem"
        assert JOIN_SPECS["large"].sum_columns == (
            "l_extendedprice", "l_discount", "l_tax", "l_quantity",
        )


class TestSimdGuard:
    def test_engines_without_simd_reject_it(self, small_db):
        engine = TyperEngine()
        assert not engine.supports_simd
        with pytest.raises(ValueError, match="SIMD"):
            engine.run_projection(small_db, 2, simd=True)

    def test_unsupported_query_rejected(self, small_db):
        with pytest.raises(ValueError):
            TyperEngine().run_tpch(small_db, "Q3")

    def test_predication_limited_to_q6(self, small_db):
        with pytest.raises(ValueError):
            TyperEngine().run_tpch(small_db, "Q1", predicated=True)

    def test_unknown_join_size(self, small_db):
        with pytest.raises(ValueError):
            TyperEngine().run_join(small_db, "huge")
