"""Cross-engine correctness: all four engines must compute identical
query results (they differ only in *how* and at what cost)."""

import numpy as np
import pytest

from repro.engines import (
    ALL_ENGINES,
    ColumnStoreEngine,
    RowStoreEngine,
    TectorwiseEngine,
    TyperEngine,
)
from repro.tpch import (
    q1_reference,
    q6_reference,
    q9_reference,
    q18_reference,
)


@pytest.fixture(scope="module")
def engines():
    return [engine_cls() for engine_cls in ALL_ENGINES]


def reference_projection(db, degree):
    from repro.engines import projection_columns

    lineitem = db["lineitem"]
    total = np.zeros(lineitem.n_rows)
    for column in projection_columns(degree):
        total = total + lineitem[column]
    return float(total.sum())


class TestProjectionAgreement:
    @pytest.mark.parametrize("degree", [1, 2, 3, 4])
    def test_all_engines_match_reference(self, small_db, engines, degree):
        expected = reference_projection(small_db, degree)
        for engine in engines:
            result = engine.run_projection(small_db, degree)
            assert result.value == pytest.approx(expected, rel=1e-9), engine.name
            assert result.tuples == small_db["lineitem"].n_rows


class TestSelectionAgreement:
    @pytest.mark.parametrize("selectivity", [0.1, 0.5, 0.9])
    @pytest.mark.parametrize("predicated", [False, True])
    def test_all_engines_agree(self, small_db, engines, selectivity, predicated):
        values = [
            engine.run_selection(small_db, selectivity, predicated=predicated).value
            for engine in engines
        ]
        for value in values[1:]:
            assert value == pytest.approx(values[0], rel=1e-9)

    def test_higher_selectivity_larger_sum(self, small_db):
        engine = TyperEngine()
        low = engine.run_selection(small_db, 0.1).value
        high = engine.run_selection(small_db, 0.9).value
        assert high > low > 0


class TestJoinAgreement:
    @pytest.mark.parametrize("size", ["small", "medium", "large"])
    def test_all_engines_agree(self, small_db, engines, size):
        values = [engine.run_join(small_db, size).value for engine in engines]
        for value in values[1:]:
            assert value == pytest.approx(values[0], rel=1e-9)

    def test_large_join_is_fk_join(self, small_db):
        """Every lineitem matches an order."""
        result = TyperEngine().run_join(small_db, "large")
        assert result.details["hit_fraction"] == pytest.approx(1.0)

    def test_small_join_sums_supplier_side(self, small_db):
        supplier = small_db["supplier"]
        expected = float((supplier["s_acctbal"] + supplier["s_suppkey"]).sum())
        assert TyperEngine().run_join(small_db, "small").value == pytest.approx(expected)


class TestGroupByAgreement:
    def test_all_engines_agree(self, small_db, engines):
        values = [engine.run_groupby(small_db).value for engine in engines]
        for value in values[1:]:
            assert value == pytest.approx(values[0], rel=1e-9)

    def test_total_is_column_sum(self, small_db):
        expected = float(small_db["lineitem"]["l_extendedprice"].sum())
        assert TyperEngine().run_groupby(small_db).value == pytest.approx(expected)


class TestTpchAgreement:
    def test_q1_matches_reference(self, small_db):
        reference = q1_reference(small_db)
        for engine in (TyperEngine(), TectorwiseEngine()):
            value = engine.run_q1(small_db).value
            assert value["groups"] == len(reference) == 4
            assert value["sum_qty"] == pytest.approx(
                sum(group["sum_qty"] for group in reference.values())
            )
        for engine in (RowStoreEngine(), ColumnStoreEngine()):
            assert engine.run_q1(small_db).value == reference

    @pytest.mark.parametrize("predicated", [False, True])
    def test_q6_matches_reference(self, small_db, predicated):
        expected = q6_reference(small_db)
        for engine_cls in ALL_ENGINES:
            value = engine_cls().run_q6(small_db, predicated=predicated).value
            assert value == pytest.approx(expected, rel=1e-9), engine_cls.name

    def test_q9_matches_reference(self, small_db):
        expected = sum(q9_reference(small_db).values())
        for engine in (TyperEngine(), TectorwiseEngine()):
            assert engine.run_q9(small_db).value == pytest.approx(expected, rel=1e-9)
        for engine in (RowStoreEngine(), ColumnStoreEngine()):
            assert sum(engine.run_q9(small_db).value.values()) == pytest.approx(
                expected, rel=1e-9
            )

    def test_q18_matches_reference(self, small_db):
        reference = q18_reference(small_db)
        for engine in (TyperEngine(), TectorwiseEngine()):
            value = engine.run_q18(small_db).value
            assert value["winners"] == len(reference)
            assert value["sum_winner_qty"] == pytest.approx(sum(reference.values()))
        for engine in (RowStoreEngine(), ColumnStoreEngine()):
            assert engine.run_q18(small_db).value == pytest.approx(reference)

    def test_simd_does_not_change_results(self, small_db):
        engine = TectorwiseEngine()
        for method, args in (
            ("run_projection", (small_db, 4)),
            ("run_selection", (small_db, 0.5, True)),
            ("run_join", (small_db, "large")),
        ):
            scalar = getattr(engine, method)(*args, simd=False)
            simd = getattr(engine, method)(*args, simd=True)
            assert simd.value == pytest.approx(scalar.value, rel=1e-12)
