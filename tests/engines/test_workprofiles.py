"""Work-profile structure tests: each engine's *recorded work* must
reflect its execution model (the paper's explanatory mechanisms)."""

import pytest

from repro.engines import (
    ColumnStoreEngine,
    RowStoreEngine,
    TectorwiseEngine,
    TyperEngine,
)


class TestInstructionFootprints:
    def test_interpreters_execute_orders_of_magnitude_more_instructions(self, small_db):
        """The paper's central commercial-system observation."""
        per_tuple = {}
        for engine in (TyperEngine(), TectorwiseEngine(), ColumnStoreEngine(), RowStoreEngine()):
            work = engine.run_projection(small_db, 4).work
            per_tuple[engine.name] = work.instructions_per_tuple()
        assert per_tuple["DBMS R"] > 50 * per_tuple["Typer"]
        assert per_tuple["DBMS C"] > 5 * per_tuple["Typer"]
        assert per_tuple["DBMS R"] > 5 * per_tuple["DBMS C"]

    def test_hpe_instruction_streams_tight(self, small_db):
        for engine in (TyperEngine(), TectorwiseEngine()):
            work = engine.run_projection(small_db, 4).work
            assert work.instructions_per_tuple() < 40

    def test_code_footprints(self):
        """HPE code is L1I-resident; interpreters are not -- yet
        (the paper's point) nobody is Icache-bound."""
        assert TyperEngine.code_footprint_bytes <= 32 * 1024
        assert RowStoreEngine.code_footprint_bytes > 32 * 1024
        assert ColumnStoreEngine.code_footprint_bytes > 32 * 1024


class TestMaterialization:
    def test_tectorwise_materializes_intermediates(self, small_db):
        work = TectorwiseEngine().run_projection(small_db, 4).work
        assert work.cached_write_bytes > 0
        assert work.cached_access_events > 0

    def test_typer_fused_pipeline_has_no_intermediates(self, small_db):
        work = TyperEngine().run_projection(small_db, 4).work
        assert work.cached_write_bytes == 0

    def test_materialization_grows_with_projectivity(self, small_db):
        engine = TectorwiseEngine()
        p2 = engine.run_projection(small_db, 2).work.cached_write_bytes
        p4 = engine.run_projection(small_db, 4).work.cached_write_bytes
        assert p4 > p2

    def test_simd_moves_cached_bytes_in_fewer_events(self, small_db):
        engine = TectorwiseEngine()
        scalar = engine.run_projection(small_db, 4).work
        simd = engine.run_projection(small_db, 4, simd=True).work
        assert simd.cached_write_bytes == scalar.cached_write_bytes
        assert simd.cached_access_events < scalar.cached_access_events / 4


class TestMemoryTraffic:
    def test_scan_bytes_match_touched_columns(self, small_db):
        lineitem = small_db["lineitem"]
        for engine in (TyperEngine(), TectorwiseEngine()):
            for degree in (1, 4):
                work = engine.run_projection(small_db, degree).work
                from repro.engines import projection_columns

                expected = lineitem.bytes_for(projection_columns(degree))
                assert work.seq_read_bytes == pytest.approx(expected)

    def test_row_store_reads_full_rows(self, small_db):
        typer = TyperEngine().run_projection(small_db, 1).work
        rowstore = RowStoreEngine().run_projection(small_db, 1).work
        assert rowstore.seq_read_bytes > 5 * typer.seq_read_bytes

    def test_column_store_reads_only_needed_columns(self, small_db):
        column = ColumnStoreEngine().run_projection(small_db, 2).work
        expected = small_db["lineitem"].bytes_for(["l_extendedprice", "l_discount"])
        assert column.seq_read_bytes == pytest.approx(expected)

    def test_branched_selection_gathers_sparsely(self, small_db):
        work = TyperEngine().run_selection(small_db, 0.1).work
        assert work.sparse_scans, "low-selectivity projection should be a gather"
        assert all(0 < scan.density <= 1 for scan in work.sparse_scans)

    def test_predicated_selection_scans_everything(self, small_db):
        work = TyperEngine().run_selection(small_db, 0.1, predicated=True).work
        assert not work.sparse_scans
        lineitem = small_db["lineitem"]
        assert work.seq_read_bytes == pytest.approx(lineitem.bytes_for(
            ["l_shipdate", "l_commitdate", "l_receiptdate",
             "l_extendedprice", "l_discount", "l_tax", "l_quantity"]
        ))


class TestBranchStreams:
    def test_predication_removes_data_dependent_branches(self, small_db):
        for engine in (TyperEngine(), TectorwiseEngine()):
            branched = engine.run_selection(small_db, 0.5).work
            predicated = engine.run_selection(small_db, 0.5, predicated=True).work
            assert branched.branch_streams
            assert not predicated.branch_streams

    def test_typer_sees_combined_selectivity(self, small_db):
        """Section 4: the compiled conjunction's branch sees ~s^3."""
        work = TyperEngine().run_selection(small_db, 0.1).work
        (stream,) = work.branch_streams
        assert stream.taken_fraction < 0.1

    def test_tectorwise_sees_individual_selectivities(self, small_db):
        """Section 4: the vectorized engine evaluates each predicate."""
        work = TectorwiseEngine().run_selection(small_db, 0.1).work
        assert len(work.branch_streams) == 3
        first = work.branch_streams[0]
        assert first.taken_fraction == pytest.approx(0.1, abs=0.02)

    def test_typer_branch_easier_than_tectorwise_at_low_selectivity(self, small_db):
        typer = TyperEngine().run_selection(small_db, 0.1).work
        tectorwise = TectorwiseEngine().run_selection(small_db, 0.1).work
        assert typer.branch_streams[0].taken_fraction < \
            tectorwise.branch_streams[0].taken_fraction


class TestRandomAccessPatterns:
    def test_join_probes_recorded_with_table_working_set(self, small_db):
        result = TyperEngine().run_join(small_db, "large")
        probes = [p for p in result.work.random_patterns if "probe" in p.name]
        assert probes
        assert probes[0].count == small_db["lineitem"].n_rows
        assert probes[0].working_set_bytes == result.details["hash_table_bytes"]

    def test_chain_walks_are_dependent(self, small_db):
        result = TyperEngine().run_groupby(small_db)
        walks = [p for p in result.work.random_patterns if "walk" in p.name]
        assert all(pattern.dependent for pattern in walks)

    def test_projection_has_no_random_accesses(self, small_db):
        work = TyperEngine().run_projection(small_db, 4).work
        assert not work.random_patterns

    def test_simd_probe_gets_gather_mlp_hint(self, small_db):
        engine = TectorwiseEngine()
        scalar = engine.run_join(small_db, "large").work
        simd = engine.run_join(small_db, "large", simd=True).work
        scalar_probe = [p for p in scalar.random_patterns if "probe" in p.name][0]
        simd_probe = [p for p in simd.random_patterns if "probe" in p.name][0]
        assert scalar_probe.mlp_hint is None
        assert simd_probe.mlp_hint is not None and simd_probe.mlp_hint > 4

    def test_interpreter_state_accesses_dependent(self, small_db):
        work = RowStoreEngine().run_projection(small_db, 1).work
        state = [p for p in work.random_patterns if "state" in p.name]
        assert state and state[0].dependent


class TestSimdWork:
    def test_simd_cuts_instructions(self, small_db):
        engine = TectorwiseEngine()
        scalar = engine.run_projection(small_db, 4).work
        simd = engine.run_projection(small_db, 4, simd=True).work
        assert simd.instructions < scalar.instructions / 3
        assert simd.simd_ops > 0
        assert scalar.simd_ops == 0

    def test_interpreters_report_low_ilp(self, small_db):
        assert RowStoreEngine().run_projection(small_db, 1).work.effective_ilp < 4
        assert TyperEngine().run_projection(small_db, 1).work.effective_ilp is None
