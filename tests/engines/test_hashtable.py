"""Chained hash-table tests: structure, probes, exact work accounting,
and the Section 6 chain statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engines import (
    ChainedHashTable,
    GroupByHashTable,
    fibonacci_bucket,
    next_power_of_two,
    weak_composite_bucket,
)


class TestHelpers:
    def test_next_power_of_two(self):
        assert next_power_of_two(0) == 1
        assert next_power_of_two(1) == 1
        assert next_power_of_two(2) == 2
        assert next_power_of_two(3) == 4
        assert next_power_of_two(1025) == 2048

    def test_fibonacci_bucket_range(self):
        buckets = fibonacci_bucket(np.arange(1000, dtype=np.int64), 256)
        assert buckets.min() >= 0
        assert buckets.max() < 256

    def test_fibonacci_spreads_dense_keys_evenly(self):
        """Dense keys land almost collision-free: the join-table
        regularity of Section 6."""
        buckets = fibonacci_bucket(np.arange(1000, dtype=np.int64), 4096)
        counts = np.bincount(buckets, minlength=4096)
        assert counts.max() <= 2

    def test_weak_composite_bucket_range(self):
        buckets = weak_composite_bucket(np.arange(1000, dtype=np.int64) * 7, 256)
        assert buckets.min() >= 0
        assert buckets.max() < 256

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            fibonacci_bucket(np.arange(4), 100)
        with pytest.raises(ValueError):
            weak_composite_bucket(np.arange(4), 100)


class TestBuild:
    def test_rejects_duplicate_keys(self):
        with pytest.raises(ValueError):
            ChainedHashTable(np.array([1, 2, 2]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            ChainedHashTable(np.zeros((2, 2), dtype=np.int64))

    def test_rejects_bad_load(self):
        with pytest.raises(ValueError):
            ChainedHashTable(np.arange(4), target_load=0.0)

    def test_bucket_count_honours_target_load(self):
        table = ChainedHashTable(np.arange(1000), target_load=0.5)
        assert table.n_buckets >= 2000
        assert table.n_buckets == next_power_of_two(2000)

    def test_chain_walk_finds_every_key(self):
        keys = np.arange(100, dtype=np.int64) * 13 + 1
        table = ChainedHashTable(keys)
        for index, key in enumerate(keys):
            assert index in table.chain_of(int(key))

    def test_head_next_structure_consistent(self):
        """Walking every chain visits every key exactly once."""
        keys = np.arange(500, dtype=np.int64)
        table = ChainedHashTable(keys)
        visited = []
        for bucket in range(table.n_buckets):
            cursor = int(table.head[bucket])
            while cursor != -1:
                visited.append(cursor)
                cursor = int(table.next[cursor])
        assert sorted(visited) == list(range(500))

    def test_working_set_bytes(self):
        table = ChainedHashTable(np.arange(100))
        assert table.working_set_bytes == table.n_buckets * 8 + 100 * 24

    def test_empty_table(self):
        table = ChainedHashTable(np.array([], dtype=np.int64))
        result = table.probe(np.array([1, 2]))
        assert not result.found.any()
        assert result.comparisons == 0


class TestProbe:
    def test_found_matches_membership(self):
        keys = np.array([2, 4, 6, 8, 10], dtype=np.int64)
        table = ChainedHashTable(keys)
        probes = np.array([1, 2, 3, 4, 10, 11])
        result = table.probe(probes)
        assert result.found.tolist() == [False, True, False, True, True, False]

    def test_match_index_points_to_build_row(self):
        keys = np.array([30, 10, 20], dtype=np.int64)
        table = ChainedHashTable(keys)
        result = table.probe(np.array([10, 20, 30, 40]))
        assert result.match_index.tolist()[:3] == [1, 2, 0]
        assert result.match_index[3] == -1

    def test_hit_fraction(self):
        table = ChainedHashTable(np.arange(10))
        result = table.probe(np.array([0, 1, 100, 200]))
        assert result.hit_fraction == pytest.approx(0.5)

    def test_comparisons_exact_single_bucket(self):
        """Force every key into one bucket and check the walk counts."""
        keys = np.array([5, 9, 13], dtype=np.int64)
        table = ChainedHashTable(keys, hash_fn=lambda k, n: np.zeros(len(k), np.int64))
        # Head-insertion: probing key inserted last costs 1 comparison,
        # first-inserted costs 3.
        assert table.probe(np.array([13])).comparisons == 1
        assert table.probe(np.array([9])).comparisons == 2
        assert table.probe(np.array([5])).comparisons == 3
        # A miss walks the full chain.
        assert table.probe(np.array([99])).comparisons == 3

    def test_extra_walk_counts_beyond_first(self):
        keys = np.array([5, 9], dtype=np.int64)
        table = ChainedHashTable(keys, hash_fn=lambda k, n: np.zeros(len(k), np.int64))
        result = table.probe(np.array([5]))
        assert result.comparisons == 2
        assert result.extra_walk == 1


class TestChainStats:
    def test_join_table_chains_regular(self):
        """Dense FK keys: chains 0-1, the paper's join shape."""
        stats = ChainedHashTable(np.arange(1, 20_001)).chain_stats()
        assert stats.max <= 2
        assert 0.2 <= stats.mean <= 0.5
        assert stats.std <= 0.55

    def test_groupby_table_chains_irregular(self):
        """Composite group keys: longer tails, the paper's group-by
        shape (0-7, mean 0.23, std 0.5)."""
        rng = np.random.default_rng(5)
        composite = rng.integers(1, 50_000, 100_000) * 4 + rng.integers(0, 3, 100_000)
        stats = GroupByHashTable(composite).chain_stats()
        assert stats.max >= 4
        assert 0.15 <= stats.mean <= 0.45
        assert 0.3 <= stats.std <= 0.8

    def test_load_factor(self):
        table = ChainedHashTable(np.arange(1024), target_load=0.5)
        assert table.chain_stats().load_factor == pytest.approx(0.5)


class TestGroupByTable:
    def test_aggregate_sum_matches_numpy(self):
        keys = np.array([3, 1, 3, 2, 1, 3])
        values = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        table = GroupByHashTable(keys)
        sums = table.aggregate_sum(values)
        assert table.distinct_keys.tolist() == [1, 2, 3]
        assert sums.tolist() == [7.0, 4.0, 10.0]

    def test_aggregate_count(self):
        table = GroupByHashTable(np.array([1, 1, 2]))
        assert table.aggregate_count().tolist() == [2, 1]

    def test_update_comparisons_at_least_one_per_update(self):
        table = GroupByHashTable(np.arange(1000) % 50)
        assert table.update_comparisons() >= table.n_updates

    def test_collision_fraction_bounds(self):
        table = GroupByHashTable(np.arange(1000) % 50)
        assert 0.0 <= table.collision_fraction() <= 1.0

    def test_empty(self):
        table = GroupByHashTable(np.array([], dtype=np.int64))
        assert table.n_groups == 0
        assert table.collision_fraction() == 0.0


@settings(max_examples=40, deadline=None)
@given(
    keys=st.lists(
        st.integers(min_value=-10_000, max_value=10_000),
        min_size=1, max_size=300, unique=True,
    ),
    probes=st.lists(st.integers(min_value=-10_000, max_value=10_000), max_size=300),
)
def test_property_probe_equivalent_to_dict(keys, probes):
    keys_arr = np.array(keys, dtype=np.int64)
    probes_arr = np.array(probes, dtype=np.int64)
    table = ChainedHashTable(keys_arr)
    result = table.probe(probes_arr)
    lookup = {key: index for index, key in enumerate(keys)}
    for i, probe in enumerate(probes):
        assert result.found[i] == (probe in lookup)
        if probe in lookup:
            assert result.match_index[i] == lookup[probe]


@settings(max_examples=40, deadline=None)
@given(
    keys=st.lists(st.integers(min_value=0, max_value=5_000), min_size=1, max_size=400)
)
def test_property_groupby_sums_match_bincount(keys):
    keys_arr = np.array(keys, dtype=np.int64)
    values = np.ones(len(keys))
    table = GroupByHashTable(keys_arr)
    sums = table.aggregate_sum(values)
    assert sums.sum() == pytest.approx(len(keys))
    assert (sums >= 1).all()
    assert table.bucket_counts.sum() == table.n_groups
