"""Interpreter-engine internals: the cost-model mechanics that make
"DBMS R" and "DBMS C" behave like the paper's commercial systems."""

import pytest

from repro.engines import ColumnStoreEngine, RowStoreEngine


class TestGranularity:
    def test_row_store_pays_dispatch_per_tuple(self, small_db):
        """Tuple-at-a-time: the next() tax lands on every tuple."""
        work = RowStoreEngine().run_projection(small_db, 1).work
        n = small_db["lineitem"].n_rows
        # Plan of 3 operators at 250 instructions per next() call.
        assert work.instructions >= n * 3 * RowStoreEngine.NEXT_COST

    def test_column_store_amortises_dispatch_per_block(self, small_db):
        """Block-at-a-time: the same tax divided by ~1000."""
        row = RowStoreEngine().run_projection(small_db, 1).work
        column = ColumnStoreEngine().run_projection(small_db, 1).work
        assert column.instructions < row.instructions / 4

    def test_block_size_is_vector_scale(self):
        assert RowStoreEngine.BLOCK_SIZE == 1.0
        assert ColumnStoreEngine.BLOCK_SIZE == 1024.0

    def test_expression_cost_scales_with_terms(self, small_db):
        engine = RowStoreEngine()
        p1 = engine.run_projection(small_db, 1).work.instructions
        p4 = engine.run_projection(small_db, 4).work.instructions
        n = small_db["lineitem"].n_rows
        # Three extra columns -> six extra term evaluations per tuple.
        expected_delta = n * 6 * RowStoreEngine.EXPR_COST
        assert p4 - p1 == pytest.approx(expected_delta, rel=0.01)


class TestShortCircuitFilter:
    def test_later_predicates_run_on_survivors_only(self, small_db):
        """Branched interpretation short-circuits, so the low-selectivity
        run interprets fewer terms than the high-selectivity one."""
        engine = RowStoreEngine()
        low = engine.run_selection(small_db, 0.1).work.instructions
        high = engine.run_selection(small_db, 0.9).work.instructions
        assert low < high

    def test_predicated_interpretation_evaluates_everything(self, small_db):
        engine = RowStoreEngine()
        branched = engine.run_selection(small_db, 0.1).work
        predicated = engine.run_selection(small_db, 0.1, predicated=True).work
        assert predicated.instructions > branched.instructions
        # The data-dependent predicate branches are gone; the
        # interpreter's own dispatch/check branches remain.
        assert not [
            stream for stream in predicated.branch_streams
            if "predicate" in stream.name
        ]

    def test_filter_records_conditional_streams(self, small_db):
        work = RowStoreEngine().run_selection(small_db, 0.5).work
        predicate_streams = [
            stream for stream in work.branch_streams if "predicate" in stream.name
        ]
        assert len(predicate_streams) == 3
        # The first predicate sees the raw 50% selectivity.
        assert predicate_streams[0].taken_fraction == pytest.approx(0.5, abs=0.02)


class TestInterpreterStalls:
    def test_dispatch_branches_carry_measured_rate(self, small_db):
        work = RowStoreEngine().run_projection(small_db, 1).work
        dispatch = [s for s in work.branch_streams if "dispatch" in s.name]
        assert dispatch
        assert dispatch[0].mispredict_rate == RowStoreEngine.DISPATCH_MISPREDICT

    def test_value_checks_recorded(self, small_db):
        work = ColumnStoreEngine().run_projection(small_db, 2).work
        checks = [s for s in work.branch_streams if "value checks" in s.name]
        assert checks
        assert checks[0].mispredict_rate == ColumnStoreEngine.VALUE_CHECK_MISPREDICT

    def test_state_working_set_large(self, small_db):
        work = RowStoreEngine().run_projection(small_db, 1).work
        state = [p for p in work.random_patterns if "state" in p.name][0]
        assert state.working_set_bytes == RowStoreEngine.STATE_WS_BYTES
        assert state.working_set_bytes > 32 * 1024 * 1024

    def test_column_store_ilp_better_than_row_store(self):
        assert ColumnStoreEngine.EFFECTIVE_ILP > RowStoreEngine.EFFECTIVE_ILP

    def test_interpreter_hash_tables_fatter(self, small_db):
        """Commercial hash joins drag bigger entries."""
        work = RowStoreEngine().run_join(small_db, "large").work
        probes = [p for p in work.random_patterns if "probe" in p.name][0]
        from repro.engines import ChainedHashTable

        lean = ChainedHashTable(small_db["orders"]["o_orderkey"]).working_set_bytes
        assert probes.working_set_bytes == pytest.approx(
            lean * RowStoreEngine.HT_SIZE_FACTOR
        )


class TestCommercialTpch:
    @pytest.mark.parametrize("query_id", ["Q1", "Q6", "Q9", "Q18"])
    def test_interpretation_dominates_every_query(self, small_db, profiler, query_id):
        report = profiler.run(RowStoreEngine(), "run_tpch", small_db, query_id)
        assert report.work.instructions_per_tuple() > 100
        assert report.cycle_shares()["icache"] < 0.15
