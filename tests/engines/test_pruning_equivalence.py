"""Pruned execution must be bit-identical to unpruned execution.

Zone-map pruning (:mod:`repro.core.pruning`) promises the same contract
as the morsel and encoding layers: skipping chunks changes *nothing
observable* -- values, tuple counts, work profiles and per-operator
attribution all match the single-shot run, for every engine, in the
thread path and through the process pool, including the all-pruned and
nothing-pruned edges.  A hypothesis sweep extends the check to
arbitrary selection thresholds (and hence arbitrary prune shapes).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import pruning
from repro.core.parallel import WorkerPool
from repro.engines import ALL_ENGINES, TyperEngine, engine_by_name
from repro.engines.morsel import morsel_ranges
from repro.storage import ColumnTable, Database
from repro.storage.encoding import encode_columns
from repro.tpch.schema import SELECTION_PREDICATE_COLUMNS

#: Prunable workloads exercised across the full engine matrix.
WORKLOADS = [
    ("run_q6", {}),
    ("run_q6", {"predicated": True}),
    ("run_q1", {}),
    ("run_selection", {"selectivity": 0.1}),
    ("run_selection", {"selectivity": 0.02, "predicated": True}),
]

WORKLOAD_IDS = [
    f"{method[len('run_'):]}-{'-'.join(f'{k}{v}' for k, v in kwargs.items()) or 'default'}"
    for method, kwargs in WORKLOADS
]


def _twin(db, suffix: str, mutate) -> Database:
    twin = Database(name=f"{db.name}-{suffix}", scale_factor=db.scale_factor)
    for table_name in db.table_names:
        table = db.table(table_name)
        columns = {c: np.asarray(table[c]) for c in table.column_names}
        if table_name == "lineitem":
            columns = mutate(columns)
        twin.add_table(ColumnTable(table_name, encode_columns(columns)))
    return twin


@pytest.fixture(scope="module")
def sorted_db(small_db):
    """lineitem clustered on l_shipdate: selective date predicates
    isolate a narrow kept range, so most chunks prune."""

    def clustered(columns):
        order = np.argsort(columns["l_shipdate"], kind="stable")
        return {c: values[order] for c, values in columns.items()}

    return _twin(small_db, "sorted", clustered)


@pytest.fixture(scope="module")
def shifted_db(tiny_db):
    """Every l_shipdate pushed past Q6's window: all chunks prune."""

    def shifted(columns):
        out = dict(columns)
        out["l_shipdate"] = columns["l_shipdate"] + 10000.0
        return out

    return _twin(tiny_db, "shifted", shifted)


@pytest.fixture(scope="module", params=ALL_ENGINES, ids=lambda cls: cls.name)
def engine(request):
    return request.param()


def assert_identical(pruned, baseline, context: str) -> None:
    assert pruned.value == baseline.value, context
    assert pruned.tuples == baseline.tuples, context
    assert pruned.work == baseline.work, f"work profile differs: {context}"
    assert set(pruned.operator_work) == set(baseline.operator_work), context
    for name, profile in baseline.operator_work.items():
        assert pruned.operator_work[name] == profile, f"{context}: {name}"


def pruned_result(engine, db, method, kwargs):
    atoms = pruning.atoms_for(db, method, kwargs)
    plan = pruning.compute_prune_plan(db, atoms)
    return plan, (
        None if plan is None
        else pruning.execute_pruned(engine, db, method, kwargs, plan)
    )


class TestThreadMatrix:
    @pytest.mark.parametrize("method,kwargs", WORKLOADS, ids=WORKLOAD_IDS)
    def test_pruned_equals_single_shot(self, engine, sorted_db, method, kwargs):
        plan, pruned = pruned_result(engine, sorted_db, method, kwargs)
        assert plan is not None
        if method != "run_q1":
            # Q1's predicate keeps almost everything; the selective
            # workloads must actually prune for the test to mean much.
            assert plan.chunks_pruned > 0, "fixture stopped pruning"
        baseline = getattr(engine, method)(sorted_db, **kwargs)
        assert_identical(pruned, baseline, f"{engine.name} {method} {kwargs}")
        assert pruned.details["pruning"]["morsels_pruned"] == plan.chunks_pruned

    def test_all_pruned_edge(self, engine, shifted_db):
        plan, pruned = pruned_result(engine, shifted_db, "run_q6", {})
        assert plan is not None and plan.kept_rows == 0
        baseline = engine.run_q6(shifted_db)
        assert_identical(pruned, baseline, f"{engine.name} all-pruned q6")
        assert pruned.tuples == 0 or pruned.value == baseline.value

    def test_nothing_pruned_on_shuffled_data(self, small_db):
        atoms = pruning.atoms_for(small_db, "run_q6", {})
        plan = pruning.compute_prune_plan(small_db, atoms)
        assert plan is not None and plan.nothing_pruned


class TestAgainstMorselMerge:
    """Pruned merges must also match an *unpruned morsel* merge -- the
    partition the process pool would have run without pruning."""

    @pytest.mark.parametrize("pieces", [1, 3, 7])
    def test_q6_matches_merged_partition(self, sorted_db, pieces):
        engine = TyperEngine()
        plan, pruned = pruned_result(engine, sorted_db, "run_q6", {})
        assert plan is not None and plan.chunks_pruned > 0
        n_rows = sorted_db.table("lineitem").n_rows
        partials = [
            engine.run_q6(sorted_db, row_range=(lo, hi))
            for lo, hi in morsel_ranges(n_rows, pieces)
        ]
        merged = engine.merge_morsels(sorted_db, "run_q6", {}, partials)
        assert_identical(pruned, merged, f"pieces={pieces}")


class TestProcessPool:
    @pytest.fixture(scope="class")
    def pool(self, sorted_db):
        with WorkerPool(sorted_db, n_workers=2) as pool:
            yield pool

    @pytest.mark.parametrize("method,kwargs", WORKLOADS, ids=WORKLOAD_IDS)
    def test_pool_matches_single_shot(self, pool, sorted_db, method, kwargs):
        engine = engine_by_name("Tectorwise")
        result = pool.run_query(engine, method, **kwargs)
        baseline = getattr(engine, method)(sorted_db, **kwargs)
        assert_identical(result, baseline, f"pool {method} {kwargs}")
        if method != "run_q1":
            assert result.details["pruning"]["morsels_pruned"] > 0

    def test_pool_all_pruned_edge(self, shifted_db):
        engine = TyperEngine()
        baseline = engine.run_q6(shifted_db)
        with WorkerPool(shifted_db, n_workers=2) as pool:
            result = pool.run_query(engine, "run_q6")
        assert_identical(result, baseline, "pool all-pruned q6")
        assert result.details["pruning"]["rows_pruned"] == (
            shifted_db.table("lineitem").n_rows
        )

    def test_pool_disabled_pruning_still_matches(self, sorted_db, monkeypatch):
        monkeypatch.setenv("REPRO_PRUNING", "0")
        engine = TyperEngine()
        baseline = engine.run_q6(sorted_db)
        with WorkerPool(sorted_db, n_workers=2) as pool:
            result = pool.run_query(engine, "run_q6")
        assert_identical(result, baseline, "pruning disabled")
        assert "pruning" not in result.details


class TestPropertySweep:
    """Satellite: arbitrary selection thresholds generate arbitrary
    prune shapes (including all-pruned and nothing-pruned); pruned,
    single-shot and merged-morsel execution must agree bit-for-bit."""

    @given(
        fractions=st.tuples(
            *[st.floats(-0.2, 1.2, allow_nan=False)
              for _ in SELECTION_PREDICATE_COLUMNS]
        ),
        engine_index=st.integers(0, len(ALL_ENGINES) - 1),
        pieces=st.integers(1, 6),
    )
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_arbitrary_thresholds_are_bit_identical(
        self, sorted_db, fractions, engine_index, pieces
    ):
        table = sorted_db.table("lineitem")
        thresholds = []
        for column, fraction in zip(SELECTION_PREDICATE_COLUMNS, fractions):
            values = np.asarray(table[column])
            lo, hi = float(values.min()), float(values.max())
            # fraction < 0 lands below the min (all-pruned candidate),
            # > 1 above the max (nothing-pruned).
            thresholds.append(lo + fraction * (hi - lo))
        kwargs = {"selectivity": None, "thresholds": tuple(thresholds)}
        engine = ALL_ENGINES[engine_index]()

        baseline = engine.run_selection(sorted_db, **kwargs)
        plan, pruned = pruned_result(engine, sorted_db, "run_selection", kwargs)
        assert plan is not None
        if pruned is not None:
            assert_identical(pruned, baseline, f"thresholds={thresholds}")

        n_rows = table.n_rows
        partials = [
            engine.run_selection(sorted_db, row_range=(lo, hi), **kwargs)
            for lo, hi in morsel_ranges(n_rows, pieces)
        ]
        merged = engine.merge_morsels(sorted_db, "run_selection", kwargs, partials)
        assert_identical(merged, baseline, f"merged pieces={pieces}")
