"""Morsel protocol: partial runs over any tiling of the row space must
merge to a result bit-identical to the single-shot run.

This is the correctness contract of :mod:`repro.core.parallel` -- the
process pool only parallelises what these properties guarantee.  Every
engine is exercised on every workload kind with several partitionings,
including a deliberately ragged one, and equality is exact (values,
tuples, work profiles, per-operator attribution), not approximate.
"""

from __future__ import annotations

import copy

import pytest

from repro.engines import ALL_ENGINES
from repro.engines.morsel import MORSEL_ALIGN, morsel_ranges

#: (method, kwargs) pairs covering the acceptance matrix: the three
#: micro-benchmark kinds plus all four TPC-H queries.
WORKLOADS = [
    ("run_projection", {"degree": 2}),
    ("run_projection", {"degree": 4}),
    ("run_selection", {"selectivity": 0.5}),
    ("run_selection", {"selectivity": 0.1, "predicated": True}),
    ("run_join", {"size": "large"}),
    ("run_groupby", {}),
    ("run_q1", {}),
    ("run_q6", {}),
    ("run_q9", {}),
    ("run_q18", {}),
]

WORKLOAD_IDS = [
    f"{method[len('run_'):]}-{'-'.join(f'{k}{v}' for k, v in kwargs.items()) or 'default'}"
    for method, kwargs in WORKLOADS
]


def ragged_ranges(n_rows: int) -> list[tuple[int, int]]:
    """An intentionally unbalanced tiling: a minimal lead morsel, one
    huge middle, thin slivers at the end.  Cuts are aligned to
    :data:`MORSEL_ALIGN` (the protocol rejects anything else) but the
    piece sizes are wildly uneven -- the shape work stealing produces."""
    align = MORSEL_ALIGN
    cuts = sorted({
        0,
        align,
        3 * align,
        (n_rows * 3 // 5) // align * align,
        (n_rows - 1) // align * align,
        n_rows,
    })
    return list(zip(cuts[:-1], cuts[1:]))


def partitionings(n_rows: int) -> dict[str, list[tuple[int, int]]]:
    return {
        "whole": morsel_ranges(n_rows, 1),
        "halves": morsel_ranges(n_rows, 2),
        "sevenths": morsel_ranges(n_rows, 7),
        "ragged": ragged_ranges(n_rows),
    }


def assert_identical(merged, single, context: str) -> None:
    assert merged.value == single.value, context
    assert merged.tuples == single.tuples, context
    assert merged.work == single.work, context
    assert merged.operator_work.keys() == single.operator_work.keys(), context
    for name, profile in merged.operator_work.items():
        assert profile == single.operator_work[name], f"{context} operator={name}"


@pytest.fixture(scope="module", params=ALL_ENGINES, ids=lambda cls: cls.name)
def engine(request):
    return request.param()


class TestMorselMerge:
    @pytest.mark.parametrize(("method", "kwargs"), WORKLOADS, ids=WORKLOAD_IDS)
    def test_every_partitioning_matches_single_shot(
        self, tiny_db, engine, method, kwargs
    ):
        single = getattr(engine, method)(tiny_db, **kwargs)
        n_rows = engine.partition_rows(tiny_db, method, kwargs)
        for name, ranges in partitionings(n_rows).items():
            partials = [
                getattr(engine, method)(tiny_db, row_range=row_range, **kwargs)
                for row_range in ranges
            ]
            merged = engine.merge_morsels(tiny_db, method, kwargs, partials)
            assert_identical(
                merged, single, f"{engine.name} {method} {kwargs} [{name}]"
            )

    def test_run_tpch_routes_row_range(self, tiny_db, engine):
        """``run_tpch`` forwards ``row_range`` to the per-query methods,
        so the pool can dispatch the generic entry point too."""
        single = engine.run_tpch(tiny_db, "Q6")
        n_rows = tiny_db.table("lineitem").n_rows
        partials = [
            engine.run_tpch(tiny_db, "Q6", row_range=row_range)
            for row_range in morsel_ranges(n_rows, 3)
        ]
        merged = engine.merge_morsels(tiny_db, "run_q6", {}, partials)
        assert_identical(merged, single, f"{engine.name} run_tpch Q6")

    def test_partials_survive_pickling(self, tiny_db, engine):
        """Partials cross process boundaries pickled; the merge must not
        depend on in-process object identity."""
        import pickle

        single = engine.run_q1(tiny_db)
        n_rows = tiny_db.table("lineitem").n_rows
        partials = [
            pickle.loads(pickle.dumps(engine.run_q1(tiny_db, row_range=row_range)))
            for row_range in morsel_ranges(n_rows, 4)
        ]
        merged = engine.merge_morsels(tiny_db, "run_q1", {}, partials)
        assert_identical(merged, single, f"{engine.name} pickled partials")


class TestMergeAssociativity:
    """``WorkProfile.merge_partial`` folds must not depend on grouping:
    the pool's workers pre-merge their own morsels locally before the
    parent folds the per-worker results, so ``(a + b) + c`` must equal
    ``a + (b + c)``."""

    def _partial_profiles(self, db, engine, pieces: int = 3):
        n_rows = db.table("lineitem").n_rows
        return [
            engine.run_q1(db, row_range=row_range).work
            for row_range in morsel_ranges(n_rows, pieces)
        ]

    @pytest.mark.parametrize("engine_cls", ALL_ENGINES, ids=lambda cls: cls.name)
    def test_merge_partial_is_associative(self, tiny_db, engine_cls):
        a, b, c = self._partial_profiles(tiny_db, engine_cls())

        left = copy.deepcopy(a)
        left.merge_partial(copy.deepcopy(b))
        left.merge_partial(copy.deepcopy(c))

        bc = copy.deepcopy(b)
        bc.merge_partial(copy.deepcopy(c))
        right = copy.deepcopy(a)
        right.merge_partial(bc)

        assert left == right

    def test_protocol_rejects_degenerate_ranges(self, tiny_db):
        """The protocol forbids empty and misaligned morsels outright:
        the ledger never hands them out, and rejecting them here keeps
        congruence bugs from hiding behind zero-row no-ops."""
        engine = ALL_ENGINES[0]()
        n_rows = tiny_db.table("lineitem").n_rows
        for bad in ((0, 0), (n_rows, n_rows), (-64, 64), (0, n_rows + 64)):
            with pytest.raises(ValueError, match="row_range"):
                engine.run_q6(tiny_db, row_range=bad)
        with pytest.raises(ValueError, match="aligned"):
            engine.run_q6(tiny_db, row_range=(1, n_rows))
