"""Round-trip: every documented SQL string parses, plans, lowers and
executes on each engine with results identical to the hand-wired path."""

import pytest

from repro.engines import ALL_ENGINES, JOIN_SIZES, SELECTION_SELECTIVITIES
from repro.sql import SqlError, compile_sql, execute_sql
from repro.tpch.sql import GROUPBY_SQL, JOIN_SQL, TPCH_SQL, projection_sql, selection_sql


@pytest.fixture(scope="module")
def engines():
    return [engine_cls() for engine_cls in ALL_ENGINES]


def assert_identical(result_sql, result_hand, context, check_workload=True):
    __tracebackhide__ = True
    assert repr(result_sql.value) == repr(result_hand.value), context
    assert result_sql.tuples == result_hand.tuples, context
    if check_workload:
        assert result_sql.workload == result_hand.workload, context


class TestLowering:
    def test_tpch_binds_run_tpch(self):
        for query_id, sql in TPCH_SQL.items():
            bound = compile_sql(sql)
            assert bound.method == "run_tpch"
            assert bound.args == (query_id,)

    def test_joins_bind_by_size(self):
        for size in JOIN_SIZES:
            assert compile_sql(JOIN_SQL[size]).args == (size,)

    def test_projection_degrees(self):
        for degree in (1, 2, 3, 4):
            bound = compile_sql(projection_sql(degree))
            assert bound.method == "run_projection"
            assert bound.args == (degree,)

    def test_groupby(self):
        assert compile_sql(GROUPBY_SQL).method == "run_groupby"

    def test_selection_binds_literal_thresholds(self, tiny_db):
        bound = compile_sql(selection_sql(0.5, tiny_db))
        assert bound.method == "run_selection"
        kwargs = bound.call_kwargs()
        assert kwargs["selectivity"] is None
        assert len(kwargs["thresholds"]) == 3

    def test_unprofiled_aggregate_falls_back_to_the_compiler(self):
        # PR 9: aggregates with no hand-wired template lower to the
        # plan compiler instead of erroring.
        bound = compile_sql("SELECT SUM(o_totalprice) FROM orders")
        assert bound.method == "run_compiled"

    def test_valid_but_uncompilable_query_rejected(self):
        # A bare projection has nothing to aggregate, so neither a
        # template nor the compiler accepts it.
        with pytest.raises(SqlError, match="does not match any profiled"):
            compile_sql("SELECT o_orderkey FROM orders")

    def test_placeholder_selection_sql_rejected_by_parser(self):
        with pytest.raises(SqlError):
            compile_sql(selection_sql(0.5))  # no db -> placeholder literals


class TestExecutionRoundTrip:
    @pytest.mark.parametrize("degree", [1, 2, 3, 4])
    def test_projection(self, tiny_db, engines, degree):
        bound = compile_sql(projection_sql(degree))
        for engine in engines:
            assert_identical(
                bound.execute(engine, tiny_db),
                engine.run_projection(tiny_db, degree),
                (engine.name, degree),
            )

    @pytest.mark.parametrize("selectivity", SELECTION_SELECTIVITIES)
    def test_selection(self, tiny_db, engines, selectivity):
        bound = compile_sql(selection_sql(selectivity, tiny_db))
        for engine in engines:
            result_sql = bound.execute(engine, tiny_db)
            # The SQL path re-measures the nominal selectivity from the
            # data, so the label may differ by a percent; values and
            # tuple counts must be exact.
            assert_identical(
                result_sql,
                engine.run_selection(tiny_db, selectivity),
                (engine.name, selectivity),
                check_workload=False,
            )
            assert result_sql.workload.startswith("selection-")

    @pytest.mark.parametrize("size", JOIN_SIZES)
    def test_joins(self, tiny_db, engines, size):
        bound = compile_sql(JOIN_SQL[size])
        for engine in engines:
            assert_identical(
                bound.execute(engine, tiny_db),
                engine.run_join(tiny_db, size),
                (engine.name, size),
            )

    def test_groupby(self, tiny_db, engines):
        bound = compile_sql(GROUPBY_SQL)
        for engine in engines:
            assert_identical(
                bound.execute(engine, tiny_db),
                engine.run_groupby(tiny_db),
                engine.name,
            )

    @pytest.mark.parametrize("query_id", sorted(TPCH_SQL))
    def test_tpch(self, tiny_db, engines, query_id):
        bound = compile_sql(TPCH_SQL[query_id])
        for engine in engines:
            assert_identical(
                bound.execute(engine, tiny_db),
                engine.run_tpch(tiny_db, query_id),
                (engine.name, query_id),
            )

    def test_execute_sql_accepts_engine_names(self, tiny_db):
        result = execute_sql(projection_sql(1), "Typer", tiny_db)
        assert result.value == pytest.approx(
            float(tiny_db["lineitem"]["l_extendedprice"].sum())
        )

    def test_options_pass_through(self, tiny_db):
        result = execute_sql(
            TPCH_SQL["Q6"], "Tectorwise", tiny_db, predicated=True
        )
        reference = next(
            e for e in ALL_ENGINES if e.name == "Tectorwise"
        )().run_q6(tiny_db, predicated=True)
        assert repr(result.value) == repr(reference.value)
