"""Tokenizer: lexemes, positions, normalization, clear errors."""

import pytest

from repro.sql import SqlError, normalize_sql, tokenize
from repro.sql.tokens import KIND_EOF, KIND_IDENT, KIND_KEYWORD, KIND_NUMBER, KIND_STRING


class TestTokenize:
    def test_kinds_and_case_folding(self):
        tokens = tokenize("Select L_QUANTITY from lineitem where x <= 3.5")
        kinds = [t.kind for t in tokens]
        assert kinds[0] == KIND_KEYWORD and tokens[0].text == "SELECT"
        assert tokens[1].kind == KIND_IDENT and tokens[1].text == "l_quantity"
        assert kinds[-1] == KIND_EOF

    def test_number_value(self):
        (token,) = [t for t in tokenize("SELECT 3.5 FROM t") if t.kind == KIND_NUMBER]
        assert token.value == 3.5

    def test_string_value_strips_quotes(self):
        (token,) = [t for t in tokenize("DATE '1994-01-01'") if t.kind == KIND_STRING]
        assert token.value == "1994-01-01"

    def test_multichar_operators_lex_whole(self):
        ops = [t.text for t in tokenize("a <= b >= c <> d != e") if t.kind == "op"]
        assert ops == ["<=", ">=", "<>", "!="]

    def test_comments_are_skipped(self):
        tokens = tokenize("SELECT 1 -- trailing comment\nFROM t")
        assert [t.text for t in tokens if t.kind == KIND_KEYWORD] == ["SELECT", "FROM"]

    def test_positions_point_at_source(self):
        sql = "SELECT  l_quantity"
        token = tokenize(sql)[1]
        assert sql[token.pos:token.pos + len("l_quantity")] == "l_quantity"

    def test_unterminated_string(self):
        with pytest.raises(SqlError, match="unterminated string"):
            tokenize("SELECT 'oops FROM t")

    def test_unexpected_character_reports_line_and_column(self):
        with pytest.raises(SqlError, match="line 2, column 3") as info:
            tokenize("SELECT 1\nFR@M t")
        assert "@" in str(info.value)


class TestNormalizeSql:
    def test_whitespace_and_case_insensitive(self):
        a = normalize_sql("select   sum(l_quantity)\nFROM lineitem;")
        b = normalize_sql("SELECT SUM(L_QUANTITY) FROM LINEITEM")
        assert a == b

    def test_numbers_canonicalised(self):
        assert normalize_sql("SELECT 1 FROM t") == normalize_sql("SELECT 1.0 FROM t")

    def test_different_statements_stay_different(self):
        assert normalize_sql("SELECT a FROM t") != normalize_sql("SELECT b FROM t")
