"""Planner: schema validation, filter pushdown, join trees, rewrites."""

import pytest

from repro.sql import SqlError, plan_sql
from repro.sql import plan as ir
from repro.tpch.schema import GREEN_CATEGORY
from repro.tpch.sql import TPCH_SQL


class TestValidation:
    def test_unknown_table(self):
        with pytest.raises(SqlError, match="unknown table 'nope'"):
            plan_sql("SELECT a FROM nope")

    def test_unknown_column_with_position(self):
        with pytest.raises(SqlError, match="unknown column 'l_wrong'") as info:
            plan_sql("SELECT l_wrong FROM lineitem")
        assert info.value.column == len("SELECT ") + 1

    def test_qualified_unknown_column(self):
        with pytest.raises(SqlError, match="unknown column"):
            plan_sql("SELECT lineitem.o_orderkey FROM lineitem")

    def test_cross_join_rejected(self):
        with pytest.raises(SqlError, match="cross joins"):
            plan_sql("SELECT SUM(l_quantity) FROM lineitem, orders")

    def test_aggregate_not_allowed_in_where(self):
        with pytest.raises(SqlError, match="not allowed here"):
            plan_sql("SELECT l_quantity FROM lineitem WHERE SUM(l_quantity) > 3")

    def test_non_grouped_output_rejected(self):
        with pytest.raises(SqlError, match="GROUP BY"):
            plan_sql(
                "SELECT l_partkey, SUM(l_quantity) FROM lineitem "
                "GROUP BY l_returnflag"
            )

    def test_string_equality_rewrites_to_dictionary_code(self):
        # PR 9: string equality on dictionary-encoded columns becomes
        # the exact integer-code comparison instead of an error.
        plan = plan_sql(
            "SELECT SUM(l_quantity) FROM lineitem WHERE l_returnflag = 'A'"
        )
        predicate = plan.child.predicates[0]
        assert isinstance(predicate.right, ir.ConstExpr)
        assert predicate.right.value == 0  # RETURNFLAG_CODES["A"]

    def test_string_literal_without_dictionary_rejected(self):
        with pytest.raises(SqlError, match="no string dictionary"):
            plan_sql("SELECT l_quantity FROM lineitem WHERE l_shipdate = 'x'")

    def test_order_by_must_be_in_select_list(self):
        with pytest.raises(SqlError, match="ORDER BY"):
            plan_sql("SELECT l_partkey FROM lineitem ORDER BY l_quantity")

    def test_duplicate_from_table(self):
        with pytest.raises(SqlError, match="duplicate table"):
            plan_sql("SELECT l_quantity FROM lineitem, lineitem")


class TestPlanShapes:
    def test_filter_pushed_below_join(self):
        plan = plan_sql(
            "SELECT SUM(l_quantity) FROM lineitem, orders "
            "WHERE l_orderkey = o_orderkey AND o_totalprice < 1000"
        )
        join = plan.child
        assert isinstance(join, ir.Join)
        assert isinstance(join.right, ir.Filter)
        (pred,) = join.right.predicates
        assert pred.left.ref == ir.ColRef(table="orders", column="o_totalprice")

    def test_constant_comparison_normalised_column_left(self):
        plan = plan_sql("SELECT SUM(l_quantity) FROM lineitem WHERE 24 > l_quantity")
        (pred,) = plan.child.predicates
        assert isinstance(pred.left, ir.ColumnExpr)
        assert pred.op == "<"

    def test_like_rewrites_to_dictionary_code(self):
        plan = plan_sql(
            "SELECT SUM(p_retailprice) FROM part WHERE p_name LIKE '%green%'"
        )
        (pred,) = plan.child.predicates
        assert pred == ir.Compare(
            left=ir.ColumnExpr(ref=ir.ColRef(table="part", column="p_namecat")),
            op="=",
            right=ir.ConstExpr(value=float(GREEN_CATEGORY)),
        )

    def test_unsupported_like_pattern_rejected(self):
        with pytest.raises(SqlError, match="unsupported LIKE"):
            plan_sql("SELECT p_retailprice FROM part WHERE p_name LIKE '%red%'")

    def test_p_name_outside_like_rejected(self):
        with pytest.raises(SqlError, match="dictionary-encoded"):
            plan_sql("SELECT p_name FROM part")

    def test_c_name_resolves_through_functional_alias(self):
        plan = plan_sql("SELECT c_name, c_custkey FROM customer")
        outputs = plan.outputs
        assert outputs[0].name == "c_name"
        assert outputs[0].expr.ref == ir.ColRef(table="customer", column="c_custkey")

    def test_q9_join_tree_is_left_deep_and_connected(self):
        plan = plan_sql(TPCH_SQL["Q9"])
        derived = ir.strip_decorations(plan).child
        assert isinstance(derived, ir.SubqueryScan)
        node = derived.plan.child
        joins = 0
        while isinstance(node, ir.Join):
            joins += 1
            node = node.left
        assert joins == 5  # six tables, left-deep

    def test_q18_in_subquery_filter_sits_on_orders(self):
        plan = plan_sql(TPCH_SQL["Q18"])
        aggregate = ir.strip_decorations(plan)

        def find_filters(node):
            if isinstance(node, ir.Filter):
                yield node
                yield from find_filters(node.child)
            elif isinstance(node, ir.Join):
                yield from find_filters(node.left)
                yield from find_filters(node.right)

        (filter_node,) = list(find_filters(aggregate.child))
        (pred,) = filter_node.predicates
        assert isinstance(pred, ir.InSubquery)
        assert pred.expr.ref == ir.ColRef(table="orders", column="o_orderkey")

    def test_between_becomes_two_compares(self):
        plan = plan_sql(
            "SELECT SUM(l_quantity) FROM lineitem "
            "WHERE l_discount BETWEEN 0.05 AND 0.07"
        )
        ops = sorted(p.op for p in plan.child.predicates)
        assert ops == ["<=", ">="]

    def test_order_by_and_limit_wrap_plan(self):
        plan = plan_sql(
            "SELECT l_partkey, SUM(l_quantity) AS q FROM lineitem "
            "GROUP BY l_partkey ORDER BY q DESC LIMIT 5"
        )
        assert isinstance(plan, ir.Limit) and plan.count == 5
        assert isinstance(plan.child, ir.OrderBy)
        assert plan.child.keys == (("q", True),)

    def test_plans_are_hashable_and_equal(self):
        sql = "SELECT SUM(l_quantity) FROM lineitem"
        assert plan_sql(sql) == plan_sql(sql)
        assert hash(plan_sql(sql)) == hash(plan_sql(sql))
