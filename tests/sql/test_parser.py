"""Parser: AST shapes for the documented dialect + positioned errors."""

import pytest

from repro.sql import SqlError, parse
from repro.sql import ast
from repro.tpch.schema import DATE_1994_01_01, DATE_1998_12_01
from repro.tpch.sql import GROUPBY_SQL, JOIN_SQL, TPCH_SQL, projection_sql


class TestBasicShapes:
    def test_projection(self):
        select = parse(projection_sql(2))
        assert len(select.items) == 1
        func = select.items[0].expr
        assert isinstance(func, ast.Func) and func.name == "sum"
        assert select.tables == (ast.TableRef(name="lineitem"),)

    def test_where_and_chain_flattens(self):
        select = parse(
            "SELECT a FROM t WHERE a < 1 AND b < 2 AND c < 3"
        )
        assert isinstance(select.where, ast.Logical)
        assert select.where.op == "AND"
        assert len(select.where.terms) == 3

    def test_group_by_order_by_limit(self):
        select = parse(
            "SELECT a, SUM(b) FROM t GROUP BY a ORDER BY a DESC LIMIT 10"
        )
        assert select.group_by == (ast.Column(name="a"),)
        assert select.order_by[0].descending is True
        assert select.limit == 10

    def test_date_literal_folds_to_epoch_days(self):
        select = parse("SELECT a FROM t WHERE d >= DATE '1994-01-01'")
        assert select.where.right == ast.DateLit(days=DATE_1994_01_01)

    def test_date_minus_interval(self):
        select = parse(
            "SELECT a FROM t WHERE d <= DATE '1998-12-01' - INTERVAL '90' DAY"
        )
        binary = select.where.right
        assert binary == ast.Binary(
            op="-",
            left=ast.DateLit(days=DATE_1998_12_01),
            right=ast.IntervalLit(days=90),
        )

    def test_between(self):
        select = parse("SELECT a FROM t WHERE b BETWEEN 0.05 AND 0.07")
        assert isinstance(select.where, ast.Between)

    def test_count_star(self):
        select = parse("SELECT COUNT(*) FROM t")
        assert select.items[0].expr == ast.Func(name="count", args=(), star=True)

    def test_star_only_valid_for_count(self):
        with pytest.raises(SqlError, match=r"SUM\(\*\)"):
            parse("SELECT SUM(*) FROM t")

    def test_in_subquery_and_having(self):
        select = parse(TPCH_SQL["Q18"])
        in_pred = select.where.terms[0]
        assert isinstance(in_pred, ast.InSelect)
        assert in_pred.select.having is not None

    def test_derived_table_and_extract(self):
        select = parse(TPCH_SQL["Q9"])
        derived = select.tables[0]
        assert isinstance(derived, ast.DerivedTable)
        assert derived.alias == "profit"
        o_year = derived.select.items[1].expr
        assert isinstance(o_year, ast.ExtractYear)

    def test_like(self):
        select = parse("SELECT a FROM part WHERE p_name LIKE '%green%'")
        assert select.where == ast.Like(
            arg=ast.Column(name="p_name"), pattern="%green%"
        )

    def test_documented_sql_all_parses(self):
        for sql in (*TPCH_SQL.values(), *JOIN_SQL.values(), GROUPBY_SQL):
            assert isinstance(parse(sql), ast.Select)


class TestErrors:
    def test_empty_statement(self):
        with pytest.raises(SqlError, match="empty statement"):
            parse("   ")

    def test_missing_from_points_at_position(self):
        with pytest.raises(SqlError, match="expected FROM") as info:
            parse("SELECT a, b WHERE x = 1")
        error = info.value
        assert error.line == 1
        assert error.column == len("SELECT a, b ") + 1
        assert "^" in str(error)

    def test_trailing_garbage(self):
        with pytest.raises(SqlError, match="expected end of statement"):
            parse("SELECT a FROM t GARBAGE AND MORE")

    def test_malformed_date(self):
        with pytest.raises(SqlError, match="malformed date"):
            parse("SELECT a FROM t WHERE d < DATE 'not-a-date'")

    def test_interval_unit_must_be_day(self):
        with pytest.raises(SqlError, match="DAY"):
            parse("SELECT a FROM t WHERE d < DATE '1994-01-01' - INTERVAL '3' MONTH")

    def test_non_integer_limit(self):
        with pytest.raises(SqlError, match="integer LIMIT"):
            parse("SELECT a FROM t LIMIT 2.5")

    def test_like_needs_string_pattern(self):
        with pytest.raises(SqlError, match="pattern"):
            parse("SELECT a FROM t WHERE a LIKE 5")

    def test_unclosed_parenthesis(self):
        with pytest.raises(SqlError, match=r"expected '\)'"):
            parse("SELECT SUM(a FROM t")

    def test_multiline_error_shows_offending_line(self):
        sql = "SELECT a\nFROM t\nWHERE >"
        with pytest.raises(SqlError, match="line 3") as info:
            parse(sql)
        assert "WHERE >" in str(info.value)
