"""Tests for the engine execution cache (:mod:`repro.core.execcache`)."""

import numpy as np
import pytest

from repro.core.execcache import EXECUTION_CACHE, cache_enabled
from repro.core.profiler import MicroArchProfiler
from repro.engines import TectorwiseEngine, TyperEngine
from repro.tpch.dbgen import generate_database


@pytest.fixture(autouse=True)
def fresh_cache():
    EXECUTION_CACHE.clear()
    yield
    EXECUTION_CACHE.clear()


@pytest.fixture(scope="module")
def db(db_factory):
    return db_factory(0.004, seed=19)


class TestMemoization:
    def test_second_run_is_served_from_cache(self, db):
        engine = TyperEngine()
        first = engine.run_projection(db, 2)
        assert "cached" not in first.details
        second = engine.run_projection(db, 2)
        assert second.details.get("cached") is True
        assert second.value == first.value
        assert second.tuples == first.tuples
        assert EXECUTION_CACHE.hits == 1

    def test_cache_discriminates_engines_and_args(self, db):
        TyperEngine().run_projection(db, 2)
        TectorwiseEngine().run_projection(db, 2)
        TyperEngine().run_projection(db, 3)
        TyperEngine().run_q6(db)
        assert EXECUTION_CACHE.hits == 0
        assert len(EXECUTION_CACHE) == 4

    def test_positional_and_keyword_calls_share_an_entry(self, db):
        engine = TyperEngine()
        engine.run_projection(db, 2)
        result = engine.run_projection(db, degree=2)
        assert result.details.get("cached") is True

    def test_distinct_databases_do_not_alias(self):
        a = generate_database(0.004, seed=101)
        b = generate_database(0.004, seed=102)
        engine = TyperEngine()
        result_a = engine.run_projection(a, 2)
        result_b = engine.run_projection(b, 2)
        assert EXECUTION_CACHE.hits == 0
        assert result_a.value != result_b.value

    def test_callers_cannot_poison_the_cache(self, db):
        engine = TyperEngine()
        first = engine.run_projection(db, 2)
        true_value = first.value
        first.value = -1.0
        first.work.instructions = -5.0
        second = engine.run_projection(db, 2)
        assert second.value == true_value
        assert second.work.instructions >= 0

    def test_cached_entries_are_isolated_between_hits(self, db):
        engine = TyperEngine()
        engine.run_projection(db, 2)
        hit_one = engine.run_projection(db, 2)
        hit_one.work.instructions = -7.0
        hit_two = engine.run_projection(db, 2)
        assert hit_two.work.instructions >= 0
        assert hit_one.work is not hit_two.work

    def test_operator_profiles_are_snapshotted(self, db):
        engine = TyperEngine()
        first = engine.run_join(db, "small")
        operators = first.operator_work
        if not operators:
            pytest.skip("engine records no operator profiles for joins")
        name, profile = next(iter(operators.items()))
        original = profile.instructions
        profile.instructions = -3.0
        second = engine.run_join(db, "small")
        assert second.operator_work[name].instructions == original

    def test_disable_env(self, db, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_CACHE", "0")
        assert not cache_enabled()
        engine = TyperEngine()
        engine.run_projection(db, 2)
        result = engine.run_projection(db, 2)
        assert "cached" not in result.details
        assert len(EXECUTION_CACHE) == 0

    def test_third_party_subclasses_bypass_the_cache(self, db):
        class PatchedTyper(TyperEngine):
            def run_projection(self, db, degree, simd=False):
                result = super().run_projection(db, degree, simd=simd)
                result.value = float(result.value) * 2.0
                return result

        engine = PatchedTyper()
        doubled = engine.run_projection(db, 2)
        honest = TyperEngine().run_projection(db, 2)
        # The subclass's mutation must not leak into the first-party
        # entry, and the subclass itself must never be served a hit.
        assert doubled.value == pytest.approx(2.0 * honest.value)
        again = engine.run_projection(db, 2)
        assert again.value == pytest.approx(doubled.value)
        assert "cached" not in again.details

    def test_mutated_database_misses(self, db):
        from repro.storage import ColumnTable

        engine = TyperEngine()
        engine.run_projection(db, 2)
        db.add_table(ColumnTable("scratch", {"x": np.arange(3)}))
        try:
            engine.run_projection(db, 2)
            assert EXECUTION_CACHE.hits == 0
        finally:
            db._tables.pop("scratch")


class TestModeKeys:
    """The cache key discriminates the storage-encoding, pruning and
    rollup-routing modes: a result computed under one mode must never
    serve another (the modes change details like compressed byte
    accounting and routing decisions)."""

    def test_encoding_flip_misses(self, db, monkeypatch):
        engine = TyperEngine()
        engine.run_projection(db, 2)
        monkeypatch.setenv("REPRO_ENCODING", "0")
        engine.run_projection(db, 2)
        assert EXECUTION_CACHE.hits == 0
        assert len(EXECUTION_CACHE) == 2

    def test_pruning_flip_misses(self, db, monkeypatch):
        engine = TyperEngine()
        engine.run_q6(db)
        monkeypatch.setenv("REPRO_PRUNING", "0")
        engine.run_q6(db)
        assert EXECUTION_CACHE.hits == 0
        assert len(EXECUTION_CACHE) == 2

    def test_rollup_flip_misses(self, db, monkeypatch):
        engine = TyperEngine()
        engine.run_groupby(db)
        monkeypatch.setenv("REPRO_ROLLUPS", "0")
        engine.run_groupby(db)
        assert EXECUTION_CACHE.hits == 0
        assert len(EXECUTION_CACHE) == 2

    def test_encoded_agg_flip_misses(self, db, monkeypatch):
        engine = TyperEngine()
        engine.run_q1(db)
        monkeypatch.setenv("REPRO_ENCODED_AGG", "0")
        engine.run_q1(db)
        assert EXECUTION_CACHE.hits == 0
        assert len(EXECUTION_CACHE) == 2

    def test_same_modes_still_hit(self, db, monkeypatch):
        monkeypatch.setenv("REPRO_ENCODING", "0")
        monkeypatch.setenv("REPRO_ENCODED_AGG", "0")
        monkeypatch.setenv("REPRO_PRUNING", "0")
        monkeypatch.setenv("REPRO_ROLLUPS", "0")
        engine = TyperEngine()
        engine.run_projection(db, 2)
        result = engine.run_projection(db, 2)
        assert result.details.get("cached") is True


class TestProfilerIntegration:
    def test_profile_reports_mark_cached_runs(self, db):
        profiler = MicroArchProfiler()
        engine = TyperEngine()
        fresh = profiler.run(engine, "run_projection", db, 2)
        assert fresh.cached is False
        served = profiler.run(engine, "run_projection", db, 2)
        assert served.cached is True
        assert served.cycles == pytest.approx(fresh.cycles)

    def test_as_row_carries_the_flag(self, db):
        profiler = MicroArchProfiler()
        engine = TyperEngine()
        profiler.run(engine, "run_q1", db)
        row = profiler.run(engine, "run_q1", db).as_row()
        assert row["cached"] is True

    def test_multicore_carries_the_flag(self, db):
        from repro.core.multicore import MulticoreModel

        profiler = MicroArchProfiler()
        model = MulticoreModel(profiler)
        engine = TyperEngine()
        engine.run_q6(db)
        run = model.run(engine, engine.run_q6(db), threads=2)
        assert run.per_thread.cached is True
