"""Multi-core model tests (Section 10 mechanisms)."""

import pytest

from repro.core import MicroArchProfiler, MulticoreModel
from repro.engines import TectorwiseEngine, TyperEngine


@pytest.fixture(scope="module")
def model():
    return MulticoreModel(MicroArchProfiler())


@pytest.fixture(scope="module")
def projection_result(small_db):
    return TyperEngine().run_projection(small_db, 4)


@pytest.fixture(scope="module")
def join_result(big_db):
    """SF 1.0: the hash table exceeds the L3 (the paper's regime)."""
    return TyperEngine().run_join(big_db, "large")


class TestRun:
    def test_response_time_shrinks_with_threads(self, model, projection_result):
        one = model.run("Typer", projection_result, 1)
        four = model.run("Typer", projection_result, 4)
        assert four.response_time_ms < one.response_time_ms

    def test_speedup_bounded_by_thread_count(self, model, projection_result):
        speedups = model.speedup_curve("Typer", projection_result, (1, 4, 8, 14))
        for threads, speedup in speedups.items():
            assert speedup <= threads + 1e-6
        assert speedups[4] > 2.0  # reasonably parallel

    def test_thread_limit_is_one_socket(self, model, projection_result):
        with pytest.raises(ValueError):
            model.run("Typer", projection_result, 15)
        with pytest.raises(ValueError):
            model.run("Typer", projection_result, 0)

    def test_per_thread_report_carries_thread_count(self, model, projection_result):
        run = model.run("Typer", projection_result, 8)
        assert run.per_thread.threads == 8

    def test_accepts_engine_instance(self, model, projection_result):
        run = model.run(TyperEngine(), projection_result, 2)
        assert run.per_thread.engine == "Typer"


class TestBandwidthCurves:
    def test_curve_monotone_nondecreasing(self, model, projection_result):
        curve = model.bandwidth_curve("Typer", projection_result)
        values = [curve[t] for t in sorted(curve)]
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))

    def test_projection_saturates_socket(self, model, projection_result):
        curve = model.bandwidth_curve("Typer", projection_result)
        assert curve[14] == pytest.approx(66.0)

    def test_join_does_not_saturate(self, model, join_result):
        curve = model.bandwidth_curve("Typer", join_result)
        assert curve[14] < 0.95 * 60.0

    def test_saturation_point_helper(self, model):
        assert MulticoreModel.saturation_point({1: 5, 8: 60, 14: 66}, 66.0) == 8
        assert MulticoreModel.saturation_point({1: 5, 14: 30}, 66.0) is None

    def test_hyper_threading_raises_bandwidth(self, model, join_result):
        plain = model.bandwidth_curve("Typer", join_result, (14,))
        boosted = model.bandwidth_curve("Typer", join_result, (14,), hyper_threading=True)
        assert boosted[14] > plain[14]


class TestBreakdownStability:
    def test_multicore_breakdown_tracks_single_core(self, model, paper_db):
        """Figures 27/28: the per-thread composition is close to the
        single-core one (the paper observes no significant change)."""
        for engine in (TyperEngine(), TectorwiseEngine()):
            result = engine.run_tpch(paper_db, "Q9")
            solo = model.run(engine, result, 1).per_thread
            crowd = model.run(engine, result, 14).per_thread
            assert crowd.stall_ratio == pytest.approx(solo.stall_ratio, abs=0.2)
            assert crowd.breakdown.dominant_stall() == solo.breakdown.dominant_stall()
