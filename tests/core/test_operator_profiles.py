"""Per-operator profiling tests (Section 6: operator behaviour
predicts query behaviour)."""

import pytest

from repro.core import MicroArchProfiler
from repro.engines import TyperEngine
from repro.engines.base import OperatorWork


@pytest.fixture(scope="module")
def q9_result(small_db):
    return TyperEngine().run_q9(small_db)


@pytest.fixture(scope="module")
def join_result(small_db):
    return TyperEngine().run_join(small_db, "large")


class TestOperatorWork:
    def test_operator_profiles_named_and_reused(self):
        operators = OperatorWork(TyperEngine())
        first = operators.operator("scan")
        again = operators.operator("scan")
        assert first is again
        assert first.label == "scan"

    def test_total_merges_linear_quantities(self):
        operators = OperatorWork(TyperEngine())
        operators.operator("a").record_work(instructions=100, alu=10)
        operators.operator("b").record_work(instructions=50, stores=5)
        operators.operator("b").record_sequential_read(640)
        total = operators.total()
        assert total.instructions == 150
        assert total.alu_ops == 10
        assert total.store_ops == 5
        assert total.seq_read_bytes == 640


class TestRecordedOperators:
    def test_join_records_three_operators(self, join_result):
        assert list(join_result.operator_work) == [
            "hash build", "hash probe", "aggregate",
        ]

    def test_q9_records_the_plan_pipeline(self, q9_result):
        names = list(q9_result.operator_work)
        assert "scan lineitem" in names
        assert "probe orders" in names
        assert "aggregate" in names
        assert len(names) == 7

    def test_operator_work_sums_to_query_work(self, q9_result):
        total = sum(p.instructions for p in q9_result.operator_work.values())
        assert total == pytest.approx(q9_result.work.instructions)
        total_bytes = sum(p.seq_bytes for p in q9_result.operator_work.values())
        assert total_bytes == pytest.approx(q9_result.work.seq_bytes)

    def test_projection_records_no_operators(self, small_db):
        result = TyperEngine().run_projection(small_db, 2)
        assert result.operator_work == {}


class TestOperatorReports:
    @pytest.fixture(scope="class")
    def reports(self, q9_result):
        return MicroArchProfiler().operator_reports(TyperEngine(), q9_result)

    def test_reports_cover_all_operators(self, reports, q9_result):
        assert set(reports) == set(q9_result.operator_work)

    def test_workload_labels_are_scoped(self, reports):
        assert reports["probe orders"].workload == "Q9/probe orders"

    def test_scan_operator_is_bandwidth_streaming(self, reports):
        scan = reports["scan lineitem"]
        assert scan.bandwidth.access_pattern == "sequential"
        assert scan.breakdown.dominant_stall() == "dcache"

    def test_probe_operators_behave_like_the_join_micro(self, reports, small_db):
        """The Section 6 point: the join-like operators inside Q9 show
        the join micro-benchmark's profile."""
        profiler = MicroArchProfiler()
        engine = TyperEngine()
        join = profiler.profile(engine, engine.run_join(small_db, "large"))
        probe = reports["probe orders"]
        assert probe.breakdown.dominant_stall() == join.breakdown.dominant_stall()

    def test_missing_operators_raise(self, small_db):
        profiler = MicroArchProfiler()
        result = TyperEngine().run_projection(small_db, 2)
        with pytest.raises(ValueError, match="no per-operator"):
            profiler.operator_reports(TyperEngine(), result)
