"""ExactSum: error-free, partition-invariant summation of doubles."""

from __future__ import annotations

import math
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exactsum import ExactSum

finite_doubles = st.floats(
    allow_nan=False, allow_infinity=False, allow_subnormal=True, width=64
)


class TestExactness:
    def test_matches_math_fsum(self):
        rng = np.random.default_rng(3)
        values = rng.normal(scale=1e6, size=10_000) * rng.choice(
            [1e-9, 1.0, 1e9], size=10_000
        )
        assert ExactSum.of_array(values).total() == math.fsum(values)

    def test_cancellation_survives(self):
        """The classic float-accumulation failure: huge terms that
        cancel must leave the small term intact."""
        assert ExactSum.of(1e300, 1.0, -1e300).total() == 1.0

    def test_subnormals_sum_exactly(self):
        tiny = 5e-324  # the subnormal quantum itself
        assert ExactSum.of(*([tiny] * 7)).total() == 7 * tiny

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError, match="non-finite"):
            ExactSum.of(float("inf"))
        with pytest.raises(ValueError, match="non-finite"):
            ExactSum.of_array(np.array([1.0, float("nan")]))

    @given(st.lists(finite_doubles, max_size=50))
    @settings(max_examples=200, deadline=None)
    def test_total_is_correctly_rounded(self, values):
        try:
            expected = math.fsum(values)
        except OverflowError:
            # fsum raises on any intermediate overflow, even when the
            # exact sum still rounds to +/-MAX_DOUBLE; recover the
            # correctly rounded value from the exact integer units
            # (int/int division is correctly rounded and raises only
            # when the true quotient rounds past the double range).
            units = sum(ExactSum.of(v).units for v in values)
            try:
                expected = units / 2**1074
            except OverflowError:
                expected = math.inf if units > 0 else -math.inf
        assert ExactSum.of(*values).total() == expected


class TestPartitionInvariance:
    @given(st.lists(finite_doubles, min_size=1, max_size=40), st.data())
    @settings(max_examples=200, deadline=None)
    def test_any_split_merges_to_the_same_bits(self, values, data):
        cut = data.draw(st.integers(0, len(values)))
        whole = ExactSum.of(*values)
        merged = ExactSum.of(*values[:cut]) + ExactSum.of(*values[cut:])
        assert merged == whole
        assert merged.total() == whole.total()

    def test_merge_is_associative_and_commutative(self):
        a, b, c = (ExactSum.of(x) for x in (1e16, 1.0, -1e16))
        assert (a + b) + c == a + (b + c) == (c + a) + b

    def test_array_and_scalar_paths_agree(self):
        values = [0.1, 0.2, 0.3, -7.5e200, 7.5e200, 5e-324]
        assert ExactSum.of(*values) == ExactSum.of_array(np.array(values))

    def test_add_array_accumulates_in_place(self):
        acc = ExactSum()
        acc.add_array(np.array([1.5, 2.5]))
        acc.add_array(np.array([-4.0]))
        assert acc == ExactSum.of(1.5, 2.5, -4.0)
        assert acc.total() == 0.0

    @given(st.lists(finite_doubles, min_size=1, max_size=48), st.data())
    @settings(max_examples=150, deadline=None)
    def test_nested_partitions_merge_to_the_same_bits(self, values, data):
        """The scatter-gather shape: rows cut into shards, each shard
        cut into morsels, partials merged bottom-up.  Any nesting of
        cuts must reproduce the flat sum's exact units."""
        n_cuts = data.draw(st.integers(0, 4))
        bounds = sorted(
            {0, len(values), *(data.draw(st.integers(0, len(values))) for _ in range(n_cuts))}
        )
        total = ExactSum()
        for lo, hi in zip(bounds, bounds[1:]):
            inner_cut = data.draw(st.integers(lo, hi))
            total += ExactSum.of(*values[lo:inner_cut]) + ExactSum.of(
                *values[inner_cut:hi]
            )
        assert total == ExactSum.of(*values)
        assert total.total() == ExactSum.of(*values).total()


class TestTransport:
    def test_pickles_to_the_same_state(self):
        original = ExactSum.of(0.1, 0.2, 1e-300)
        clone = pickle.loads(pickle.dumps(original))
        assert clone == original
        assert clone.total() == original.total()

    def test_empty_sum_is_zero(self):
        assert ExactSum().total() == 0.0
        assert ExactSum.of_array(np.array([])).total() == 0.0
