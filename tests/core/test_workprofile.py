"""WorkProfile recording/merging/scaling tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import WorkProfile


class TestRecording:
    def test_record_work_accumulates(self):
        work = WorkProfile()
        work.record_work(instructions=10, alu=4, loads=2, stores=1, simd=3, hash_ops=2, chain=1)
        work.record_work(instructions=5)
        assert work.instructions == 15
        assert work.alu_ops == 4
        assert work.chain_ops == 1

    def test_record_work_rejects_negative(self):
        with pytest.raises(ValueError):
            WorkProfile().record_work(instructions=-1)

    def test_sequential_traffic(self):
        work = WorkProfile()
        work.record_sequential_read(100)
        work.record_sequential_write(50)
        assert work.seq_bytes == 150
        assert work.streamed_bytes == 150

    def test_sparse_scans_counted_in_streamed(self):
        work = WorkProfile()
        work.record_sparse_scan("gather", 64.0, 0.5)
        assert work.sparse_bytes == 64.0
        assert work.streamed_bytes == 64.0

    def test_sparse_scan_validation(self):
        with pytest.raises(ValueError):
            WorkProfile().record_sparse_scan("g", 10.0, 0.0)
        with pytest.raises(ValueError):
            WorkProfile().record_sparse_scan("g", -1.0, 0.5)

    def test_cached_traffic_events(self):
        work = WorkProfile()
        work.record_cached_traffic(read=80, write=80)
        assert work.cached_access_events == pytest.approx(20.0)
        work.record_cached_traffic(read=320, write=320, access_bytes=64)
        assert work.cached_access_events == pytest.approx(30.0)

    def test_random_pattern_counting(self):
        work = WorkProfile()
        work.record_random("probe", 100, 1 << 20)
        work.record_random("walk", 50, 1 << 20, dependent=True)
        assert work.random_access_count == 150
        assert work.random_bytes == 150 * 64

    def test_branch_outcomes_measured(self):
        work = WorkProfile()
        work.record_branch_outcomes("pred", np.array([True, False, True, True]))
        (stream,) = work.branch_streams
        assert stream.count == 4
        assert stream.taken_fraction == pytest.approx(0.75)

    def test_branch_stream_validation(self):
        with pytest.raises(ValueError):
            WorkProfile().record_branch_stream("b", 10, 1.5)
        with pytest.raises(ValueError):
            WorkProfile().record_branch_stream("b", 10, 0.5, mispredict_rate=2.0)

    def test_instructions_per_tuple(self):
        work = WorkProfile(tuples=10)
        work.record_work(instructions=100)
        assert work.instructions_per_tuple() == 10.0
        assert WorkProfile().instructions_per_tuple() == 0.0

    def test_ops_view(self):
        work = WorkProfile()
        work.record_work(alu=4, loads=2, stores=1, simd=8, hash_ops=3)
        ops = work.ops
        assert ops.alu_ops == 4
        assert ops.simd_ops == 8
        assert ops.hash_ops == 3


class TestMerge:
    def test_merge_accumulates_everything(self):
        a = WorkProfile(tuples=10)
        a.record_work(instructions=10, stores=2)
        a.record_sequential_read(100)
        b = WorkProfile(tuples=5)
        b.record_work(instructions=20)
        b.record_random("probe", 7, 1 << 22)
        b.record_branch_stream("x", 3, 0.5)
        a.merge(b)
        assert a.tuples == 15
        assert a.instructions == 30
        assert len(a.random_patterns) == 1
        assert len(a.branch_streams) == 1

    def test_merge_takes_min_ilp(self):
        a = WorkProfile(effective_ilp=3.5)
        b = WorkProfile(effective_ilp=2.0)
        a.merge(b)
        assert a.effective_ilp == 2.0

    def test_merge_takes_max_footprint(self):
        a = WorkProfile(code_footprint_bytes=1000)
        b = WorkProfile(code_footprint_bytes=9000)
        a.merge(b)
        assert a.code_footprint_bytes == 9000


class TestScaled:
    def test_volume_quantities_scale(self):
        work = WorkProfile(tuples=100)
        work.record_work(instructions=1000, alu=10, chain=4)
        work.record_sequential_read(800)
        work.record_random("probe", 60, 1 << 22)
        work.record_sparse_scan("g", 64, 0.5)
        work.record_branch_stream("b", 100, 0.3)
        half = work.scaled(0.5)
        assert half.instructions == 500
        assert half.seq_read_bytes == 400
        assert half.random_patterns[0].count == 30
        assert half.sparse_scans[0].bytes_touched == 32
        assert half.branch_streams[0].count == 50

    def test_intensive_quantities_preserved(self):
        work = WorkProfile(code_footprint_bytes=5000, effective_ilp=2.5)
        work.record_random("probe", 60, 1 << 22, dependent=True, mlp_hint=10.0)
        work.record_branch_stream("b", 100, 0.3, mispredict_rate=0.1)
        half = work.scaled(0.5)
        assert half.code_footprint_bytes == 5000
        assert half.effective_ilp == 2.5
        assert half.random_patterns[0].working_set_bytes == 1 << 22
        assert half.random_patterns[0].dependent
        assert half.random_patterns[0].mlp_hint == 10.0
        assert half.branch_streams[0].taken_fraction == 0.3
        assert half.branch_streams[0].mispredict_rate == 0.1

    def test_scaled_rejects_negative(self):
        with pytest.raises(ValueError):
            WorkProfile().scaled(-0.1)


@settings(max_examples=50, deadline=None)
@given(
    instructions=st.floats(min_value=0, max_value=1e9),
    factor=st.floats(min_value=0.0, max_value=16.0),
)
def test_property_scaling_linear_in_instructions(instructions, factor):
    work = WorkProfile()
    work.record_work(instructions=instructions)
    assert work.scaled(factor).instructions == pytest.approx(instructions * factor)
