"""Prune plans (:mod:`repro.core.pruning`): atom extraction, the
first-false chunk rule, plan tiling, and virtual-row translation.

The end-to-end bit-identity of pruned execution is pinned by
:mod:`tests.engines.test_pruning_equivalence`; this module checks the
planning layer in isolation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import pruning
from repro.core.pruning import PredicateAtom, compute_prune_plan, translate_claim
from repro.sql.api import compile_sql
from repro.storage import ColumnTable, Database
from repro.storage.encoding import compare_values, encode_columns
from repro.storage.zonemap import CHUNK_ROWS
from repro.tpch.sql import GROUPBY_SQL, TPCH_SQL, projection_sql, selection_sql


def sorted_twin(db, order_by: str = "l_shipdate") -> Database:
    """``db`` with lineitem stably sorted by ``order_by`` and re-encoded
    (a fresh identity, so no cache can alias the original)."""
    twin = Database(name=f"{db.name}-sorted", scale_factor=db.scale_factor)
    for table_name in db.table_names:
        table = db.table(table_name)
        columns = {c: np.asarray(table[c]) for c in table.column_names}
        if table_name == "lineitem":
            order = np.argsort(columns[order_by], kind="stable")
            columns = {c: values[order] for c, values in columns.items()}
        twin.add_table(ColumnTable(table_name, encode_columns(columns)))
    return twin


@pytest.fixture(scope="module")
def sorted_db(small_db):
    return sorted_twin(small_db)


# ----------------------------------------------------------------------
# Atom extraction
# ----------------------------------------------------------------------
class TestAtoms:
    """The plan-derived summary must equal the canonical per-method one:
    both describe the same predicate_mask calls in the same order."""

    @pytest.mark.parametrize("query_id,method", [("Q6", "run_q6"),
                                                 ("Q1", "run_q1")])
    def test_tpch_plan_atoms_match_canonical(self, tiny_db, query_id, method):
        bound = compile_sql(TPCH_SQL[query_id])
        canonical = pruning.atoms_for(tiny_db, method, {})
        assert bound.atoms == canonical
        assert canonical  # both TPC-H scans are prunable

    def test_q6_atom_order_is_engine_evaluation_order(self, tiny_db):
        columns = [atom.column for atom in
                   pruning.atoms_for(tiny_db, "run_q6", {})]
        assert columns == ["l_shipdate", "l_shipdate", "l_discount",
                           "l_discount", "l_quantity"]

    def test_selection_plan_atoms_match_canonical(self, tiny_db):
        bound = compile_sql(selection_sql(0.1, tiny_db))
        assert bound.method == "run_selection"
        canonical = pruning.atoms_for(
            tiny_db, "run_selection", bound.call_kwargs())
        assert bound.atoms == canonical
        assert all(atom.op == "le" for atom in canonical)

    def test_unfiltered_plans_have_no_atoms(self):
        assert compile_sql(projection_sql(3)).atoms == ()
        assert compile_sql(GROUPBY_SQL).atoms == ()

    def test_unprunable_methods_have_no_atoms(self, tiny_db):
        assert pruning.atoms_for(tiny_db, "run_projection", {"degree": 2}) == ()
        assert pruning.atoms_for(tiny_db, "run_join", {"size": "small"}) == ()
        assert pruning.atoms_for(tiny_db, "run_groupby", {}) == ()

    def test_invalid_selection_parameters_yield_no_atoms(self, tiny_db):
        atoms = pruning.atoms_for(
            tiny_db, "run_selection", {"selectivity": -0.5, "thresholds": None}
        )
        assert atoms == ()


class TestToggle:
    def test_disable_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PRUNING", "0")
        assert not pruning.pruning_enabled()

    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_PRUNING", raising=False)
        assert pruning.pruning_enabled()


# ----------------------------------------------------------------------
# Plan structure
# ----------------------------------------------------------------------
class TestPrunePlan:
    @pytest.fixture(scope="class")
    def plan(self, sorted_db):
        atoms = pruning.atoms_for(sorted_db, "run_q6", {})
        plan = compute_prune_plan(sorted_db, atoms)
        assert plan is not None and plan.chunks_pruned > 0
        return plan

    def test_segments_and_runs_tile_the_table(self, plan, sorted_db):
        ranges = sorted(
            list(plan.kept_segments) + [(lo, hi) for lo, hi, _ in plan.pruned_runs]
        )
        assert ranges[0][0] == 0
        assert ranges[-1][1] == plan.n_rows == sorted_db.table("lineitem").n_rows
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi == lo
        for lo, hi in ranges:
            assert lo % CHUNK_ROWS == 0
            assert hi % CHUNK_ROWS == 0 or hi == plan.n_rows

    def test_chunk_counts_are_consistent(self, plan):
        assert plan.chunks_total == -(-plan.n_rows // CHUNK_ROWS)
        pruned = sum(
            -(-(min(hi, plan.n_rows) - lo) // CHUNK_ROWS)
            for lo, hi, _ in plan.pruned_runs
        )
        assert plan.chunks_pruned == pruned
        assert plan.kept_rows + plan.rows_pruned == plan.n_rows

    def test_first_false_rule_is_a_theorem(self, plan, sorted_db):
        """On every pruned run the prefix atoms hold for *all* rows and
        the first-false atom for *none* -- checked against the data."""
        table = sorted_db.table("lineitem")
        values = {
            atom.column: np.asarray(table[atom.column]) for atom in plan.atoms
        }
        for lo, hi, j in plan.pruned_runs:
            for index, atom in enumerate(plan.atoms[: j + 1]):
                mask = compare_values(
                    values[atom.column][lo:hi], atom.op, atom.threshold)
                if index < j:
                    assert mask.all(), (lo, hi, index)
                else:
                    assert not mask.any(), (lo, hi, j)

    def test_no_qualifying_row_is_pruned(self, plan, sorted_db):
        table = sorted_db.table("lineitem")
        full = np.ones(plan.n_rows, dtype=bool)
        for atom in plan.atoms:
            full &= compare_values(
                np.asarray(table[atom.column]), atom.op, atom.threshold)
        kept = np.zeros(plan.n_rows, dtype=bool)
        for lo, hi in plan.kept_segments:
            kept[lo:hi] = True
        assert not (full & ~kept).any()

    def test_summary_counts_method_bytes(self, plan, sorted_db):
        summary = plan.summary(sorted_db, "run_q6")
        assert summary["morsels_pruned"] == plan.chunks_pruned
        assert summary["morsels_scanned"] == plan.chunks_total - plan.chunks_pruned
        table = sorted_db.table("lineitem")
        itemsize = sum(
            table.column(name).itemsize
            for name in pruning.METHOD_SCAN_COLUMNS["run_q6"]
        )
        assert summary["bytes_pruned"] == plan.rows_pruned * itemsize

    def test_no_atoms_yields_no_plan(self, sorted_db):
        assert compute_prune_plan(sorted_db, ()) is None

    def test_tautology_prunes_nothing(self, sorted_db):
        plan = compute_prune_plan(
            sorted_db, (PredicateAtom("l_quantity", "ge", -1.0),))
        assert plan is not None and plan.nothing_pruned
        assert plan.kept_rows == plan.n_rows

    def test_contradiction_prunes_everything(self, sorted_db):
        shipdate = np.asarray(sorted_db.table("lineitem")["l_shipdate"])
        plan = compute_prune_plan(
            sorted_db,
            (PredicateAtom("l_shipdate", "lt", float(shipdate.min()) - 1.0),),
        )
        assert plan is not None
        assert plan.kept_rows == 0
        assert plan.rows_pruned == plan.n_rows
        assert plan.pruned_runs == ((0, plan.n_rows, 0),)

    def test_shuffled_data_prunes_nothing(self, small_db):
        """The generated (shuffled) database has full-range chunks: the
        honest no-win case the benchmark also records."""
        atoms = pruning.atoms_for(small_db, "run_q6", {})
        plan = compute_prune_plan(small_db, atoms)
        assert plan is not None and plan.nothing_pruned


# ----------------------------------------------------------------------
# Virtual-row translation
# ----------------------------------------------------------------------
class TestTranslation:
    SEGMENTS = ((0, 128), (256, 640), (1024, 1025))

    def test_kept_offsets_are_prefix_sums(self):
        assert pruning.kept_offsets(self.SEGMENTS) == [0, 128, 512]

    def test_claims_tile_back_to_segments(self):
        offsets = pruning.kept_offsets(self.SEGMENTS)
        total = sum(hi - lo for lo, hi in self.SEGMENTS)
        for claim_rows in (1, 64, 100, 512, total):
            pieces = []
            for vlo in range(0, total, claim_rows):
                pieces += translate_claim(
                    self.SEGMENTS, offsets, vlo, min(vlo + claim_rows, total))
            # The translated pieces tile the kept segments exactly.
            merged = []
            for lo, hi in pieces:
                assert lo < hi
                if merged and merged[-1][1] == lo:
                    merged[-1] = (merged[-1][0], hi)
                else:
                    merged.append((lo, hi))
            assert tuple(merged) == self.SEGMENTS, claim_rows

    def test_claim_spanning_a_boundary_splits(self):
        offsets = pruning.kept_offsets(self.SEGMENTS)
        assert translate_claim(self.SEGMENTS, offsets, 64, 192) == [
            (64, 128), (256, 320)
        ]

    def test_full_claim_covers_everything(self):
        offsets = pruning.kept_offsets(self.SEGMENTS)
        pieces = translate_claim(self.SEGMENTS, offsets, 0, 513)
        assert pieces == [(0, 128), (256, 640), (1024, 1025)]
