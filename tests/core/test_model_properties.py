"""Property-based invariants of the cycle model.

These pin the *monotonicity* and *sanity* properties any cycle-
accounting model must have, independent of calibration values.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import BROADWELL, PrefetcherConfig
from repro.core import CycleModel, ExecutionContext, WorkProfile

model = CycleModel(BROADWELL)

instructions = st.floats(min_value=0.0, max_value=1e10)
nbytes = st.floats(min_value=0.0, max_value=1e10)
counts = st.floats(min_value=0.0, max_value=1e8)
fractions = st.floats(min_value=0.0, max_value=1.0)


def profile_of(instr=0.0, seq=0.0, random_count=0.0, ws=1 << 28, branches=0.0, taken=0.5):
    work = WorkProfile()
    if instr:
        work.record_work(instructions=instr, alu=instr / 4, loads=instr / 4)
    if seq:
        work.record_sequential_read(seq)
    if random_count:
        work.record_random("r", random_count, ws)
    if branches:
        work.record_branch_stream("b", branches, taken)
    return work


@settings(max_examples=60, deadline=None)
@given(instr=instructions, extra=st.floats(min_value=1.0, max_value=1e9))
def test_more_instructions_never_faster(instr, extra):
    base = model.breakdown(profile_of(instr=instr + 1))
    more = model.breakdown(profile_of(instr=instr + 1 + extra))
    assert more.total >= base.total - 1e-6


@settings(max_examples=60, deadline=None)
@given(seq=nbytes, extra=st.floats(min_value=1.0, max_value=1e9))
def test_more_bytes_never_faster(seq, extra):
    base = model.breakdown(profile_of(instr=1e6, seq=seq))
    more = model.breakdown(profile_of(instr=1e6, seq=seq + extra))
    assert more.total >= base.total - 1e-6


@settings(max_examples=60, deadline=None)
@given(count=counts, extra=st.floats(min_value=1.0, max_value=1e7))
def test_more_random_accesses_never_faster(count, extra):
    base = model.breakdown(profile_of(instr=1e6, random_count=count))
    more = model.breakdown(profile_of(instr=1e6, random_count=count + extra))
    assert more.total >= base.total - 1e-6


@settings(max_examples=60, deadline=None)
@given(instr=instructions, seq=nbytes, count=counts, taken=fractions)
def test_all_components_non_negative(instr, seq, count, taken):
    work = profile_of(instr=instr, seq=seq, random_count=count, branches=count, taken=taken)
    breakdown = model.breakdown(work)
    for value in breakdown.as_dict().values():
        assert value >= 0.0


@settings(max_examples=40, deadline=None)
@given(seq=st.floats(min_value=1e6, max_value=1e10))
def test_total_respects_the_bandwidth_roof(seq):
    """No execution can move bytes faster than the per-core roof."""
    breakdown = model.breakdown(profile_of(instr=1.0, seq=seq))
    floor_cycles = seq / BROADWELL.bytes_per_cycle(12.0)
    assert breakdown.total >= floor_cycles * 0.999


@settings(max_examples=40, deadline=None)
@given(seq=st.floats(min_value=1e6, max_value=1e9), instr=st.floats(min_value=1.0, max_value=1e9))
def test_prefetchers_never_hurt(seq, instr):
    work = profile_of(instr=instr, seq=seq)
    enabled = model.breakdown(work, ExecutionContext(prefetchers=PrefetcherConfig.all_enabled()))
    disabled = model.breakdown(work, ExecutionContext(prefetchers=PrefetcherConfig.all_disabled()))
    assert enabled.total <= disabled.total + 1e-6


@settings(max_examples=40, deadline=None)
@given(
    count=st.floats(min_value=1e3, max_value=1e7),
    ws=st.integers(min_value=1 << 16, max_value=1 << 30),
)
def test_dependent_accesses_never_cheaper(count, ws):
    independent = WorkProfile()
    independent.record_work(instructions=1e5)
    independent.record_random("r", count, ws, dependent=False)
    dependent = WorkProfile()
    dependent.record_work(instructions=1e5)
    dependent.record_random("r", count, ws, dependent=True)
    assert model.breakdown(dependent).dcache >= model.breakdown(independent).dcache - 1e-6


@settings(max_examples=40, deadline=None)
@given(ws_small=st.integers(min_value=1 << 10, max_value=1 << 24), factor=st.integers(min_value=2, max_value=64))
def test_random_latency_monotone_in_working_set(ws_small, factor):
    small = model.random_latency_cycles(ws_small)
    large = model.random_latency_cycles(ws_small * factor)
    assert large >= small - 1e-9
    assert large <= BROADWELL.memory_latency_cycles + 1e-9


@settings(max_examples=40, deadline=None)
@given(threads=st.integers(min_value=1, max_value=14), seq=st.floats(min_value=1e6, max_value=1e9))
def test_contention_never_helps(threads, seq):
    work = profile_of(instr=1e6, seq=seq)
    solo = model.breakdown(work, ExecutionContext(threads=1))
    crowded = model.breakdown(work, ExecutionContext(threads=threads))
    assert crowded.total >= solo.total - 1e-6


@settings(max_examples=30, deadline=None)
@given(
    instr=st.floats(min_value=1e3, max_value=1e8),
    seq=st.floats(min_value=0.0, max_value=1e8),
    factor=st.floats(min_value=0.01, max_value=1.0),
)
def test_breakdown_scales_subadditively(instr, seq, factor):
    """A fraction of the work never costs more than the same fraction
    of the whole (floors and overlaps only help smaller profiles)."""
    whole = model.breakdown(profile_of(instr=instr, seq=seq))
    part = model.breakdown(profile_of(instr=instr, seq=seq).scaled(factor))
    assert part.total <= whole.total + 1e-6
