"""Trace-simulator tests: the structural models validate the analytic
effective parameters."""

import numpy as np
import pytest

from repro.hardware import BROADWELL, PrefetcherConfig, two_bit_mispredict_rate
from repro.core import (
    CycleModel,
    TraceSimulator,
    bernoulli_outcomes,
    gshare_mispredict_rate,
    random_trace,
    sequential_trace,
    sparse_trace,
)


class TestTraceGenerators:
    def test_sequential(self):
        trace = sequential_trace(10, stride_bytes=8, start=100)
        assert trace.tolist() == [100 + 8 * i for i in range(10)]

    def test_sequential_validation(self):
        with pytest.raises(ValueError):
            sequential_trace(10, stride_bytes=0)

    def test_random_within_working_set(self):
        trace = random_trace(1000, 4096)
        assert trace.min() >= 0
        assert trace.max() < 4096
        assert (trace % 8 == 0).all()

    def test_random_deterministic(self):
        assert np.array_equal(random_trace(100, 1 << 20, seed=3), random_trace(100, 1 << 20, seed=3))

    def test_random_validation(self):
        with pytest.raises(ValueError):
            random_trace(10, 4)

    def test_sparse_density(self):
        trace = sparse_trace(10_000, 0.3)
        assert len(trace) == pytest.approx(3000, rel=0.15)
        with pytest.raises(ValueError):
            sparse_trace(100, 0.0)


class TestSequentialCoverage:
    @pytest.fixture(scope="class")
    def coverages(self):
        return {
            name: TraceSimulator(BROADWELL, config).sequential_coverage(20_000)
            for name, config in PrefetcherConfig.figure26_configs().items()
        }

    def test_disabled_has_zero_coverage(self, coverages):
        assert coverages["All disabled"] == 0.0

    def test_next_line_covers_about_half(self, coverages):
        assert coverages["L1 NL"] == pytest.approx(0.5, abs=0.1)
        assert coverages["L2 NL"] == pytest.approx(0.5, abs=0.1)

    def test_streamers_cover_most(self, coverages):
        assert coverages["L1 Str."] > 0.8
        assert coverages["L2 Str."] > 0.9

    def test_ordering_matches_analytic_table(self, coverages):
        """The trace-measured ordering agrees with the calibrated
        PrefetcherConfig.sequential_coverage table."""
        analytic = {
            name: config.sequential_coverage()
            for name, config in PrefetcherConfig.figure26_configs().items()
        }
        for a in ("All disabled", "L1 NL", "L2 Str."):
            for b in ("All disabled", "L1 NL", "L2 Str."):
                if analytic[a] < analytic[b]:
                    assert coverages[a] <= coverages[b] + 0.05


class TestRandomLatency:
    @pytest.mark.parametrize(
        "working_set", [16 * 1024, 2 * 1024 * 1024, 128 * 1024 * 1024]
    )
    def test_matches_analytic_mix(self, working_set):
        simulator = TraceSimulator(BROADWELL, PrefetcherConfig.all_disabled())
        measured = simulator.random_latency(working_set, n_accesses=6000)
        analytic = CycleModel(BROADWELL).random_latency_cycles(working_set)
        assert measured == pytest.approx(analytic, rel=0.45)

    def test_latency_grows_with_working_set(self):
        simulator = TraceSimulator(BROADWELL, PrefetcherConfig.all_disabled())
        small = simulator.random_latency(16 * 1024, n_accesses=4000)
        large = simulator.random_latency(256 * 1024 * 1024, n_accesses=4000)
        assert large > 5 * small


class TestGshareValidation:
    @pytest.mark.parametrize("p", [0.1, 0.5, 0.9])
    def test_bernoulli_agrees_with_two_bit_model(self, p):
        outcomes = bernoulli_outcomes(8000, p, seed=13)
        measured = gshare_mispredict_rate(outcomes)
        assert measured == pytest.approx(two_bit_mispredict_rate(p), abs=0.08)

    def test_outcomes_validation(self):
        with pytest.raises(ValueError):
            bernoulli_outcomes(10, 1.5)

    def test_replay_result_fields(self):
        simulator = TraceSimulator(BROADWELL)
        result = simulator.replay(sequential_trace(2000, 64))
        assert result.stats.accesses == 2000
        assert 0.0 <= result.demand_memory_rate <= 1.0
        assert result.avg_latency_cycles >= BROADWELL.l1_access_cycles
