"""What-if ("opportunities") analyzer tests."""

import pytest

from repro.core import SCENARIOS, MicroArchProfiler, WhatIfAnalyzer
from repro.engines import TyperEngine


@pytest.fixture(scope="module")
def analyzer():
    return WhatIfAnalyzer(MicroArchProfiler())


@pytest.fixture(scope="module")
def projection(paper_db):
    return TyperEngine().run_projection(paper_db, 4)


@pytest.fixture(scope="module")
def join(big_db):
    return TyperEngine().run_join(big_db, "large")


@pytest.fixture(scope="module")
def selection(paper_db):
    return TyperEngine().run_selection(paper_db, 0.5)


class TestScenarios:
    def test_registry_nonempty_with_descriptions(self):
        assert len(SCENARIOS) >= 7
        for scenario in SCENARIOS.values():
            assert scenario.description

    def test_unknown_scenario(self, analyzer, projection):
        with pytest.raises(KeyError, match="available"):
            analyzer.project(TyperEngine(), projection, "warp-drive")


class TestBandwidthOpportunity:
    def test_double_bandwidth_speeds_up_the_bandwidth_bound_scan(
        self, analyzer, projection
    ):
        """Section 3: Typer's projection saturates the per-core roof, so
        more bandwidth is the opportunity."""
        result = analyzer.project(TyperEngine(), projection, "double-bandwidth")
        assert result.speedup > 1.2
        assert result.stall_reduction > 0.2

    def test_double_bandwidth_hardly_helps_the_join(self, analyzer, join):
        """Section 5: the join cannot even use the bandwidth it has."""
        result = analyzer.project(TyperEngine(), join, "double-bandwidth")
        assert result.speedup < 1.15


class TestPrefetcherOpportunity:
    def test_perfect_prefetchers_have_little_headroom_left(self, analyzer, projection):
        """With the default prefetchers at ~95% coverage the scan is
        bandwidth-bound: even perfect prefetchers barely help -- the
        next wall is the roof (Sections 3/9)."""
        result = analyzer.project(TyperEngine(), projection, "perfect-prefetchers")
        assert 1.0 <= result.speedup < 1.1
        bandwidth = analyzer.project(TyperEngine(), projection, "double-bandwidth")
        assert bandwidth.speedup > result.speedup


class TestCacheAndMlpOpportunities:
    def test_bigger_l3_helps_the_join(self, analyzer, join):
        result = analyzer.project(TyperEngine(), join, "quadruple-l3")
        assert result.speedup > 1.1

    def test_bigger_l3_does_not_help_the_scan(self, analyzer, projection):
        result = analyzer.project(TyperEngine(), projection, "quadruple-l3")
        assert result.speedup == pytest.approx(1.0, abs=0.02)

    def test_double_mlp_helps_the_join(self, analyzer, join):
        """The coroutine-interleaving opportunity [13, 21]."""
        result = analyzer.project(TyperEngine(), join, "double-mlp")
        assert result.speedup > 1.2


class TestBranchAndHashOpportunities:
    def test_oracle_predictor_helps_mid_selectivity_selection(self, analyzer, selection):
        result = analyzer.project(TyperEngine(), selection, "perfect-branch-prediction")
        assert result.speedup > 1.2
        assert result.projected.breakdown.branch_misp == 0.0

    def test_free_hashing_helps_the_join(self, analyzer, big_db):
        small_join = TyperEngine().run_join(big_db, "small")
        result = analyzer.project(TyperEngine(), small_join, "free-hashing")
        assert result.speedup > 1.05
        assert result.projected.work.hash_ops == 0.0

    def test_low_latency_fp_helps_aggregation_heavy_q1(self, analyzer, paper_db):
        """Q1's Execution stalls come from serial aggregate chains."""
        q1 = TyperEngine().run_q1(paper_db)
        result = analyzer.project(TyperEngine(), q1, "low-latency-fp")
        assert result.speedup > 1.03
        assert result.projected.breakdown.execution < result.baseline.breakdown.execution

    def test_no_materialization_helps_tectorwise_more_than_typer(self, analyzer, paper_db):
        from repro.engines import TectorwiseEngine

        tw = TectorwiseEngine().run_projection(paper_db, 4)
        ty = TyperEngine().run_projection(paper_db, 4)
        tw_gain = analyzer.project(TectorwiseEngine(), tw, "no-materialization").speedup
        ty_gain = analyzer.project(TyperEngine(), ty, "no-materialization").speedup
        assert tw_gain > ty_gain


class TestSweep:
    def test_sweep_covers_all_scenarios(self, analyzer, projection):
        results = analyzer.sweep(TyperEngine(), projection)
        assert set(results) == set(SCENARIOS)

    def test_best_opportunity_for_scan_is_memory_side(self, analyzer, projection):
        """The paper's conclusion: scans are limited by the memory
        subsystem, not the core."""
        results = analyzer.sweep(TyperEngine(), projection)
        best = WhatIfAnalyzer.best_opportunity(results)
        assert best in ("double-bandwidth", "perfect-prefetchers")

    def test_projection_does_not_mutate_original_work(self, analyzer, join):
        hash_ops_before = join.work.hash_ops
        analyzer.project(TyperEngine(), join, "free-hashing")
        assert join.work.hash_ops == hash_ops_before
