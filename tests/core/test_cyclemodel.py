"""Cycle-model tests: each TMAM component and their composition."""

import pytest

from repro.hardware import BROADWELL, CycleBreakdown, PrefetcherConfig
from repro.core import (
    CalibrationParams,
    CycleModel,
    ExecutionContext,
    WorkProfile,
)


@pytest.fixture
def model():
    return CycleModel(BROADWELL)


def streaming_profile(n_bytes=1e8, instructions=1e7):
    work = WorkProfile()
    work.record_work(instructions=instructions, alu=instructions / 4, loads=instructions / 4)
    work.record_sequential_read(n_bytes)
    return work


class TestRetiring:
    def test_issue_width_bound(self, model):
        work = WorkProfile()
        work.record_work(instructions=400)
        assert model.retiring_cycles(work) == 100.0


class TestBranch:
    def test_uses_two_bit_rate(self, model):
        work = WorkProfile()
        work.record_branch_stream("b", 1000, 0.5)
        expected = 1000 * 0.5 * BROADWELL.branch_mispredict_penalty
        assert model.branch_cycles(work) == pytest.approx(expected)

    def test_measured_rate_overrides(self, model):
        work = WorkProfile()
        work.record_branch_stream("b", 1000, 0.5, mispredict_rate=0.1)
        expected = 1000 * 0.1 * BROADWELL.branch_mispredict_penalty
        assert model.branch_cycles(work) == pytest.approx(expected)

    def test_biased_branch_nearly_free(self, model):
        work = WorkProfile()
        work.record_branch_stream("loop", 1_000_000, 0.999)
        assert model.branch_cycles(work) < 1_000_000 * 0.05


class TestFrontEnd:
    def test_small_code_has_no_icache_stalls(self, model):
        work = WorkProfile(code_footprint_bytes=16 * 1024)
        work.record_work(instructions=1e7)
        assert model.icache_cycles(work) == 0.0
        assert model.decoding_cycles(work) == 0.0

    def test_interpreter_code_pays_but_is_not_bound(self, model):
        """The paper: commercial OLAP is NOT Icache-bound."""
        work = WorkProfile(code_footprint_bytes=768 * 1024)
        work.record_work(instructions=1e7)
        icache = model.icache_cycles(work)
        assert icache > 0
        assert icache < model.retiring_cycles(work) * 0.2

    def test_icache_grows_with_footprint(self, model):
        small = WorkProfile(code_footprint_bytes=64 * 1024)
        small.record_work(instructions=1e6)
        large = WorkProfile(code_footprint_bytes=2 * 1024 * 1024)
        large.record_work(instructions=1e6)
        assert model.icache_cycles(large) > model.icache_cycles(small)


class TestExecution:
    def test_no_stall_when_ports_idle(self, model):
        work = WorkProfile()
        work.record_work(instructions=1000, alu=500)
        assert model.execution_cycles(work) == 0.0

    def test_hash_pressure_creates_stalls(self, model):
        work = WorkProfile()
        work.record_work(instructions=1000, hash_ops=500)
        assert model.execution_cycles(work) > 0

    def test_serial_chain_creates_stalls(self, model):
        work = WorkProfile()
        work.record_work(instructions=1000, chain=1000)
        # 1000 chained FP ops at 3 cycles vs 250 retiring cycles.
        assert model.execution_cycles(work) == pytest.approx(3000 - 250)

    def test_low_ilp_creates_stalls(self, model):
        work = WorkProfile(effective_ilp=2.0)
        work.record_work(instructions=1000)
        assert model.execution_cycles(work) == pytest.approx(1000 / 2 - 250)


class TestDcache:
    def test_total_never_beats_bandwidth_floor(self, model):
        work = streaming_profile(n_bytes=1.2e9, instructions=1e6)
        breakdown = model.breakdown(work)
        floor_seconds = 1.2e9 / (12.0 * 1e9)
        floor_cycles = floor_seconds * BROADWELL.cycles_per_second
        assert breakdown.total >= floor_cycles * 0.999

    def test_compute_heavy_run_has_little_dcache(self, model):
        work = streaming_profile(n_bytes=1e6, instructions=1e9)
        breakdown = model.breakdown(work)
        assert breakdown.dcache < 0.05 * breakdown.total

    def test_prefetchers_off_raises_dcache(self, model):
        work = streaming_profile()
        on = model.breakdown(work, ExecutionContext(prefetchers=PrefetcherConfig.all_enabled()))
        off = model.breakdown(work, ExecutionContext(prefetchers=PrefetcherConfig.all_disabled()))
        assert off.dcache > 2 * on.dcache

    def test_random_latency_mix(self, model):
        l1 = model.random_latency_cycles(16 * 1024)
        l2 = model.random_latency_cycles(128 * 1024)
        l3 = model.random_latency_cycles(16 * 1024 * 1024)
        mem = model.random_latency_cycles(1 << 30)
        assert l1 == pytest.approx(BROADWELL.l1_access_cycles)
        assert l1 < l2 < l3 < mem
        assert mem <= BROADWELL.memory_latency_cycles

    def test_dependent_accesses_stall_more(self, model):
        def profile(dependent):
            work = WorkProfile()
            work.record_work(instructions=1e6)
            work.record_random("r", 1e5, 1 << 28, dependent=dependent)
            return model.breakdown(work).dcache

        assert profile(True) > 1.5 * profile(False)

    def test_mlp_hint_reduces_stalls(self, model):
        def profile(hint):
            work = WorkProfile()
            work.record_work(instructions=1e6)
            work.record_random("r", 1e5, 1 << 28, mlp_hint=hint)
            return model.breakdown(work).dcache

        assert profile(12.0) < profile(None)

    def test_l1_resident_structures_free(self, model):
        work = WorkProfile()
        work.record_work(instructions=1e6)
        work.record_random("tiny", 1e6, 1024)
        assert model.breakdown(work).dcache == 0.0

    def test_cached_traffic_split_between_dcache_and_execution(self, model):
        work = WorkProfile()
        work.record_work(instructions=1e6)
        base = model.breakdown(work)
        work.record_cached_traffic(read=8e6, write=8e6)
        loaded = model.breakdown(work)
        assert loaded.dcache > base.dcache
        assert loaded.execution > base.execution


class TestContext:
    def test_threads_share_socket_bandwidth(self, model):
        work = streaming_profile(n_bytes=1e9, instructions=1e6)
        solo = model.breakdown(work, ExecutionContext(threads=1))
        crowded = model.breakdown(work, ExecutionContext(threads=14))
        assert crowded.total > solo.total

    def test_hyper_threading_raises_per_core_bandwidth(self, model):
        work = streaming_profile(n_bytes=1e9, instructions=1e6)
        plain = model.breakdown(work, ExecutionContext())
        ht = model.breakdown(work, ExecutionContext(hyper_threading=True))
        assert ht.total < plain.total

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            ExecutionContext(threads=0)

    def test_with_threads(self):
        context = ExecutionContext().with_threads(8)
        assert context.threads == 8


class TestTraffic:
    def test_sparse_overshoot_peaks_at_mid_density(self, model):
        def traffic(density):
            work = WorkProfile()
            work.record_sparse_scan("g", 1e6, density)
            return model.memory_traffic_bytes(work)

        assert traffic(0.5) > traffic(0.95)
        assert traffic(0.5) > traffic(0.05)

    def test_l3_resident_random_accesses_create_no_dram_traffic(self, model):
        work = WorkProfile()
        work.record_random("r", 1e5, 1 << 20)  # 1 MB working set
        assert model.memory_traffic_bytes(work) == 0.0

    def test_dram_random_traffic_counted(self, model):
        work = WorkProfile()
        work.record_random("r", 1e5, 1 << 30)
        assert model.memory_traffic_bytes(work) > 0


class TestCalibrationParams:
    def test_custom_params_respected(self):
        params = CalibrationParams(chain_op_latency=10.0)
        model = CycleModel(BROADWELL, params)
        work = WorkProfile()
        work.record_work(instructions=100, chain=100)
        assert model.execution_cycles(work) == pytest.approx(1000 - 25)

    def test_branch_penalty_override(self):
        params = CalibrationParams(branch_penalty=20.0)
        model = CycleModel(BROADWELL, params)
        work = WorkProfile()
        work.record_branch_stream("b", 100, 0.5)
        assert model.branch_cycles(work) == pytest.approx(100 * 0.5 * 20.0)

    def test_breakdown_type(self, model):
        assert isinstance(model.breakdown(streaming_profile()), CycleBreakdown)
