"""Bandwidth-estimator and profile-report tests."""

import pytest

from repro.hardware import BROADWELL
from repro.core import (
    BandwidthEstimator,
    CycleModel,
    ExecutionContext,
    MicroArchProfiler,
    WorkProfile,
    dominant_access_pattern,
)
from repro.core.report import COMPONENT_LABELS, ProfileReport
from repro.engines import TyperEngine


@pytest.fixture
def estimator():
    return BandwidthEstimator(CycleModel(BROADWELL))


def make_profile(seq=1e8, random_count=0.0):
    work = WorkProfile(tuples=1000)
    work.record_work(instructions=1e7)
    if seq:
        work.record_sequential_read(seq)
    if random_count:
        work.record_random("r", random_count, 1 << 30)
    return work


class TestDominantPattern:
    def test_streaming(self):
        assert dominant_access_pattern(make_profile()) == "sequential"

    def test_random(self):
        work = make_profile(seq=1e4, random_count=1e6)
        assert dominant_access_pattern(work) == "random"


class TestUsage:
    def test_bandwidth_is_traffic_over_time(self, estimator):
        work = make_profile()
        breakdown = estimator.model.breakdown(work)
        usage = estimator.usage(work, breakdown)
        seconds = BROADWELL.cycles_to_seconds(breakdown.total)
        assert usage.gbps == pytest.approx(1e8 / seconds / 1e9)

    def test_never_exceeds_per_core_roof_materially(self, estimator):
        work = make_profile(seq=1e9)
        breakdown = estimator.model.breakdown(work)
        usage = estimator.usage(work, breakdown)
        assert usage.gbps <= usage.max_gbps * 1.3  # overshoot traffic allowed

    def test_saturated_flag(self, estimator):
        from repro.core.bandwidth import BandwidthUsage

        assert BandwidthUsage(11.0, 12.0, "sequential").saturated
        assert not BandwidthUsage(6.0, 12.0, "sequential").saturated

    def test_multicore_capped_at_socket(self, estimator):
        work = make_profile(seq=1e9).scaled(1.0 / 14)
        usage = estimator.multicore_usage(work, ExecutionContext(threads=14))
        assert usage.max_gbps == 66.0
        assert usage.gbps <= 66.0


class TestProfileReport:
    @pytest.fixture(scope="class")
    def report(self, small_db):
        profiler = MicroArchProfiler()
        return profiler.run(TyperEngine(), "run_projection", small_db, 4)

    def test_response_time_conversion(self, report):
        assert report.response_time_ms == pytest.approx(
            BROADWELL.cycles_to_ms(report.cycles)
        )

    def test_labels(self, report):
        assert report.label == "Typer/projection-p4"
        assert set(COMPONENT_LABELS) == {
            "retiring", "branch_misp", "icache", "decoding", "dcache", "execution",
        }

    def test_time_breakdown_sums_to_response(self, report):
        assert sum(report.time_breakdown_ms().values()) == pytest.approx(
            report.response_time_ms
        )

    def test_stall_time_subset(self, report):
        stall = report.stall_time_ms()
        assert "retiring" not in stall
        assert sum(stall.values()) == pytest.approx(
            report.response_time_ms * report.stall_ratio, rel=1e-6
        )

    def test_normalized_to_self_is_one(self, report):
        assert report.normalized_to(report).total == pytest.approx(1.0)

    def test_speedup(self, report):
        assert report.speedup_over(report) == pytest.approx(1.0)

    def test_as_row_keys(self, report):
        row = report.as_row()
        assert row["engine"] == "Typer"
        assert "share_retiring" in row
        assert row["threads"] == 1


class TestProfilerRun:
    def test_run_executes_and_profiles(self, small_db):
        profiler = MicroArchProfiler()
        report = profiler.run(TyperEngine(), "run_projection", small_db, 2)
        assert report.workload == "projection-p2"
        assert report.cycles > 0

    def test_run_rejects_non_query_methods(self, small_db):
        profiler = MicroArchProfiler()
        with pytest.raises(AttributeError):
            profiler.run(TyperEngine(), "no_such_method", small_db)
