"""Morsel-driven process pool: bit-identity through real worker
processes, work stealing, shm reuse (no dbgen in workers), and crash
cleanup."""

from __future__ import annotations

import math
import multiprocessing
from multiprocessing import shared_memory

import pytest

from repro.core.parallel import (
    MorselLedger,
    WorkerCrashed,
    WorkerPool,
    merge_worker_partials,
    normalized_call,
)
from repro.engines import (
    ALL_ENGINES,
    ColumnStoreEngine,
    TectorwiseEngine,
    TyperEngine,
)
from repro.engines.morsel import MORSEL_ALIGN, morsel_ranges

MORSEL_ROWS = 1024  # small, so tiny_db still splits into many morsels


def segment_exists(name: str) -> bool:
    try:
        probe = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    probe.close()
    return True


@pytest.fixture(scope="module")
def pool(tiny_db):
    with WorkerPool(tiny_db, n_workers=2, morsel_rows=MORSEL_ROWS) as pool:
        yield pool


class TestNormalizedCall:
    def test_tpch_dispatches_to_query_runner(self):
        method, items = normalized_call(
            TyperEngine(), "run_tpch", ("Q6",), {"predicated": True}
        )
        assert method == "run_q6"
        assert dict(items) == {"predicated": True}

    def test_positional_arguments_become_named(self):
        method, items = normalized_call(TyperEngine(), "run_projection", (3,), {})
        assert method == "run_projection"
        assert dict(items) == {"degree": 3, "simd": False}

    def test_predication_outside_q6_rejected(self):
        with pytest.raises(ValueError, match="Q6"):
            normalized_call(TyperEngine(), "run_tpch", ("Q9",), {"predicated": True})

    def test_method_without_morsel_support_rejected(self):
        class Legacy:
            def run_projection(self, db, degree):
                return None

        with pytest.raises(ValueError, match="morsel"):
            normalized_call(Legacy(), "run_projection", (2,), {})


class TestLedger:
    def _drain(self, ledger, worker_id, morsel_rows=MORSEL_ROWS):
        claims = []
        while True:
            claim = ledger.claim(worker_id, morsel_rows)
            if claim is None:
                return claims
            claims.append(claim)

    def test_single_worker_tiles_its_range(self):
        ctx = multiprocessing.get_context("spawn")
        ledger = MorselLedger(ctx, 1)
        ledger.assign([(0, 10_000)])
        claims = self._drain(ledger, 0)
        assert claims[0][0] == 0 and claims[-1][1] == 10_000
        for (_, prev_hi, _), (lo, _, _) in zip(claims, claims[1:]):
            assert lo == prev_hi
        assert not any(stolen for *_, stolen in claims)
        assert ledger.remaining() == 0

    def test_fast_worker_steals_the_slow_workers_tail(self):
        """Deterministic stealing: worker 1 never claims, so worker 0
        must finish its own range and then repeatedly steal from
        worker 1 until the whole table is processed."""
        n_rows = 50_000
        ctx = multiprocessing.get_context("spawn")
        ledger = MorselLedger(ctx, 2)
        ledger.assign(morsel_ranges(n_rows, 2))
        claims = self._drain(ledger, 0)

        stolen = [claim for claim in claims if claim[2]]
        assert stolen, "exhausting one worker's range must trigger steals"
        covered = sorted((lo, hi) for lo, hi, _ in claims)
        assert covered[0][0] == 0 and covered[-1][1] == n_rows
        for (_, prev_hi), (lo, _) in zip(covered, covered[1:]):
            assert lo == prev_hi, "claims must tile the table exactly"

    def test_steal_boundaries_stay_aligned(self):
        ctx = multiprocessing.get_context("spawn")
        ledger = MorselLedger(ctx, 2)
        n_rows = 12_345  # deliberately not aligned
        ledger.assign(morsel_ranges(n_rows, 2))
        for lo, hi, _ in self._drain(ledger, 0):
            assert lo % MORSEL_ALIGN == 0
            assert hi % MORSEL_ALIGN == 0 or hi == n_rows

    def test_empty_assignment_yields_nothing(self):
        ctx = multiprocessing.get_context("spawn")
        ledger = MorselLedger(ctx, 2)
        ledger.assign([])
        assert ledger.claim(0, MORSEL_ROWS) is None


class TestPoolExecution:
    WORKLOADS = [
        ("run_projection", (4,), {}),
        ("run_selection", (0.5,), {}),
        ("run_join", ("large",), {}),
        ("run_groupby", (), {}),
        ("run_tpch", ("Q1",), {}),
        ("run_tpch", ("Q6",), {"predicated": True}),
        ("run_q9", (), {}),
        ("run_q18", (), {}),
    ]

    @pytest.mark.parametrize("engine_cls", ALL_ENGINES, ids=lambda cls: cls.name)
    def test_pool_results_bit_identical(self, pool, tiny_db, engine_cls):
        engine = engine_cls()
        for method, args, kwargs in self.WORKLOADS:
            parallel = pool.run_query(engine, method, *args, **kwargs)
            single = getattr(engine, method)(tiny_db, *args, **kwargs)
            context = f"{engine.name} {method} {args} {kwargs}"
            assert parallel.value == single.value, context
            assert parallel.tuples == single.tuples, context
            assert parallel.work == single.work, context
            assert parallel.operator_work.keys() == single.operator_work.keys()
            for name, profile in parallel.operator_work.items():
                assert profile == single.operator_work[name], f"{context} {name}"

    def test_ping(self, pool):
        assert pool.ping() is True

    def test_workers_never_run_dbgen(self, pool, tiny_db):
        """Workers attach the parent's shm export; generating the
        database again in a worker would defeat the transport.  The
        counters come from the workers' own ``dbgen.GENERATION_COUNT``,
        so any regeneration anywhere in a worker's life shows up."""
        pool.run_query(TyperEngine(), "run_q6")
        stats = pool.stats()
        assert stats["worker_dbgen_runs"] == 0

    def test_stats_counters(self, pool, tiny_db):
        queries_before = pool.queries_run
        pool.run_query(ColumnStoreEngine(), "run_projection", 1)
        stats = pool.stats()
        assert stats["n_workers"] == 2
        assert stats["queries_run"] == queries_before + 1
        n_rows = tiny_db.table("lineitem").n_rows
        # Every claim hands out at most morsel_rows rows, so each query
        # contributes at least ceil(n/morsel_rows) morsels.
        assert stats["total_morsels"] >= math.ceil(n_rows / MORSEL_ROWS)
        assert stats["total_steals"] >= 0
        assert len({worker["pid"] for worker in stats["workers"]}) == 2

    def test_columns_never_cross_via_pickle(self, pool, tiny_db):
        """The transport guarantee: ``ColumnTable.__reduce__`` raises,
        so had any pool code path pickled a table (task messages,
        partials, queue payloads), every test above would have crashed.
        This pins the guard itself."""
        import pickle

        with pytest.raises(TypeError, match="shm"):
            pickle.dumps(tiny_db.table("lineitem"))

    def test_run_after_close_raises(self, tiny_db):
        pool = WorkerPool(tiny_db, n_workers=1, morsel_rows=MORSEL_ROWS)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.run_query(TyperEngine(), "run_q6")

    def test_invalid_morsel_rows_rejected(self, tiny_db):
        with pytest.raises(ValueError, match="multiple"):
            WorkerPool(tiny_db, n_workers=1, morsel_rows=100)


class TestCrashRecovery:
    def test_dead_worker_raises_and_segment_unlinks(self, tiny_db):
        pool = WorkerPool(tiny_db, n_workers=2, morsel_rows=MORSEL_ROWS)
        segment = pool._exported.segment_name
        try:
            assert segment_exists(segment)
            pool._processes[0].terminate()
            pool._processes[0].join(timeout=10)
            with pytest.raises(WorkerCrashed, match="died"):
                pool.run_query(TectorwiseEngine(), "run_q1")
        finally:
            pool.close()
        assert not segment_exists(segment), (
            "close() after a crash must still unlink the shm segment"
        )

    def test_close_is_idempotent(self, tiny_db):
        pool = WorkerPool(tiny_db, n_workers=1, morsel_rows=MORSEL_ROWS)
        pool.close()
        pool.close()


class TestMergeWorkerPartials:
    def test_local_premerge_matches_direct_merge(self, tiny_db):
        """Workers fold their own morsels before replying; folding in
        two stages must merge to the same final result as handing every
        morsel to ``merge_morsels`` directly."""
        engine = TyperEngine()
        n_rows = tiny_db.table("lineitem").n_rows
        ranges = morsel_ranges(n_rows, 4)

        def partials(subset):
            return [
                engine.run_q1(tiny_db, row_range=row_range) for row_range in subset
            ]

        two_stage = engine.merge_morsels(
            tiny_db,
            "run_q1",
            {},
            [
                merge_worker_partials(partials(ranges[:2])),
                merge_worker_partials(partials(ranges[2:])),
            ],
        )
        flat = engine.merge_morsels(tiny_db, "run_q1", {}, partials(ranges))
        assert two_stage.value == flat.value
        assert two_stage.work == flat.work
        assert two_stage.tuples == flat.tuples
