"""Model-validation harness tests."""

import pytest

from repro.core import ModelValidator, ValidationReport, ValidationRow


class TestValidationRow:
    def test_close_mode_within_tolerance(self):
        row = ValidationRow("q", "c", analytic=1.0, trace=1.2, tolerance=0.3)
        assert row.error == pytest.approx(0.2 / 1.2)
        assert row.ok

    def test_close_mode_outside_tolerance(self):
        row = ValidationRow("q", "c", analytic=2.0, trace=1.0, tolerance=0.3)
        assert not row.ok

    def test_small_absolute_differences_always_ok(self):
        row = ValidationRow("q", "c", analytic=0.05, trace=0.001, tolerance=0.1)
        assert row.ok

    def test_upper_bound_mode(self):
        conservative = ValidationRow(
            "q", "c", analytic=0.5, trace=0.2, tolerance=0.1, mode="upper_bound"
        )
        assert conservative.ok
        violated = ValidationRow(
            "q", "c", analytic=0.1, trace=0.5, tolerance=0.1, mode="upper_bound"
        )
        assert not violated.ok


class TestValidationReport:
    def test_summary_helpers(self):
        rows = [
            ValidationRow("a", "x", 1.0, 1.0, 0.1),
            ValidationRow("b", "y", 5.0, 1.0, 0.1),
        ]
        report = ValidationReport(rows)
        assert not report.passed
        assert report.failures() == [rows[1]]
        text = report.to_text()
        assert "FAIL" in text and "NO" in text

    def test_empty_report_passes(self):
        assert ValidationReport([]).passed


class TestModelValidator:
    @pytest.fixture(scope="class")
    def validator(self):
        return ModelValidator()

    def test_prefetcher_coverage_validates(self, validator):
        rows = validator.validate_prefetcher_coverage(n_accesses=12_000)
        assert len(rows) == 6
        assert all(row.ok for row in rows)

    def test_random_latency_validates(self, validator):
        rows = validator.validate_random_latency(n_accesses=4_000)
        assert len(rows) == 3
        assert all(row.ok for row in rows)
        # Latency rows must be ordered by working set.
        assert rows[0].analytic < rows[-1].analytic

    def test_branch_rates_validate(self, validator):
        rows = validator.validate_branch_rates(n_branches=6_000)
        assert all(row.ok for row in rows)
        # The 50% row is the hardest in both models.
        mid = next(row for row in rows if "0.50" in row.case)
        assert mid.analytic == max(row.analytic for row in rows)
        assert mid.trace == max(row.trace for row in rows)

    def test_measured_streams_are_bounded_by_the_model(self, validator, small_db):
        """Real clustered predicate streams predict *better* than the
        Bernoulli model: the analytic rate is an upper bound."""
        rows = validator.validate_measured_streams(small_db)
        assert len(rows) == 3
        for row in rows:
            assert row.mode == "upper_bound"
            assert row.ok
            assert row.trace <= row.analytic * 1.1 + 0.02

    def test_full_run_passes(self, validator, small_db):
        report = validator.run(small_db)
        assert report.passed
        assert len(report.rows) >= 18
