"""Profile-driven trace simulation tests: the structural second opinion
on the analytic model's memory behaviour."""

import pytest

from repro import BROADWELL, TyperEngine
from repro.hardware import PrefetcherConfig
from repro.core import CycleModel, WorkProfile, simulate_profile


class TestConstruction:
    def test_empty_profile(self):
        estimate = simulate_profile(WorkProfile(), BROADWELL)
        assert estimate.sample_accesses == 0
        assert estimate.avg_latency_cycles == 0.0

    def test_sample_size_respected(self):
        work = WorkProfile()
        work.record_sequential_read(1e7)
        estimate = simulate_profile(work, BROADWELL, sample_accesses=5000)
        assert estimate.sample_accesses == 5000

    def test_deterministic(self):
        work = WorkProfile()
        work.record_random("r", 1e5, 1 << 24)
        a = simulate_profile(work, BROADWELL, seed=3)
        b = simulate_profile(work, BROADWELL, seed=3)
        assert a == b


class TestAgainstAnalyticModel:
    def test_prefetched_scan_is_nearly_all_hits(self):
        work = WorkProfile()
        work.record_sequential_read(1e7)
        estimate = simulate_profile(work, BROADWELL)
        assert estimate.l1_hit_rate > 0.9
        assert estimate.memory_miss_rate < 0.05

    def test_unprefetched_scan_misses_every_line(self):
        work = WorkProfile()
        work.record_sequential_read(1e7)
        estimate = simulate_profile(
            work, BROADWELL, config=PrefetcherConfig.all_disabled()
        )
        # 8-byte loads on 64-byte lines: one miss per eight accesses.
        assert estimate.memory_miss_rate == pytest.approx(1 / 8, abs=0.02)

    def test_random_latency_tracks_the_capacity_mix(self):
        model = CycleModel(BROADWELL)
        for working_set in (1 << 21, 1 << 28):
            work = WorkProfile()
            work.record_random("r", 1e6, working_set)
            estimate = simulate_profile(
                work, BROADWELL, config=PrefetcherConfig.all_disabled(),
                sample_accesses=40_000,
            )
            analytic = model.random_latency_cycles(working_set)
            # Cold misses inflate the small-working-set case; demand a
            # generous but shape-preserving agreement.
            assert estimate.avg_latency_cycles == pytest.approx(analytic, rel=0.6)

    def test_bigger_working_set_higher_trace_latency(self):
        def latency(ws):
            work = WorkProfile()
            work.record_random("r", 1e6, ws)
            return simulate_profile(work, BROADWELL, sample_accesses=20_000).avg_latency_cycles

        assert latency(1 << 28) > latency(1 << 21) > latency(1 << 14)


class TestOnRealWorkloads:
    def test_join_is_miss_heavier_than_projection(self, small_db):
        engine = TyperEngine()
        projection = simulate_profile(
            engine.run_projection(small_db, 4).work, BROADWELL
        )
        join = simulate_profile(engine.run_join(small_db, "large").work, BROADWELL)
        assert join.avg_latency_cycles > 2 * projection.avg_latency_cycles
        assert join.memory_miss_rate > projection.memory_miss_rate

    def test_sparse_scan_between_dense_and_random(self, small_db):
        engine = TyperEngine()
        branched = engine.run_selection(small_db, 0.1).work
        assert branched.sparse_scans
        estimate = simulate_profile(branched, BROADWELL)
        dense = WorkProfile()
        dense.record_sequential_read(branched.seq_bytes)
        dense_estimate = simulate_profile(dense, BROADWELL)
        assert estimate.avg_latency_cycles >= dense_estimate.avg_latency_cycles - 0.5
