"""Shared fixtures for the compiler test suite.

``partitionings`` and ``assert_identical`` mirror the morsel
equivalence matrix in ``tests/engines/test_morsel_equivalence.py``
(the test tree is not a package, so the helpers are re-exposed here
as fixtures rather than imported across directories).
"""

from __future__ import annotations

import pytest

from repro.engines import ALL_ENGINES
from repro.engines.morsel import MORSEL_ALIGN, morsel_ranges


def _ragged_ranges(n_rows: int) -> list[tuple[int, int]]:
    """An unbalanced, MORSEL_ALIGN-aligned tiling: minimal lead morsel,
    one huge middle, thin slivers at the end."""
    align = MORSEL_ALIGN
    cuts = sorted({
        0,
        align,
        3 * align,
        (n_rows * 3 // 5) // align * align,
        (n_rows - 1) // align * align,
        n_rows,
    })
    return list(zip(cuts[:-1], cuts[1:]))


def _partitionings(n_rows: int) -> dict[str, list[tuple[int, int]]]:
    return {
        "whole": morsel_ranges(n_rows, 1),
        "halves": morsel_ranges(n_rows, 2),
        "sevenths": morsel_ranges(n_rows, 7),
        "ragged": _ragged_ranges(n_rows),
    }


def _assert_identical(merged, single, context: str) -> None:
    assert merged.value == single.value, context
    assert merged.tuples == single.tuples, context
    assert merged.work == single.work, context
    assert merged.operator_work.keys() == single.operator_work.keys(), context
    for name, profile in merged.operator_work.items():
        assert profile == single.operator_work[name], f"{context} operator={name}"


@pytest.fixture(scope="session")
def partitionings():
    return _partitionings


@pytest.fixture(scope="session")
def assert_identical():
    return _assert_identical


@pytest.fixture(scope="module", params=ALL_ENGINES, ids=lambda cls: cls.name)
def engine(request):
    return request.param()
