"""The per-query engine chooser: cycle-model predictions per route.

``choose`` prices one bound query under the micro-architectural cycle
model for the Typer and Tectorwise hand-wired styles and the compiled
kernel program, and picks the cheapest.  The decision must be
deterministic, cached, and surfaced through the service (response
details and ``explain``).
"""

from __future__ import annotations

import pytest

from repro.compile.chooser import (
    ChooserError,
    choose,
    clear_chooser_cache,
    estimate_cardinalities,
)
from repro.compile.program import compiled_program
from repro.core.execcache import EXECUTION_CACHE
from repro.serve import QueryService, ServiceConfig
from repro.sql.api import compile_sql
from repro.tpch.sql import EXTENDED_TPCH_SQL, TPCH_SQL

ROUTES = ("Typer", "Tectorwise", "compiled")


@pytest.fixture(autouse=True)
def _fresh_decisions():
    clear_chooser_cache()
    yield
    clear_chooser_cache()


class TestDecision:
    @pytest.mark.parametrize("qid", sorted(EXTENDED_TPCH_SQL))
    def test_every_compiled_query_gets_a_decision(self, tiny_db, qid):
        bound = compile_sql(EXTENDED_TPCH_SQL[qid])
        decision = choose(tiny_db, bound)
        assert decision["workload"] == bound.workload
        assert decision["method"] == bound.method
        assert sorted(decision["predicted_cycles"]) == sorted(ROUTES)
        assert decision["chosen"] in ROUTES
        for cycles in decision["predicted_cycles"].values():
            assert cycles > 0.0

    def test_chosen_is_the_cheapest_route(self, tiny_db):
        decision = choose(tiny_db, compile_sql(EXTENDED_TPCH_SQL["Q5"]))
        cheapest = min(decision["predicted_cycles"].values())
        assert decision["predicted_cycles"][decision["chosen"]] == cheapest

    def test_decisions_are_deterministic_and_cached(self, tiny_db, monkeypatch):
        from repro.compile import chooser as chooser_mod

        bound = compile_sql(EXTENDED_TPCH_SQL["Q3"])
        first = choose(tiny_db, bound)
        # A repeat must come from the decision cache: forbid re-pricing.
        monkeypatch.setattr(
            chooser_mod,
            "_decide",
            lambda *args: pytest.fail("cached decision was re-priced"),
        )
        assert choose(tiny_db, bound) == first
        monkeypatch.undo()
        clear_chooser_cache()
        fresh = choose(tiny_db, compile_sql(EXTENDED_TPCH_SQL["Q3"]))
        assert fresh == first

    def test_uncompilable_query_raises_with_the_reason(self, tiny_db):
        bound = compile_sql(TPCH_SQL["Q18"])  # IN (subquery) semi-join
        with pytest.raises(ChooserError, match="IN \\(subquery\\)"):
            choose(tiny_db, bound)

    def test_hand_wired_templates_can_still_be_priced(self, tiny_db):
        # Q1/Q6 bind to the hand-wired template but their plans compile,
        # so the chooser can still model them.
        for qid in ("Q1", "Q6"):
            decision = choose(tiny_db, compile_sql(TPCH_SQL[qid]))
            assert decision["chosen"] in ROUTES, qid


class TestCardinalityEstimates:
    def test_estimates_are_sane(self, tiny_db):
        bound = compile_sql(EXTENDED_TPCH_SQL["Q5"])
        program = compiled_program(bound.plan)
        est = estimate_cardinalities(tiny_db, program)
        assert est["driving"] == "lineitem"
        assert est["rows"] == tiny_db.table("lineitem").n_rows
        assert 0.0 <= est["selectivity"] <= 1.0
        assert 0 <= est["survivors"] <= est["rows"]
        assert len(est["joins"]) == len(program.steps)
        for join in est["joins"]:
            assert join["build_rows"] > 0
            assert 0.0 <= join["hit_fraction"] <= 1.0
            assert join["working_set_bytes"] > 0
        assert 1 <= est["groups"] <= max(1, est["survivors"])

    def test_estimates_ride_along_in_the_decision(self, tiny_db):
        decision = choose(tiny_db, compile_sql(EXTENDED_TPCH_SQL["Q12"]))
        assert decision["estimates"]["driving"] == "lineitem"


class TestServiceSurface:
    @pytest.fixture
    def service(self, tiny_db):
        EXECUTION_CACHE.clear()
        with QueryService(
            ServiceConfig(workers=2, queue_depth=8, timeout_s=30.0), db=tiny_db
        ) as service:
            yield service
        EXECUTION_CACHE.clear()

    @staticmethod
    def _span(node, name):
        if node.get("name") == name:
            return node
        for child in node.get("children", []):
            found = TestServiceSurface._span(child, name)
            if found is not None:
                return found
        return None

    def test_responses_carry_the_chooser_decision(self, service):
        response = service.submit(
            EXTENDED_TPCH_SQL["Q14"], engine="Typer", trace_query=True
        )
        assert response["status"] == "ok"
        span = self._span(response["trace"], "chooser")
        assert span is not None, "every query gets a chooser span"
        assert span["attrs"]["outcome"] == "decided"
        assert span["attrs"]["chosen"] in ROUTES

    def test_declined_queries_say_so(self, service):
        response = service.submit(TPCH_SQL["Q18"], engine="Typer", trace_query=True)
        assert response["status"] == "ok"
        span = self._span(response["trace"], "chooser")
        assert span["attrs"]["outcome"] == "declined"

    def test_explain_reports_program_and_chooser(self, service):
        report = service.explain(EXTENDED_TPCH_SQL["Q19"])
        assert report["method"] == "run_compiled"
        assert report["program"]["driving"] == "lineitem"
        assert report["chooser"]["chosen"] in ROUTES

    def test_stats_snapshot_counts_decisions(self, service):
        service.submit(EXTENDED_TPCH_SQL["Q14"], engine="Typer")
        snapshot = service.stats_snapshot()
        assert snapshot["chooser"]["decisions"] >= 1
        assert snapshot["compile"]["queries"] >= 1
        assert snapshot["compile"]["enabled"] is True
        chosen = snapshot["chooser"]["chosen"]
        assert sum(chosen.values()) == snapshot["chooser"]["decisions"]

    def test_metrics_exposition_has_the_new_families(self, service):
        service.submit(EXTENDED_TPCH_SQL["Q14"], engine="Typer")
        text = service.metrics_text()
        assert "repro_compile_queries_total" in text
        assert "repro_chooser_decisions_total" in text
        assert "repro_compile_cache_entries" in text
