"""The six TPC-H queries unlocked by plan compilation.

Q3, Q5, Q10, Q12, Q14 and Q19 have no hand-wired template; lowering
falls back to the plan compiler and they run end-to-end on every
engine.  This suite checks the lowering route, cross-engine value
agreement, the morsel merge contract, the planner's dictionary-code
rewrites for string literals, and the diagnostics when compilation is
declined or disabled.
"""

from __future__ import annotations

import pytest

from repro.engines import ALL_ENGINES
from repro.sql import plan as ir
from repro.sql.api import compile_sql, execute_sql, plan_sql
from repro.sql.errors import SqlError
from repro.tpch import schema as sc
from repro.tpch.sql import EXTENDED_TPCH_SQL, TPCH_SQL

QUERIES = sorted(EXTENDED_TPCH_SQL)


@pytest.fixture(autouse=True)
def _fresh_compile_caches():
    """Keep per-test compiler state independent: the compiled-program
    cache keys on plan equality, which is exactly what some of these
    tests vary."""
    from repro.compile.program import clear_compile_cache

    clear_compile_cache()
    yield
    clear_compile_cache()


class TestLowering:
    @pytest.mark.parametrize("qid", QUERIES)
    def test_extended_queries_bind_to_the_compiler(self, qid):
        bound = compile_sql(EXTENDED_TPCH_SQL[qid])
        assert bound.method == "run_compiled"
        assert bound.workload.startswith("compiled-lineitem")
        assert bound.plan is not None

    def test_documented_templates_keep_their_hand_wired_route(self):
        for qid, sql in TPCH_SQL.items():
            bound = compile_sql(sql)
            assert bound.method == "run_tpch", qid

    def test_binding_str_elides_the_plan(self):
        bound = compile_sql(EXTENDED_TPCH_SQL["Q5"])
        text = str(bound)
        assert "plan=<plan>" in text
        assert "Aggregate" not in text, "plan repr must not leak into the str"

    def test_disabled_compiler_reports_why(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILE", "0")
        with pytest.raises(SqlError, match="REPRO_COMPILE"):
            compile_sql(EXTENDED_TPCH_SQL["Q3"])

    def test_no_binding_reports_the_supported_surface(self):
        # Bare projection with no aggregate: no template matches and
        # the compiler declines (nothing to aggregate).
        with pytest.raises(SqlError) as excinfo:
            compile_sql("SELECT l_orderkey FROM lineitem;")
        message = str(excinfo.value)
        assert "documented templates" in message
        assert "Q1->run_q1" in message  # the TPC-H runner surface
        assert "compiled fallback" in message
        assert "the compiler declined this plan" in message
        assert "nearest profiled workload by plan structure: projection-1" in message

    def test_in_subquery_decline_reason_is_specific(self):
        with pytest.raises(SqlError, match="IN \\(subquery\\)"):
            compile_sql(TPCH_SQL["Q18"].replace("c_custkey = o_custkey", "c_custkey = o_custkey AND o_totalprice > 0"))


class TestCrossEngine:
    @pytest.mark.parametrize("qid", QUERIES)
    def test_all_engines_return_the_same_value(self, tiny_db, qid):
        sql = EXTENDED_TPCH_SQL[qid]
        results = [execute_sql(sql, cls(), tiny_db) for cls in ALL_ENGINES]
        first = results[0]
        assert first.details["compiled"]["driving"] == "lineitem"
        for result in results[1:]:
            assert result.value == first.value
            assert result.tuples == first.tuples
            assert result.details["exact_totals"] == first.details["exact_totals"]

    def test_q5_decodes_nation_names(self, tiny_db):
        result = execute_sql(EXTENDED_TPCH_SQL["Q5"], ALL_ENGINES[0](), tiny_db)
        names = [row[0] for row in result.value["rows"]]
        assert names, "tiny db should produce at least one ASIA nation"
        assert set(names) <= set(sc.NATION_NAMES)

    def test_q12_groups_by_decoded_returnflag(self, tiny_db):
        result = execute_sql(EXTENDED_TPCH_SQL["Q12"], ALL_ENGINES[0](), tiny_db)
        flags = [row[0] for row in result.value["rows"]]
        assert set(flags) <= set(sc.RETURNFLAG_CODES)


class TestCompiledMorsels:
    @pytest.mark.parametrize("qid", QUERIES)
    def test_partitionings_match_single_shot(
        self, tiny_db, engine, qid, partitionings, assert_identical
    ):
        plan = plan_sql(EXTENDED_TPCH_SQL[qid])
        single = engine.run_compiled(tiny_db, plan)
        n_rows = engine.partition_rows(tiny_db, "run_compiled", {"plan": plan})
        for name, ranges in partitionings(n_rows).items():
            partials = [
                engine.run_compiled(tiny_db, plan, row_range=row_range)
                for row_range in ranges
            ]
            merged = engine.merge_morsels(
                tiny_db, "run_compiled", {"plan": plan}, partials
            )
            assert_identical(merged, single, f"{engine.name} {qid} [{name}]")


class TestStringEquality:
    """The planner rewrites ``col = 'NAME'`` on dictionary-encoded
    columns into exact integer-code comparisons."""

    @staticmethod
    def _filters(node):
        found = []
        stack = [node]
        while stack:
            item = stack.pop()
            if isinstance(item, ir.Filter):
                found.extend(item.predicates)
            for field in getattr(item, "__dataclass_fields__", {}):
                child = getattr(item, field)
                if hasattr(child, "__dataclass_fields__"):
                    stack.append(child)
        return found

    def test_region_name_becomes_its_code(self):
        plan = plan_sql(
            "SELECT SUM(r_regionkey) FROM region WHERE r_name = 'ASIA';"
        )
        predicates = self._filters(plan)
        assert any(
            isinstance(p, ir.Compare)
            and p.op == "="
            and isinstance(p.right, ir.ConstExpr)
            and p.right.value == sc.REGION_NAMES.index("ASIA")
            for p in predicates
        ), predicates

    def test_inequality_keeps_the_operator(self):
        plan = plan_sql(
            "SELECT SUM(l_quantity) FROM lineitem WHERE l_returnflag <> 'R';"
        )
        predicates = self._filters(plan)
        assert any(
            isinstance(p, ir.Compare)
            and p.op == "<>"
            and isinstance(p.right, ir.ConstExpr)
            and p.right.value == sc.RETURNFLAG_CODES["R"]
            for p in predicates
        ), predicates

    def test_unknown_value_lists_the_dictionary(self):
        with pytest.raises(SqlError, match="known values"):
            plan_sql("SELECT SUM(l_quantity) FROM lineitem WHERE l_returnflag = 'X';")

    def test_unencoded_column_names_the_supported_ones(self):
        with pytest.raises(SqlError, match="no string dictionary"):
            plan_sql("SELECT SUM(l_quantity) FROM lineitem WHERE l_shipdate = 'x';")
