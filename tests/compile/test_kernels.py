"""Compiled kernels vs naive references, property-based.

Three layers of the compiler's kernel set are checked against
independently written references:

* :func:`repro.compile.expr.compile_scalar` kernels against a
  per-element pure-Python evaluator (IEEE double arithmetic is the
  same scalar-by-scalar as vectorized, so equality is exact);
* :func:`repro.engines.scan.predicate_mask` against plain numpy
  comparisons on the stored values;
* :class:`repro.core.exactsum.ExactSum` against ``math.fsum`` (both
  are correctly rounded) plus the partition-invariance property the
  morsel merge protocol relies on.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compile import CompileError
from repro.compile.expr import compile_scalar
from repro.core.exactsum import ExactSum
from repro.engines.scan import predicate_mask
from repro.sql import plan as ir

# ---------------------------------------------------------------------------
# Scalar expression kernels
# ---------------------------------------------------------------------------

COLUMNS = ("a", "b", "c")

_column = st.sampled_from(COLUMNS).map(
    lambda name: ir.ColumnExpr(ref=ir.ColRef(table="t", column=name))
)
_const = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
).map(lambda value: ir.ConstExpr(value=value))

_trees = st.recursive(
    st.one_of(_column, _const),
    lambda child: st.builds(
        ir.Arith, op=st.sampled_from(["+", "-", "*"]), left=child, right=child
    ),
    max_leaves=10,
)

_values = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def _naive_scalar(expr, row: dict) -> float:
    """Reference evaluator: one row at a time, plain Python floats."""
    if isinstance(expr, ir.ColumnExpr):
        return row[expr.ref.column]
    if isinstance(expr, ir.ConstExpr):
        return float(expr.value)
    left = _naive_scalar(expr.left, row)
    right = _naive_scalar(expr.right, row)
    if expr.op == "+":
        return left + right
    if expr.op == "-":
        return left - right
    if expr.op == "*":
        return left * right
    raise AssertionError(expr.op)


def _count_arith(expr) -> int:
    if isinstance(expr, ir.Arith):
        return 1 + _count_arith(expr.left) + _count_arith(expr.right)
    return 0


def _used_columns(expr) -> list:
    if isinstance(expr, ir.ColumnExpr):
        return [(expr.ref.table, expr.ref.column)]
    if isinstance(expr, ir.Arith):
        return _used_columns(expr.left) + _used_columns(expr.right)
    return []


class TestScalarKernels:
    @given(
        expr=_trees,
        rows=st.lists(
            st.tuples(_values, _values, _values), min_size=1, max_size=24
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_per_element_reference(self, expr, rows):
        columns = {
            name: np.array([row[i] for row in rows], dtype=np.float64)
            for i, name in enumerate(COLUMNS)
        }
        kernel = compile_scalar(expr)
        out = kernel.evaluate(lambda table, col: columns[col], len(rows))
        expected = [
            _naive_scalar(expr, dict(zip(COLUMNS, row))) for row in rows
        ]
        assert out.shape == (len(rows),)
        for got, want in zip(out.tolist(), expected):
            assert got == want  # bitwise: same IEEE ops in the same order

    @given(expr=_trees)
    @settings(max_examples=100, deadline=None)
    def test_refs_and_nodes_describe_the_tree(self, expr):
        kernel = compile_scalar(expr)
        used = _used_columns(expr)
        assert list(kernel.refs) == list(dict.fromkeys(used))
        assert kernel.nodes == _count_arith(expr)

    def test_constant_only_kernel_broadcasts(self):
        kernel = compile_scalar(
            ir.Arith(op="*", left=ir.ConstExpr(value=3.0), right=ir.ConstExpr(value=0.5))
        )
        out = kernel.evaluate(lambda table, col: pytest.fail("no columns"), 5)
        assert out.tolist() == [1.5] * 5

    def test_declines_year_extraction(self):
        col = ir.ColumnExpr(ref=ir.ColRef(table="orders", column="o_orderdate"))
        with pytest.raises(CompileError, match="EXTRACT"):
            compile_scalar(ir.YearOf(arg=col))

    def test_declines_unknown_operator(self):
        bad = ir.Arith(op="%", left=ir.ConstExpr(value=1.0), right=ir.ConstExpr(value=2.0))
        with pytest.raises(CompileError, match="arithmetic"):
            compile_scalar(bad)

    def test_declines_nested_aggregate(self):
        agg = ir.AggCall(func="sum", arg=ir.ConstExpr(value=1.0))
        with pytest.raises(CompileError, match="aggregate"):
            compile_scalar(ir.Arith(op="+", left=agg, right=ir.ConstExpr(value=0.0)))


# ---------------------------------------------------------------------------
# Predicate masks (the compiler's filter kernels)
# ---------------------------------------------------------------------------

_NAIVE_OPS = {
    "le": lambda values, threshold: values <= threshold,
    "lt": lambda values, threshold: values < threshold,
    "ge": lambda values, threshold: values >= threshold,
    "gt": lambda values, threshold: values > threshold,
    "eq": lambda values, threshold: values == threshold,
}


class TestPredicateMask:
    @given(
        column=st.sampled_from(["l_shipdate", "l_quantity", "l_discount"]),
        op=st.sampled_from(sorted(_NAIVE_OPS)),
        threshold=st.one_of(
            st.integers(min_value=-5, max_value=3000),
            st.floats(min_value=-1.0, max_value=60.0, allow_nan=False),
        ),
    )
    @settings(max_examples=120, deadline=None)
    def test_matches_naive_comparison(self, tiny_db, column, op, threshold):
        table = tiny_db.table("lineitem")
        lo, hi = 0, table.n_rows
        mask = predicate_mask(table, column, op, threshold, lo, hi)
        naive = _NAIVE_OPS[op](table[column][lo:hi], threshold)
        assert np.array_equal(mask, naive)

    def test_subrange_is_a_slice_of_the_full_mask(self, tiny_db):
        table = tiny_db.table("lineitem")
        full = predicate_mask(table, "l_quantity", "lt", 24, 0, table.n_rows)
        lo, hi = 1024, 4096
        part = predicate_mask(table, "l_quantity", "lt", 24, lo, hi)
        assert np.array_equal(part, full[lo:hi])

    def test_encoded_column_compares_in_code_domain(self, tiny_db):
        from repro.tpch import schema as sc

        table = tiny_db.table("lineitem")
        code = sc.RETURNFLAG_CODES["R"]
        mask = predicate_mask(table, "l_returnflag", "eq", code, 0, table.n_rows)
        assert np.array_equal(mask, table["l_returnflag"][:] == code)
        assert mask.any(), "tiny db should contain returned lineitems"


# ---------------------------------------------------------------------------
# Exact aggregation state
# ---------------------------------------------------------------------------

_arrays = st.lists(
    st.floats(
        min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
    ),
    min_size=0,
    max_size=64,
)


class TestExactSum:
    @given(values=_arrays)
    @settings(max_examples=200, deadline=None)
    def test_total_is_correctly_rounded(self, values):
        assert ExactSum.of_array(values).total() == math.fsum(values)

    @given(values=_arrays, cut=st.integers(min_value=0, max_value=64))
    @settings(max_examples=200, deadline=None)
    def test_partition_invariance(self, values, cut):
        cut = min(cut, len(values))
        whole = ExactSum.of_array(values)
        merged = ExactSum.of_array(values[:cut]) + ExactSum.of_array(values[cut:])
        assert merged.units == whole.units
        assert merged.total() == whole.total()

    def test_catastrophic_cancellation_stays_exact(self):
        values = [1e16, 1.0, -1e16]
        assert ExactSum.of_array(values).total() == 1.0
        assert float(np.sum(np.array(values))) != 1.0, (
            "the naive float sum must actually lose the 1.0 for this "
            "property to be meaningful"
        )
