"""Compiled programs vs hand-wired templates: bit-identical answers.

The compiler is only trustworthy if, on the queries the hand-wired
engine paths already answer, it produces the *same bits* -- same
IEEE-754 doubles, not approximately-equal floats.  This matrix runs
TPC-H Q1 and Q6 (documented texts) plus flattened forms of Q9 and Q18
through ``run_compiled`` on every engine and checks the compiled
exact totals against the hand-wired values (bit for bit on the
ExactSum-based engines, at ulp-scale tolerance on the two reference
engines -- see ``REFERENCE_ENGINES``), then re-checks the compiled
path under morsel partitionings and under the process-pool executor
(``repro.core.parallel.WorkerPool``).

Q9 and Q18 are flattened because their documented texts use shapes the
compiler deliberately declines (a derived table with EXTRACT(YEAR),
an IN (subquery) semi-join); the flattened forms keep the aggregates
whose totals the hand-wired runners report.
"""

from __future__ import annotations

import math

import pytest

from repro.core.exactsum import ExactSum
from repro.core.parallel import WorkerPool
from repro.sql.api import plan_sql
from repro.tpch import schema as sc
from repro.tpch.sql import TPCH_SQL

#: Same aggregate as documented Q9, grouped by nation only: the
#: hand-wired runner reports the global profit, which is the sum of
#: these groups' exact totals.
Q9_FLAT = """\
SELECT n_name, SUM(l_extendedprice * (1 - l_discount)
                   - ps_supplycost * l_quantity) AS profit
FROM part, supplier, lineitem, partsupp, orders, nation
WHERE s_suppkey = l_suppkey
  AND ps_suppkey = l_suppkey
  AND ps_partkey = l_partkey
  AND p_partkey = l_partkey
  AND o_orderkey = l_orderkey
  AND s_nationkey = n_nationkey
  AND p_name LIKE '%green%'
GROUP BY n_name;"""

#: The inner winners query of documented Q18: the hand-wired runner
#: reports the winner count and their total quantity.
Q18_FLAT = """\
SELECT l_orderkey, SUM(l_quantity) AS qty
FROM lineitem
GROUP BY l_orderkey
HAVING SUM(l_quantity) > 300;"""


def compiled(engine, db, sql):
    """(program, result) for one compiled single-shot run."""
    from repro.compile.program import compiled_program

    plan = plan_sql(sql)
    return compiled_program(plan), engine.run_compiled(db, plan)


def exact_total(program, result, alias: str) -> float:
    """The bit-exact grand total of the SUM output named ``alias``."""
    out = next(o for o in program.outputs if o.name == alias)
    slot = program._slot_of(out.expr)
    return ExactSum(result.details["exact_totals"][slot.name]).total()


#: The interpreter engines ("DBMS R"/"DBMS C") report *reference*
#: values computed with numpy's pairwise summation; the compiled path
#: (like Typer and Tectorwise) reports correctly-rounded ExactSum
#: totals.  Pairwise summation is accurate but not correctly rounded,
#: so those engines are compared at an ulp-scale tolerance while the
#: ExactSum engines are compared bit for bit.
REFERENCE_ENGINES = {"DBMS R", "DBMS C"}
RELTOL = 1e-12


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=RELTOL, abs_tol=1e-9)


class TestAgainstHandWired:
    def test_q1_totals(self, small_db, engine):
        hand = engine.run_q1(small_db)
        program, result = compiled(engine, small_db, TPCH_SQL["Q1"])
        if engine.name in REFERENCE_ENGINES:
            # Per-group reference dict keyed (returnflag, linestatus).
            by_key = {
                (sc.RETURNFLAG_CODES[row[0]], sc.LINESTATUS_CODES[row[1]]): dict(
                    zip(result.value["columns"], row)
                )
                for row in result.value["rows"]
            }
            assert by_key.keys() == hand.value.keys()
            for key, ref in hand.value.items():
                row = by_key[key]
                assert row["count_order"] == ref["count"], key
                # quantities are integer-valued: exact on both paths
                assert row["sum_qty"] == ref["sum_qty"], key
                for alias in ("sum_base_price", "sum_disc_price", "sum_charge"):
                    assert _close(row[alias], ref[alias]), (key, alias)
        else:
            for alias in (
                "sum_qty", "sum_base_price", "sum_disc_price", "sum_charge"
            ):
                assert exact_total(program, result, alias) == hand.value[alias], alias
            assert result.details["groups"] == hand.value["groups"]

    def test_q6_revenue(self, small_db, engine):
        hand = engine.run_q6(small_db)
        program, result = compiled(engine, small_db, TPCH_SQL["Q6"])
        (row,) = result.value["rows"]
        assert row[0] == exact_total(program, result, "revenue")
        if engine.name in REFERENCE_ENGINES:
            assert _close(row[0], hand.value)
        else:
            assert row[0] == hand.value

    def test_q9_profit(self, small_db, engine):
        hand = engine.run_q9(small_db)
        program, result = compiled(engine, small_db, Q9_FLAT)
        assert result.details["groups"] > 0
        if engine.name in REFERENCE_ENGINES:
            # Reference dict keyed (nation index, order year); the
            # flattened query folds the years into one nation total.
            by_nation: dict[int, list[float]] = {}
            for (nation, _year), profit in hand.value.items():
                by_nation.setdefault(nation, []).append(profit)
            for name, profit in result.value["rows"]:
                nation = sc.NATION_NAMES.index(name)
                assert _close(profit, math.fsum(by_nation.pop(nation))), name
            assert not by_nation, "compiled result missed nations"
        else:
            assert exact_total(program, result, "profit") == hand.value

    def test_q18_winners(self, small_db, engine):
        hand = engine.run_q18(small_db)
        program, result = compiled(engine, small_db, Q18_FLAT)
        if engine.name in REFERENCE_ENGINES:
            # Reference dict: winner orderkey -> total quantity.
            # Quantities are integer-valued, so equality is exact even
            # across the two summation orders.
            assert hand.value, "Q18 winners must exist at this scale"
            got = {int(orderkey): qty for orderkey, qty in result.value["rows"]}
            assert got == hand.value
        else:
            assert hand.value["winners"] > 0, (
                "Q18 needs a scale factor where winners exist or the "
                "comparison is vacuous"
            )
            assert result.details["groups"] == hand.value["winners"]
            assert len(result.value["rows"]) == hand.value["winners"]
            assert (
                exact_total(program, result, "qty") == hand.value["sum_winner_qty"]
            )


MATRIX = [
    ("Q1", TPCH_SQL["Q1"]),
    ("Q6", TPCH_SQL["Q6"]),
    ("Q9-flat", Q9_FLAT),
    ("Q18-flat", Q18_FLAT),
]


class TestCompiledMorsels:
    """Compiled runs must obey the same merge contract as hand-wired
    ones: any tiling of the driving table merges to the single-shot
    result exactly -- values, tuples, work, operator attribution."""

    @pytest.mark.parametrize(("qid", "sql"), MATRIX, ids=[q for q, _ in MATRIX])
    def test_partitionings_match_single_shot(
        self, small_db, engine, qid, sql, partitionings, assert_identical
    ):
        plan = plan_sql(sql)
        single = engine.run_compiled(small_db, plan)
        n_rows = engine.partition_rows(small_db, "run_compiled", {"plan": plan})
        for name, ranges in partitionings(n_rows).items():
            partials = [
                engine.run_compiled(small_db, plan, row_range=row_range)
                for row_range in ranges
            ]
            merged = engine.merge_morsels(
                small_db, "run_compiled", {"plan": plan}, partials
            )
            assert_identical(merged, single, f"{engine.name} {qid} [{name}]")


class TestProcessExecutor:
    """The spawn-based worker pool ships compiled partials across
    process boundaries; the merged answer must stay bit-identical."""

    @pytest.fixture(scope="module")
    def pool(self, small_db):
        with WorkerPool(small_db, n_workers=2) as pool:
            yield pool

    @pytest.mark.parametrize(("qid", "sql"), MATRIX, ids=[q for q, _ in MATRIX])
    def test_pool_matches_single_shot(
        self, small_db, engine, pool, qid, sql, assert_identical
    ):
        plan = plan_sql(sql)
        single = engine.run_compiled(small_db, plan)
        pooled = pool.run_query(engine, "run_compiled", plan=plan)
        assert_identical(pooled, single, f"{engine.name} {qid} [pool]")

    def test_pool_agrees_with_hand_wired_totals(self, small_db, pool):
        from repro.compile.program import compiled_program
        from repro.engines import TyperEngine

        engine = TyperEngine()
        plan = plan_sql(TPCH_SQL["Q1"])
        program = compiled_program(plan)
        pooled = pool.run_query(engine, "run_compiled", plan=plan)
        hand = engine.run_q1(small_db)
        assert exact_total(program, pooled, "sum_qty") == hand.value["sum_qty"]
