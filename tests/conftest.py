"""Shared fixtures: generated TPC-H databases and profilers.

Scale factors are chosen for test speed; the integration tests that pin
the paper's *quantitative* bands use ``paper_db`` whose working sets
exceed the modelled L3 the way the paper's SF 5 database does.
"""

from __future__ import annotations

import pytest

from repro import BROADWELL, SKYLAKE, MicroArchProfiler
from repro.tpch import generate_database

TINY_SF = 0.002
SMALL_SF = 0.02
PAPER_SF = 0.2


@pytest.fixture(scope="session")
def tiny_db():
    """A few thousand lineitem rows; for fast unit-level checks."""
    return generate_database(scale_factor=TINY_SF, seed=7)


@pytest.fixture(scope="session")
def small_db():
    """~120k lineitem rows; for engine-correctness cross-checks."""
    return generate_database(scale_factor=SMALL_SF, seed=11)


@pytest.fixture(scope="session")
def paper_db():
    """~1.2M lineitem rows: scanned columns and the large join's hash
    table exceed the modelled 35 MB L3, as in the paper's setup."""
    return generate_database(scale_factor=PAPER_SF, seed=42)


@pytest.fixture(scope="session")
def big_db():
    """SF 1.0 (~6M lineitem rows): the large join's hash table (~68 MB)
    and Q18's aggregation table exceed the 35 MB L3, putting the random
    accesses in the long-latency regime the paper studies at SF 5."""
    return generate_database(
        scale_factor=1.0,
        seed=42,
        tables=("lineitem", "orders", "supplier", "nation", "partsupp"),
    )


@pytest.fixture(scope="session")
def profiler():
    return MicroArchProfiler(spec=BROADWELL)


@pytest.fixture(scope="session")
def skylake_profiler():
    return MicroArchProfiler(spec=SKYLAKE)
