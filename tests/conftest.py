"""Shared fixtures: generated TPC-H databases and profilers.

Scale factors are chosen for test speed; the integration tests that pin
the paper's *quantitative* bands use ``paper_db`` whose working sets
exceed the modelled L3 the way the paper's SF 5 database does.
"""

from __future__ import annotations

import pytest

from repro import BROADWELL, SKYLAKE, MicroArchProfiler
from repro.tpch import generate_database

TINY_SF = 0.002
SMALL_SF = 0.02
PAPER_SF = 0.2


@pytest.fixture(scope="session")
def db_factory():
    """Session-scoped database pool keyed on the generation arguments.

    Modules that need a non-standard database (odd seed, skew, table
    subset) request it here, so every test asking for the same identity
    shares one set of arrays for the whole session instead of
    regenerating per module."""
    pool: dict = {}

    def get(scale_factor, seed=7, tables=None, skew=None):
        key = (scale_factor, seed, tables, skew)
        if key not in pool:
            kwargs = {"scale_factor": scale_factor, "seed": seed}
            if tables is not None:
                kwargs["tables"] = tables
            if skew is not None:
                kwargs["skew"] = skew
            pool[key] = generate_database(**kwargs)
        return pool[key]

    return get


@pytest.fixture(scope="session")
def tiny_db(db_factory):
    """A few thousand lineitem rows; for fast unit-level checks."""
    return db_factory(TINY_SF, seed=7)


@pytest.fixture(scope="session")
def small_db(db_factory):
    """~120k lineitem rows; for engine-correctness cross-checks."""
    return db_factory(SMALL_SF, seed=11)


@pytest.fixture(scope="session")
def paper_db(db_factory):
    """~1.2M lineitem rows: scanned columns and the large join's hash
    table exceed the modelled 35 MB L3, as in the paper's setup."""
    return db_factory(PAPER_SF, seed=42)


@pytest.fixture(scope="session")
def big_db(db_factory):
    """SF 1.0 (~6M lineitem rows): the large join's hash table (~68 MB)
    and Q18's aggregation table exceed the 35 MB L3, putting the random
    accesses in the long-latency regime the paper studies at SF 5."""
    return db_factory(
        1.0,
        seed=42,
        tables=("lineitem", "orders", "supplier", "nation", "partsupp"),
    )


@pytest.fixture(scope="session")
def profiler():
    return MicroArchProfiler(spec=BROADWELL)


@pytest.fixture(scope="session")
def skylake_profiler():
    return MicroArchProfiler(spec=SKYLAKE)
