"""The open-loop load generator end to end (slow: real wall-clock).

Runs a shortened curve through :mod:`benchmarks.shard_smoke` and checks
the *shape* of what it records -- quantile ordering, achieved vs
offered throughput accounting, histogram agreement -- not absolute
numbers, which belong to BENCH_PR10.json with its host stamp.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "benchmarks"))

import shard_smoke  # noqa: E402

from repro.shard.cluster import ShardCluster  # noqa: E402
from repro.shard.coordinator import Coordinator  # noqa: E402
from repro.tpch.sql import TPCH_SQL  # noqa: E402


@pytest.mark.slow
def test_open_loop_run_records_ordered_quantiles(tiny_db):
    with ShardCluster(tiny_db, n_shards=2, spawn="thread") as cluster:
        coordinator = Coordinator(tiny_db, cluster)
        coordinator.execute(TPCH_SQL["Q6"])  # warm caches
        entry = shard_smoke.open_loop_run(
            coordinator, TPCH_SQL["Q6"], rate_qps=20.0, n_requests=40
        )
    quantiles = entry["latency_s"]
    assert quantiles["p50"] <= quantiles["p99"] <= quantiles["p999"]
    assert entry["requests"] == 40
    assert entry["achieved_qps"] > 0

    histogram = coordinator.stats_snapshot()["latency_quantiles_s"]
    assert "route=scatter" in histogram
    assert set(histogram["route=scatter"]) == {"p50", "p99", "p999"}


@pytest.mark.slow
def test_smoke_gate_passes(tiny_db):
    """The exact function CI runs, including the injected node kill."""
    shard_smoke.smoke(tiny_db)


def test_exact_quantiles_on_a_known_sample():
    sample = [float(i) for i in range(101)]  # 0..100
    quantiles = shard_smoke._exact_quantiles(sample)
    assert quantiles["p50"] == 50.0
    assert quantiles["p99"] == 99.0
    assert quantiles["p999"] == 100.0
