"""Bit-identity equivalence matrix: sharded scatter-gather vs the
single-node oracle.

Every cell asserts *exact* equality of values and tuple counts --
``resp["value"] == jsonable(oracle.value)`` -- on all four engines,
all shard counts and both shard modes.  Exactness holds because every
merged aggregate travels as ExactSum units (or integer counts), whose
merge is associative and commutative, and the coordinator's finisher
rounds exactly once, globally.  (The established 1e-12 interpreter
tolerance is therefore met with margin: the margin is zero bits.)
"""

from __future__ import annotations

import pytest

from repro.engines import engine_by_name
from repro.serve import protocol
from repro.sql import compile_sql
from repro.tpch.sql import GROUPBY_SQL, TPCH_SQL, projection_sql

Q18_FLAT = """\
SELECT l_orderkey, SUM(l_quantity) AS qty
FROM lineitem
GROUP BY l_orderkey
HAVING SUM(l_quantity) > 300;"""

QUERIES = {
    "Q1": TPCH_SQL["Q1"],
    "Q6": TPCH_SQL["Q6"],
    "groupby": GROUPBY_SQL,
    "projection": projection_sql(2),
    "Q18-compiled": Q18_FLAT,
}
ENGINES = ("Typer", "Tectorwise", "DBMS R", "DBMS C")


@pytest.mark.parametrize("engine_name", ENGINES)
@pytest.mark.parametrize("query_name", sorted(QUERIES))
def test_sharded_matches_single_node_exactly(
    sharded, tiny_db, query_name, engine_name
):
    _, coordinator = sharded
    sql = QUERIES[query_name]
    oracle = compile_sql(sql).execute(engine_by_name(engine_name), tiny_db)
    response = coordinator.execute(sql, engine=engine_name)
    assert response["status"] == "ok", response.get("error")
    assert response["route"] == "scatter"
    assert response["value"] == protocol.jsonable(oracle.value)
    assert response["tuples"] == oracle.tuples


def test_compiled_query_lowers_to_the_compiled_route(tiny_db):
    bound = compile_sql(Q18_FLAT)
    assert bound.method == "run_compiled"


class TestRouting:
    def test_dimension_only_query_routes_to_one_shard(self, sharded):
        cluster, coordinator = sharded
        response = coordinator.execute("SELECT COUNT(*) FROM orders;")
        assert response["status"] == "ok", response.get("error")
        assert response["route"] == "single"
        assert 0 <= response["shard"] < cluster.n_shards

    def test_single_shard_round_robin_rotates(self, sharded):
        cluster, coordinator = sharded
        if cluster.n_shards == 1:
            pytest.skip("round robin needs more than one shard")
        shards = {
            coordinator.execute("SELECT COUNT(*) FROM orders;")["shard"]
            for _ in range(cluster.n_shards * 2)
        }
        assert len(shards) == cluster.n_shards

    def test_scatter_reports_every_shard(self, sharded):
        cluster, coordinator = sharded
        response = coordinator.execute(TPCH_SQL["Q6"])
        assert response["shards"] == cluster.n_shards

    def test_bad_sql_is_a_clean_error(self, sharded):
        _, coordinator = sharded
        response = coordinator.execute("SELECT nonsense FROM nowhere;")
        assert response["status"] == "error"
        assert response["error"]


class TestObservability:
    def test_latency_quantiles_have_paper_names(self, sharded):
        _, coordinator = sharded
        coordinator.execute(TPCH_SQL["Q6"])
        stats = coordinator.stats_snapshot()
        latency = stats["latency_quantiles_s"]
        assert latency, "at least one route should have latency"
        for quantiles in latency.values():
            assert set(quantiles) == {"p50", "p99", "p999"}

    def test_trace_carries_a_shard_span_per_shard(self, sharded):
        cluster, coordinator = sharded
        response = coordinator.execute(TPCH_SQL["Q6"], trace_query=True)
        assert response["status"] == "ok", response.get("error")
        rendered = response["trace"]

        def spans(node):
            yield node
            for child in node.get("children", ()):
                yield from spans(child)

        shard_spans = [s for s in spans(rendered) if s["name"] == "shard"]
        assert len(shard_spans) == cluster.n_shards
