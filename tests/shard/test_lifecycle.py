"""Cluster lifecycle: ordered teardown (sockets -> processes ->
segments), single-owner atexit bookkeeping, and Ctrl-C reclamation --
the shard-cluster mirror of the PR 3 shm lifecycle tests.
"""

from __future__ import annotations

import signal
import socket
import subprocess
import sys
import textwrap
import time
from multiprocessing import shared_memory

import pytest

from repro.shard.cluster import ShardCluster
from repro.storage.shm import export_database


def segment_exists(name: str) -> bool:
    try:
        probe = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    probe.close()
    return True


def port_open(endpoint) -> bool:
    try:
        socket.create_connection(tuple(endpoint), timeout=0.5).close()
    except OSError:
        return False
    return True


class TestAtexitOwnership:
    """Behavioral probes: ``atexit._ncallbacks`` never decrements on
    unregister (CPython nulls the slot), so ownership is asserted by
    what actually happens at interpreter exit."""

    def test_disown_keeps_unlink_working(self, tiny_db):
        shared = export_database(tiny_db)
        shared.disown_atexit()
        shared.unlink()  # still works, still idempotent
        shared.unlink()
        assert not segment_exists(shared.segment_name)

    def test_disown_really_removes_the_unlink_hook(self, tmp_path):
        """Behavioral probe of ``disown_atexit``: a disowned segment with
        no adopting owner reaches interpreter exit still linked, so the
        multiprocessing resource tracker has to clean it up and says so
        on stderr.  The owned (default) exporter's hook unlinks first,
        so its exit is silent.  Either way the segment is gone after."""
        script = tmp_path / "exporter.py"
        script.write_text(textwrap.dedent("""
            import sys
            from repro.tpch import generate_database
            from repro.storage.shm import export_database

            if __name__ == "__main__":
                db = generate_database(scale_factor=0.002, seed=7)
                shared = export_database(db)
                if "--disown" in sys.argv:
                    shared.disown_atexit()
                print(shared.segment_name, flush=True)
        """))

        def run(*extra):
            completed = subprocess.run(
                [sys.executable, str(script), *extra],
                capture_output=True, text=True, timeout=120,
            )
            assert completed.returncode == 0, completed.stderr
            return completed.stdout.split()[-1], completed.stderr

        name, stderr = run()
        assert "leaked shared_memory" not in stderr, stderr
        assert not segment_exists(name)

        name, stderr = run("--disown")
        assert "leaked shared_memory" in stderr, (
            "disowned segment was unlinked by the exporter's own hook: "
            "disown_atexit did not unregister it"
        )
        deadline = time.monotonic() + 10.0
        while segment_exists(name) and time.monotonic() < deadline:
            time.sleep(0.05)  # the tracker reclaims it just after exit
        assert not segment_exists(name)

    def test_cluster_hook_reclaims_everything_on_normal_exit(self, tmp_path):
        """Exit WITHOUT closing the cluster: the single adopted hook must
        tear down sockets -> processes -> segments, with a clean stderr
        (the pre-fix double cleanup raced per-segment unlink hooks
        against live node processes at interpreter exit)."""
        script = tmp_path / "forgetful_owner.py"
        script.write_text(textwrap.dedent("""
            from repro.tpch import generate_database
            from repro.shard.cluster import ShardCluster

            if __name__ == "__main__":
                db = generate_database(scale_factor=0.002, seed=7)
                cluster = ShardCluster(db, n_shards=2, spawn="process")
                print(" ".join(cluster.segment_names()), flush=True)
                # no close(): the atexit hook owns the teardown
        """))
        completed = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True, text=True, timeout=180,
        )
        assert completed.returncode == 0, completed.stderr
        names = completed.stdout.split()
        assert len(names) == 2
        deadline = time.monotonic() + 15.0
        while any(segment_exists(name) for name in names) and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not any(segment_exists(name) for name in names)
        assert "Traceback" not in completed.stderr, completed.stderr


class TestOrderedClose:
    def test_close_unlinks_every_segment(self, tiny_db):
        cluster = ShardCluster(tiny_db, n_shards=2, spawn="process")
        names = cluster.segment_names()
        assert len(names) == 2
        assert all(segment_exists(name) for name in names)
        endpoints = [replica for shard in cluster.endpoints for replica in shard]
        cluster.close()
        assert not any(segment_exists(name) for name in names)
        assert not any(port_open(endpoint) for endpoint in endpoints)
        for process in cluster._processes:
            assert process.exitcode is not None

    def test_close_is_idempotent(self, tiny_db):
        cluster = ShardCluster(tiny_db, n_shards=2, spawn="thread")
        cluster.close()
        cluster.close()

    def test_context_manager_closes_on_exception(self, tiny_db):
        with pytest.raises(RuntimeError, match="boom"):
            with ShardCluster(tiny_db, n_shards=2, spawn="process") as cluster:
                names = cluster.segment_names()
                raise RuntimeError("boom")
        assert not any(segment_exists(name) for name in names)

    def test_faults_env_is_restored(self, tiny_db, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_SHARD_FAULTS", raising=False)
        with ShardCluster(tiny_db, n_shards=1, spawn="thread", faults=True):
            assert os.environ.get("REPRO_SHARD_FAULTS") == "1"
        assert "REPRO_SHARD_FAULTS" not in os.environ


class TestSigint:
    def test_sigint_unlinks_every_shard_segment(self, tmp_path):
        """Ctrl-C in the coordinating process must reclaim every shard's
        segment through the cluster's single ordered atexit hook."""
        script = tmp_path / "cluster_owner.py"
        script.write_text(textwrap.dedent("""
            import time
            from repro.tpch import generate_database
            from repro.shard.cluster import ShardCluster

            if __name__ == "__main__":
                db = generate_database(scale_factor=0.002, seed=7)
                cluster = ShardCluster(db, n_shards=2, spawn="process")
                print(" ".join(cluster.segment_names()), flush=True)
                time.sleep(60)  # parked until the parent interrupts us
        """))
        process = subprocess.Popen(
            [sys.executable, str(script)],
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            names = process.stdout.readline().split()
            assert names, "cluster never reported its segments"
            assert all(segment_exists(name) for name in names)
            process.send_signal(signal.SIGINT)
            process.wait(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
        deadline = time.monotonic() + 15.0
        while any(segment_exists(name) for name in names) and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not any(segment_exists(name) for name in names)
