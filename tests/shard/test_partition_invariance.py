"""Scatter-gather merging is partition-invariant.

The bit-identity argument rests on two properties tested here with
hypothesis-drawn adversarial partitionings:

1. ``shard_assignment`` is a true partition of the fact table -- every
   row owned exactly once, in sorted order -- for both modes and any
   shard count.
2. Merging ExactSum partials is invariant under *how* the rows were cut
   up: arbitrary shard boundaries, and arbitrary morsel partitionings
   within each shard (the two-level cut the coordinator actually
   performs), round to the same float64 as a single flat sum.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exactsum import ExactSum
from repro.engines.morsel import merge_states
from repro.shard.partition import SHARD_MODES, shard_assignment

finite_doubles = st.floats(
    allow_nan=False, allow_infinity=False, allow_subnormal=True, width=64
)


def cut_points(data, n_values, max_cuts):
    n_cuts = data.draw(st.integers(0, max_cuts))
    cuts = sorted(
        data.draw(st.integers(0, n_values), label="cut") for _ in range(n_cuts)
    )
    return [0, *cuts, n_values]


class TestShardAssignmentIsAPartition:
    @given(
        mode=st.sampled_from(SHARD_MODES),
        n_shards=st.integers(1, 5),
    )
    @settings(max_examples=60, deadline=None)
    def test_every_row_owned_exactly_once(self, tiny_db, mode, n_shards):
        assignment = shard_assignment(tiny_db, n_shards, mode)
        assert len(assignment) == n_shards
        for indices in assignment:
            assert np.all(np.diff(indices) > 0) or len(indices) <= 1
        merged = np.sort(np.concatenate(assignment))
        n_rows = tiny_db.table("lineitem").n_rows
        np.testing.assert_array_equal(merged, np.arange(n_rows))


class TestMergeIsPartitionInvariant:
    @given(st.lists(finite_doubles, min_size=1, max_size=60), st.data())
    @settings(max_examples=150, deadline=None)
    def test_two_level_cut_rounds_to_the_same_float64(self, values, data):
        """Arbitrary shard boundaries, then arbitrary morsel boundaries
        within each shard: per-morsel ExactSums merged per shard, then
        across shards, must round to the flat sum's float64 exactly."""
        flat = ExactSum.of(*values).total()
        shard_bounds = cut_points(data, len(values), max_cuts=4)
        total = ExactSum()
        for lo, hi in zip(shard_bounds, shard_bounds[1:]):
            shard_values = values[lo:hi]
            morsel_bounds = cut_points(data, len(shard_values), max_cuts=3)
            shard_partial = ExactSum()
            for mlo, mhi in zip(morsel_bounds, morsel_bounds[1:]):
                shard_partial += ExactSum.of(*shard_values[mlo:mhi])
            total += shard_partial
        assert total == ExactSum.of(*values)  # exact units, not just rounding
        assert total.total() == flat

    @given(st.lists(finite_doubles, min_size=1, max_size=40), st.data())
    @settings(max_examples=100, deadline=None)
    def test_merge_states_is_partition_invariant(self, values, data):
        """The engines' actual state merger (``merge_states``) preserves
        the invariance: ExactSum entries add, counts add, regardless of
        the cut."""
        bounds = cut_points(data, len(values), max_cuts=5)
        merged: dict = {}
        for lo, hi in zip(bounds, bounds[1:]):
            piece = {
                "sum": ExactSum.of(*values[lo:hi]),
                "count": hi - lo,
            }
            merged = merge_states(merged, piece)
        assert merged["sum"] == ExactSum.of(*values)
        assert merged["sum"].total() == ExactSum.of(*values).total()
        assert merged["count"] == len(values)

    @given(st.lists(finite_doubles, min_size=1, max_size=40), st.data())
    @settings(max_examples=100, deadline=None)
    def test_merge_order_is_irrelevant(self, values, data):
        """Gather order is nondeterministic (threads race); the merge
        must not care.  Shuffle the shard partials before merging."""
        bounds = cut_points(data, len(values), max_cuts=4)
        partials = [
            ExactSum.of(*values[lo:hi]) for lo, hi in zip(bounds, bounds[1:])
        ]
        permutation = data.draw(st.permutations(range(len(partials))))
        total = ExactSum()
        for index in permutation:
            total += partials[index]
        assert total.total() == ExactSum.of(*values).total()
