"""Fixtures for sharded scatter-gather tests.

Thread-spawn clusters back the equivalence matrix (cheap, in-process,
deterministic); the fault and lifecycle tests build their own process
clusters per test because killing a node consumes it.
"""

from __future__ import annotations

import pytest

from repro.shard.cluster import ShardCluster
from repro.shard.coordinator import Coordinator

SHARD_COUNTS = (1, 2, 3)
SHARD_MODES = ("hash", "range")


@pytest.fixture(
    scope="module",
    params=[
        (n_shards, mode) for n_shards in SHARD_COUNTS for mode in SHARD_MODES
    ],
    ids=[
        f"{n_shards}shard-{mode}"
        for n_shards in SHARD_COUNTS
        for mode in SHARD_MODES
    ],
)
def sharded(request, tiny_db):
    """(cluster, coordinator) per (shard count, mode) cell of the matrix."""
    n_shards, mode = request.param
    with ShardCluster(tiny_db, n_shards=n_shards, mode=mode, spawn="thread") as cluster:
        yield cluster, Coordinator(tiny_db, cluster)
