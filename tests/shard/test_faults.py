"""Fault injection: kill a node mid-query, drop/delay its socket,
corrupt its partial -- and assert the failover machinery produces the
*same bits* the healthy cluster would, plus a clean error (never a
hang) once every replica of a shard is gone.
"""

from __future__ import annotations

import pytest

from repro.engines import engine_by_name
from repro.serve import protocol
from repro.shard.cluster import KILLED_EXIT_CODE, ShardCluster
from repro.shard.coordinator import Coordinator, CoordinatorConfig
from repro.shard.faults import FaultPlan
from repro.sql import compile_sql
from repro.tpch.sql import TPCH_SQL


@pytest.fixture(scope="module")
def q6_expected(tiny_db):
    oracle = compile_sql(TPCH_SQL["Q6"]).execute(engine_by_name("Typer"), tiny_db)
    return protocol.jsonable(oracle.value), oracle.tuples


def failover_counts(coordinator):
    snapshot = coordinator.metrics.snapshot()
    return dict(snapshot["repro_shard_failover_total"]["series"])


class TestThreadClusterFaults:
    """drop / delay / corrupt run on thread clusters: the faults live in
    the coordinator's client path, so no real process needs to die."""

    @pytest.mark.parametrize("kind", ["drop", "delay", "corrupt"])
    def test_fault_fails_over_bit_identically(self, tiny_db, q6_expected, kind):
        plan = FaultPlan()
        if kind == "delay":
            plan.delay(0, seconds=0.01)
        else:
            getattr(plan, kind)(0)
        with ShardCluster(
            tiny_db, n_shards=2, replicas=2, spawn="thread", faults=True
        ) as cluster:
            coordinator = Coordinator(tiny_db, cluster, fault_plan=plan)
            response = coordinator.execute(TPCH_SQL["Q6"])
            assert response["status"] == "ok", response.get("error")
            assert (response["value"], response["tuples"]) == q6_expected
            assert response["failovers"], "fault must surface as a failover"
            assert response["failovers"][0]["shard"] == 0

    def test_failover_metric_is_labelled(self, tiny_db, q6_expected):
        with ShardCluster(
            tiny_db, n_shards=2, replicas=2, spawn="thread", faults=True
        ) as cluster:
            coordinator = Coordinator(
                tiny_db, cluster, fault_plan=FaultPlan().corrupt(1)
            )
            response = coordinator.execute(TPCH_SQL["Q6"])
            assert response["status"] == "ok", response.get("error")
            counts = failover_counts(coordinator)
            # labels are (shard, reason-kind), in labelname order
            assert counts.get(("1", "corrupt-partial")) == 1.0

    def test_corrupt_partial_never_merges(self, tiny_db, q6_expected):
        """A mangled payload must fail the digest check on the
        coordinator, not deserialize into a wrong answer."""
        with ShardCluster(
            tiny_db, n_shards=2, replicas=2, spawn="thread", faults=True
        ) as cluster:
            coordinator = Coordinator(
                tiny_db, cluster, fault_plan=FaultPlan().corrupt(0)
            )
            response = coordinator.execute(TPCH_SQL["Q6"])
            assert response["status"] == "ok", response.get("error")
            assert (response["value"], response["tuples"]) == q6_expected
            reason = response["failovers"][0]["reason"]
            assert reason.startswith("corrupt-partial")
            assert "digest" in reason

    def test_all_replicas_down_is_a_clean_error(self, tiny_db):
        """Exhausting every replica of one shard reports which shard and
        why -- a bounded error response, not a hang or a stack trace."""
        plan = FaultPlan().drop(0, times=100)
        with ShardCluster(
            tiny_db, n_shards=2, replicas=1, spawn="thread", faults=True
        ) as cluster:
            coordinator = Coordinator(
                tiny_db,
                cluster,
                fault_plan=plan,
                config=CoordinatorConfig(backoff_base_s=0.001, backoff_max_s=0.002),
            )
            response = coordinator.execute(TPCH_SQL["Q6"])
            assert response["status"] == "error"
            assert "shard 0" in response["error"]
            assert "all replicas down" in response["error"]
            counts = coordinator.metrics.snapshot()
            assert counts["repro_shard_exhausted_total"]["series"].get(("0",)) == 1.0


class TestProcessClusterFaults:
    """The production shape: real node processes over shm segments,
    killed with ``os._exit`` mid-conversation."""

    def test_killed_node_fails_over_bit_identically(self, tiny_db, q6_expected):
        with ShardCluster(
            tiny_db, n_shards=2, replicas=2, spawn="process", faults=True
        ) as cluster:
            coordinator = Coordinator(
                tiny_db, cluster, fault_plan=FaultPlan().kill(0)
            )
            response = coordinator.execute(TPCH_SQL["Q6"])
            assert response["status"] == "ok", response.get("error")
            assert (response["value"], response["tuples"]) == q6_expected
            assert response["failovers"][0]["shard"] == 0
            assert response["failovers"][0]["reason"].startswith("connection")
            counts = failover_counts(coordinator)
            assert counts.get(("0", "connection")) == 1.0
            # The kill was real: one node process died with the fault
            # exit code, and the cluster keeps answering without it.
            exit_codes = [process.exitcode for process in cluster._processes]
            assert KILLED_EXIT_CODE in exit_codes
            again = coordinator.execute(TPCH_SQL["Q6"])
            assert again["status"] == "ok", again.get("error")
            assert (again["value"], again["tuples"]) == q6_expected

    def test_unreplicated_kill_is_a_clean_error(self, tiny_db):
        with ShardCluster(
            tiny_db, n_shards=2, replicas=1, spawn="process", faults=True
        ) as cluster:
            coordinator = Coordinator(
                tiny_db,
                cluster,
                fault_plan=FaultPlan().kill(1),
                config=CoordinatorConfig(
                    attempt_timeout_s=5.0,
                    backoff_base_s=0.001,
                    backoff_max_s=0.002,
                ),
            )
            response = coordinator.execute(TPCH_SQL["Q6"])
            assert response["status"] == "error"
            assert "shard 1" in response["error"]
            assert "all replicas down" in response["error"]


class TestFaultGating:
    def test_die_op_is_rejected_without_the_gate(self, tiny_db):
        """A cluster started without ``faults=True`` must refuse the die
        op: fault injection can never leak into a production cluster."""
        from repro.serve import protocol as proto
        import socket

        with ShardCluster(tiny_db, n_shards=1, spawn="thread") as cluster:
            host, port = cluster.endpoints[0][0]
            with socket.create_connection((host, port), timeout=10.0) as sock:
                stream = sock.makefile("rwb")
                stream.write(proto.encode({"op": "die"}))
                stream.flush()
                response = proto.decode(stream.readline())
            assert response["status"] == "error"
            assert "REPRO_SHARD_FAULTS" in response["error"]

    def test_partial_op_requires_a_shard_node(self, tiny_db):
        from repro.serve.server import dispatch
        from repro.serve.service import QueryService, ServiceConfig

        service = QueryService(
            ServiceConfig(workers=1, scale_factor=0.0), db=tiny_db
        ).start()
        try:
            response = dispatch(service, {"op": "partial"})
            assert response["status"] == "error"
            assert "shard node" in response["error"]
        finally:
            service.stop()
