"""Tests for subsumption matching and routing (:mod:`repro.rollup.router`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engines import ALL_ENGINES, TyperEngine, TectorwiseEngine
from repro.rollup import (
    PartitionSpec,
    attempt,
    build_and_attach,
    build_rollup,
    partitioned_database,
    profile_for,
    rollups_enabled,
    route,
)
from repro.rollup.build import RollupSpec
from repro.rollup.table import AggregateSpec
from repro.tpch.schema import DATE_1998_09_02

#: Q1-aligned breaks (mirrors the ``rollup_db`` fixture): the upper
#: break sits just past the cutoff so every partition decides wholly.
ALIGNED_BREAKS = (2100.0, 2300.0, DATE_1998_09_02 + 0.5)


@pytest.fixture(scope="module", params=ALL_ENGINES, ids=lambda cls: cls.name)
def engine(request):
    return request.param()


class TestProfiles:
    def test_projection_profile(self):
        profile = profile_for("run_projection", {"degree": 3})
        assert profile.expressions == ("proj:3",)
        assert profile.keys == () and not profile.needs_groups

    def test_q1_profile_carries_shipdate_atom(self):
        profile = profile_for("run_q1", {})
        (atom,) = profile.atoms
        assert atom.column == "l_shipdate" and atom.op == "le"
        assert atom.threshold == float(DATE_1998_09_02)
        assert profile.needs_groups and profile.hpe_only

    def test_unroutable_calls_have_no_profile(self):
        assert profile_for("run_q6", {}) is None
        assert profile_for("run_join", {"size": "small"}) is None
        assert profile_for("run_projection", {"degree": 2, "simd": True}) is None
        assert profile_for("run_q1", {"row_range": (0, 10)}) is None


class TestRoutedBitIdentity:
    @pytest.mark.parametrize("degree", [1, 2, 3, 4])
    def test_projection(self, engine, rollup_db, degree):
        result, decision = route(
            rollup_db, engine, "run_projection", {"degree": degree}
        )
        assert decision["reason"] == "routed"
        baseline = engine.run_projection(rollup_db, degree)
        assert result.value == baseline.value
        assert result.workload == baseline.workload

    def test_groupby(self, engine, rollup_db):
        result, decision = route(rollup_db, engine, "run_groupby", {})
        assert decision["reason"] == "routed"
        assert result.value == engine.run_groupby(rollup_db).value

    @pytest.mark.parametrize("engine_cls", [TyperEngine, TectorwiseEngine],
                             ids=lambda c: c.name)
    def test_q1_on_hpe_engines(self, engine_cls, rollup_db):
        engine = engine_cls()
        result, decision = route(rollup_db, engine, "run_q1", {})
        assert decision["reason"] == "routed"
        baseline = engine.run_q1(rollup_db)
        assert result.value == baseline.value
        assert result.details["groups"] == baseline.details["groups"]

    def test_decision_accounting(self, rollup_db):
        result, decision = route(rollup_db, TyperEngine(), "run_q1", {})
        lineitem = rollup_db.table("lineitem")
        assert decision["rollup_used"] is True
        assert decision["rows_read"] == result.tuples > 0
        assert decision["base_rows_avoided"] == lineitem.n_rows
        assert 0 < decision["bytes_read"] < decision["base_bytes_avoided"]
        assert decision["partitions_included"] <= decision["partitions_total"]
        assert result.work.seq_read_bytes == decision["bytes_read"]


class TestFallbackReasons:
    def test_unsupported_method(self, rollup_db):
        result, decision = route(rollup_db, TyperEngine(), "run_q6", {})
        assert result is None and decision["reason"] == "unsupported-method"

    def test_interpreter_q1_finisher_not_decomposable(self, rollup_db):
        from repro.engines import engine_by_name

        result, decision = route(rollup_db, engine_by_name("DBMS R"), "run_q1", {})
        assert result is None
        assert decision["reason"] == "engine-finisher-not-decomposable"

    def test_no_rollup(self, tiny_db):
        result, decision = route(tiny_db, TyperEngine(), "run_groupby", {})
        assert result is None and decision["reason"] == "no-rollup"

    def test_keys_not_subsumed(self, tiny_db):
        db = partitioned_database(tiny_db, PartitionSpec("l_shipdate", ALIGNED_BREAKS))
        build_and_attach(db, RollupSpec(name="keyless", keys=()))
        result, decision = route(db, TyperEngine(), "run_q1", {})
        assert result is None and decision["reason"] == "keys-not-subsumed"

    def test_aggregate_missing(self, tiny_db):
        db = partitioned_database(tiny_db, PartitionSpec("l_shipdate", ALIGNED_BREAKS))
        build_and_attach(
            db,
            RollupSpec(
                name="partial",
                aggregates=(
                    AggregateSpec("sum_qty", "sum", "col:l_quantity"),
                    AggregateSpec("row_count", "count"),
                ),
            ),
        )
        result, decision = route(db, TyperEngine(), "run_q1", {})
        assert result is None and decision["reason"] == "aggregate-missing"

    def test_count_missing(self, tiny_db):
        db = partitioned_database(tiny_db, PartitionSpec("l_shipdate", ALIGNED_BREAKS))
        build_and_attach(
            db,
            RollupSpec(
                name="no-count",
                aggregates=(
                    AggregateSpec("sum_qty", "sum", "col:l_quantity"),
                    AggregateSpec("sum_base_price", "sum", "proj:1"),
                    AggregateSpec("sum_disc_price", "sum", "disc_price"),
                    AggregateSpec("sum_charge", "sum", "charge"),
                ),
            ),
        )
        result, decision = route(db, TyperEngine(), "run_q1", {})
        assert result is None and decision["reason"] == "count-missing"

    def test_unpartitioned_rollup_cannot_answer_predicates(self, tiny_db):
        build_and_attach(tiny_db)
        try:
            result, decision = route(tiny_db, TyperEngine(), "run_q1", {})
            assert result is None and decision["reason"] == "unpartitioned"
            # ... but predicate-free queries still route.
            result, decision = route(tiny_db, TyperEngine(), "run_groupby", {})
            assert decision["reason"] == "routed"
            assert result.value == TyperEngine().run_groupby(tiny_db).value
        finally:
            tiny_db._rollups.clear()

    def test_partitioning_missing(self, tiny_db):
        db = partitioned_database(tiny_db, PartitionSpec("l_shipdate", ALIGNED_BREAKS))
        build_and_attach(db)
        db.table("lineitem").set_partitioning(None)
        result, decision = route(db, TyperEngine(), "run_q1", {})
        assert result is None and decision["reason"] == "partitioning-missing"

    def test_predicate_not_partition_aligned(self, tiny_db):
        db = partitioned_database(tiny_db, PartitionSpec("l_quantity", (25.0,)))
        build_and_attach(db)
        result, decision = route(db, TyperEngine(), "run_q1", {})
        assert result is None
        assert decision["reason"] == "predicate-not-partition-aligned"

    def test_partition_straddle(self, tiny_db):
        # A break below the Q1 cutoff leaves the upper partition with
        # rows on both sides of the predicate: undecidable from stats.
        db = partitioned_database(tiny_db, PartitionSpec("l_shipdate", (2400.0,)))
        build_and_attach(db)
        result, decision = route(db, TyperEngine(), "run_q1", {})
        assert result is None and decision["reason"] == "partition-straddle"


class TestAttempt:
    def test_inactive_when_disabled(self, rollup_db, monkeypatch):
        monkeypatch.setenv("REPRO_ROLLUPS", "0")
        assert not rollups_enabled()
        result, decision = attempt(
            rollup_db, TyperEngine(), "run_groupby", {}, executor="thread"
        )
        assert result is None and decision is None

    def test_inactive_without_rollups(self, tiny_db):
        result, decision = attempt(
            tiny_db, TyperEngine(), "run_groupby", {}, executor="thread"
        )
        assert result is None and decision is None

    def test_hit_carries_decision_in_details(self, rollup_db):
        result, decision = attempt(
            rollup_db, TyperEngine(), "run_groupby", {}, executor="thread"
        )
        assert result is not None
        assert result.details["rollup"] is decision
        assert decision["rollup_used"] is True

    def test_fallback_returns_reasoned_decision(self, rollup_db):
        result, decision = attempt(
            rollup_db, TyperEngine(), "run_q6", {}, executor="thread"
        )
        assert result is None
        assert decision["reason"] == "unsupported-method"


class TestPartitionSelection:
    def test_only_included_partitions_contribute(self, tiny_db):
        """With the Q1 cutoff as a break, the routed Q1 must equal a
        manual scan of just the rows below the cutoff."""
        db = partitioned_database(
            tiny_db, PartitionSpec("l_shipdate", (DATE_1998_09_02 + 0.5,))
        )
        build_and_attach(db)
        engine = TyperEngine()
        result, decision = route(db, engine, "run_q1", {})
        assert decision["reason"] == "routed"
        assert decision["partitions_included"] == 1
        assert decision["partitions_total"] == 2
        assert result.value == engine.run_q1(db).value
