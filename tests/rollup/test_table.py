"""Tests for rollup storage (:mod:`repro.rollup.table`)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rollup.table import (
    AggregateSpec,
    RollupTable,
    decode_unit,
    encode_units,
)


class TestAggregateSpec:
    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown aggregate kind"):
            AggregateSpec("x", "avg", "col:l_quantity")

    def test_non_count_needs_expression(self):
        with pytest.raises(ValueError, match="needs an expression"):
            AggregateSpec("x", "sum")

    def test_count_needs_no_expression(self):
        assert AggregateSpec("n", "count").expr == ""


class TestUnitCodec:
    def test_round_trip_small(self):
        units = [0, 1, -1, 255, -256, 2**20]
        signs, magnitudes, width = encode_units(units)
        assert signs.dtype == np.int8 and magnitudes.dtype == np.uint8
        assert len(magnitudes) == len(units) * width
        for index, expected in enumerate(units):
            assert decode_unit(signs, magnitudes, width, index) == expected

    def test_width_covers_largest_magnitude(self):
        # ExactSum units count 2^-1074 quanta: a float64 around 1e9
        # needs ~1100 bits of units.  The codec must survive that.
        big = 37 * 2**1100
        signs, magnitudes, width = encode_units([big, -big, 3])
        assert width >= (big.bit_length() + 7) // 8
        assert decode_unit(signs, magnitudes, width, 0) == big
        assert decode_unit(signs, magnitudes, width, 1) == -big
        assert decode_unit(signs, magnitudes, width, 2) == 3

    def test_empty_units(self):
        signs, magnitudes, width = encode_units([])
        assert len(signs) == 0 and len(magnitudes) == 0 and width == 1

    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.integers(min_value=-(2**1200), max_value=2**1200), max_size=12))
    def test_round_trip_property(self, units):
        signs, magnitudes, width = encode_units(units)
        decoded = [
            decode_unit(signs, magnitudes, width, index)
            for index in range(len(units))
        ]
        assert decoded == units


@pytest.fixture(scope="module")
def rollup(rollup_db):
    return rollup_db.rollup(rollup_db.rollup_names[0])


class TestRollupTable:
    def test_shape(self, rollup, rollup_db):
        lineitem = rollup_db.table("lineitem")
        assert rollup.base_table == "lineitem"
        assert rollup.keys == ("l_returnflag", "l_linestatus")
        assert rollup.source_rows == lineitem.n_rows
        assert rollup.partition_column == "l_shipdate"
        assert rollup.n_rows >= 1
        assert rollup.nbytes < lineitem.nbytes / 100

    def test_aggregate_named(self, rollup):
        assert rollup.aggregate_named("sum", "col:l_quantity").name == "sum_qty"
        assert rollup.aggregate_named("count").name == "row_count"
        assert rollup.aggregate_named("sum", "nope") is None

    def test_counts_cover_all_source_rows(self, rollup):
        counts = rollup.plain_column("row_count")
        assert int(counts.sum()) == rollup.source_rows

    def test_sum_units_adds_per_row_units(self, rollup):
        all_rows = np.arange(rollup.n_rows)
        total = rollup.sum_units("sum_qty", all_rows)
        assert total == sum(
            rollup.unit_at("sum_qty", index) for index in range(rollup.n_rows)
        )

    def test_row_bytes_counts_selected_aggregates(self, rollup):
        base = rollup.row_bytes(())
        one = rollup.row_bytes(("sum_qty",))
        two = rollup.row_bytes(("sum_qty", "row_count"))
        assert base > 0 and one > base and two > one

    def test_payload_round_trip(self, rollup):
        meta, arrays = rollup.payload()
        again = RollupTable.from_payload(meta, arrays)
        assert again.keys == rollup.keys
        assert again.n_rows == rollup.n_rows
        np.testing.assert_array_equal(again.partition_ids, rollup.partition_ids)
        for key in rollup.keys:
            np.testing.assert_array_equal(
                again.key_columns[key], rollup.key_columns[key]
            )
        selected = np.arange(rollup.n_rows)
        for spec in rollup.aggregates:
            if spec.kind == "sum":
                assert again.sum_units(spec.name, selected) == rollup.sum_units(
                    spec.name, selected
                )
            else:
                np.testing.assert_array_equal(
                    again.plain_column(spec.name), rollup.plain_column(spec.name)
                )

    def test_meta_is_json_clean(self, rollup):
        import json

        meta, _ = rollup.payload()
        assert json.loads(json.dumps(meta)) == meta

    def test_payload_arrays_are_flat(self, rollup):
        # shm descriptors record (dtype, length, offset) with no shape:
        # every payload array must be 1-D.
        _, arrays = rollup.payload()
        assert all(a.ndim == 1 for a in arrays.values())

    def test_pickling_is_refused(self, rollup):
        import pickle

        with pytest.raises(TypeError, match="must not be pickled"):
            pickle.dumps(rollup)
