"""Tests for declarative partitioning (:mod:`repro.rollup.partition`)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rollup.partition import (
    PartitionSpec,
    Partitioning,
    build_partitioning,
    partitioned_database,
)
from repro.storage.zonemap import ALL_FALSE, ALL_TRUE, MIXED


class TestPartitionSpec:
    def test_breaks_must_be_strictly_increasing(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            PartitionSpec("x", (1.0, 1.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            PartitionSpec("x", (2.0, 1.0))

    def test_needs_at_least_one_break(self):
        with pytest.raises(ValueError, match="at least one break"):
            PartitionSpec("x", ())

    def test_partition_ids_bracket_breaks(self):
        spec = PartitionSpec("x", (10.0, 20.0))
        ids = spec.partition_ids(np.array([5.0, 10.0, 15.0, 20.0, 25.0]))
        # A value equal to a break lands in the upper partition
        # (searchsorted side="right").
        np.testing.assert_array_equal(ids, [0, 1, 1, 2, 2])
        assert spec.n_partitions == 3


class TestBuildPartitioning:
    def test_bounds_and_extrema(self):
        spec = PartitionSpec("x", (10.0, 20.0))
        values = np.array([1.0, 9.0, 12.0, 19.0, 21.0, 30.0])
        p = build_partitioning(values, spec)
        np.testing.assert_array_equal(p.bounds, [0, 2, 4, 6])
        np.testing.assert_array_equal(p.row_counts, [2, 2, 2])
        assert p.n_rows == 6
        np.testing.assert_array_equal(p.mins, [1.0, 12.0, 21.0])
        np.testing.assert_array_equal(p.maxs, [9.0, 19.0, 30.0])
        assert p.partition_range(1) == (2, 4)

    def test_unclustered_values_raise(self):
        spec = PartitionSpec("x", (10.0,))
        with pytest.raises(ValueError, match="not clustered"):
            build_partitioning(np.array([15.0, 5.0]), spec)

    def test_empty_partitions_get_nan_extrema(self):
        spec = PartitionSpec("x", (10.0, 20.0))
        p = build_partitioning(np.array([25.0, 30.0]), spec)
        np.testing.assert_array_equal(p.row_counts, [0, 0, 2])
        assert np.isnan(p.mins[0]) and np.isnan(p.maxs[1])
        assert p.mins[2] == 25.0

    def test_within_partition_order_is_free(self):
        # Clustering constrains partition ids, not values: descending
        # values inside one partition are fine.
        spec = PartitionSpec("x", (10.0,))
        p = build_partitioning(np.array([9.0, 3.0, 7.0, 11.0]), spec)
        np.testing.assert_array_equal(p.bounds, [0, 3, 4])


class TestVerdicts:
    def _partitioning(self):
        spec = PartitionSpec("x", (10.0, 20.0))
        return build_partitioning(
            np.array([1.0, 9.0, 12.0, 19.0, 21.0, 30.0]), spec
        )

    def test_le_verdicts(self):
        p = self._partitioning()
        np.testing.assert_array_equal(
            p.verdicts("le", 9.0), [ALL_TRUE, ALL_FALSE, ALL_FALSE]
        )
        np.testing.assert_array_equal(
            p.verdicts("le", 15.0), [ALL_TRUE, MIXED, ALL_FALSE]
        )

    def test_empty_partition_is_all_false(self):
        spec = PartitionSpec("x", (10.0,))
        p = build_partitioning(np.array([15.0, 16.0]), spec)
        # Partition 0 is empty: vacuously ALL_FALSE for any predicate.
        assert p.verdicts("le", 100.0)[0] == ALL_FALSE

    @pytest.mark.parametrize(
        "op,true_thr,false_thr",
        [("le", 30.0, 0.5), ("lt", 31.0, 1.0), ("ge", 1.0, 31.0), ("gt", 0.5, 30.0)],
    )
    def test_all_ops_prove_both_directions(self, op, true_thr, false_thr):
        p = self._partitioning()
        assert set(p.verdicts(op, true_thr)) == {ALL_TRUE}
        assert set(p.verdicts(op, false_thr)) == {ALL_FALSE}

    def test_eq_verdict(self):
        spec = PartitionSpec("x", (10.0,))
        p = build_partitioning(np.array([7.0, 7.0, 12.0, 15.0]), spec)
        assert p.verdicts("eq", 7.0)[0] == ALL_TRUE
        assert p.verdicts("eq", 7.0)[1] == ALL_FALSE
        assert p.verdicts("eq", 12.0)[1] == MIXED


class TestChunkVerdicts:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(3)
        values = np.sort(rng.uniform(0.0, 100.0, size=1000))
        spec = PartitionSpec("x", (25.0, 50.0, 75.0))
        p = build_partitioning(values, spec)
        chunk_rows = 64
        got = p.chunk_verdicts("le", 50.0, chunk_rows, len(values))
        verdicts = p.verdicts("le", 50.0)
        counts = p.row_counts
        for c, verdict in enumerate(got):
            lo, hi = c * chunk_rows, min((c + 1) * chunk_rows, len(values))
            spanned = {
                int(verdicts[q])
                for q in range(p.n_partitions)
                if counts[q] > 0
                and p.partition_range(q)[0] < hi
                and p.partition_range(q)[1] > lo
            }
            expected = spanned.pop() if len(spanned) == 1 else MIXED
            assert verdict == expected, f"chunk {c}"

    def test_verdicts_never_contradict_data(self):
        rng = np.random.default_rng(11)
        values = np.sort(rng.uniform(0.0, 100.0, size=777))
        p = build_partitioning(values, PartitionSpec("x", (30.0, 60.0)))
        chunk_rows = 50
        got = p.chunk_verdicts("le", 45.0, chunk_rows, len(values))
        for c, verdict in enumerate(got):
            chunk = values[c * chunk_rows : (c + 1) * chunk_rows]
            truth = chunk <= 45.0
            if verdict == ALL_TRUE:
                assert truth.all()
            elif verdict == ALL_FALSE:
                assert not truth.any()

    def test_row_count_mismatch_raises(self):
        p = build_partitioning(np.array([1.0, 2.0]), PartitionSpec("x", (5.0,)))
        with pytest.raises(ValueError, match="covers 2 rows"):
            p.chunk_verdicts("le", 1.0, 8, 99)


class TestPayloadRoundTrip:
    def test_round_trip(self):
        p = build_partitioning(
            np.array([1.0, 9.0, 12.0, 21.0]), PartitionSpec("x", (10.0, 20.0))
        )
        meta, arrays = p.payload()
        again = Partitioning.from_payload(meta, arrays)
        assert again.column == p.column and again.breaks == p.breaks
        np.testing.assert_array_equal(again.bounds, p.bounds)
        np.testing.assert_array_equal(again.mins, p.mins)
        np.testing.assert_array_equal(again.maxs, p.maxs)

    def test_meta_is_json_clean(self):
        import json

        p = build_partitioning(np.array([1.0]), PartitionSpec("x", (10.0,)))
        meta, _ = p.payload()
        assert json.loads(json.dumps(meta)) == meta


class TestPartitionedDatabase:
    def test_rows_are_clustered_and_metadata_attached(self, tiny_db):
        spec = PartitionSpec("l_shipdate", (2200.0, 2400.0))
        twin = partitioned_database(tiny_db, spec)
        table = twin.table("lineitem")
        ids = spec.partition_ids(np.asarray(table["l_shipdate"]))
        assert not np.any(np.diff(ids) < 0)
        p = table.partitioning
        assert p is not None and p.n_rows == table.n_rows
        assert twin.table("orders").partitioning is None

    def test_preserves_multiset_of_rows(self, tiny_db):
        spec = PartitionSpec("l_shipdate", (2300.0,))
        twin = partitioned_database(tiny_db, spec)
        for column in ("l_extendedprice", "l_quantity"):
            np.testing.assert_array_equal(
                np.sort(np.asarray(twin.table("lineitem")[column])),
                np.sort(np.asarray(tiny_db.table("lineitem")[column])),
            )

    def test_unknown_column_raises(self, tiny_db):
        with pytest.raises(KeyError, match="no column"):
            partitioned_database(tiny_db, PartitionSpec("nope", (1.0,)))


@settings(max_examples=30, deadline=None)
@given(
    data=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), max_size=200
    ),
    breaks=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=5,
        unique=True,
    ),
)
def test_verdicts_are_theorems(data, breaks):
    """Property: a partition verdict never contradicts its rows."""
    spec = PartitionSpec("x", tuple(sorted(breaks)))
    values = np.sort(np.asarray(data, dtype=np.float64))
    p = build_partitioning(values, spec)
    for op, fn in (
        ("le", np.less_equal), ("lt", np.less),
        ("ge", np.greater_equal), ("gt", np.greater),
    ):
        threshold = float(breaks[0])
        verdicts = p.verdicts(op, threshold)
        for q in range(p.n_partitions):
            lo, hi = p.partition_range(q)
            truth = fn(values[lo:hi], threshold)
            if verdicts[q] == ALL_TRUE:
                assert truth.all()
            elif verdicts[q] == ALL_FALSE:
                assert not truth.any()
