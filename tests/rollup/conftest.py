"""Shared fixtures for the rollup subsystem tests."""

from __future__ import annotations

import pytest

from repro.rollup import PartitionSpec, build_and_attach, partitioned_database
from repro.tpch.schema import DATE_1998_09_02

#: Breaks aligned with the Q1 cutoff: ``searchsorted(side="right")``
#: puts a value equal to a break into the upper partition, so the upper
#: break sits just past the cutoff and every partition decides the Q1
#: predicate wholly.
ALIGNED_BREAKS = (2100.0, 2300.0, DATE_1998_09_02 + 0.5)


@pytest.fixture(scope="module")
def rollup_db(tiny_db):
    """Shipdate-partitioned twin of ``tiny_db`` with the default
    lineitem rollup attached."""
    db = partitioned_database(tiny_db, PartitionSpec("l_shipdate", ALIGNED_BREAKS))
    build_and_attach(db)
    return db
