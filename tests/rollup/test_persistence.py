"""Partitioning + rollups through dbcache format 4 and shm segments."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.engines import TyperEngine
from repro.rollup import (
    PartitionSpec,
    build_and_attach,
    partitioned_database,
    route,
)
from repro.storage.shm import attach_database, export_database
from repro.tpch import dbcache
from repro.tpch.schema import DATE_1998_09_02

BREAKS = (2100.0, 2300.0, DATE_1998_09_02 + 0.5)


@pytest.fixture
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_DISK_CACHE", raising=False)
    monkeypatch.setattr(dbcache, "MIN_PERSIST_BYTES", 0)
    dbcache.clear_memo()
    yield tmp_path
    dbcache.clear_memo()


def _partitioned(tiny_db):
    db = partitioned_database(tiny_db, PartitionSpec("l_shipdate", BREAKS))
    build_and_attach(db)
    return db


def assert_equivalent(attached, original):
    """Partitioning, rollup payloads and routed values all match."""
    p0 = original.table("lineitem").partitioning
    p1 = attached.table("lineitem").partitioning
    assert p1 is not None
    assert p1.column == p0.column and p1.breaks == p0.breaks
    np.testing.assert_array_equal(p1.bounds, p0.bounds)
    np.testing.assert_array_equal(p1.mins, p0.mins)
    np.testing.assert_array_equal(p1.maxs, p0.maxs)

    assert attached.rollup_names == original.rollup_names
    r0 = original.rollup(original.rollup_names[0])
    r1 = attached.rollup(attached.rollup_names[0])
    assert r1.n_rows == r0.n_rows
    selected = np.arange(r0.n_rows)
    for spec in r0.aggregates:
        if spec.kind == "sum":
            assert r1.sum_units(spec.name, selected) == r0.sum_units(
                spec.name, selected
            )
        else:
            np.testing.assert_array_equal(
                r1.plain_column(spec.name), r0.plain_column(spec.name)
            )

    engine = TyperEngine()
    routed, decision = route(attached, engine, "run_q1", {})
    assert decision["reason"] == "routed"
    assert routed.value == engine.run_q1(original).value


class TestDbcacheFormat4:
    def test_disk_round_trip(self, isolated_cache, tiny_db):
        db = _partitioned(tiny_db)
        key = "rollup-roundtrip"
        dbcache.store(key, db)
        dbcache.clear_memo()  # force the disk path
        loaded = dbcache.load(key)
        assert loaded is not None and loaded.cache_key == key
        assert_equivalent(loaded, db)

    def test_memo_round_trip(self, isolated_cache, tiny_db):
        db = _partitioned(tiny_db)
        dbcache.store("memo-key", db)
        loaded = dbcache.load("memo-key")
        assert loaded is not None
        assert_equivalent(loaded, db)

    def test_meta_records_sections(self, isolated_cache, tiny_db):
        db = _partitioned(tiny_db)
        dbcache.store("meta-key", db)
        meta = json.loads(
            (isolated_cache / "dbgen" / "meta-key" / "meta.json").read_text()
        )
        assert meta["format"] == 4
        assert "lineitem" in meta["partitioning"]
        assert sorted(meta["partitioning"]["lineitem"]["parts"]) == [
            "bounds", "maxs", "mins",
        ]
        (rollup_name,) = db.rollup_names
        assert rollup_name in meta["rollups"]
        entry = isolated_cache / "dbgen" / "meta-key"
        assert list(entry.glob("lineitem.ptn.*.npy"))
        assert list(entry.glob(f"rollup.{rollup_name}.*.npy"))

    def test_unpartitioned_entries_stay_clean(self, isolated_cache, tiny_db):
        from repro.tpch.dbgen import generate_database

        db = generate_database(0.002, seed=7)
        meta = json.loads(
            (isolated_cache / "dbgen" / db.cache_key / "meta.json").read_text()
        )
        assert meta["partitioning"] == {}
        assert meta["rollups"] == {}


class TestShmTransport:
    def test_attach_round_trip(self, tiny_db):
        db = _partitioned(tiny_db)
        db.cache_key = "shm-test-identity"
        with export_database(db) as shared:
            with attach_database(shared.manifest) as attached:
                assert attached.cache_key == "shm-test-identity"
                assert_equivalent(attached, db)

    def test_attached_payloads_are_read_only_views(self, tiny_db):
        db = _partitioned(tiny_db)
        with export_database(db) as shared:
            handle = attach_database(shared.manifest)
            attached = handle.database
            bounds = attached.table("lineitem").partitioning.bounds
            assert not bounds.flags.writeable
            rollup = attached.rollup(attached.rollup_names[0])
            assert not rollup.partition_ids.flags.writeable
            handle.close()

    def test_manifest_stays_picklable(self, tiny_db):
        import pickle

        db = _partitioned(tiny_db)
        with export_database(db) as shared:
            pickle.loads(pickle.dumps(shared.manifest))
