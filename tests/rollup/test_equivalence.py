"""Routed rollup execution must be bit-identical to base execution.

The router's contract mirrors the pruning and encoding layers: when a
query is answered from a rollup, *nothing observable in the value*
changes -- the finished aggregate equals the base-table scan bit for
bit, for every engine, in the thread path and through the process
pool.  When a partitioning cannot prove the predicate (straddles,
misaligned columns), the router must decline with a reason rather than
return an approximation.  A hypothesis sweep extends the check to
arbitrary break placements, including breaks that leave partitions
empty or put every row in one partition.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.parallel import WorkerPool
from repro.engines import ALL_ENGINES, TyperEngine, engine_by_name
from repro.rollup import (
    PartitionSpec,
    build_and_attach,
    partitioned_database,
    route,
)
from repro.tpch.schema import DATE_1998_09_02

#: Workloads the router understands, across the full engine matrix.
WORKLOADS = [
    ("run_projection", {"degree": 1}),
    ("run_projection", {"degree": 4}),
    ("run_groupby", {}),
    ("run_q1", {}),
]

WORKLOAD_IDS = ["proj1", "proj4", "groupby", "q1"]


def assert_identical(routed, baseline, label: str) -> None:
    __tracebackhint__ = True
    assert routed.workload == baseline.workload, label
    if isinstance(routed.value, dict):
        assert set(routed.value) == set(baseline.value), label
        for key in routed.value:
            assert routed.value[key] == baseline.value[key], f"{label}: {key}"
    else:
        assert routed.value == baseline.value, label


class TestEngineMatrix:
    """Every engine, every routable workload, thread-path route()."""

    @pytest.mark.parametrize("engine_cls", ALL_ENGINES, ids=lambda c: c.name)
    @pytest.mark.parametrize("method,kwargs", WORKLOADS, ids=WORKLOAD_IDS)
    def test_routed_matches_base(self, engine_cls, method, kwargs, rollup_db):
        engine = engine_cls()
        routed, decision = route(rollup_db, engine, method, dict(kwargs))
        baseline = getattr(engine, method)(rollup_db, **kwargs)
        if routed is None:
            # The only legitimate matrix fallback: a finisher the
            # router cannot decompose into mergeable partials.
            assert decision["reason"] == "engine-finisher-not-decomposable"
            return
        assert decision["reason"] == "routed"
        assert_identical(routed, baseline, f"{engine.name} {method} {kwargs}")


class TestProcessPool:
    """Routing happens parent-side; workers never see the rollup path."""

    @pytest.fixture(scope="class")
    def pool(self, rollup_db):
        with WorkerPool(rollup_db, n_workers=2) as pool:
            yield pool

    @pytest.mark.parametrize("method,kwargs", WORKLOADS[:3], ids=WORKLOAD_IDS[:3])
    def test_pool_matches_single_shot(self, pool, rollup_db, method, kwargs):
        engine = TyperEngine()
        result = pool.run_query(engine, method, **kwargs)
        baseline = getattr(engine, method)(rollup_db, **kwargs)
        assert_identical(result, baseline, f"pool {method} {kwargs}")
        assert result.details["rollup"]["reason"] == "routed"

    def test_pool_fallback_still_matches(self, pool, rollup_db):
        engine = TyperEngine()
        result = pool.run_query(engine, "run_q6")
        baseline = engine.run_q6(rollup_db)
        assert_identical(result, baseline, "pool q6 fallback")
        assert result.details["rollup"]["reason"] == "unsupported-method"

    def test_pool_disabled_routing_still_matches(self, rollup_db, monkeypatch):
        monkeypatch.setenv("REPRO_ROLLUPS", "0")
        engine = TyperEngine()
        baseline = engine.run_groupby(rollup_db)
        with WorkerPool(rollup_db, n_workers=2) as pool:
            result = pool.run_query(engine, "run_groupby")
        assert_identical(result, baseline, "pool disabled routing")
        assert "rollup" not in result.details


class TestEdges:
    def test_all_rows_in_one_partition(self, tiny_db):
        # A break beyond the data range: every row lands in partition 0
        # and partition 1 is empty.  Predicate-free queries still route
        # bit-identically; Q1 must *decline* (the lone non-empty
        # partition straddles the cutoff) rather than approximate.
        db = partitioned_database(
            tiny_db, PartitionSpec("l_shipdate", (99999.0,))
        )
        build_and_attach(db)
        engine = TyperEngine()
        routed, decision = route(db, engine, "run_groupby", {})
        assert decision["reason"] == "routed"
        assert_identical(routed, engine.run_groupby(db), "one-partition groupby")
        routed, decision = route(db, engine, "run_q1", {})
        assert routed is None
        assert decision["reason"] == "partition-straddle"

    def test_many_empty_partitions(self, tiny_db):
        db = partitioned_database(
            tiny_db,
            PartitionSpec(
                "l_shipdate", (1.0, 2.0, 3.0, DATE_1998_09_02 + 0.5, 90000.0)
            ),
        )
        build_and_attach(db)
        engine = TyperEngine()
        for method, kwargs in WORKLOADS:
            routed, decision = route(db, engine, method, dict(kwargs))
            assert decision["reason"] == "routed", method
            assert_identical(
                routed, getattr(engine, method)(db, **kwargs), method
            )


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    breaks=st.lists(
        st.floats(min_value=1500.0, max_value=3500.0, allow_nan=False),
        min_size=1,
        max_size=4,
        unique=True,
    ),
    engine_name=st.sampled_from([cls.name for cls in ALL_ENGINES]),
)
def test_arbitrary_breaks_route_or_decline(tiny_db, breaks, engine_name):
    """Property: for ANY partitioning of l_shipdate, the router either
    returns a bit-identical answer or declines with a reason -- it never
    returns a wrong value."""
    db = partitioned_database(
        tiny_db, PartitionSpec("l_shipdate", tuple(sorted(breaks)))
    )
    build_and_attach(db)
    engine = engine_by_name(engine_name)

    # Predicate-free workloads must always route regardless of breaks.
    routed, decision = route(db, engine, "run_groupby", {})
    assert decision["reason"] == "routed"
    assert_identical(routed, engine.run_groupby(db), "groupby")

    # Q1 routes only when the cutoff falls on a partition boundary.
    routed, decision = route(db, engine, "run_q1", {})
    baseline = engine.run_q1(db)
    if routed is not None:
        assert decision["reason"] == "routed"
        assert_identical(routed, baseline, "q1")
    else:
        assert decision["reason"] in (
            "partition-straddle",
            "engine-finisher-not-decomposable",
        )
