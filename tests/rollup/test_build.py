"""Tests for rollup materialization (:mod:`repro.rollup.build`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exactsum import ExactSum
from repro.rollup import build_and_attach, build_rollup, default_lineitem_spec
from repro.rollup.build import RollupSpec, evaluate_expression
from repro.rollup.table import AggregateSpec


class TestExpressions:
    def test_projection_prefix_matches_engine_arithmetic(self, tiny_db):
        table = tiny_db.table("lineitem")
        got = evaluate_expression(table, "proj:2", 0, 100)
        expected = np.zeros(100)
        for column in ("l_extendedprice", "l_discount"):
            expected = expected + table[column][:100]
        np.testing.assert_array_equal(got, expected)

    def test_derived_q1_measures(self, tiny_db):
        table = tiny_db.table("lineitem")
        price = table["l_extendedprice"][:50]
        discount = table["l_discount"][:50]
        tax = table["l_tax"][:50]
        np.testing.assert_array_equal(
            evaluate_expression(table, "disc_price", 0, 50),
            price * (1.0 - discount),
        )
        np.testing.assert_array_equal(
            evaluate_expression(table, "charge", 0, 50),
            price * (1.0 - discount) * (1.0 + tax),
        )

    def test_raw_column(self, tiny_db):
        table = tiny_db.table("lineitem")
        np.testing.assert_array_equal(
            evaluate_expression(table, "col:l_quantity", 5, 25),
            np.asarray(table["l_quantity"][5:25]),
        )

    def test_unknown_expression_raises(self, tiny_db):
        table = tiny_db.table("lineitem")
        with pytest.raises(ValueError, match="unknown rollup expression"):
            evaluate_expression(table, "median:x", 0, 10)
        with pytest.raises(ValueError, match="projection degree"):
            evaluate_expression(table, "proj:9", 0, 10)


class TestRollupSpec:
    def test_duplicate_aggregate_names_raise(self):
        with pytest.raises(ValueError, match="duplicate aggregate names"):
            RollupSpec(
                name="x",
                aggregates=(
                    AggregateSpec("a", "count"),
                    AggregateSpec("a", "sum", "proj:1"),
                ),
            )


class TestBuildRollup:
    def test_build_is_deterministic(self, rollup_db):
        spec = default_lineitem_spec()
        first = build_rollup(rollup_db, spec)
        second = build_rollup(rollup_db, spec)
        np.testing.assert_array_equal(first.partition_ids, second.partition_ids)
        selected = np.arange(first.n_rows)
        for agg in ("sum_qty", "sum_charge"):
            assert first.sum_units(agg, selected) == second.sum_units(agg, selected)

    def test_cells_match_direct_exact_sums(self, rollup_db):
        rollup = rollup_db.rollup(rollup_db.rollup_names[0])
        table = rollup_db.table("lineitem")
        partitioning = table.partitioning
        flags = np.asarray(table["l_returnflag"])
        status = np.asarray(table["l_linestatus"])
        quantity = np.asarray(table["l_quantity"])
        for row in range(rollup.n_rows):
            p = int(rollup.partition_ids[row])
            lo, hi = partitioning.partition_range(p)
            member = (
                (flags[lo:hi] == rollup.key_columns["l_returnflag"][row])
                & (status[lo:hi] == rollup.key_columns["l_linestatus"][row])
            )
            expected = ExactSum.of_array(quantity[lo:hi][member])
            assert rollup.unit_at("sum_qty", row) == expected.units
            assert rollup.plain_column("row_count")[row] == int(member.sum())

    def test_min_max_partials(self, rollup_db):
        rollup = rollup_db.rollup(rollup_db.rollup_names[0])
        table = rollup_db.table("lineitem")
        base_price = np.asarray(table["l_extendedprice"])
        assert float(rollup.plain_column("min_base_price").min()) == base_price.min()
        assert float(rollup.plain_column("max_base_price").max()) == base_price.max()

    def test_unpartitioned_table_is_one_partition(self, tiny_db):
        rollup = build_rollup(tiny_db, default_lineitem_spec())
        assert rollup.partition_column is None
        assert rollup.n_partitions == 1
        assert set(rollup.partition_ids) == {0}
        assert int(rollup.plain_column("row_count").sum()) == (
            tiny_db.table("lineitem").n_rows
        )

    def test_keyless_rollup_is_one_row_per_partition(self, rollup_db):
        spec = RollupSpec(
            name="totals",
            keys=(),
            aggregates=(AggregateSpec("sum_qty", "sum", "col:l_quantity"),),
        )
        rollup = build_rollup(rollup_db, spec)
        non_empty = int(
            (rollup_db.table("lineitem").partitioning.row_counts > 0).sum()
        )
        assert rollup.n_rows == non_empty
        total = ExactSum(
            rollup.sum_units("sum_qty", np.arange(rollup.n_rows))
        ).total()
        expected = ExactSum.of_array(
            np.asarray(rollup_db.table("lineitem")["l_quantity"])
        ).total()
        assert total == expected


class TestBuildAndAttach:
    def test_registers_in_catalog(self, tiny_db):
        from repro.rollup import PartitionSpec, partitioned_database

        db = partitioned_database(tiny_db, PartitionSpec("l_shipdate", (2300.0,)))
        rollup = build_and_attach(db)
        assert db.rollup_names == (rollup.name,)
        assert db.rollup(rollup.name) is rollup

    def test_rollup_for_unknown_base_table_raises(self, tiny_db):
        with pytest.raises(KeyError, match="no table"):
            build_rollup(tiny_db, RollupSpec(name="x", table="nope"))
