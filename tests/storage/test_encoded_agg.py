"""Code-domain aggregation must rebase bit-identically to decoded sums.

The encoded-aggregation tier (:meth:`EncodedColumn.exact_sum`, the
kernels in :mod:`repro.engines.scan`) promises that summing codes --
per-code counts, RLE run views, or the FoR integer identity -- produces
the *same* :class:`ExactSum` units as ``ExactSum.of_array`` over the
decoded rows, for every codec, any sub-range (partial runs at morsel or
prune boundaries), any selection mask, empty groups, negative values
and extreme offsets/magnitudes.  These properties are what make the
morph decision a pure execution-strategy choice.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exactsum import ExactSum
from repro.engines.scan import (
    batched_decode_sum,
    exact_sum_column,
    grouped_exact_sum,
)
from repro.storage import ColumnTable
from repro.storage.encoding import (
    AGG_MAX_BITS,
    DictionaryEncoding,
    EncodedColumn,
    ForBitPackEncoding,
    RLEEncoding,
)

_FINITE = st.floats(allow_nan=False, allow_infinity=False)


# ----------------------------------------------------------------------
# The rebase primitive
# ----------------------------------------------------------------------
@given(
    values=st.lists(_FINITE, max_size=8),
    seed=st.integers(0, 2**32 - 1),
)
def test_of_counts_matches_expansion(values, seed):
    """``of_counts`` equals ``of_array`` over the materialised
    expansion, including zero counts and extreme magnitudes."""
    rng = np.random.default_rng(seed)
    counts = rng.integers(0, 5, size=len(values))
    expanded = np.repeat(np.asarray(values, dtype=np.float64), counts)
    assert ExactSum.of_counts(values, counts) == ExactSum.of_array(expanded)


def test_of_counts_empty_is_zero():
    assert ExactSum.of_counts([], []) == ExactSum.of_array(np.empty(0))
    assert ExactSum.of_counts([3.5, -1.25], [0, 0]) == ExactSum(0)


def test_of_integer_total_is_exact_lift():
    assert ExactSum.of_integer_total(7) == ExactSum.of(7.0)
    assert ExactSum.of_integer_total(-3) == ExactSum.of(-3.0)
    assert ExactSum.of_integer_total(0) == ExactSum(0)


# ----------------------------------------------------------------------
# Per-codec exact_sum over sub-ranges and selections
# ----------------------------------------------------------------------
@st.composite
def _dict_values(draw):
    domain = draw(st.lists(_FINITE, min_size=1, max_size=6, unique=True))
    codes = draw(st.lists(st.integers(0, len(domain) - 1), min_size=1, max_size=64))
    return np.asarray([domain[c] for c in codes], dtype=np.float64)


@st.composite
def _rle_values(draw):
    runs = draw(
        st.lists(
            st.tuples(st.integers(-10**9, 10**9), st.integers(1, 8)),
            min_size=1,
            max_size=12,
        )
    )
    return np.repeat(
        np.asarray([v for v, _ in runs], dtype=np.int64),
        [n for _, n in runs],
    )


def _draw_range_and_mask(draw, n):
    lo = draw(st.integers(0, n - 1))
    hi = draw(st.integers(lo + 1, n))
    mask = np.asarray(
        draw(st.lists(st.booleans(), min_size=hi - lo, max_size=hi - lo)),
        dtype=bool,
    )
    return lo, hi, mask


@settings(max_examples=60)
@given(data=st.data())
def test_dict_exact_sum_bit_identical(data):
    values = data.draw(_dict_values())
    encoding = DictionaryEncoding.encode(values)
    assert encoding is not None
    column = EncodedColumn("x", encoding, values.dtype)
    lo, hi, mask = _draw_range_and_mask(data.draw, len(values))
    assert column.exact_sum(lo, hi) == ExactSum.of_array(values[lo:hi])
    assert column.exact_sum(lo, hi, mask) == ExactSum.of_array(values[lo:hi][mask])


@settings(max_examples=60)
@given(data=st.data())
def test_rle_exact_sum_splits_partial_runs(data):
    """Sub-ranges cut runs at arbitrary offsets (exactly what pruned /
    morsel boundaries do); masked fragments must count per position."""
    values = data.draw(_rle_values())
    encoding = RLEEncoding.encode(values)
    assert encoding is not None
    column = EncodedColumn("x", encoding, values.dtype)
    lo, hi, mask = _draw_range_and_mask(data.draw, len(values))
    assert column.exact_sum(lo, hi) == ExactSum.of_array(values[lo:hi])
    assert column.exact_sum(lo, hi, mask) == ExactSum.of_array(values[lo:hi][mask])


def test_rle_pruned_morsel_keeps_only_run_fragments():
    """A pruned morsel over an RLE column aggregates only the kept run
    fragments: a constant-False mask yields exactly zero, a sub-range
    strictly inside one run yields exactly its fragment."""
    values = np.repeat(np.asarray([5, -3, 11], dtype=np.int64), [100, 50, 70])
    column = EncodedColumn("x", RLEEncoding.encode(values), values.dtype)
    n = len(values)
    assert column.exact_sum(0, n, np.zeros(n, dtype=bool)) == ExactSum(0)
    # [110, 130) lies inside the -3 run: 20 fragment rows.
    assert column.exact_sum(110, 130) == ExactSum.of_array(values[110:130])
    assert column.exact_sum(110, 130).total() == -60.0


@settings(max_examples=60)
@given(
    reference=st.integers(-(2**52), 2**52),
    data=st.data(),
)
def test_for_exact_sum_bit_identical(reference, data):
    """FoR columns: both the small-domain counts path (bits <= 16) and
    the wide-domain integer identity must match the decoded sum; when
    the exactness guard refuses, the batched-unpack fallback must."""
    bits = data.draw(st.integers(1, AGG_MAX_BITS + 4))
    codes = np.asarray(
        data.draw(
            st.lists(st.integers(0, (1 << bits) - 1), min_size=1, max_size=64)
        ),
        dtype=np.int64,
    )
    values = codes + reference
    encoding = ForBitPackEncoding.encode(values, reference=reference, bits=bits)
    column = EncodedColumn("x", encoding, np.dtype(np.int64))
    lo, hi, mask = _draw_range_and_mask(data.draw, len(values))
    expected = ExactSum.of_array(values[lo:hi][mask])
    result = column.exact_sum(lo, hi, mask)
    if result is not None:
        assert result == expected
    else:
        # Only the wide-domain identity may refuse, and only beyond the
        # float64-exactness guard.
        assert bits > AGG_MAX_BITS
        assert abs(reference) + (1 << bits) > 1 << 53
    fallback = batched_decode_sum(column, np.int64, lo, hi, mask, batch_rows=16)
    assert fallback == expected


def test_for_wide_domain_guard_refuses_inexact_floats():
    """reference near 2**53: decoded values round on float64
    conversion, so the integer identity must step aside and the
    batched fallback must reproduce the decoded (rounded) sum."""
    reference = (1 << 53) - 100
    bits = AGG_MAX_BITS + 1  # wide: only the integer identity applies
    rng = np.random.default_rng(3)
    codes = rng.integers(0, 1 << bits, size=300)
    values = codes + reference
    encoding = ForBitPackEncoding.encode(values, reference=reference, bits=bits)
    column = EncodedColumn("x", encoding, np.dtype(np.int64))
    assert column.exact_sum(0, len(values)) is None
    assert batched_decode_sum(
        column, np.int64, 0, len(values), batch_rows=64
    ) == ExactSum.of_array(values)


# ----------------------------------------------------------------------
# The grouped kernel against the decoded reference
# ----------------------------------------------------------------------
def _grouped_table(rng, n):
    flags = rng.integers(0, 3, size=n)
    status = rng.integers(0, 2, size=n)
    qty_domain = np.asarray([-2.5, 0.0, 1.0, 7.25, 50.0])
    qty = qty_domain[rng.integers(0, len(qty_domain), size=n)]
    table = ColumnTable(
        "t",
        {
            "flag": EncodedColumn(
                "flag", ForBitPackEncoding.encode(flags), np.dtype(np.int64)
            ),
            "status": EncodedColumn(
                "status", ForBitPackEncoding.encode(status), np.dtype(np.int64)
            ),
            "qty": EncodedColumn(
                "qty", DictionaryEncoding.encode(qty), qty.dtype
            ),
        },
    )
    return table, flags, status, qty


@settings(max_examples=40)
@given(seed=st.integers(0, 2**32 - 1), data=st.data())
def test_grouped_exact_sum_matches_decoded(seed, data):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 128))
    table, flags, status, qty = _grouped_table(rng, n)
    lo, hi, mask = _draw_range_and_mask(data.draw, n)
    result = grouped_exact_sum(table, "flag", "status", 2, "qty", lo, hi, mask)
    assert result is not None
    total, keys = result
    key = flags.astype(np.int64) * 2 + status.astype(np.int64)
    assert total == ExactSum.of_array(qty[lo:hi][mask])
    assert keys == set(np.unique(key[lo:hi][mask]).tolist())


def test_grouped_exact_sum_empty_selection_has_no_groups():
    rng = np.random.default_rng(11)
    table, _, _, _ = _grouped_table(rng, 64)
    total, keys = grouped_exact_sum(
        table, "flag", "status", 2, "qty", 0, 64, np.zeros(64, dtype=bool)
    )
    assert total == ExactSum(0)
    assert keys == set()


def test_grouped_exact_sum_accepts_index_selections():
    """Tectorwise passes selection *indices*, Typer a boolean mask;
    both spellings must agree."""
    rng = np.random.default_rng(13)
    table, flags, status, qty = _grouped_table(rng, 96)
    mask = rng.random(96) < 0.5
    indices = np.flatnonzero(mask)
    assert grouped_exact_sum(
        table, "flag", "status", 2, "qty", 0, 96, mask
    ) == grouped_exact_sum(table, "flag", "status", 2, "qty", 0, 96, indices)


def test_grouped_exact_sum_requires_encodings():
    table = ColumnTable(
        "t", {"flag": np.zeros(8), "status": np.zeros(8), "qty": np.ones(8)}
    )
    assert grouped_exact_sum(table, "flag", "status", 2, "qty", 0, 8) is None


# ----------------------------------------------------------------------
# The morph decision
# ----------------------------------------------------------------------
def test_exact_sum_column_modes(monkeypatch):
    rng = np.random.default_rng(5)
    table, _, _, qty = _grouped_table(rng, 64)
    total, mode, why = exact_sum_column(table, "qty", 0, 64)
    assert (mode, why) == ("code-domain", "dict")
    assert total == ExactSum.of_array(qty)

    raw = ColumnTable("raw", {"qty": qty})
    total, mode, why = exact_sum_column(raw, "qty", 0, 64)
    assert (mode, why) == ("decoded", "column-raw")
    assert total == ExactSum.of_array(qty)

    monkeypatch.setenv("REPRO_ENCODED_AGG", "0")
    total, mode, why = exact_sum_column(table, "qty", 0, 64)
    assert (mode, why) == ("decoded", "toggle-off")
    assert total == ExactSum.of_array(qty)
    assert grouped_exact_sum(table, "flag", "status", 2, "qty", 0, 64) is None
