"""Database catalog tests."""

import numpy as np
import pytest

from repro.storage import ColumnTable, Database


def make_db():
    db = Database("testdb", scale_factor=0.1)
    db.add_table(ColumnTable("t1", {"a": np.arange(5, dtype=np.int64)}))
    db.add_table(ColumnTable("t2", {"b": np.ones(3)}))
    return db


class TestCatalog:
    def test_lookup(self):
        db = make_db()
        assert db.table("t1").n_rows == 5
        assert db["t2"].n_rows == 3
        assert "t1" in db
        assert db.table_names == ("t1", "t2")

    def test_duplicate_rejected(self):
        db = make_db()
        with pytest.raises(ValueError):
            db.add_table(ColumnTable("t1"))

    def test_missing_table_helpful_error(self):
        with pytest.raises(KeyError, match="available"):
            make_db().table("zz")

    def test_nbytes(self):
        assert make_db().nbytes == 5 * 8 + 3 * 8

    def test_summary(self):
        summary = make_db().summary()
        assert summary["t1"] == {"rows": 5, "bytes": 40}

    def test_scale_factor_recorded(self):
        assert make_db().scale_factor == 0.1


class TestRowTwin:
    def test_materialised_lazily_and_cached(self):
        db = make_db()
        twin = db.row_table("t1")
        assert db.row_table("t1") is twin
        assert np.array_equal(twin["a"], db.table("t1")["a"])

    def test_row_twin_of_missing_table(self):
        with pytest.raises(KeyError):
            make_db().row_table("zz")
