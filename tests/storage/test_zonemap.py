"""Zone-map statistics (:mod:`repro.storage.zonemap`).

Every classification test checks the false-positive-only contract
against a brute-force evaluation of the predicate: whenever the zone
map *decides* a chunk (ALL_TRUE / ALL_FALSE), the decision must be a
theorem of the stored data.  For the bound operators (lt/le/gt/ge) the
min/max are attained, so decidability is exact in both directions; for
``eq`` exactness additionally needs the dictionary code-set bitmaps.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.storage.encoding import (
    DictionaryEncoding,
    EncodedColumn,
    ForBitPackEncoding,
    RLEEncoding,
    compare_values,
)
from repro.storage.zonemap import (
    ALL_FALSE,
    ALL_TRUE,
    CHUNK_ROWS,
    MIXED,
    ColumnZoneMap,
    build_zone_map,
    chunk_starts,
)

OPS = ("le", "lt", "ge", "gt", "eq")
#: Small chunks so a few thousand rows exercise many chunks.
TEST_CHUNK = 256


def brute_verdicts(values: np.ndarray, op: str, threshold,
                   chunk_rows: int) -> np.ndarray:
    """Ground-truth per-chunk verdicts from a full mask evaluation."""
    mask = compare_values(np.asarray(values), op, threshold)
    out = []
    for lo in range(0, len(values), chunk_rows):
        chunk = mask[lo:lo + chunk_rows]
        if chunk.all():
            out.append(ALL_TRUE)
        elif not chunk.any():
            out.append(ALL_FALSE)
        else:
            out.append(MIXED)
    return np.array(out, dtype=np.uint8)


def assert_sound(zone_map: ColumnZoneMap, values: np.ndarray, op: str,
                 threshold, encoding=None) -> np.ndarray:
    """Decided verdicts must agree with brute force (never drop rows)."""
    truth = brute_verdicts(values, op, threshold, zone_map.chunk_rows)
    verdicts = zone_map.classify(op, threshold, encoding)
    assert len(verdicts) == len(truth)
    decided = verdicts != MIXED
    np.testing.assert_array_equal(verdicts[decided], truth[decided])
    return verdicts


def assert_exact(zone_map: ColumnZoneMap, values: np.ndarray, op: str,
                 threshold, encoding=None) -> None:
    """Verdicts equal brute force outright (MIXED iff truly mixed)."""
    truth = brute_verdicts(values, op, threshold, zone_map.chunk_rows)
    verdicts = zone_map.classify(op, threshold, encoding)
    np.testing.assert_array_equal(verdicts, truth)


class TestChunkGrid:
    def test_empty(self):
        assert len(chunk_starts(0)) == 0
        assert build_zone_map(np.empty(0)).n_chunks == 0

    def test_starts_cover_rows(self):
        starts = chunk_starts(5 * TEST_CHUNK + 3, TEST_CHUNK)
        np.testing.assert_array_equal(
            starts, np.arange(6) * TEST_CHUNK)

    def test_chunk_bounds_tail(self):
        zone_map = build_zone_map(np.arange(TEST_CHUNK + 7.0), TEST_CHUNK)
        assert zone_map.n_chunks == 2
        assert zone_map.chunk_bounds(0) == (0, TEST_CHUNK)
        assert zone_map.chunk_bounds(1) == (TEST_CHUNK, TEST_CHUNK + 7)

    def test_default_chunk_is_morsel_aligned(self):
        from repro.engines.morsel import MORSEL_ALIGN

        assert CHUNK_ROWS % MORSEL_ALIGN == 0


class TestValueDomain:
    """Raw arrays: verdicts straight off attained min/max."""

    @pytest.fixture(scope="class")
    def values(self):
        rng = np.random.default_rng(11)
        # A small value domain makes equality hits and chunk-constant
        # stretches likely; a sorted half makes ALL_TRUE/ALL_FALSE runs.
        noisy = rng.integers(0, 12, size=4 * TEST_CHUNK).astype(np.float64)
        return np.concatenate([np.sort(noisy), noisy])

    @pytest.mark.parametrize("op", ("le", "lt", "ge", "gt"))
    def test_bound_ops_are_exact(self, values, op):
        for threshold in (-1.0, 0.0, 3.0, 5.5, 11.0, 12.0):
            assert_exact(build_zone_map(values, TEST_CHUNK), values, op,
                         threshold)

    def test_eq_is_sound(self, values):
        zone_map = build_zone_map(values, TEST_CHUNK)
        for threshold in (-1.0, 0.0, 4.0, 4.5, 11.0, 99.0):
            assert_sound(zone_map, values, "eq", threshold)

    def test_sorted_selective_predicate_prunes_most_chunks(self):
        values = np.arange(32 * TEST_CHUNK, dtype=np.float64)
        zone_map = build_zone_map(values, TEST_CHUNK)
        verdicts = zone_map.classify("lt", float(TEST_CHUNK))
        assert verdicts[0] == ALL_TRUE
        assert (verdicts[1:] == ALL_FALSE).all()

    def test_unknown_op_rejected(self, values):
        with pytest.raises(ValueError, match="unsupported op"):
            build_zone_map(values, TEST_CHUNK).classify("ne", 1.0)


class TestDictDomain:
    """Dictionary codes: cuts mirror DictionaryEncoding.compare, and the
    code-set bitmaps make even ``eq`` exact for domains <= 64."""

    @pytest.fixture(scope="class")
    def column(self):
        rng = np.random.default_rng(23)
        domain = np.round(np.arange(0.0, 0.09, 0.01), 2)  # 9 distinct
        values = rng.choice(domain, size=6 * TEST_CHUNK)
        # One chunk holds only {0.00, 0.04}: min/max cannot rule out
        # eq 0.02, the code-set bitmap can.
        values[:TEST_CHUNK] = np.where(
            rng.integers(0, 2, TEST_CHUNK) == 0, 0.0, 0.04)
        encoded = EncodedColumn(
            "d", DictionaryEncoding.encode(values), values.dtype)
        assert encoded.codec_kind == "dict"
        return values, encoded

    @pytest.fixture(scope="class")
    def zone_map(self, column):
        values, encoded = column
        zone_map = build_zone_map(encoded, TEST_CHUNK)
        assert zone_map.domain == "dict"
        assert zone_map.code_sets is not None
        return zone_map

    @pytest.mark.parametrize("op", OPS)
    def test_all_ops_exact_with_codesets(self, column, zone_map, op):
        values, encoded = column
        # On-dictionary, between-entries, and out-of-range thresholds.
        for threshold in (-0.5, 0.0, 0.02, 0.035, 0.055, 0.08, 0.5):
            assert_exact(zone_map, values, op, threshold, encoded)

    def test_codeset_refines_eq_inside_minmax_range(self, column, zone_map):
        values, encoded = column
        assert (values[:TEST_CHUNK].min(), values[:TEST_CHUNK].max()) == (0.0, 0.04)
        verdicts = zone_map.classify("eq", 0.02, encoded)
        # 0.02's code lies inside the chunk's [min, max] code range, so
        # the bounds alone say MIXED; the bitmap proves it absent.
        assert verdicts[0] == ALL_FALSE

    def test_verdicts_agree_with_codec_masks(self, column, zone_map):
        values, encoded = column
        for op in OPS:
            verdicts = zone_map.classify(op, 0.035, encoded)
            for index, verdict in enumerate(verdicts):
                lo, hi = zone_map.chunk_bounds(index)
                mask = encoded.compare(op, 0.035, lo, hi)
                if verdict == ALL_TRUE:
                    assert mask.all()
                elif verdict == ALL_FALSE:
                    assert not mask.any()

    def test_missing_encoding_yields_all_mixed(self, zone_map):
        assert (zone_map.classify("le", 0.04) == MIXED).all()

    def test_mismatched_codec_yields_all_mixed(self, zone_map):
        run_lengths = np.repeat(np.arange(8.0), TEST_CHUNK)
        rle = EncodedColumn("r", RLEEncoding.encode(run_lengths),
                            run_lengths.dtype)
        assert rle.codec_kind == "rle"
        assert (zone_map.classify("le", 0.04, rle) == MIXED).all()


class TestForDomain:
    """Frame-of-reference codes: exact float-threshold rebasing."""

    @pytest.fixture(scope="class")
    def column(self):
        rng = np.random.default_rng(31)
        values = rng.integers(1000, 1050, size=6 * TEST_CHUNK).astype(np.int64)
        values[:2 * TEST_CHUNK].sort()  # clustered prefix prunes
        encoded = EncodedColumn(
            "f", ForBitPackEncoding.encode(values), values.dtype)
        assert encoded.codec_kind == "for"
        return values, encoded

    @pytest.fixture(scope="class")
    def zone_map(self, column):
        values, encoded = column
        zone_map = build_zone_map(encoded, TEST_CHUNK)
        assert zone_map.domain == "for"
        assert zone_map.code_sets is None
        return zone_map

    @pytest.mark.parametrize("op", ("le", "lt", "ge", "gt"))
    def test_bound_ops_exact_for_fractional_thresholds(self, column,
                                                       zone_map, op):
        values, encoded = column
        # Fractional thresholds force the floor/ceil rebasing paths; the
        # extremes force the clamp-to-constant paths.
        for threshold in (999.5, 1000.0, 1010.5, 1024.0, 1049.5, 1060.0):
            assert_exact(zone_map, values, op, threshold, encoded)

    def test_eq_is_sound(self, column, zone_map):
        values, encoded = column
        for threshold in (1000.0, 1010.5, 1024.0, 1060.0):
            assert_sound(zone_map, values, "eq", threshold, encoded)

    def test_non_integral_eq_is_all_false(self, column, zone_map):
        values, encoded = column
        verdicts = zone_map.classify("eq", 1010.5, encoded)
        assert (verdicts == ALL_FALSE).all()


class TestRleColumns:
    def test_rle_maps_to_value_domain(self):
        values = np.repeat(np.arange(400.0), TEST_CHUNK // 8)
        encoded = EncodedColumn("r", RLEEncoding.encode(values), values.dtype)
        assert encoded.codec_kind == "rle"
        zone_map = build_zone_map(encoded, TEST_CHUNK)
        assert zone_map.domain == "value"
        # Value-domain verdicts need no encoding handle at classify time.
        for op in ("le", "lt", "ge", "gt"):
            assert_exact(zone_map, values, op, 17.0)
            assert_exact(zone_map, values, op, 17.5, encoded)


class TestTransport:
    def test_payload_roundtrip_value_domain(self):
        zone_map = build_zone_map(np.arange(3 * TEST_CHUNK + 5.0), TEST_CHUNK)
        meta, arrays = zone_map.payload()
        assert set(arrays) == {"mins", "maxs", "nulls"}
        clone = ColumnZoneMap.from_payload(meta, arrays)
        assert clone.domain == "value"
        assert clone.chunk_rows == TEST_CHUNK
        assert clone.n_rows == zone_map.n_rows
        np.testing.assert_array_equal(clone.mins, zone_map.mins)
        np.testing.assert_array_equal(clone.maxs, zone_map.maxs)
        assert clone.code_sets is None

    def test_payload_roundtrip_preserves_codesets(self):
        values = np.tile(np.arange(5.0), 2 * TEST_CHUNK // 5)
        encoded = EncodedColumn(
            "d", DictionaryEncoding.encode(values), values.dtype)
        zone_map = build_zone_map(encoded, TEST_CHUNK)
        meta, arrays = zone_map.payload()
        assert "codesets" in arrays
        clone = ColumnZoneMap.from_payload(meta, arrays)
        np.testing.assert_array_equal(clone.code_sets, zone_map.code_sets)
        np.testing.assert_array_equal(
            clone.classify("eq", 3.0, encoded),
            zone_map.classify("eq", 3.0, encoded),
        )


class TestTableIntegration:
    def test_tables_build_and_cache_zone_maps(self, tiny_db):
        table = tiny_db.table("lineitem")
        zone_map = table.zone_map("l_shipdate")
        assert zone_map is table.zone_map("l_shipdate")  # cached
        values = np.asarray(table["l_shipdate"])
        assert zone_map.n_rows == len(values)
        starts = chunk_starts(len(values), zone_map.chunk_rows)
        assert zone_map.n_chunks == len(starts)
