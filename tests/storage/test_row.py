"""Row (NSM) storage tests."""

import numpy as np
import pytest

from repro.storage import ColumnTable, RowTable


def make_column_table(n=100):
    return ColumnTable(
        "t",
        {
            "a": np.arange(n, dtype=np.int64),
            "b": np.arange(n, dtype=np.float64) * 0.5,
            "c": np.ones(n, dtype=np.int64),
        },
    )


class TestLayout:
    def test_same_data_as_column_table(self):
        source = make_column_table()
        rows = RowTable(source)
        for name in source.column_names:
            assert np.array_equal(rows[name], source[name])

    def test_row_bytes(self):
        rows = RowTable(make_column_table())
        assert rows.row_bytes == 24  # three 8-byte attributes

    def test_rows_structured_access(self):
        rows = RowTable(make_column_table())
        first = rows.rows()[0]
        assert first["a"] == 0
        assert first["c"] == 1

    def test_column_names(self):
        assert RowTable(make_column_table()).column_names == ("a", "b", "c")

    def test_missing_column(self):
        with pytest.raises(KeyError):
            RowTable(make_column_table()).column("zz")


class TestPages:
    def test_rows_per_page(self):
        rows = RowTable(make_column_table(), page_bytes=240)
        assert rows.rows_per_page == 10
        assert rows.n_pages == 10

    def test_page_contents(self):
        rows = RowTable(make_column_table(), page_bytes=240)
        page = rows.page(1)
        assert np.array_equal(page["a"], np.arange(10, 20))

    def test_last_page_partial(self):
        rows = RowTable(make_column_table(95), page_bytes=240)
        assert len(rows.page(rows.n_pages - 1)) == 5

    def test_page_out_of_range(self):
        rows = RowTable(make_column_table(), page_bytes=240)
        with pytest.raises(IndexError):
            rows.page(rows.n_pages)

    def test_invalid_page_bytes(self):
        with pytest.raises(ValueError):
            RowTable(make_column_table(), page_bytes=0)


class TestScanTraffic:
    def test_scan_reads_full_pages(self):
        """A row-store scan drags whole rows: more traffic than the
        column subset a column store would read."""
        source = make_column_table(1000)
        rows = RowTable(source)
        assert rows.scan_bytes() >= source.nbytes
        assert rows.scan_bytes() > source.bytes_for(["a"])

    def test_nbytes_counts_page_slack(self):
        rows = RowTable(make_column_table(95), page_bytes=240)
        assert rows.nbytes == rows.n_pages * 240

    def test_empty_table(self):
        rows = RowTable(ColumnTable("empty", {"a": np.array([], dtype=np.int64)}))
        assert rows.n_pages == 0
        assert rows.scan_bytes() == 0
