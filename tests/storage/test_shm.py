"""Shared-memory column transport: roundtrip fidelity, the no-pickling
guard, and segment lifecycle (normal exit, exceptions, Ctrl-C)."""

from __future__ import annotations

import pickle
import signal
import subprocess
import sys
import textwrap
import time
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.storage.shm import attach_database, export_database


def segment_exists(name: str) -> bool:
    try:
        probe = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    probe.close()
    return True


class TestRoundtrip:
    def test_attached_columns_equal_exported(self, tiny_db):
        with export_database(tiny_db) as shared:
            with attach_database(shared.manifest) as attached:
                assert attached.table_names == tiny_db.table_names
                for table_name in tiny_db.table_names:
                    original = tiny_db.table(table_name)
                    copy = attached.table(table_name)
                    assert copy.column_names == original.column_names
                    for column_name in original.column_names:
                        a, b = original[column_name], copy[column_name]
                        assert a.dtype == b.dtype
                        np.testing.assert_array_equal(a, b)

    def test_attached_views_are_read_only(self, tiny_db):
        with export_database(tiny_db) as shared:
            with attach_database(shared.manifest) as attached:
                column = attached.table("lineitem")["l_quantity"]
                with pytest.raises(ValueError, match="read-only"):
                    column[0] = 0.0

    def test_attach_preserves_identity(self, tiny_db):
        """Execution caches and shared structures key on
        ``db.identity``; the attached copy must alias the exporter's."""
        with export_database(tiny_db) as shared:
            with attach_database(shared.manifest) as attached:
                assert attached.identity == tiny_db.identity
                assert attached.scale_factor == tiny_db.scale_factor

    def test_manifest_is_small_and_picklable(self, tiny_db):
        """Workers receive the manifest through a pipe; the payload must
        stay in the segment, not the pickle."""
        with export_database(tiny_db) as shared:
            blob = pickle.dumps(shared.manifest)
            assert len(blob) < 64 * 1024
            assert shared.nbytes > len(blob)

    def test_engines_run_on_attached_database(self, tiny_db):
        """An attached database is a drop-in Database: results over the
        shm views are bit-identical to the originals."""
        from repro.engines import TyperEngine

        engine = TyperEngine()
        single = engine.run_q6(tiny_db)
        with export_database(tiny_db) as shared:
            with attach_database(shared.manifest) as attached:
                over_shm = engine.run_q6(attached)
        assert over_shm.value == single.value
        assert over_shm.work == single.work


class TestZoneMapTransport:
    def test_attached_zone_maps_equal_exported(self, tiny_db):
        with export_database(tiny_db) as shared:
            assert "zone_maps" in shared.manifest
            with attach_database(shared.manifest) as attached:
                for table_name in tiny_db.table_names:
                    original = tiny_db.table(table_name)
                    copy = attached.table(table_name)
                    for column_name in original.column_names:
                        a = original.zone_map(column_name)
                        b = copy.zone_map(column_name)
                        assert b.domain == a.domain
                        assert b.n_rows == a.n_rows
                        np.testing.assert_array_equal(b.mins, a.mins)
                        np.testing.assert_array_equal(b.maxs, a.maxs)

    def test_attached_zone_map_arrays_are_read_only_views(self, tiny_db):
        with export_database(tiny_db) as shared:
            with attach_database(shared.manifest) as attached:
                zone_map = attached.table("lineitem").zone_map("l_quantity")
                with pytest.raises(ValueError, match="read-only"):
                    zone_map.mins[0] = -1

    def test_prune_plans_agree_across_the_boundary(self, tiny_db):
        """A worker's prune plan over attached statistics must equal the
        exporter's: dispatch and synthesis assume one shared plan."""
        from repro.core import pruning

        atoms = pruning.atoms_for(tiny_db, "run_q6", {})
        local = pruning.compute_prune_plan(tiny_db, atoms)
        with export_database(tiny_db) as shared:
            with attach_database(shared.manifest) as attached:
                remote = pruning.compute_prune_plan(attached, atoms)
        assert (remote.kept_segments, remote.pruned_runs) == (
            local.kept_segments, local.pruned_runs
        )


class TestPicklingGuard:
    def test_column_table_refuses_pickle(self, tiny_db):
        with pytest.raises(TypeError, match="shm"):
            pickle.dumps(tiny_db.table("lineitem"))

    def test_database_refuses_pickle(self, tiny_db):
        """The guard propagates: anything containing a ColumnTable is
        unpicklable, so no code path can ship columns through a pipe."""
        with pytest.raises(TypeError, match="shm"):
            pickle.dumps(tiny_db)


class TestLifecycle:
    def test_unlink_removes_segment(self, tiny_db):
        shared = export_database(tiny_db)
        name = shared.segment_name
        assert segment_exists(name)
        shared.unlink()
        assert not segment_exists(name)

    def test_unlink_is_idempotent(self, tiny_db):
        shared = export_database(tiny_db)
        shared.unlink()
        shared.unlink()  # second call must be a no-op, not an error

    def test_context_manager_unlinks_on_exception(self, tiny_db):
        with pytest.raises(RuntimeError, match="boom"):
            with export_database(tiny_db) as shared:
                name = shared.segment_name
                raise RuntimeError("boom")
        assert not segment_exists(name)

    def test_attach_after_unlink_fails(self, tiny_db):
        shared = export_database(tiny_db)
        manifest = dict(shared.manifest)
        shared.unlink()
        with pytest.raises(FileNotFoundError):
            attach_database(manifest)

    def test_worker_close_keeps_segment_alive(self, tiny_db):
        """Workers drop their mapping without unlinking: the owner's
        segment must survive any number of worker attach/close cycles."""
        with export_database(tiny_db) as shared:
            for _ in range(3):
                attached = attach_database(shared.manifest)
                attached.close()
                attached.close()  # idempotent
            assert segment_exists(shared.segment_name)

    def test_sigint_unlinks_segment(self, tiny_db, tmp_path):
        """Ctrl-C in the exporting process must still reclaim the
        segment (the atexit hook runs on KeyboardInterrupt exits)."""
        script = tmp_path / "exporter.py"
        script.write_text(textwrap.dedent("""
            import sys, time
            from repro.tpch import generate_database
            from repro.storage.shm import export_database

            db = generate_database(scale_factor=0.002, seed=7)
            shared = export_database(db)
            print(shared.segment_name, flush=True)
            time.sleep(60)  # parked until the parent interrupts us
        """))
        process = subprocess.Popen(
            [sys.executable, str(script)],
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            name = process.stdout.readline().strip()
            assert name, "exporter never reported its segment"
            assert segment_exists(name)
            process.send_signal(signal.SIGINT)
            process.wait(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
        deadline = time.monotonic() + 10.0
        while segment_exists(name) and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not segment_exists(name)
