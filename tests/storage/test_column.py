"""Columnar storage tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import Column, ColumnTable


def make_table():
    return ColumnTable(
        "t",
        {
            "a": np.arange(10, dtype=np.int64),
            "b": np.linspace(0.0, 1.0, 10),
        },
    )


class TestColumn:
    def test_length_and_bytes(self):
        column = Column("a", np.arange(10, dtype=np.int64))
        assert len(column) == 10
        assert column.itemsize == 8
        assert column.nbytes == 80

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            Column("a", np.zeros((2, 2)))

    def test_non_contiguous_made_contiguous(self):
        values = np.arange(20)[::2]
        column = Column("a", values)
        assert column.values.flags.c_contiguous
        assert np.array_equal(column.values, values)

    def test_take(self):
        column = Column("a", np.arange(10))
        assert np.array_equal(column.take(np.array([1, 3])), [1, 3])


class TestColumnTable:
    def test_access(self):
        table = make_table()
        assert table.n_rows == 10
        assert np.array_equal(table["a"], np.arange(10))
        assert table.column_names == ("a", "b")
        assert "a" in table and "z" not in table

    def test_length_mismatch_rejected(self):
        table = make_table()
        with pytest.raises(ValueError):
            table.add_column("c", np.arange(5))

    def test_duplicate_rejected(self):
        table = make_table()
        with pytest.raises(ValueError):
            table.add_column("a", np.arange(10))

    def test_missing_column_has_helpful_error(self):
        with pytest.raises(KeyError, match="available"):
            make_table().column("zz")

    def test_nbytes_and_bytes_for(self):
        table = make_table()
        assert table.nbytes == 10 * 8 * 2
        assert table.bytes_for(["a"]) == 80
        assert table.bytes_for(["a", "b"]) == 160

    def test_select_with_mask(self):
        table = make_table()
        filtered = table.select(table["a"] % 2 == 0)
        assert filtered.n_rows == 5
        assert np.array_equal(filtered["a"], [0, 2, 4, 6, 8])

    def test_select_with_indices(self):
        filtered = make_table().select(np.array([0, 9]))
        assert np.array_equal(filtered["a"], [0, 9])

    def test_head(self):
        head = make_table().head(3)
        assert len(head["a"]) == 3

    def test_empty_table_len(self):
        assert len(ColumnTable("empty")) == 0


@settings(max_examples=40, deadline=None)
@given(values=st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=200))
def test_property_select_preserves_filtered_rows(values):
    array = np.array(values, dtype=np.int64)
    table = ColumnTable("t", {"a": array})
    mask = array > 0
    filtered = table.select(mask)
    assert filtered.n_rows == int(mask.sum())
    assert np.array_equal(filtered["a"], array[mask])
