"""Codec round-trip properties and the operate-on-codes contract.

Every codec must (a) decode back to exactly the input, (b) answer any
range/equality predicate with exactly the mask the decoded values would
produce, and (c) survive its payload round-trip (the shm/disk
transport).  Hypothesis drives the inputs through the documented edge
cases: empty, constant, single-run, unsorted, negative and max-width
columns.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.encoding import (
    MAX_DICT_SIZE,
    MAX_FOR_BITS,
    OPS,
    DictionaryEncoding,
    EncodedColumn,
    ForBitPackEncoding,
    RLEEncoding,
    choose_encoding,
    compare_values,
    encode_column,
    encode_columns,
    groupby_dictionary_sums,
    pack_bits,
    unpack_bits,
)

# -- strategies --------------------------------------------------------
small_ints = st.lists(
    st.integers(min_value=-(2**31), max_value=2**31 - 1), max_size=200
)
runny_ints = st.lists(
    st.integers(min_value=-5, max_value=5), max_size=200
).map(sorted)
small_floats = st.lists(
    st.sampled_from([0.0, -1.5, 0.02, 0.04, 0.06, 99.99, 1e18]), max_size=200
)
ops = st.sampled_from(OPS)


def _ints(values) -> np.ndarray:
    return np.asarray(values, dtype=np.int64)


def _check_roundtrip(encoding, values: np.ndarray) -> None:
    np.testing.assert_array_equal(
        encoding.decode_range(0, len(values)), values
    )
    # Partial ranges decode the matching slice.
    if len(values) > 1:
        lo, hi = 1, len(values) - 1
        np.testing.assert_array_equal(
            encoding.decode_range(lo, hi), values[lo:hi]
        )


def _check_payload_roundtrip(encoding, values: np.ndarray) -> None:
    column = EncodedColumn("x", encoding, values.dtype)
    meta, arrays = column.payload()
    rebuilt = EncodedColumn.from_payload("x", meta, arrays)
    np.testing.assert_array_equal(rebuilt.values, values)
    assert rebuilt.codec_kind == column.codec_kind


def _check_compare(encoding, values: np.ndarray, op: str, threshold) -> None:
    expected = compare_values(values, op, threshold)
    got = encoding.compare(op, threshold, 0, len(values))
    np.testing.assert_array_equal(got, expected)


class TestBitPackKernels:
    @given(
        st.lists(st.integers(min_value=0, max_value=2**32 - 1), max_size=300),
        st.integers(min_value=32, max_value=64),
    )
    def test_pack_unpack_roundtrip(self, codes, bits):
        codes = np.asarray(codes, dtype=np.uint64)
        words = pack_bits(codes, bits)
        np.testing.assert_array_equal(
            unpack_bits(words, bits, len(codes)), codes
        )

    @given(st.integers(min_value=1, max_value=64))
    def test_max_width_codes_survive(self, bits):
        top = (1 << bits) - 1
        codes = np.asarray([0, top, top, 0, top], dtype=np.uint64)
        words = pack_bits(codes, bits)
        np.testing.assert_array_equal(unpack_bits(words, bits, 5), codes)

    def test_empty(self):
        assert len(pack_bits(np.empty(0, dtype=np.uint64), 7)) == 0
        assert len(unpack_bits(np.empty(0, dtype=np.uint64), 7, 0)) == 0

    def test_packed_is_dense(self):
        # 64 // bits codes per word (no word-straddling).
        codes = np.arange(64, dtype=np.uint64) % 8
        per_word = 64 // 3
        assert pack_bits(codes, 3).nbytes == 8 * -(-64 // per_word)


class TestDictionaryCodec:
    @given(small_ints)
    def test_roundtrip(self, values):
        values = _ints(values)
        encoding = DictionaryEncoding.encode(values)
        _check_roundtrip(encoding, values)
        _check_payload_roundtrip(encoding, values)

    @given(small_floats, ops, st.sampled_from(
        [0.0, 0.02, 0.05, 99.99, -10.0, 1e18, 2e18]
    ))
    def test_compare_matches_decoded(self, values, op, threshold):
        values = np.asarray(values, dtype=np.float64)
        encoding = DictionaryEncoding.encode(values)
        _check_compare(encoding, values, op, threshold)

    @given(small_ints, ops)
    def test_compare_int_thresholds(self, values, op):
        values = _ints(values)
        encoding = DictionaryEncoding.encode(values)
        for threshold in (-(2**40), -1, 0, 1, 2**40):
            _check_compare(encoding, values, op, threshold)

    def test_empty(self):
        values = np.empty(0, dtype=np.float64)
        encoding = DictionaryEncoding.encode(values)
        _check_roundtrip(encoding, values)
        assert len(encoding.compare("le", 0.0, 0, 0)) == 0

    def test_constant(self):
        values = np.full(100, 7.25)
        encoding = DictionaryEncoding.encode(values)
        assert len(encoding.dictionary) == 1
        assert encoding.codes.dtype == np.uint8
        _check_roundtrip(encoding, values)


class TestRLECodec:
    @given(runny_ints)
    def test_roundtrip_sorted(self, values):
        values = _ints(values)
        encoding = RLEEncoding.encode(values)
        _check_roundtrip(encoding, values)
        _check_payload_roundtrip(encoding, values)

    @given(small_ints)
    def test_roundtrip_unsorted(self, values):
        # RLE itself never requires sortedness (only the policy does).
        values = _ints(values)
        encoding = RLEEncoding.encode(values)
        _check_roundtrip(encoding, values)

    @given(runny_ints, ops, st.integers(min_value=-6, max_value=6))
    def test_compare_matches_decoded(self, values, op, threshold):
        values = _ints(values)
        encoding = RLEEncoding.encode(values)
        _check_compare(encoding, values, op, threshold)

    @pytest.mark.parametrize("values", [
        np.empty(0, dtype=np.int64),            # empty
        np.full(50, -3, dtype=np.int64),        # single run
        np.asarray([9], dtype=np.int64),        # single element
    ])
    def test_edge_shapes(self, values):
        encoding = RLEEncoding.encode(values)
        _check_roundtrip(encoding, values)
        for op in OPS:
            _check_compare(encoding, values, op, -3)

    def test_morsel_ranges_match_slices(self):
        values = np.repeat(np.arange(10, dtype=np.int64), 7)
        encoding = RLEEncoding.encode(values)
        for lo, hi in ((0, 70), (3, 11), (7, 7), (69, 70), (5, 65)):
            np.testing.assert_array_equal(
                encoding.decode_range(lo, hi), values[lo:hi]
            )
            np.testing.assert_array_equal(
                encoding.compare("ge", 4, lo, hi), values[lo:hi] >= 4
            )


class TestForBitPackCodec:
    @given(st.lists(
        st.integers(min_value=-(2**31), max_value=2**31 - 1), max_size=200
    ))
    def test_roundtrip(self, values):
        values = _ints(values)
        encoding = ForBitPackEncoding.encode(values)
        if encoding is None:  # span wider than MAX_FOR_BITS: policy bails
            span = int(values.max()) - int(values.min())
            assert span.bit_length() > MAX_FOR_BITS
            return
        _check_roundtrip(encoding, values)
        _check_payload_roundtrip(encoding, values)

    @given(
        st.lists(st.integers(min_value=-100, max_value=100), min_size=1,
                 max_size=200),
        ops,
        st.sampled_from([-101, -100, -1, 0, 1, 99, 100, 101, 0.5, -0.5,
                         23.999, -99.5]),
    )
    def test_compare_matches_decoded(self, values, op, threshold):
        """Including float thresholds, which exercise the exact
        floor/ceil rebasing."""
        values = _ints(values)
        encoding = ForBitPackEncoding.encode(values)
        _check_compare(encoding, values, op, threshold)

    def test_negative_reference(self):
        values = np.asarray([-7, -3, -7, -1], dtype=np.int64)
        encoding = ForBitPackEncoding.encode(values)
        assert encoding.reference == -7
        _check_roundtrip(encoding, values)

    def test_max_width_span_rejected(self):
        values = np.asarray([0, 2**MAX_FOR_BITS], dtype=np.int64)
        assert ForBitPackEncoding.encode(values) is None

    def test_scan_codes_are_byte_aligned(self):
        values = np.arange(1000, dtype=np.int64)
        encoding = ForBitPackEncoding.encode(values)
        assert encoding.bits == 10
        assert encoding.codes().dtype == np.uint16
        assert encoding.scan_itemsize == 2.0


class TestPolicy:
    def test_sorted_keys_get_rle(self):
        values = np.repeat(np.arange(100, dtype=np.int64), 3)
        assert choose_encoding(values).kind == "rle"

    def test_bounded_ints_get_for(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 2000, 5000, dtype=np.int64)
        assert choose_encoding(values).kind == "for"

    def test_low_cardinality_floats_get_dict(self):
        rng = np.random.default_rng(1)
        values = rng.choice([0.0, 0.02, 0.04, 0.06], 5000)
        assert choose_encoding(values).kind == "dict"

    def test_high_cardinality_floats_stay_raw(self):
        rng = np.random.default_rng(2)
        assert choose_encoding(rng.uniform(0, 1, 20000)) is None

    def test_nan_floats_stay_raw(self):
        values = np.asarray([1.0, np.nan, 2.0])
        assert choose_encoding(values) is None

    def test_empty_stays_raw(self):
        assert choose_encoding(np.empty(0, dtype=np.int64)) is None

    def test_wide_ints_fall_back_to_dict_probe(self):
        # Range >> 2^32 but only three distinct values: dictionary wins.
        rng = np.random.default_rng(3)
        values = rng.choice(
            np.asarray([0, 2**40, 2**50], dtype=np.int64), 5000
        )
        assert choose_encoding(values).kind == "dict"

    def test_toggle_disables_encoding(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENCODING", "off")
        columns = {"x": np.repeat(np.arange(50, dtype=np.int64), 4)}
        out = encode_columns(columns)
        assert isinstance(out["x"], np.ndarray)

    def test_dictionary_cap_respected(self):
        values = np.arange(MAX_DICT_SIZE + 1, dtype=np.float64)
        assert choose_encoding(values) is None


class TestEncodedColumnContract:
    def test_logical_view_matches_raw(self):
        values = np.repeat(np.asarray([3.5, 7.25], dtype=np.float64), 40)
        column = encode_column("x", values)
        assert column.nbytes == values.nbytes
        assert column.itemsize == values.itemsize
        assert column.dtype == values.dtype
        assert len(column) == len(values)
        np.testing.assert_array_equal(column.values, values)
        assert column.encoded_nbytes < values.nbytes

    def test_values_cache_is_readonly(self):
        column = encode_column("x", np.arange(100, dtype=np.int64) % 4)
        with pytest.raises(ValueError):
            column.values[0] = 99

    def test_take_matches_fancy_indexing(self):
        values = (np.arange(500, dtype=np.int64) * 7) % 23
        column = encode_column("x", values)
        indices = np.asarray([0, 499, 17, 17, 3])
        np.testing.assert_array_equal(column.take(indices), values[indices])

    def test_renamed_shares_encoding(self):
        column = encode_column("x", np.arange(100, dtype=np.int64) % 4)
        clone = column.renamed("y")
        assert clone.encoding is column.encoding
        assert clone.name == "y"


class TestGroupByOnCodes:
    def test_matches_decoded_groupby(self):
        rng = np.random.default_rng(5)
        flags = rng.integers(0, 3, 4000, dtype=np.int64)
        status = rng.integers(0, 2, 4000, dtype=np.int64)
        weights = rng.uniform(0, 10, 4000)
        key_columns = [
            encode_column("f", flags), encode_column("s", status)
        ]
        got = groupby_dictionary_sums(key_columns, weights)
        for (f, s), total in got.items():
            expected = weights[(flags == f) & (status == s)].sum()
            assert total == pytest.approx(expected, rel=1e-12)

    def test_selected_mask(self):
        flags = np.asarray([0, 1, 0, 1, 2], dtype=np.int64)
        weights = np.asarray([1.0, 2.0, 4.0, 8.0, 16.0])
        selected = np.asarray([True, True, False, True, True])
        got = groupby_dictionary_sums(
            [encode_column("f", flags)], weights[selected], selected
        )
        assert got == {(0,): 1.0, (1,): 10.0, (2,): 16.0}

    def test_large_domain_returns_none(self):
        values = np.arange(5000, dtype=np.int64)
        column = encode_column("k", values)
        assert groupby_dictionary_sums([column], np.ones(5000)) is None
