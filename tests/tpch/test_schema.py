"""TPC-H schema tests."""

import numpy as np
import pytest

from repro.tpch import SCHEMAS, TableSchema, rows_at_scale
from repro.tpch import schema as sc


class TestSchemas:
    def test_all_paper_tables_present(self):
        expected = {
            "nation", "region", "supplier", "part", "partsupp",
            "customer", "orders", "lineitem",
        }
        assert set(SCHEMAS) == expected

    def test_lineitem_has_benchmark_columns(self):
        names = SCHEMAS["lineitem"].column_names
        for column in sc.PROJECTION_COLUMNS + sc.SELECTION_PREDICATE_COLUMNS:
            assert column in names

    def test_every_attribute_is_eight_bytes(self):
        for schema in SCHEMAS.values():
            for name, dtype in schema.columns:
                assert np.dtype(dtype).itemsize == 8, f"{schema.name}.{name}"

    def test_dtype_of(self):
        schema = SCHEMAS["lineitem"]
        assert schema.dtype_of("l_extendedprice") == np.float64
        with pytest.raises(KeyError):
            schema.dtype_of("nope")

    def test_table_schema_is_frozen(self):
        with pytest.raises(AttributeError):
            SCHEMAS["nation"].name = "x"  # type: ignore[misc]


class TestDates:
    def test_epoch_ordering(self):
        assert sc.DATE_MIN < sc.DATE_1994_01_01 < sc.DATE_1995_01_01
        assert sc.DATE_1995_06_17 < sc.DATE_1998_09_02 < sc.DATE_1998_12_01 <= sc.DATE_MAX

    def test_1994_window_is_one_year(self):
        assert sc.DATE_1995_01_01 - sc.DATE_1994_01_01 == 365

    def test_q1_cutoff_is_90_days_before_end_of_1998_12_01(self):
        assert sc.DATE_1998_12_01 - sc.DATE_1998_09_02 == 90


class TestRowsAtScale:
    def test_fixed_tables(self):
        assert rows_at_scale("nation", 10.0) == 25
        assert rows_at_scale("region", 0.001) == 5

    def test_linear_tables(self):
        assert rows_at_scale("orders", 1.0) == 1_500_000
        assert rows_at_scale("supplier", 0.1) == 1_000

    def test_floor_of_one(self):
        assert rows_at_scale("supplier", 1e-9) == 1

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            rows_at_scale("orders", 0.0)

    def test_green_category_fraction(self):
        """The Q9 filter keeps ~1/17 of parts."""
        assert sc.N_PART_NAME_CATEGORIES == 17
        assert 0 <= sc.GREEN_CATEGORY < sc.N_PART_NAME_CATEGORIES
