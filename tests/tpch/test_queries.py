"""Reference-query tests against independently computed results."""

import numpy as np
import pytest

from repro.tpch import (
    QUERY_SPECS,
    q1_reference,
    q6_predicates,
    q6_reference,
    q9_reference,
    q18_group_count,
    q18_reference,
)
from repro.tpch import schema as sc
from repro.tpch.queries import Q18_QUANTITY_THRESHOLD


class TestSpecs:
    def test_four_profiled_queries(self):
        assert set(QUERY_SPECS) == {"Q1", "Q6", "Q9", "Q18"}

    def test_categories_match_paper(self):
        assert "group by" in QUERY_SPECS["Q1"].category
        assert "filter" in QUERY_SPECS["Q6"].category
        assert "join" in QUERY_SPECS["Q9"].category
        assert "group by" in QUERY_SPECS["Q18"].category


class TestQ1:
    def test_four_groups(self, small_db):
        """Q1 is the paper's low-cardinality group by: 4 groups."""
        assert len(q1_reference(small_db)) == 4

    def test_counts_cover_filtered_rows(self, small_db):
        groups = q1_reference(small_db)
        lineitem = small_db["lineitem"]
        expected = int((lineitem["l_shipdate"] <= sc.DATE_1998_09_02).sum())
        assert sum(group["count"] for group in groups.values()) == expected

    def test_aggregates_consistent(self, small_db):
        groups = q1_reference(small_db)
        lineitem = small_db["lineitem"]
        mask = lineitem["l_shipdate"] <= sc.DATE_1998_09_02
        total_quantity = sum(group["sum_qty"] for group in groups.values())
        assert total_quantity == pytest.approx(float(lineitem["l_quantity"][mask].sum()))

    def test_disc_price_below_base_price(self, small_db):
        for group in q1_reference(small_db).values():
            assert group["sum_disc_price"] <= group["sum_base_price"]
            assert group["sum_charge"] >= group["sum_disc_price"]


class TestQ6:
    def test_matches_bruteforce(self, small_db):
        lineitem = small_db["lineitem"]
        mask = (
            (lineitem["l_shipdate"] >= sc.DATE_1994_01_01)
            & (lineitem["l_shipdate"] < sc.DATE_1995_01_01)
            & (lineitem["l_discount"] >= 0.05)
            & (lineitem["l_discount"] <= 0.07)
            & (lineitem["l_quantity"] < 24.0)
        )
        expected = float((lineitem["l_extendedprice"] * lineitem["l_discount"])[mask].sum())
        assert q6_reference(small_db) == pytest.approx(expected)

    def test_highly_selective(self, small_db):
        """The paper: Q6's overall selectivity is ~2%."""
        predicates = q6_predicates(small_db)
        combined = np.ones(small_db["lineitem"].n_rows, dtype=bool)
        for _, mask in predicates:
            combined &= mask
        assert 0.005 <= combined.mean() <= 0.05

    def test_five_individual_predicates(self, small_db):
        predicates = q6_predicates(small_db)
        assert len(predicates) == 5
        for name, mask in predicates:
            assert mask.dtype == bool
            assert 0.0 < mask.mean() < 1.0


class TestQ9:
    def test_only_green_parts_contribute(self, small_db):
        result = q9_reference(small_db)
        assert result  # non-empty at this scale
        for (nation, year) in result:
            assert 0 <= nation < 25
            assert 1992 <= year <= 1999

    def test_total_matches_bruteforce(self, small_db):
        lineitem = small_db["lineitem"]
        part = small_db["part"]
        partsupp = small_db["partsupp"]
        green_parts = set(
            part["p_partkey"][part["p_namecat"] == sc.GREEN_CATEGORY].tolist()
        )
        ps_cost = {
            (int(p), int(s)): float(c)
            for p, s, c in zip(
                partsupp["ps_partkey"], partsupp["ps_suppkey"], partsupp["ps_supplycost"]
            )
        }
        total = 0.0
        for i in range(lineitem.n_rows):
            pk = int(lineitem["l_partkey"][i])
            if pk not in green_parts:
                continue
            key = (pk, int(lineitem["l_suppkey"][i]))
            if key not in ps_cost:
                continue
            price = lineitem["l_extendedprice"][i]
            disc = lineitem["l_discount"][i]
            qty = lineitem["l_quantity"][i]
            total += price * (1.0 - disc) - ps_cost[key] * qty
        assert sum(q9_reference(small_db).values()) == pytest.approx(total, rel=1e-9)


class TestQ18:
    def test_threshold_respected(self, small_db):
        result = q18_reference(small_db)
        for total in result.values():
            assert total > Q18_QUANTITY_THRESHOLD

    def test_matches_bruteforce(self, small_db):
        lineitem = small_db["lineitem"]
        sums: dict[int, float] = {}
        for key, qty in zip(lineitem["l_orderkey"].tolist(), lineitem["l_quantity"].tolist()):
            sums[key] = sums.get(key, 0.0) + qty
        expected = {k: v for k, v in sums.items() if v > Q18_QUANTITY_THRESHOLD}
        assert q18_reference(small_db) == pytest.approx(expected)

    def test_group_count_is_order_count(self, small_db):
        """The high-cardinality group by has one group per order with
        lineitems (1.5M at the paper's SF 5)."""
        expected = len(np.unique(small_db["lineitem"]["l_orderkey"]))
        assert q18_group_count(small_db) == expected
        assert expected > 10_000  # genuinely high cardinality at SF 0.02
