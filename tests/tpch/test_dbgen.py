"""Generator tests: determinism, population rules, referential
integrity."""

import numpy as np
import pytest

from repro.tpch import generate_database, rows_at_scale
from repro.tpch import schema as sc


class TestDeterminism:
    def test_same_seed_same_data(self):
        a = generate_database(scale_factor=0.005, seed=3)
        b = generate_database(scale_factor=0.005, seed=3)
        assert np.array_equal(a["lineitem"]["l_extendedprice"], b["lineitem"]["l_extendedprice"])
        assert np.array_equal(a["orders"]["o_orderdate"], b["orders"]["o_orderdate"])

    def test_different_seed_different_data(self):
        a = generate_database(scale_factor=0.005, seed=3)
        b = generate_database(scale_factor=0.005, seed=4)
        assert not np.array_equal(a["lineitem"]["l_extendedprice"], b["lineitem"]["l_extendedprice"])


class TestCardinalities:
    def test_fixed_and_scaled_row_counts(self, tiny_db):
        sf = tiny_db.scale_factor
        assert tiny_db["nation"].n_rows == 25
        assert tiny_db["region"].n_rows == 5
        assert tiny_db["orders"].n_rows == rows_at_scale("orders", sf)
        assert tiny_db["partsupp"].n_rows == 4 * tiny_db["part"].n_rows

    def test_lineitem_fanout_one_to_seven(self, tiny_db):
        counts = np.bincount(tiny_db["lineitem"]["l_orderkey"])[1:]
        present = counts[counts > 0]
        assert present.min() >= 1
        assert present.max() <= 7
        # Mean ~4 lines per order.
        assert 3.0 <= counts.mean() <= 5.0

    def test_table_subset_generation(self):
        db = generate_database(scale_factor=0.005, seed=1, tables=("supplier", "nation"))
        assert set(db.table_names) == {"supplier", "nation"}

    def test_dependencies_added_automatically(self):
        db = generate_database(scale_factor=0.005, seed=1, tables=("lineitem",))
        assert "orders" in db
        assert "customer" in db

    def test_unknown_table_rejected(self):
        with pytest.raises(ValueError):
            generate_database(tables=("widgets",))


class TestReferentialIntegrity:
    def test_lineitem_orderkeys_reference_orders(self, tiny_db):
        orderkeys = set(tiny_db["orders"]["o_orderkey"].tolist())
        assert set(np.unique(tiny_db["lineitem"]["l_orderkey"]).tolist()) <= orderkeys

    def test_lineitem_part_supp_keys_in_range(self, tiny_db):
        lineitem = tiny_db["lineitem"]
        assert lineitem["l_partkey"].min() >= 1
        assert lineitem["l_partkey"].max() <= tiny_db["part"].n_rows
        assert lineitem["l_suppkey"].max() <= tiny_db["supplier"].n_rows

    def test_orders_custkeys_reference_customers(self, tiny_db):
        assert tiny_db["orders"]["o_custkey"].max() <= tiny_db["customer"].n_rows

    def test_only_two_thirds_of_customers_have_orders(self, tiny_db):
        eligible = (tiny_db["customer"].n_rows * 2) // 3
        assert tiny_db["orders"]["o_custkey"].max() <= eligible

    def test_partsupp_key_pairs_unique(self, tiny_db):
        partsupp = tiny_db["partsupp"]
        composite = partsupp["ps_partkey"] * 1_000_003 + partsupp["ps_suppkey"]
        assert len(np.unique(composite)) == partsupp.n_rows

    def test_supplier_nations_valid(self, tiny_db):
        assert tiny_db["supplier"]["s_nationkey"].max() < 25


class TestPopulationRules:
    def test_date_orderings(self, tiny_db):
        lineitem = tiny_db["lineitem"]
        assert (lineitem["l_receiptdate"] > lineitem["l_shipdate"]).all()
        assert (lineitem["l_shipdate"] <= sc.DATE_MAX).all()
        assert (lineitem["l_shipdate"] >= sc.DATE_MIN).all()

    def test_shipdate_follows_orderdate(self, tiny_db):
        lineitem = tiny_db["lineitem"]
        orders = tiny_db["orders"]
        orderdate = orders["o_orderdate"][lineitem["l_orderkey"] - 1]
        delta = lineitem["l_shipdate"] - orderdate
        assert delta.min() >= 1
        assert delta.max() <= 121

    def test_quantity_range(self, tiny_db):
        quantity = tiny_db["lineitem"]["l_quantity"]
        assert quantity.min() >= 1
        assert quantity.max() <= 50

    def test_discount_and_tax_ranges(self, tiny_db):
        lineitem = tiny_db["lineitem"]
        assert lineitem["l_discount"].min() >= 0.0
        assert lineitem["l_discount"].max() <= 0.10 + 1e-9
        assert lineitem["l_tax"].max() <= 0.08 + 1e-9

    def test_returnflag_linestatus_rule(self, tiny_db):
        """The R/A-before, N-after rule yields Q1's four groups."""
        lineitem = tiny_db["lineitem"]
        flags = lineitem["l_returnflag"]
        status = lineitem["l_linestatus"]
        old = lineitem["l_receiptdate"] <= sc.DATE_1995_06_17
        assert set(np.unique(flags[old]).tolist()) <= {
            sc.RETURNFLAG_CODES["R"], sc.RETURNFLAG_CODES["A"],
        }
        assert set(np.unique(flags[~old]).tolist()) <= {sc.RETURNFLAG_CODES["N"]}
        combos = set(zip(flags.tolist(), status.tolist()))
        assert len(combos) == 4

    def test_part_name_categories(self, tiny_db):
        categories = tiny_db["part"]["p_namecat"]
        assert categories.min() >= 0
        assert categories.max() < sc.N_PART_NAME_CATEGORIES
        green = (categories == sc.GREEN_CATEGORY).mean()
        assert 0.0 < green < 0.2

    def test_money_rounded_to_cents(self, tiny_db):
        price = tiny_db["lineitem"]["l_extendedprice"]
        assert np.allclose(price, np.round(price, 2))


class TestScaleInvariants:
    @pytest.mark.parametrize("sf", [0.001, 0.003, 0.01])
    def test_generation_valid_across_scales(self, sf):
        db = generate_database(scale_factor=sf, seed=2, tables=("lineitem",))
        lineitem = db["lineitem"]
        assert lineitem.n_rows > 0
        assert (lineitem["l_orderkey"] >= 1).all()
        assert (lineitem["l_receiptdate"] > lineitem["l_shipdate"]).all()
