"""SQL-documentation tests: the strings must agree with the executable
definitions they document."""

import pytest

from repro.engines import JOIN_SPECS
from repro.tpch import GROUPBY_SQL, JOIN_SQL, TPCH_SQL, projection_sql, selection_sql
from repro.tpch.schema import PROJECTION_COLUMNS, SELECTION_PREDICATE_COLUMNS


class TestProjectionSql:
    def test_degree_one(self):
        assert projection_sql(1) == "SELECT SUM(l_extendedprice) FROM lineitem;"

    def test_degree_four_sums_the_paper_columns(self):
        sql = projection_sql(4)
        for column in PROJECTION_COLUMNS:
            assert column in sql
        assert sql.count("+") == 3

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            projection_sql(5)


class TestSelectionSql:
    def test_contains_all_predicate_columns(self):
        sql = selection_sql(0.5)
        for column in SELECTION_PREDICATE_COLUMNS:
            assert column in sql
        assert sql.count("AND") == 2

    def test_invalid_selectivity(self):
        with pytest.raises(ValueError):
            selection_sql(1.0)

    def test_without_db_documents_quantile_placeholders(self):
        assert "[q0.50 of l_shipdate]" in selection_sql(0.5)

    def test_with_db_emits_executable_literals(self, tiny_db):
        from repro.sql import compile_sql

        sql = selection_sql(0.5, tiny_db)
        assert "[" not in sql  # real thresholds, not placeholders
        bound = compile_sql(sql)
        assert bound.method == "run_selection"
        thresholds = bound.call_kwargs()["thresholds"]
        assert all(isinstance(value, float) for value in thresholds)


class TestJoinSql:
    def test_covers_the_three_sizes(self):
        assert set(JOIN_SQL) == set(JOIN_SPECS)

    @pytest.mark.parametrize("size", ["small", "medium", "large"])
    def test_matches_join_spec(self, size):
        sql = JOIN_SQL[size]
        spec = JOIN_SPECS[size]
        assert spec.build_table in sql
        assert spec.probe_table in sql
        assert spec.build_key in sql
        assert spec.probe_key in sql
        for column in spec.sum_columns:
            assert column in sql


class TestTpchSql:
    def test_covers_the_four_profiled_queries(self):
        assert set(TPCH_SQL) == {"Q1", "Q6", "Q9", "Q18"}

    def test_q1_parameters(self):
        assert "INTERVAL '90' DAY" in TPCH_SQL["Q1"]
        assert "l_returnflag" in TPCH_SQL["Q1"]

    def test_q6_parameters(self):
        sql = TPCH_SQL["Q6"]
        assert "1994-01-01" in sql and "1995-01-01" in sql
        assert "BETWEEN 0.05 AND 0.07" in sql
        assert "l_quantity < 24" in sql

    def test_q9_filters_green_parts(self):
        assert "'%green%'" in TPCH_SQL["Q9"]
        for table in ("part", "supplier", "lineitem", "partsupp", "orders", "nation"):
            assert table in TPCH_SQL["Q9"]

    def test_q18_having_threshold(self):
        assert "SUM(l_quantity) > 300" in TPCH_SQL["Q18"]

    def test_groupby_micro_documents_the_composite_key(self):
        assert "GROUP BY l_partkey, l_returnflag" in GROUPBY_SQL
