"""Tests for the dbgen disk/memory cache (:mod:`repro.tpch.dbcache`)."""

import numpy as np
import pytest

from repro.tpch import dbcache
from repro.tpch.dbgen import ALL_TABLES, generate_database, _generate_database


@pytest.fixture
def isolated_cache(tmp_path, monkeypatch):
    """Point the cache at a private directory with a zero persist
    threshold so tiny test databases exercise the disk path."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_DISK_CACHE", raising=False)
    monkeypatch.setattr(dbcache, "MIN_PERSIST_BYTES", 0)
    dbcache.clear_memo()
    yield tmp_path
    dbcache.clear_memo()


class TestKeys:
    def test_key_uses_dependency_expanded_tables(self):
        assert dbcache.database_key(0.1, 42, ("lineitem",), None) == (
            dbcache.database_key(0.1, 42, ("lineitem", "orders", "customer"), None)
        )

    def test_key_discriminates_every_parameter(self):
        base = dbcache.database_key(0.1, 42, ALL_TABLES, None)
        assert dbcache.database_key(0.2, 42, ALL_TABLES, None) != base
        assert dbcache.database_key(0.1, 43, ALL_TABLES, None) != base
        assert dbcache.database_key(0.1, 42, ("lineitem",), None) != base
        assert dbcache.database_key(0.1, 42, ALL_TABLES, 1.5) != base

    def test_canonical_tables_in_generation_order(self):
        assert dbcache.canonical_tables(("lineitem", "nation")) == (
            "nation", "customer", "orders", "lineitem",
        )

    def test_unknown_table_rejected(self):
        with pytest.raises(ValueError, match="unknown tables"):
            dbcache.database_key(0.1, 42, ("nope",), None)


class TestRoundTrip:
    def test_disk_hit_equals_fresh_generation(self, isolated_cache):
        first = generate_database(0.005, seed=3, tables=("lineitem", "supplier"))
        dbcache.clear_memo()  # force the disk path
        second = generate_database(0.005, seed=3, tables=("lineitem", "supplier"))
        reference = _generate_database(0.005, 3, ("lineitem", "supplier"), None)
        assert second.table_names == first.table_names == reference.table_names
        for name in reference.table_names:
            for column in reference.table(name).column_names:
                np.testing.assert_array_equal(second[name][column], reference[name][column])
                np.testing.assert_array_equal(first[name][column], reference[name][column])

    def test_memo_hit_shares_arrays_but_not_wrappers(self, isolated_cache):
        first = generate_database(0.005, seed=5)
        second = generate_database(0.005, seed=5)
        assert first is not second
        assert first.cache_key == second.cache_key is not None
        # Same backing arrays (no regeneration), fresh Database wrappers.
        assert np.shares_memory(first["lineitem"]["l_quantity"],
                                second["lineitem"]["l_quantity"])

    def test_persisted_entry_on_disk(self, isolated_cache):
        db = generate_database(0.005, seed=7, tables=("supplier",))
        entry = isolated_cache / "dbgen" / db.cache_key
        assert (entry / "meta.json").exists()
        # Encoded columns persist one .npy per payload part, raw columns
        # persist one plain array; either way the column is on disk.
        payloads = {path.name for path in entry.glob("supplier.s_suppkey*.npy")}
        assert payloads, "s_suppkey has no persisted payload"

    def test_mutation_invalidates_cache_key(self, isolated_cache):
        from repro.storage import ColumnTable

        db = generate_database(0.005, seed=9, tables=("supplier",))
        assert db.cache_key is not None
        db.add_table(ColumnTable("extra", {"x": np.arange(4)}))
        assert db.cache_key is None
        assert db.identity == db.uid

    def test_small_databases_stay_off_disk(self, isolated_cache, monkeypatch):
        monkeypatch.setattr(dbcache, "MIN_PERSIST_BYTES", 1 << 40)
        db = generate_database(0.005, seed=11, tables=("supplier",))
        assert not (isolated_cache / "dbgen" / db.cache_key).exists()
        # ... but the in-process memo still serves repeats.
        again = generate_database(0.005, seed=11, tables=("supplier",))
        assert np.shares_memory(db["supplier"]["s_acctbal"],
                                again["supplier"]["s_acctbal"])

    def test_disk_cache_disable_env(self, isolated_cache, monkeypatch):
        monkeypatch.setenv("REPRO_DISK_CACHE", "0")
        db = generate_database(0.005, seed=13, tables=("supplier",))
        assert not (isolated_cache / "dbgen").exists()
        assert db.cache_key is not None  # memo identity still applies

    def test_corrupt_entry_falls_back_to_generation(self, isolated_cache):
        db = generate_database(0.005, seed=15, tables=("supplier",))
        entry = isolated_cache / "dbgen" / db.cache_key
        (entry / "meta.json").write_text("{not json")
        dbcache.clear_memo()
        again = generate_database(0.005, seed=15, tables=("supplier",))
        np.testing.assert_array_equal(db["supplier"]["s_acctbal"],
                                      again["supplier"]["s_acctbal"])

    def test_different_seeds_do_not_collide(self, isolated_cache):
        a = generate_database(0.005, seed=17, tables=("supplier",))
        b = generate_database(0.005, seed=18, tables=("supplier",))
        assert not np.array_equal(a["supplier"]["s_acctbal"],
                                  b["supplier"]["s_acctbal"])


class TestZoneMapPersistence:
    """Format 3+ persists per-column zone maps next to the payloads and
    reattaches them on load (format 4 adds partitioning and rollups);
    format-1/2 entries stay readable and fall back to the lazy
    per-column build."""

    def assert_equal_zone_maps(self, actual, expected):
        assert actual.domain == expected.domain
        assert actual.chunk_rows == expected.chunk_rows
        assert actual.n_rows == expected.n_rows
        np.testing.assert_array_equal(actual.mins, expected.mins)
        np.testing.assert_array_equal(actual.maxs, expected.maxs)
        if expected.code_sets is None:
            assert actual.code_sets is None
        else:
            np.testing.assert_array_equal(actual.code_sets, expected.code_sets)

    def test_zone_map_files_on_disk(self, isolated_cache):
        import json

        db = generate_database(0.005, seed=21, tables=("lineitem",))
        entry = isolated_cache / "dbgen" / db.cache_key
        meta = json.loads((entry / "meta.json").read_text())
        assert meta["format"] == 4
        assert "l_shipdate" in meta["zone_maps"]["lineitem"]
        assert list(entry.glob("lineitem.l_shipdate.zm.*.npy"))

    def test_disk_roundtrip_reattaches_equal_zone_maps(self, isolated_cache):
        first = generate_database(0.005, seed=21, tables=("lineitem",))
        expected = first.table("lineitem").zone_map("l_shipdate")
        dbcache.clear_memo()  # force the disk path
        second = generate_database(0.005, seed=21, tables=("lineitem",))
        self.assert_equal_zone_maps(
            second.table("lineitem").zone_map("l_shipdate"), expected)

    def test_memo_hit_shares_zone_maps(self, isolated_cache):
        first = generate_database(0.005, seed=23, tables=("lineitem",))
        second = generate_database(0.005, seed=23, tables=("lineitem",))
        self.assert_equal_zone_maps(
            second.table("lineitem").zone_map("l_quantity"),
            first.table("lineitem").zone_map("l_quantity"),
        )

    def test_format_2_entry_stays_readable(self, isolated_cache):
        """An entry written before zone maps existed loads fine; zone
        maps come from the lazy build instead of the disk files."""
        import json

        db = generate_database(0.005, seed=25, tables=("lineitem",))
        expected = db.table("lineitem").zone_map("l_shipdate")
        entry = isolated_cache / "dbgen" / db.cache_key
        meta = json.loads((entry / "meta.json").read_text())
        meta["format"] = 2
        meta.pop("zone_maps", None)
        (entry / "meta.json").write_text(json.dumps(meta))
        for stale in entry.glob("*.zm.*.npy"):
            stale.unlink()
        dbcache.clear_memo()
        again = generate_database(0.005, seed=25, tables=("lineitem",))
        np.testing.assert_array_equal(db["lineitem"]["l_quantity"],
                                      again["lineitem"]["l_quantity"])
        self.assert_equal_zone_maps(
            again.table("lineitem").zone_map("l_shipdate"), expected)
