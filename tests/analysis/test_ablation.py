"""Ablation-study tests: robustness and attribution of the calibrated
model parameters."""

import pytest

from repro.analysis import AblationStudy, METRICS, scalable_parameters


@pytest.fixture(scope="module")
def study(paper_db):
    return AblationStudy(paper_db)


class TestSetup:
    def test_scalable_parameters_cover_the_calibration(self):
        names = scalable_parameters()
        assert "prefetch_residual_cycles" in names
        assert "chain_op_latency" in names
        assert "seq_queue_coeff" in names
        # branch_penalty defaults to None and must not be scalable.
        assert "branch_penalty" not in names

    def test_metrics_have_claims(self):
        for metric in METRICS:
            assert metric.claim

    def test_unknown_parameter_rejected(self, study):
        with pytest.raises(ValueError, match="non-scalable"):
            study.ablate("warp_factor")


class TestBaseline:
    def test_baseline_metrics_in_paper_bands(self, study):
        baseline = study.baseline()
        assert 0.25 <= baseline["typer_p4_stall_ratio"] <= 0.82
        assert baseline["typer_stall_growth_p1_to_p4"] > 0
        assert baseline["selection_branch_peak_at_50"] > 0
        assert baseline["large_join_dcache_share"] > 0.5
        assert baseline["tectorwise_over_typer_bandwidth"] < 1.0


class TestRobustness:
    """The paper's qualitative conclusions must survive halving or
    doubling each calibrated constant."""

    @pytest.mark.parametrize(
        "parameter",
        [
            "store_pressure_cycles",
            "prefetch_residual_cycles",
            "mlp_random_independent",
            "cached_access_stall",
            "seq_queue_coeff",
        ],
    )
    def test_conclusions_survive_scaling(self, study, parameter):
        figure = study.ablate(parameter)
        assert len(figure.rows) == 3  # 1.0, 0.5, 2.0
        assert study.conclusions_survive(figure), figure.to_text()


class TestAttribution:
    def test_chain_latency_is_architectural_not_calibrated(self, study):
        """chain_op_latency is Broadwell's 3-cycle FP-add latency, not a
        free knob: doubling it makes the low-projectivity scan
        chain-bound (p1 stalls exceed p4's), which is exactly why the
        model pins it to the architectural value."""
        figure = study.ablate("chain_op_latency")
        assert figure.row_for(factor=1.0)["typer_stall_growth_p1_to_p4"] > 0
        assert (
            figure.row_for(factor=2.0)["typer_stall_growth_p1_to_p4"]
            < figure.row_for(factor=0.5)["typer_stall_growth_p1_to_p4"]
        )

    def test_prefetch_residual_drives_scan_stalls(self, study):
        figure = study.ablate("prefetch_residual_cycles")
        base = figure.row_for(factor=1.0)["typer_p4_stall_ratio"]
        doubled = figure.row_for(factor=2.0)["typer_p4_stall_ratio"]
        assert doubled > base

    def test_queueing_drives_superlinear_growth(self, study):
        figure = study.ablate("seq_queue_coeff")
        base = figure.row_for(factor=1.0)["typer_stall_growth_p1_to_p4"]
        halved = figure.row_for(factor=0.5)["typer_stall_growth_p1_to_p4"]
        assert halved <= base

    def test_mlp_drives_join_dcache(self, study):
        figure = study.ablate("mlp_random_independent")
        more_mlp = figure.row_for(factor=2.0)["large_join_dcache_share"]
        less_mlp = figure.row_for(factor=0.5)["large_join_dcache_share"]
        assert less_mlp >= more_mlp

    def test_materialization_cost_drives_tectorwise_bandwidth_gap(self, study):
        figure = study.ablate("cached_access_stall")
        cheap = figure.row_for(factor=0.5)["tectorwise_over_typer_bandwidth"]
        expensive = figure.row_for(factor=2.0)["tectorwise_over_typer_bandwidth"]
        assert cheap > expensive


class TestRun:
    def test_run_subset(self, study):
        figures = study.run(parameters=("chain_op_latency",))
        assert set(figures) == {"chain_op_latency"}
        assert figures["chain_op_latency"].figure_id == "ablation-chain_op_latency"
