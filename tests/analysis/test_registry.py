"""Experiment-registry tests: completeness and executability."""

import pytest

from repro.analysis import EXPERIMENTS, FigureResult, run_experiment
from repro.analysis.__main__ import main as cli_main
from repro.hardware import SKYLAKE

#: Every table/figure of the paper's evaluation plus the quantified
#: text claims.
EXPECTED_IDS = {
    "table1",
    *(f"fig{index:02d}" for index in range(1, 31)),
    "sec4-bandwidth", "sec6-chains", "sec7-q6", "sec10-headroom",
    # Results the paper describes but omits as graphs.
    "sec2-groupby", "sec9-extended", "sec10-tpch-bw",
    "sec6-commercial", "sec10-speedup",
    # Compressed column widths (repro.storage.encoding).
    "sec8-compression",
    # SQL-path equivalence (repro.sql frontend vs hand-wired calls).
    "sqlpath",
    # Span-tree latency breakdown (repro.obs observability layer).
    "obs-latency",
    # Measured process-executor scaling vs the Section 10 model.
    "sec10-measured-scaling",
    # Zone-map pruning on clustered data (repro.core.pruning).
    "sec-pruning",
    # Rollup routing on partitioned data (repro.rollup).
    "sec-rollup",
}


class TestRegistryCompleteness:
    def test_every_paper_artefact_registered(self):
        assert set(EXPERIMENTS) == EXPECTED_IDS

    def test_every_entry_has_title_and_claim(self):
        for spec in EXPERIMENTS.values():
            assert spec.title
            assert spec.paper_claim

    def test_simd_experiments_run_on_skylake(self):
        for experiment_id in ("fig22", "fig23", "fig24", "fig25"):
            assert EXPERIMENTS[experiment_id].machine is SKYLAKE

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError, match="available"):
            run_experiment("fig99")


class TestExecution:
    @pytest.mark.parametrize(
        "experiment_id",
        ["table1", "fig03", "fig05", "fig10", "sec6-chains", "fig29"],
    )
    def test_selected_experiments_execute(self, experiment_id, small_db):
        spec = EXPERIMENTS[experiment_id]
        figure = spec.execute(db=small_db)
        assert isinstance(figure, FigureResult)
        assert figure.rows
        assert figure.to_text()

    def test_run_experiment_generates_data(self):
        figure = run_experiment("fig05", scale_factor=0.005)
        assert figure.rows

    def test_execute_with_given_db_skips_generation(self, small_db):
        figure = EXPERIMENTS["fig03"].execute(db=small_db)
        assert len(figure.rows) == 8  # 2 engines x 4 degrees


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig03" in out and "fig30" in out

    def test_run_single(self, capsys):
        assert cli_main(["run", "table1", "--sf", "0.002"]) == 0
        assert "Broadwell" in capsys.readouterr().out

    def test_all_subcommand_with_jobs_matches_sequential(self, capsys, monkeypatch):
        """`all --jobs N` must produce the same figure rows as the
        sequential path (on a trimmed registry, to keep the test fast)."""
        import repro.analysis.__main__ as cli
        import repro.analysis.registry as registry

        subset = {key: EXPERIMENTS[key] for key in ("table1", "fig05")}
        monkeypatch.setattr(registry, "EXPERIMENTS", subset)
        monkeypatch.setattr(cli, "EXPERIMENTS", subset)

        assert cli_main(["all", "--sf", "0.005"]) == 0
        sequential = capsys.readouterr().out
        assert cli_main(["all", "--sf", "0.005", "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out

        def rows(text):
            return [
                line for line in text.splitlines()
                if line and "execution cache" not in line
            ]

        assert rows(parallel) == rows(sequential)
        assert "fig05" in sequential
