"""FigureResult and ASCII-chart tests."""

import pytest

from repro.analysis import (
    FigureResult,
    bandwidth_chart,
    cycle_chart,
    stacked_bar,
    stall_chart,
)


class TestFigureResult:
    def make(self):
        figure = FigureResult("figX", "demo", ("engine", "value"))
        figure.add_row(engine="A", value=1.5)
        figure.add_row(engine="B", value=2.5)
        return figure

    def test_add_row_fills_missing_with_none(self):
        figure = FigureResult("f", "t", ("a", "b"))
        figure.add_row(a=1)
        assert figure.rows[0] == {"a": 1, "b": None}

    def test_column_accessor(self):
        assert self.make().column("value") == [1.5, 2.5]

    def test_row_for(self):
        assert self.make().row_for(engine="B")["value"] == 2.5
        with pytest.raises(KeyError):
            self.make().row_for(engine="Z")

    def test_to_text_contains_everything(self):
        figure = self.make()
        figure.note("hello")
        text = figure.to_text()
        assert "figX" in text
        assert "engine" in text
        assert "2.500" in text
        assert "note: hello" in text


class TestStackedBar:
    def test_width_exact(self):
        bar = stacked_bar({"retiring": 0.4, "dcache": 0.6}, width=50)
        assert len(bar) == 50
        assert bar.count("R") == 20
        assert bar.count("D") == 30

    def test_order_matches_legend(self):
        bar = stacked_bar({"dcache": 0.5, "retiring": 0.5}, width=10)
        assert bar.startswith("RRRRR")

    def test_empty_shares(self):
        assert stacked_bar({}, width=10) == " " * 10

    def test_rounding_never_overflows(self):
        bar = stacked_bar({"retiring": 1 / 3, "dcache": 1 / 3, "execution": 1 / 3}, width=10)
        assert len(bar) == 10

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            stacked_bar({"retiring": 1.0}, width=0)


class TestCharts:
    def test_cycle_chart_labels_and_legend(self):
        chart = cycle_chart([("p1", {"retiring": 0.5, "dcache": 0.5})], width=20)
        assert "p1" in chart
        assert "Retiring" in chart

    def test_stall_chart_drops_retiring(self):
        chart = stall_chart([("x", {"retiring": 0.9, "dcache": 0.1})], width=20)
        bar_line = chart.splitlines()[0]
        assert "R" not in bar_line.split("|")[1]

    def test_bandwidth_chart_shows_max(self):
        chart = bandwidth_chart([("Typer", 6.0)], max_gbps=12.0, width=20)
        assert "MAX" in chart
        assert "6.0 GB/s" in chart

    def test_bandwidth_chart_validation(self):
        with pytest.raises(ValueError):
            bandwidth_chart([], max_gbps=0.0)
