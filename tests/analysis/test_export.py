"""Figure export tests: Markdown, CSV, JSON round-trip."""

import csv
import io
import json

import pytest

from repro.analysis import FigureResult, from_json, to_csv, to_json, to_markdown, write_report


@pytest.fixture
def figure():
    result = FigureResult("figX", "demo figure", ("engine", "value", "flag"))
    result.add_row(engine="Typer", value=1.2345, flag=True)
    result.add_row(engine="Tectorwise", value=2.5, flag=False)
    result.note("a note")
    return result


class TestMarkdown:
    def test_structure(self, figure):
        text = to_markdown(figure)
        lines = text.splitlines()
        assert lines[0].startswith("### figX")
        assert "| engine | value | flag |" in text
        assert "| Typer | 1.234 | True |" in text
        assert "> a note" in text

    def test_float_format(self, figure):
        assert "1.23450" in to_markdown(figure, float_format="{:.5f}")

    def test_none_rendered_empty(self):
        result = FigureResult("f", "t", ("a", "b"))
        result.add_row(a=1)
        assert "|  |" in to_markdown(result)


class TestCsv:
    def test_parsable(self, figure):
        rows = list(csv.DictReader(io.StringIO(to_csv(figure))))
        assert len(rows) == 2
        assert rows[0]["engine"] == "Typer"
        assert float(rows[1]["value"]) == 2.5


class TestJson:
    def test_roundtrip(self, figure):
        recovered = from_json(to_json(figure))
        assert recovered.figure_id == figure.figure_id
        assert recovered.columns == figure.columns
        assert recovered.rows == figure.rows
        assert recovered.notes == figure.notes

    def test_valid_json(self, figure):
        payload = json.loads(to_json(figure))
        assert payload["title"] == "demo figure"


class TestWriteReport:
    def test_markdown_report(self, figure, tmp_path):
        path = tmp_path / "report.md"
        count = write_report([figure, figure], str(path), fmt="markdown")
        assert count == 2
        content = path.read_text()
        assert content.count("### figX") == 2

    def test_csv_report(self, figure, tmp_path):
        path = tmp_path / "report.csv"
        write_report([figure], str(path), fmt="csv")
        assert "engine,value,flag" in path.read_text()

    def test_unknown_format(self, figure, tmp_path):
        with pytest.raises(ValueError):
            write_report([figure], str(tmp_path / "x"), fmt="yaml")
