"""Structural tests for every figure function: each must produce the
rows, columns and notes its consumers (benchmarks, export, charts)
rely on."""

import pytest

from repro import MicroArchProfiler, SKYLAKE
from repro.analysis import EXPERIMENTS, to_csv, to_markdown


@pytest.fixture(scope="module")
def figures(small_db, profiler):
    """Execute every registered experiment once on the shared small
    database (Skylake experiments get their own profiler per spec)."""
    results = {}
    for experiment_id, spec in EXPERIMENTS.items():
        machine_profiler = (
            MicroArchProfiler(spec=SKYLAKE) if spec.machine is SKYLAKE else profiler
        )
        results[experiment_id] = spec.run(small_db, machine_profiler)
    return results


class TestEveryExperimentExecutes:
    def test_all_ids_produce_rows(self, figures):
        for experiment_id, figure in figures.items():
            assert figure.rows, experiment_id
            assert figure.figure_id == experiment_id

    def test_rows_match_declared_columns(self, figures):
        for experiment_id, figure in figures.items():
            for row in figure.rows:
                assert set(figure.columns) <= set(row), experiment_id

    def test_all_render_as_text_markdown_csv(self, figures):
        for experiment_id, figure in figures.items():
            assert figure.to_text()
            assert to_markdown(figure)
            assert to_csv(figure)


class TestExpectedRowCounts:
    CASES = {
        "fig01": 8,   # 2 engines x 4 degrees
        "fig03": 8,
        "fig05": 8,
        "fig07": 6,   # 2 engines x 3 selectivities
        "fig09": 6,
        "fig11": 6,   # 2 engines x 3 sizes
        "fig12": 6,
        "fig14": 4,   # four systems
        "fig15": 8,   # 2 engines x 4 queries
        "fig17": 6,   # 2 variants x 3 selectivities
        "fig21": 12,  # 2 engines x 3 selectivities x 2 variants
        "fig22": 8,   # 4 cases x 2 variants
        "fig25": 2,
        "fig26": 6,   # six prefetcher configs
        "fig29": 10,  # 2 engines x 5 thread counts
        "sec6-chains": 2,
        "sec2-groupby": 4,
        "sec10-speedup": 20,
    }

    @pytest.mark.parametrize("experiment_id,expected", sorted(CASES.items()))
    def test_row_count(self, figures, experiment_id, expected):
        assert len(figures[experiment_id].rows) == expected

    def test_share_columns_are_fractions(self, figures):
        for experiment_id in ("fig01", "fig03", "fig15", "fig27"):
            for row in figures[experiment_id].rows:
                shares = [v for k, v in row.items() if k.startswith("share_")]
                assert all(0.0 <= share <= 1.0 for share in shares)
                assert sum(shares) == pytest.approx(1.0, abs=1e-6)

    def test_stall_share_columns_sum_to_one(self, figures):
        for experiment_id in ("fig02", "fig04", "fig10", "fig16"):
            for row in figures[experiment_id].rows:
                shares = [
                    v for k, v in row.items() if k.startswith("stall_share_")
                ]
                assert sum(shares) == pytest.approx(1.0, abs=1e-6)

    def test_every_figure_has_notes_where_promised(self, figures):
        for experiment_id in ("fig05", "fig06", "fig26", "sec2-groupby"):
            assert figures[experiment_id].notes, experiment_id
