"""Tracing-overhead regression guard.

Tracing must stay near-free when disabled: the contextvar fast path
makes ``span()`` a no-op, so a service with tracing off should run a
cached query no slower than a generous multiple of the traced run.
Marked ``slow``: it loops queries for wall-clock stability.
"""

from __future__ import annotations

import time

import pytest

from repro.core.execcache import EXECUTION_CACHE
from repro.obs import trace
from repro.serve import QueryService, ServiceConfig
from repro.tpch.sql import projection_sql

pytestmark = pytest.mark.slow

ROUNDS = 60


def _time_submissions(service: QueryService, *, traced: bool) -> float:
    """Median seconds per cached-query submission."""
    sql = projection_sql(3)
    assert service.submit(sql)["status"] == "ok"  # warm both caches
    samples = []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        response = service.submit(sql, trace_query=traced)
        samples.append(time.perf_counter() - start)
        assert response["status"] == "ok"
    samples.sort()
    return samples[len(samples) // 2]


class TestTracingOverhead:
    def test_disabled_tracing_costs_nearly_nothing(self, tiny_db):
        EXECUTION_CACHE.clear()
        service = QueryService(ServiceConfig(workers=1), db=tiny_db)
        with service:
            traced = _time_submissions(service, traced=True)
            untraced = _time_submissions(service, traced=False)
        # Generous bound: the untraced path may not cost more than 2x
        # the traced one plus 2 ms of scheduling noise.  (Typically it
        # is *faster*; the bound only catches a broken fast path that
        # builds spans regardless of the flag.)
        assert untraced <= 2.0 * traced + 2e-3, (untraced, traced)

    def test_inactive_span_helper_is_cheap(self):
        """A span() call with no active tracer must not allocate spans;
        the per-entry cost is bounded generously so only a broken fast
        path (building real spans) can trip it."""
        assert trace.active() is False
        loops = 200_000
        start = time.perf_counter()
        for _ in range(loops):
            with trace.span("noop", attr=1):
                pass
        elapsed = time.perf_counter() - start
        per_call = elapsed / loops
        assert per_call < 25e-6, f"{per_call * 1e9:.0f} ns per no-op span"
