"""Metrics registry: families, snapshots, merging, exposition."""

from __future__ import annotations

import pickle

import pytest

from repro.obs import (
    MetricsRegistry,
    merge_snapshots,
    parse_exposition,
    render_snapshot,
)


class TestFamilies:
    def test_counter_accumulates_per_label_set(self):
        registry = MetricsRegistry()
        counter = registry.counter("q_total", "queries", ("engine",))
        counter.labels(engine="Typer").inc()
        counter.labels(engine="Typer").inc(2)
        counter.labels(engine="DBMS R").inc()
        series = registry.snapshot()["q_total"]["series"]
        assert series[("Typer",)] == 3
        assert series[("DBMS R",)] == 1

    def test_counters_only_go_up(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ValueError, match="up"):
            counter.inc(-1)

    def test_gauge_set_and_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(7)
        gauge.dec(2)
        assert registry.snapshot()["depth"]["series"][()] == 5

    def test_sync_mirrors_external_totals(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total")
        counter.sync(10)
        counter.sync(13)  # monotonic source, absolute values
        assert registry.snapshot()["hits_total"]["series"][()] == 13

    def test_wrong_labels_rejected(self):
        counter = MetricsRegistry().counter("c_total", "", ("engine",))
        with pytest.raises(ValueError, match="labels"):
            counter.labels(motor="x")
        with pytest.raises(ValueError, match="labels"):
            counter.inc()  # labelled family has no unlabelled series

    def test_type_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ValueError, match="re-registered"):
            registry.gauge("thing")
        with pytest.raises(TypeError):
            registry.counter("thing").set(1)

    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        a = registry.counter("c_total", "help", ("x",))
        b = registry.counter("c_total", "help", ("x",))
        assert a is b

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="metric name"):
            registry.counter("bad-name")
        with pytest.raises(ValueError, match="label name"):
            registry.counter("fine", "", ("bad-label",))


class TestSnapshots:
    def test_snapshot_is_picklable(self):
        """Snapshots cross the pool's result queue; they must pickle."""
        registry = MetricsRegistry()
        registry.counter("c_total", "", ("worker",)).labels(worker="0").inc()
        registry.histogram("h_seconds", buckets=(0.1, 1.0)).observe(0.5)
        snapshot = registry.snapshot()
        assert pickle.loads(pickle.dumps(snapshot)) == snapshot

    def test_merge_sums_counters_and_histograms(self):
        def worker(value, seconds):
            registry = MetricsRegistry()
            registry.counter("m_total", "", ("worker",)).labels(
                worker=str(value)
            ).inc(value)
            registry.counter("shared_total").inc(value)
            registry.histogram("h_seconds", buckets=(1.0,)).observe(seconds)
            return registry.snapshot()

        merged = merge_snapshots([worker(1, 0.5), worker(2, 2.0)])
        assert merged["m_total"]["series"][("1",)] == 1
        assert merged["m_total"]["series"][("2",)] == 2
        assert merged["shared_total"]["series"][()] == 3
        histogram = merged["h_seconds"]["series"][()]
        assert histogram["counts"] == [1, 1]
        assert histogram["count"] == 2
        assert histogram["sum"] == 2.5

    def test_merge_rejects_incompatible_families(self):
        a = MetricsRegistry()
        a.counter("thing")
        b = MetricsRegistry()
        b.gauge("thing")
        a.counter("thing").inc()
        b.gauge("thing").set(1)
        with pytest.raises(ValueError, match="incompatible"):
            merge_snapshots([a.snapshot(), b.snapshot()])

    def test_merge_of_nothing_is_empty(self):
        assert merge_snapshots([]) == {}


class TestExposition:
    def test_render_is_deterministic_and_parses(self):
        registry = MetricsRegistry()
        registry.counter("z_total", "last", ("b", "a")).labels(
            b="2", a="1"
        ).inc()
        registry.gauge("a_gauge", "first").set(1.5)
        registry.histogram("h_seconds", "hist", buckets=(0.5,)).observe(0.1)
        text = registry.render()
        assert text == render_snapshot(registry.snapshot())
        assert text.index("a_gauge") < text.index("h_seconds") < text.index(
            "z_total"
        )
        samples = parse_exposition(text)
        assert samples["__types__"] == {
            "a_gauge": "gauge", "h_seconds": "histogram", "z_total": "counter",
        }
        assert samples["z_total"][(("a", "1"), ("b", "2"))] == 1
        assert samples["a_gauge"][()] == 1.5

    def test_histogram_buckets_are_cumulative_with_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        lines = registry.render().splitlines()
        assert 'h_seconds_bucket{le="0.1"} 1' in lines
        assert 'h_seconds_bucket{le="1"} 3' in lines
        assert 'h_seconds_bucket{le="+Inf"} 4' in lines
        assert "h_seconds_count 4" in lines

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "", ("sql",)).labels(
            sql='SELECT "x"\nFROM t\\'
        ).inc()
        text = registry.render()
        samples = parse_exposition(text)  # must survive the strict parser
        (key,) = (k for k in samples["c_total"])
        assert dict(key)["sql"] == 'SELECT \\"x\\"\\nFROM t\\\\'

    def test_parser_rejects_malformed_lines(self):
        for bad in (
            "no_type_line 1",
            "# TYPE h histogram extra",
            '# TYPE c counter\nc{unclosed="} 1',
            "# TYPE c counter\nc oops",
        ):
            with pytest.raises(ValueError):
                parse_exposition(bad)
