"""Property tests for the observability invariants.

For any workload: span durations are non-negative and children nest
within their parents; morsel claims partition the table exactly; and
histogram bucket counts always sum to the series count.
"""

from __future__ import annotations

import multiprocessing

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parallel import MorselLedger
from repro.engines.morsel import MORSEL_ALIGN, morsel_ranges
from repro.obs import FakeClock, MetricsRegistry, Tracer, parse_exposition
from repro.obs import trace as trace_mod

# ----------------------------------------------------------------------
# Span trees
# ----------------------------------------------------------------------
#: One random trace is a sequence of these operations applied to the
#: currently open span (a stack walk): push a child, pop back to the
#: parent, graft a pre-timed interval, or let time pass.
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("open"), st.sampled_from("abcd")),
        st.tuples(st.just("close"), st.just(None)),
        st.tuples(
            st.just("record"),
            st.tuples(
                st.floats(-50.0, 50.0, allow_nan=False),
                st.floats(-5.0, 5.0, allow_nan=False),  # may be negative
            ),
        ),
        st.tuples(st.just("advance"), st.floats(0.0, 10.0, allow_nan=False)),
    ),
    max_size=40,
)


def _build_trace(ops, step):
    clock = FakeClock(step=step)
    tracer = Tracer(clock=clock)
    root = tracer.start("query")
    token = trace_mod.activate(tracer, root)
    open_spans = []
    try:
        for op, arg in ops:
            if op == "open":
                manager = trace_mod.span(arg)
                manager.__enter__()
                open_spans.append(manager)
            elif op == "close" and open_spans:
                open_spans.pop().__exit__(None, None, None)
            elif op == "record":
                start, duration = arg
                trace_mod.record("graft", start, start + duration)
            elif op == "advance":
                clock.advance(arg)
        while open_spans:
            open_spans.pop().__exit__(None, None, None)
    finally:
        trace_mod.deactivate(token)
    return tracer.render()


def _check_node(node, parent=None, seen_ids=None):
    assert node["duration_ms"] is not None
    assert node["duration_ms"] >= 0
    assert node["start_ms"] >= 0
    node_end = node["start_ms"] + node["duration_ms"]
    if parent is not None:
        assert node["parent_id"] == parent["span_id"]
        parent_end = parent["start_ms"] + parent["duration_ms"]
        # Tolerance scales with magnitude: start/end are float64 ms
        # values derived from independently-rounded clock reads, so an
        # absolute epsilon misfires once timestamps reach seconds.
        tolerance = 1e-6 * max(1.0, abs(parent_end))
        assert node["start_ms"] >= parent["start_ms"] - tolerance
        assert node_end <= parent_end + tolerance
    assert node["span_id"] not in seen_ids
    seen_ids.add(node["span_id"])
    for child in node["children"]:
        _check_node(child, node, seen_ids)


class TestSpanTreeInvariants:
    @given(ops=_OPS, step=st.floats(0.0, 0.01, allow_nan=False))
    @settings(max_examples=150, deadline=None)
    def test_durations_nonnegative_and_children_nest(self, ops, step):
        tree = _build_trace(ops, step)
        _check_node(tree, None, set())

    @given(ops=_OPS)
    @settings(max_examples=50, deadline=None)
    def test_span_ids_are_creation_ordered(self, ops):
        tree = _build_trace(ops, 0.001)

        def collect(node):
            yield node["span_id"]
            for child in node["children"]:
                yield from collect(child)

        ids = list(collect(tree))
        assert tree["span_id"] == 1
        assert sorted(ids) == list(range(1, len(ids) + 1))


# ----------------------------------------------------------------------
# Morsel partitioning
# ----------------------------------------------------------------------
class TestMorselPartition:
    @given(
        n_rows=st.integers(1, 500_000),
        n_workers=st.integers(1, 6),
        morsel_chunks=st.integers(1, 64),
        schedule=st.lists(st.integers(0, 5), max_size=200),
    )
    @settings(max_examples=60, deadline=None)
    def test_claims_partition_the_table_exactly(
        self, n_rows, n_workers, morsel_chunks, schedule
    ):
        """Any interleaving of claims (including steals) yields ranges
        that tile [0, n_rows) with no gap and no overlap."""
        morsel_rows = morsel_chunks * MORSEL_ALIGN
        ctx = multiprocessing.get_context("spawn")
        ledger = MorselLedger(ctx, n_workers)
        ledger.assign(morsel_ranges(n_rows, n_workers))

        claims = []
        schedule = list(schedule) or [0]
        position = 0
        while True:
            worker_id = schedule[position % len(schedule)] % n_workers
            position += 1
            claim = ledger.claim(worker_id, morsel_rows)
            if claim is None:
                # This worker is dry and found nothing to steal: the
                # whole table has been claimed.
                break
            lo, hi, stolen = claim
            assert lo < hi
            claims.append((lo, hi))

        assert ledger.remaining() == 0
        claims.sort()
        assert claims[0][0] == 0
        assert claims[-1][1] == n_rows
        for (_, hi), (lo, _) in zip(claims, claims[1:]):
            assert hi == lo  # no gaps, no overlaps

    @given(n_rows=st.integers(1, 500_000), pieces=st.integers(1, 16))
    @settings(max_examples=100, deadline=None)
    def test_assigned_ranges_partition_and_align(self, n_rows, pieces):
        ranges = morsel_ranges(n_rows, pieces)
        covered = 0
        for lo, hi in ranges:
            assert lo == covered
            assert lo % MORSEL_ALIGN == 0
            covered = hi
        assert covered == n_rows


# ----------------------------------------------------------------------
# Histograms
# ----------------------------------------------------------------------
class TestHistogramInvariants:
    @given(
        observations=st.lists(
            st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=100
        ),
        bounds=st.lists(
            st.floats(-1e3, 1e3, allow_nan=False), min_size=1, max_size=8,
            unique=True,
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_bucket_counts_sum_to_counter_total(self, observations, bounds):
        registry = MetricsRegistry()
        histogram = registry.histogram("h_seconds", "test", buckets=bounds)
        for value in observations:
            histogram.observe(value)

        snapshot = registry.snapshot()["h_seconds"]
        series = snapshot["series"][()]
        assert sum(series["counts"]) == series["count"] == len(observations)
        assert abs(series["sum"] - sum(observations)) <= 1e-6 * max(
            1.0, abs(sum(observations))
        )

        # The rendered cumulative buckets end at the total, and the
        # exposition round-trips through the strict parser.
        text = registry.render()
        samples = parse_exposition(text)
        buckets = samples["h_seconds_bucket"]
        inf_key = [key for key in buckets if dict(key)["le"] == "+Inf"]
        assert len(inf_key) == 1
        assert buckets[inf_key[0]] == len(observations)
        assert all(0 <= value <= len(observations) for value in buckets.values())
        assert samples["h_seconds_count"][()] == len(observations)
