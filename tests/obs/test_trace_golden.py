"""Golden span trees: the exact trace shape per engine and executor.

Thread mode is pinned bit-for-bit: a FakeClock (1 ms per reading) and
a single service worker make every span id, start and duration exact,
so the whole projected tree is compared against a literal. Process
mode pins the shape -- names, ids, nesting, worker/row-range attrs --
while the morsel timings come from the worker processes' real clocks.
"""

from __future__ import annotations

import pytest

from repro.core.execcache import EXECUTION_CACHE
from repro.obs import FakeClock
from repro.serve import QueryService, ServiceConfig
from repro.tpch.sql import projection_sql

ENGINES = ("DBMS R", "DBMS C", "Typer", "Tectorwise")


@pytest.fixture(autouse=True)
def _fresh_compiler_state():
    """The compiled-program and chooser-decision caches are process
    global; pinned trees assume a fresh compile inside the chooser
    span, so every golden test starts from a cleared state."""
    from repro.compile.chooser import clear_chooser_cache
    from repro.compile.program import clear_compile_cache

    clear_compile_cache()
    clear_chooser_cache()
    yield

#: Attrs that are part of the pinned golden shape.  The modeled-cost
#: attrs (modeled_cycles, modeled_ms, instructions, ...) are asserted
#: separately: their values are engine-dependent floats.
GOLDEN_ATTRS = frozenset(
    {"engine", "executor", "outcome", "worker", "row_range", "stolen",
     "queued_depth", "morsels", "method"}
)

MODELED_ATTRS = frozenset(
    {"tuples", "instructions", "streamed_bytes", "random_bytes",
     "modeled_cycles", "modeled_ms", "cached"}
)


def project(node: dict, keep=GOLDEN_ATTRS) -> dict:
    return {
        "name": node["name"],
        "span_id": node["span_id"],
        "parent_id": node["parent_id"],
        "start_ms": node["start_ms"],
        "duration_ms": node["duration_ms"],
        "attrs": {k: v for k, v in node["attrs"].items() if k in keep},
        "children": [project(child, keep) for child in node["children"]],
    }


def shape(node: dict, keep=GOLDEN_ATTRS) -> dict:
    """Like :func:`project` but without times (for cross-process spans)."""
    return {
        "name": node["name"],
        "span_id": node["span_id"],
        "parent_id": node["parent_id"],
        "attrs": {k: v for k, v in node["attrs"].items() if k in keep},
        "children": [shape(child, keep) for child in node["children"]],
    }


def find(node: dict, name: str) -> dict:
    stack = [node]
    while stack:
        current = stack.pop()
        if current["name"] == name:
            return current
        stack.extend(current["children"])
    raise AssertionError(f"no span named {name!r}")


def golden_thread_tree(engine: str, n_rows: int) -> dict:
    """The full thread-mode tree for a fresh service + empty caches.

    Clock readings advance 1 ms each; spans appear in this exact order:
    root, submitted_at, admission-end, plan_cache open, parse, plan,
    lower (open+close each), plan_cache close, execute open, morsel
    open, execcache open+close, morsel close, chooser open, compile
    open+close, chooser close, execute close, serialize open+close,
    root finish.  The chooser span holds a fresh ``compile`` child
    because the autouse fixture clears the compiled-program cache.
    """
    return {
        "name": "query", "span_id": 1, "parent_id": None,
        "start_ms": 0.0, "duration_ms": 23.0,
        "attrs": {"engine": engine},
        "children": [
            {
                "name": "admission", "span_id": 2, "parent_id": 1,
                "start_ms": 1.0, "duration_ms": 1.0,
                "attrs": {"queued_depth": 0}, "children": [],
            },
            {
                "name": "plan_cache", "span_id": 3, "parent_id": 1,
                "start_ms": 3.0, "duration_ms": 7.0,
                "attrs": {"outcome": "miss"},
                "children": [
                    {
                        "name": "parse", "span_id": 4, "parent_id": 3,
                        "start_ms": 4.0, "duration_ms": 1.0,
                        "attrs": {}, "children": [],
                    },
                    {
                        "name": "plan", "span_id": 5, "parent_id": 3,
                        "start_ms": 6.0, "duration_ms": 1.0,
                        "attrs": {}, "children": [],
                    },
                    {
                        "name": "lower", "span_id": 6, "parent_id": 3,
                        "start_ms": 8.0, "duration_ms": 1.0,
                        "attrs": {}, "children": [],
                    },
                ],
            },
            {
                "name": "execute", "span_id": 7, "parent_id": 1,
                "start_ms": 11.0, "duration_ms": 9.0,
                "attrs": {"engine": engine, "executor": "thread"},
                "children": [
                    {
                        "name": "morsel", "span_id": 8, "parent_id": 7,
                        "start_ms": 12.0, "duration_ms": 3.0,
                        "attrs": {
                            "worker": "query-worker-0",
                            "row_range": (0, n_rows),
                            "stolen": False,
                        },
                        "children": [
                            {
                                "name": "execcache", "span_id": 9,
                                "parent_id": 8,
                                "start_ms": 13.0, "duration_ms": 1.0,
                                "attrs": {
                                    "method": "run_projection",
                                    "outcome": "miss",
                                },
                                "children": [],
                            },
                        ],
                    },
                    {
                        "name": "chooser", "span_id": 10, "parent_id": 7,
                        "start_ms": 16.0, "duration_ms": 3.0,
                        "attrs": {"outcome": "decided"},
                        "children": [
                            {
                                "name": "compile", "span_id": 11,
                                "parent_id": 10,
                                "start_ms": 17.0, "duration_ms": 1.0,
                                "attrs": {}, "children": [],
                            },
                        ],
                    },
                ],
            },
            {
                "name": "serialize", "span_id": 12, "parent_id": 1,
                "start_ms": 21.0, "duration_ms": 1.0,
                "attrs": {}, "children": [],
            },
        ],
    }


class TestThreadGolden:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_trace_matches_golden(self, tiny_db, engine):
        EXECUTION_CACHE.clear()
        service = QueryService(
            ServiceConfig(workers=1, queue_depth=4),
            db=tiny_db,
            clock=FakeClock(step=0.001),
        )
        with service:
            response = service.submit(projection_sql(4), engine=engine,
                                      trace_query=True)
        assert response["status"] == "ok", response
        n_rows = tiny_db.table("lineitem").n_rows
        assert project(response["trace"]) == golden_thread_tree(engine, n_rows)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_trace_is_bit_deterministic(self, tiny_db, engine):
        """Two runs under identical conditions yield identical trees,
        modeled attrs and all."""
        def run():
            from repro.compile.chooser import clear_chooser_cache
            from repro.compile.program import clear_compile_cache

            EXECUTION_CACHE.clear()
            clear_compile_cache()
            clear_chooser_cache()
            service = QueryService(
                ServiceConfig(workers=1, queue_depth=4),
                db=tiny_db,
                clock=FakeClock(step=0.001),
            )
            with service:
                return service.submit(
                    projection_sql(4), engine=engine, trace_query=True
                )["trace"]

        assert run() == run()

    def test_execute_span_carries_modeled_costs(self, tiny_db):
        EXECUTION_CACHE.clear()
        service = QueryService(
            ServiceConfig(workers=1), db=tiny_db, clock=FakeClock()
        )
        with service:
            response = service.submit(projection_sql(4), trace_query=True)
        execute = find(response["trace"], "execute")
        assert MODELED_ATTRS <= set(execute["attrs"])
        assert execute["attrs"]["modeled_cycles"] > 0
        assert execute["attrs"]["modeled_ms"] > 0
        assert execute["attrs"]["tuples"] == response["tuples"]

    def test_plan_cache_hit_prunes_compile_spans(self, tiny_db):
        EXECUTION_CACHE.clear()
        service = QueryService(
            ServiceConfig(workers=1), db=tiny_db, clock=FakeClock()
        )
        with service:
            service.submit(projection_sql(4))
            response = service.submit(projection_sql(4), trace_query=True)
        plan_cache = find(response["trace"], "plan_cache")
        assert plan_cache["attrs"]["outcome"] == "hit"
        assert plan_cache["children"] == []
        execcache = find(response["trace"], "execcache")
        assert execcache["attrs"]["outcome"] == "hit"
        assert response["cached"] is True


def _sorted_twin(db):
    """lineitem clustered on l_shipdate, so Q6's date window prunes."""
    import numpy as np

    from repro.storage import ColumnTable, Database
    from repro.storage.encoding import encode_columns

    twin = Database(name=f"{db.name}-sorted", scale_factor=db.scale_factor)
    for name in db.table_names:
        table = db.table(name)
        columns = {c: np.asarray(table[c]) for c in table.column_names}
        if name == "lineitem":
            order = np.argsort(columns["l_shipdate"], kind="stable")
            columns = {c: values[order] for c, values in columns.items()}
        twin.add_table(ColumnTable(name, encode_columns(columns)))
    return twin


#: Pruning-decision attrs pinned on the ``prune`` span.
PRUNE_ATTRS = GOLDEN_ATTRS | frozenset(
    {"morsels_scanned", "morsels_pruned", "rows", "rows_pruned",
     "chunk_rows", "bytes_pruned"}
)


class TestPrunedGolden:
    """Q6 over clustered data in thread mode: the prune span and the
    per-kept-segment morsel spans are pinned bit-for-bit."""

    @pytest.fixture(scope="class")
    def sorted_db(self, tiny_db):
        return _sorted_twin(tiny_db)

    @pytest.fixture(scope="class")
    def plan(self, sorted_db):
        from repro.core import pruning

        atoms = pruning.atoms_for(sorted_db, "run_q6", {})
        plan = pruning.compute_prune_plan(sorted_db, atoms)
        assert plan is not None
        return plan

    def test_fixture_plan_shape(self, plan):
        """The golden literal below assumes this exact prune shape."""
        assert plan.kept_segments == ((0, 8192),)
        assert plan.pruned_runs == ((8192, plan.n_rows, 1),)

    def golden_pruned_tree(self, engine: str, plan, summary: dict) -> dict:
        return {
            "name": "query", "span_id": 1, "parent_id": None,
            "start_ms": 0.0, "duration_ms": 25.0,
            "attrs": {"engine": engine},
            "children": [
                {"name": "admission", "span_id": 2, "parent_id": 1,
                 "start_ms": 1.0, "duration_ms": 1.0,
                 "attrs": {"queued_depth": 0}, "children": []},
                {"name": "plan_cache", "span_id": 3, "parent_id": 1,
                 "start_ms": 3.0, "duration_ms": 7.0,
                 "attrs": {"outcome": "miss"},
                 "children": [
                     {"name": "parse", "span_id": 4, "parent_id": 3,
                      "start_ms": 4.0, "duration_ms": 1.0,
                      "attrs": {}, "children": []},
                     {"name": "plan", "span_id": 5, "parent_id": 3,
                      "start_ms": 6.0, "duration_ms": 1.0,
                      "attrs": {}, "children": []},
                     {"name": "lower", "span_id": 6, "parent_id": 3,
                      "start_ms": 8.0, "duration_ms": 1.0,
                      "attrs": {}, "children": []},
                 ]},
                {"name": "execute", "span_id": 7, "parent_id": 1,
                 "start_ms": 11.0, "duration_ms": 11.0,
                 "attrs": {"engine": engine, "executor": "thread"},
                 "children": [
                     {"name": "prune", "span_id": 8, "parent_id": 7,
                      "start_ms": 12.0, "duration_ms": 1.0,
                      "attrs": {"executor": "thread", **summary},
                      "children": []},
                     {"name": "morsel", "span_id": 9, "parent_id": 7,
                      "start_ms": 14.0, "duration_ms": 1.0,
                      "attrs": {"row_range": plan.kept_segments[0],
                                "stolen": False},
                      "children": []},
                     {"name": "merge", "span_id": 10, "parent_id": 7,
                      "start_ms": 16.0, "duration_ms": 1.0,
                      "attrs": {"morsels": 2}, "children": []},
                     {"name": "chooser", "span_id": 11, "parent_id": 7,
                      "start_ms": 18.0, "duration_ms": 3.0,
                      "attrs": {"outcome": "decided"},
                      "children": [
                          {"name": "compile", "span_id": 12,
                           "parent_id": 11,
                           "start_ms": 19.0, "duration_ms": 1.0,
                           "attrs": {}, "children": []},
                      ]},
                 ]},
                {"name": "serialize", "span_id": 13, "parent_id": 1,
                 "start_ms": 23.0, "duration_ms": 1.0,
                 "attrs": {}, "children": []},
            ],
        }

    @pytest.mark.parametrize("engine", ENGINES)
    def test_trace_matches_golden(self, sorted_db, plan, engine):
        from repro.tpch.sql import TPCH_SQL

        EXECUTION_CACHE.clear()
        service = QueryService(
            ServiceConfig(workers=1, queue_depth=4),
            db=sorted_db,
            clock=FakeClock(step=0.001),
        )
        with service:
            response = service.submit(TPCH_SQL["Q6"], engine=engine,
                                      trace_query=True)
        assert response["status"] == "ok", response
        summary = plan.summary(sorted_db, "run_q6")
        expected = self.golden_pruned_tree(engine, plan, summary)
        assert project(response["trace"], keep=PRUNE_ATTRS) == expected

    def test_nothing_pruned_still_shows_the_decision(self, tiny_db):
        """Shuffled data prunes nothing: the prune span records the
        zero outcome and execution takes the normal (execcache) path."""
        from repro.tpch.sql import TPCH_SQL

        EXECUTION_CACHE.clear()
        service = QueryService(
            ServiceConfig(workers=1, queue_depth=4),
            db=tiny_db,
            clock=FakeClock(step=0.001),
        )
        with service:
            response = service.submit(TPCH_SQL["Q6"], trace_query=True)
        assert response["status"] == "ok", response
        prune = find(response["trace"], "prune")
        assert prune["attrs"]["morsels_pruned"] == 0
        assert prune["attrs"]["morsels_scanned"] > 0
        execcache = find(response["trace"], "execcache")
        assert execcache["attrs"]["method"] == "run_q6"

    def test_process_executor_pins_prune_span_and_stats(self, sorted_db,
                                                        plan):
        from repro.tpch.sql import TPCH_SQL

        EXECUTION_CACHE.clear()
        service = QueryService(
            ServiceConfig(workers=1, timeout_s=120.0, executor="process",
                          process_workers=2),
            db=sorted_db,
            clock=FakeClock(step=0.001),
        )
        with service:
            response = service.submit(TPCH_SQL["Q6"], trace_query=True)
            stats = service.stats_snapshot()["pruning"]
        assert response["status"] == "ok", response
        prune = find(response["trace"], "prune")
        assert prune["attrs"]["executor"] == "process"
        assert prune["attrs"]["morsels_pruned"] == plan.chunks_pruned
        # Worker morsel spans cover exactly the kept segments.
        execute = find(response["trace"], "execute")
        ranges = sorted(
            tuple(span["attrs"]["row_range"])
            for span in execute["children"] if span["name"] == "morsel"
        )
        assert ranges[0][0] == plan.kept_segments[0][0]
        assert ranges[-1][1] == plan.kept_segments[-1][1]
        assert stats["enabled"] is True
        assert stats["queries_pruned"] == 1
        assert stats["rows_pruned"] == plan.rows_pruned

    def test_disabled_pruning_emits_no_prune_span(self, sorted_db,
                                                  monkeypatch):
        from repro.tpch.sql import TPCH_SQL

        monkeypatch.setenv("REPRO_PRUNING", "0")
        EXECUTION_CACHE.clear()
        service = QueryService(
            ServiceConfig(workers=1, queue_depth=4),
            db=sorted_db,
            clock=FakeClock(step=0.001),
        )
        with service:
            response = service.submit(TPCH_SQL["Q6"], trace_query=True)
        assert response["status"] == "ok", response
        with pytest.raises(AssertionError, match="no span named"):
            find(response["trace"], "prune")


#: Routing-decision attrs pinned on the ``route`` span.
ROUTE_ATTRS = GOLDEN_ATTRS | frozenset({"rollup_used", "reason"})


class TestRoutedGolden:
    """Group-by over a partitioned database with a rollup attached, in
    thread mode: the entire tree collapses to a single ``route`` span
    under ``execute`` -- no prune, no morsel, no execcache -- and is
    pinned bit-for-bit."""

    @pytest.fixture(scope="class")
    def routed_db(self, tiny_db):
        from repro.rollup import (
            PartitionSpec, build_and_attach, partitioned_database,
        )
        from repro.tpch.schema import DATE_1998_09_02

        db = partitioned_database(
            tiny_db,
            PartitionSpec("l_shipdate", (2300.0, DATE_1998_09_02 + 0.5)),
        )
        build_and_attach(db)
        return db

    def golden_routed_tree(self, engine: str) -> dict:
        return {
            "name": "query", "span_id": 1, "parent_id": None,
            "start_ms": 0.0, "duration_ms": 21.0,
            "attrs": {"engine": engine},
            "children": [
                {"name": "admission", "span_id": 2, "parent_id": 1,
                 "start_ms": 1.0, "duration_ms": 1.0,
                 "attrs": {"queued_depth": 0}, "children": []},
                {"name": "plan_cache", "span_id": 3, "parent_id": 1,
                 "start_ms": 3.0, "duration_ms": 7.0,
                 "attrs": {"outcome": "miss"},
                 "children": [
                     {"name": "parse", "span_id": 4, "parent_id": 3,
                      "start_ms": 4.0, "duration_ms": 1.0,
                      "attrs": {}, "children": []},
                     {"name": "plan", "span_id": 5, "parent_id": 3,
                      "start_ms": 6.0, "duration_ms": 1.0,
                      "attrs": {}, "children": []},
                     {"name": "lower", "span_id": 6, "parent_id": 3,
                      "start_ms": 8.0, "duration_ms": 1.0,
                      "attrs": {}, "children": []},
                 ]},
                {"name": "execute", "span_id": 7, "parent_id": 1,
                 "start_ms": 11.0, "duration_ms": 7.0,
                 "attrs": {"engine": engine, "executor": "thread"},
                 "children": [
                     {"name": "route", "span_id": 8, "parent_id": 7,
                      "start_ms": 12.0, "duration_ms": 1.0,
                      "attrs": {"executor": "thread",
                                "rollup_used": True,
                                "reason": "routed"},
                      "children": []},
                     {"name": "chooser", "span_id": 9, "parent_id": 7,
                      "start_ms": 14.0, "duration_ms": 3.0,
                      "attrs": {"outcome": "decided"},
                      "children": [
                          {"name": "compile", "span_id": 10,
                           "parent_id": 9,
                           "start_ms": 15.0, "duration_ms": 1.0,
                           "attrs": {}, "children": []},
                      ]},
                 ]},
                {"name": "serialize", "span_id": 11, "parent_id": 1,
                 "start_ms": 19.0, "duration_ms": 1.0,
                 "attrs": {}, "children": []},
            ],
        }

    def _service(self, db):
        EXECUTION_CACHE.clear()
        return QueryService(
            ServiceConfig(workers=1, queue_depth=4),
            db=db,
            clock=FakeClock(step=0.001),
        )

    def test_trace_matches_golden(self, routed_db):
        from repro.tpch.sql import GROUPBY_SQL

        with self._service(routed_db) as service:
            response = service.submit(GROUPBY_SQL, trace_query=True)
        assert response["status"] == "ok", response
        expected = self.golden_routed_tree("Typer")
        assert project(response["trace"], keep=ROUTE_ATTRS) == expected

    def test_fallback_route_span_carries_reason(self, routed_db):
        """An engine whose Q1 finisher cannot merge partials still gets
        a route span -- rollup_used False with the reason -- and then
        takes the normal prune/morsel path."""
        from repro.tpch.sql import TPCH_SQL

        with self._service(routed_db) as service:
            response = service.submit(TPCH_SQL["Q1"], engine="DBMS R",
                                      trace_query=True)
        assert response["status"] == "ok", response
        route = find(response["trace"], "route")
        assert project(route, keep=ROUTE_ATTRS) == {
            "name": "route", "span_id": 8, "parent_id": 7,
            "start_ms": 12.0, "duration_ms": 1.0,
            "attrs": {"executor": "thread", "rollup_used": False,
                      "reason": "engine-finisher-not-decomposable"},
            "children": [],
        }
        find(response["trace"], "morsel")  # base path actually ran

    def test_disabled_rollups_emit_no_route_span(self, routed_db,
                                                 monkeypatch):
        from repro.tpch.sql import GROUPBY_SQL

        monkeypatch.setenv("REPRO_ROLLUPS", "0")
        with self._service(routed_db) as service:
            response = service.submit(GROUPBY_SQL, trace_query=True)
        assert response["status"] == "ok", response
        with pytest.raises(AssertionError, match="no span named"):
            find(response["trace"], "route")

    def test_no_rollups_attached_emits_no_route_span(self, tiny_db):
        from repro.tpch.sql import GROUPBY_SQL

        with self._service(tiny_db) as service:
            response = service.submit(GROUPBY_SQL, trace_query=True)
        assert response["status"] == "ok", response
        with pytest.raises(AssertionError, match="no span named"):
            find(response["trace"], "route")


@pytest.fixture(scope="module")
def process_service(tiny_db):
    EXECUTION_CACHE.clear()
    service = QueryService(
        ServiceConfig(
            workers=1,
            timeout_s=120.0,
            executor="process",
            process_workers=2,
        ),
        db=tiny_db,
        clock=FakeClock(step=0.001),
    )
    with service:
        yield service
    EXECUTION_CACHE.clear()


class TestProcessGolden:
    def expected_shape(self, engine: str, plan_cached: bool, morsels: int,
                       merged: int, morsel_attrs: list[dict]) -> dict:
        compile_children = []
        if not plan_cached:
            compile_children = [
                {"name": "parse", "span_id": 4, "parent_id": 3,
                 "attrs": {}, "children": []},
                {"name": "plan", "span_id": 5, "parent_id": 3,
                 "attrs": {}, "children": []},
                {"name": "lower", "span_id": 6, "parent_id": 3,
                 "attrs": {}, "children": []},
            ]
        base = 7 if not plan_cached else 4
        execute_children = [
            {"name": "morsel", "span_id": base + 1 + index,
             "parent_id": base, "attrs": attrs, "children": []}
            for index, attrs in enumerate(morsel_attrs)
        ]
        execute_children.append(
            {"name": "merge", "span_id": base + 1 + morsels,
             "parent_id": base, "attrs": {"morsels": merged}, "children": []}
        )
        # The chooser prices every query parent-side; the compiled-
        # program cache is cleared per test, so a compile child appears.
        execute_children.append(
            {"name": "chooser", "span_id": base + 2 + morsels,
             "parent_id": base, "attrs": {"outcome": "decided"},
             "children": [
                 {"name": "compile", "span_id": base + 3 + morsels,
                  "parent_id": base + 2 + morsels, "attrs": {},
                  "children": []},
             ]}
        )
        return {
            "name": "query", "span_id": 1, "parent_id": None,
            "attrs": {"engine": engine},
            "children": [
                {"name": "admission", "span_id": 2, "parent_id": 1,
                 "attrs": {"queued_depth": 0}, "children": []},
                {"name": "plan_cache", "span_id": 3, "parent_id": 1,
                 "attrs": {"outcome": "hit" if plan_cached else "miss"},
                 "children": compile_children},
                {"name": "execute", "span_id": base, "parent_id": 1,
                 "attrs": {"engine": engine, "executor": "process"},
                 "children": execute_children},
                {"name": "serialize", "span_id": base + 4 + morsels,
                 "parent_id": 1, "attrs": {}, "children": []},
            ],
        }

    @pytest.mark.parametrize("index,engine", list(enumerate(ENGINES)))
    def test_trace_shape_per_engine(self, process_service, tiny_db, index,
                                    engine):
        response = process_service.submit(
            projection_sql(4), engine=engine, trace_query=True
        )
        assert response["status"] == "ok", response
        tree = response["trace"]
        execute = find(tree, "execute")
        morsel_spans = [c for c in execute["children"] if c["name"] == "morsel"]
        merge_spans = [c for c in execute["children"] if c["name"] == "merge"]
        assert len(merge_spans) == 1
        merged = merge_spans[0]["attrs"]["morsels"]

        # Two pool workers, tiny table, one morsel per claim: exactly
        # two morsel spans; stealing only shifts who ran them.
        assert len(morsel_spans) == 2
        assert all(span["attrs"]["worker"] in (0, 1) for span in morsel_spans)
        assert all(span["attrs"]["stolen"] in (True, False)
                   for span in morsel_spans)
        assert merged in (1, 2)

        # Row ranges partition the table exactly, in sorted order.
        n_rows = tiny_db.table("lineitem").n_rows
        ranges = [span["attrs"]["row_range"] for span in morsel_spans]
        assert ranges == sorted(ranges)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == n_rows
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi == lo

        # The full shape (ids, nesting, non-racy attrs) is golden; the
        # worker/stolen attrs and timings are checked above instead.
        racy = GOLDEN_ATTRS - {"worker", "stolen"}
        expected = self.expected_shape(
            engine,
            plan_cached=index > 0,  # module-scoped service, same SQL
            morsels=2,
            merged=merged,
            morsel_attrs=[
                {"row_range": span_range} for span_range in ranges
            ],
        )
        assert shape(tree, keep=racy) == expected

    def test_morsel_spans_nest_inside_execute(self, process_service):
        response = process_service.submit(
            projection_sql(2), engine="Typer", trace_query=True
        )
        assert response["status"] == "ok", response
        execute = find(response["trace"], "execute")
        start = execute["start_ms"]
        end = start + execute["duration_ms"]
        for child in execute["children"]:
            assert child["start_ms"] >= start
            assert child["start_ms"] + child["duration_ms"] <= end + 1e-6
