"""Service-level observability: trace field, metrics op, slowlog op,
injectable clock, and stats surviving worker restarts."""

from __future__ import annotations

import pytest

from repro.core.execcache import EXECUTION_CACHE
from repro.obs import FakeClock, parse_exposition
from repro.serve import QueryService, ServiceConfig
from repro.serve.server import dispatch
from repro.tpch.sql import TPCH_SQL, projection_sql


@pytest.fixture
def service(tiny_db):
    EXECUTION_CACHE.clear()
    service = QueryService(
        ServiceConfig(workers=2, queue_depth=8), db=tiny_db
    )
    with service:
        yield service
    EXECUTION_CACHE.clear()


class TestTraceField:
    def test_untraced_response_has_no_trace_key(self, service):
        response = service.submit(projection_sql(1))
        assert response["status"] == "ok"
        assert "trace" not in response

    def test_traced_response_has_span_tree(self, service):
        response = service.submit(projection_sql(1), trace_query=True)
        assert response["status"] == "ok"
        tree = response["trace"]
        assert tree["name"] == "query"
        assert [child["name"] for child in tree["children"]] == [
            "admission", "plan_cache", "execute", "serialize",
        ]

    def test_error_response_still_carries_trace(self, service):
        response = service.submit("SELECT nope FROM lineitem",
                                  trace_query=True)
        assert response["status"] == "error"
        assert response["trace"]["name"] == "query"

    def test_dispatch_routes_trace_flag(self, service):
        response = dispatch(service, {"sql": projection_sql(1), "trace": True})
        assert response["status"] == "ok"
        assert "trace" in response
        response = dispatch(service, {"sql": projection_sql(1)})
        assert "trace" not in response


class TestMetricsOp:
    def test_exposition_parses_and_counts_queries(self, service):
        service.submit(projection_sql(1))
        service.submit(projection_sql(1), engine="DBMS C")
        service.submit("SELECT broken", engine="DBMS C")
        response = dispatch(service, {"op": "metrics"})
        assert response["status"] == "ok"
        samples = parse_exposition(response["metrics"])
        queries = samples["repro_queries_total"]
        assert queries[(("engine", "Typer"), ("status", "ok"))] == 1
        assert queries[(("engine", "DBMS C"), ("status", "ok"))] == 1
        assert queries[(("engine", "DBMS C"), ("status", "error"))] == 1
        assert samples["repro_query_latency_seconds_count"][
            (("engine", "Typer"),)
        ] == 1
        assert samples["__types__"]["repro_query_latency_seconds"] == "histogram"

    def test_cache_counters_are_mirrored(self, service):
        sql = projection_sql(2)
        service.submit(sql)
        service.submit(sql)
        samples = parse_exposition(service.metrics_text())
        assert samples["repro_plan_cache_misses_total"][()] == 1
        assert samples["repro_plan_cache_hits_total"][()] == 1
        assert samples["repro_plan_cache_entries"][()] == 1
        assert samples["repro_execcache_misses_total"][()] >= 1
        assert samples["repro_execcache_hits_total"][()] >= 1
        assert samples["repro_service_workers"][()] == 2

    def test_rejected_queries_count_but_skip_latency(self, tiny_db):
        EXECUTION_CACHE.clear()
        service = QueryService(
            ServiceConfig(workers=1, queue_depth=1), db=tiny_db
        )
        # Not started: the queue fills and rejects without execution.
        service._queue.put_nowait(object())
        response = service.submit(projection_sql(1))
        assert response["status"] == "rejected"
        samples = parse_exposition(service.metrics_text())
        assert samples["repro_queries_total"][
            (("engine", "Typer"), ("status", "rejected"))
        ] == 1
        assert "repro_query_latency_seconds_count" not in samples


class TestPruningObservability:
    """Pruning decisions surface in the stats snapshot and the metric
    families, from both executors' result details."""

    @pytest.fixture
    def pruned_service(self, tiny_db):
        from tests.obs.test_trace_golden import _sorted_twin

        EXECUTION_CACHE.clear()
        service = QueryService(
            ServiceConfig(workers=1, queue_depth=8), db=_sorted_twin(tiny_db)
        )
        with service:
            yield service
        EXECUTION_CACHE.clear()

    def test_stats_snapshot_accumulates_decisions(self, pruned_service):
        for _ in range(2):
            response = pruned_service.submit(TPCH_SQL["Q6"])
            assert response["status"] == "ok"
        stats = pruned_service.stats_snapshot()["pruning"]
        assert stats["enabled"] is True
        assert stats["queries"] == 2
        assert stats["queries_pruned"] == 2
        assert stats["morsels_pruned"] == 2 * 1
        assert stats["morsels_scanned"] == 2 * 1
        assert stats["rows_pruned"] > 0
        assert stats["bytes_pruned"] > 0

    def test_metrics_expose_prune_counters(self, pruned_service):
        pruned_service.submit(TPCH_SQL["Q6"])
        samples = parse_exposition(pruned_service.metrics_text())
        assert samples["repro_prune_queries_total"][()] == 1
        assert samples["repro_prune_morsels_pruned_total"][()] == 1
        assert samples["repro_prune_morsels_scanned_total"][()] == 1
        assert samples["repro_prune_rows_pruned_total"][()] > 0

    def test_unprunable_queries_leave_totals_untouched(self, service):
        service.submit(projection_sql(2))
        service.submit(TPCH_SQL["Q6"])  # shuffled fixture: nothing prunes
        stats = service.stats_snapshot()["pruning"]
        assert stats["queries"] == 0
        assert stats["morsels_pruned"] == 0


class TestSlowlogOp:
    def test_slowest_first_with_traces(self, service):
        service.submit(projection_sql(1), trace_query=True)
        service.submit(TPCH_SQL["Q1"])
        service.submit(projection_sql(1))  # cached: fast
        response = dispatch(service, {"op": "slowlog"})
        assert response["status"] == "ok"
        entries = response["slowlog"]
        assert len(entries) == 3
        latencies = [entry["latency_ms"] for entry in entries]
        assert latencies == sorted(latencies, reverse=True)
        traced = [entry for entry in entries if entry["trace"]]
        assert len(traced) == 1
        assert traced[0]["sql"] == projection_sql(1)

    def test_capacity_keeps_only_slowest(self, tiny_db):
        EXECUTION_CACHE.clear()
        service = QueryService(
            ServiceConfig(workers=1, slowlog_capacity=2), db=tiny_db
        )
        latencies = []
        with service:
            for degree in (1, 2, 3, 4):
                response = service.submit(projection_sql(degree))
                assert response["status"] == "ok"
                latencies.append(response["latency_ms"])
        entries = service.slowlog_snapshot()
        assert len(entries) == 2
        kept = [entry["latency_ms"] for entry in entries]
        expected = sorted(latencies, reverse=True)[:2]
        # Response latencies round to 3 decimals, slowlog entries to 6.
        assert kept == pytest.approx(expected, abs=1e-3)

    def test_rejected_queries_stay_out_of_slowlog(self, tiny_db):
        service = QueryService(
            ServiceConfig(workers=1, queue_depth=1), db=tiny_db
        )
        service._queue.put_nowait(object())
        assert service.submit(projection_sql(1))["status"] == "rejected"
        assert service.slowlog_snapshot() == []


class TestInjectableClock:
    def test_latency_is_deterministic_with_fake_clock(self, tiny_db):
        EXECUTION_CACHE.clear()
        service = QueryService(
            ServiceConfig(workers=1),
            db=tiny_db,
            clock=FakeClock(step=0.001),
        )
        with service:
            response = service.submit(projection_sql(4))
        assert response["latency_ms"] > 0
        again = QueryService(
            ServiceConfig(workers=1), db=tiny_db, clock=FakeClock(step=0.001)
        )
        EXECUTION_CACHE.clear()
        with again:
            repeat = again.submit(projection_sql(4))
        assert repeat["latency_ms"] == response["latency_ms"]

    def test_stats_survive_worker_pool_restarts(self, tiny_db):
        """Counters must accumulate across stop()/start() cycles: the
        stats object belongs to the service, not to its worker pool."""
        EXECUTION_CACHE.clear()
        service = QueryService(ServiceConfig(workers=2), db=tiny_db)
        with service:
            assert service.submit(projection_sql(1))["status"] == "ok"
            assert service.submit("SELECT broken")["status"] == "error"
        before = service.stats.snapshot()
        assert before["submitted"] == 2

        with service:  # restart the worker pool
            assert service.submit(projection_sql(1))["status"] == "ok"
        after = service.stats.snapshot()
        assert after["submitted"] == 3
        assert after["ok"] == before["ok"] + 1
        assert after["errors"] == before["errors"]

        # The metrics registry survives the restart too.
        samples = parse_exposition(service.metrics_text())
        assert samples["repro_queries_total"][
            (("engine", "Typer"), ("status", "ok"))
        ] == 2


@pytest.fixture(scope="module")
def process_service(tiny_db):
    EXECUTION_CACHE.clear()
    service = QueryService(
        ServiceConfig(
            workers=1, timeout_s=120.0, executor="process", process_workers=2
        ),
        db=tiny_db,
    )
    with service:
        yield service
    EXECUTION_CACHE.clear()


class TestProcessPoolAggregation:
    def test_worker_metrics_aggregate_over_result_channel(
        self, process_service
    ):
        assert process_service.submit(projection_sql(2))["status"] == "ok"
        samples = parse_exposition(process_service.metrics_text())
        morsels = samples["repro_worker_morsels_total"]
        assert sum(morsels.values()) >= 2  # both ranges were executed
        assert all(
            dict(key)["worker"] in ("0", "1") for key in morsels
        )
        seconds = samples["repro_worker_morsel_seconds_count"]
        assert sum(seconds.values()) == sum(morsels.values())
        assert samples["repro_pool_workers_alive"][()] == 2
        assert samples["repro_pool_queries_total"][()] >= 1
        rows = samples["repro_worker_rows_total"]
        assert sum(rows.values()) >= 1
