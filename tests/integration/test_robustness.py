"""Robustness and failure-injection tests: wrong inputs must fail
loudly and degenerate inputs must not crash."""

import numpy as np
import pytest

from repro import MicroArchProfiler, TyperEngine, TectorwiseEngine
from repro.engines import ALL_ENGINES, ChainedHashTable, RowStoreEngine
from repro.storage import ColumnTable, Database
from repro.core import ExecutionContext, WorkProfile
from repro.workloads import run_projection_sweep


class TestDegenerateDatabases:
    @pytest.fixture(scope="class")
    def minimal_db(self, db_factory):
        """The smallest generatable database (floor of one row/table)."""
        return db_factory(1e-6, seed=5)

    def test_all_workloads_run_on_minimal_database(self, minimal_db, profiler):
        for engine_cls in ALL_ENGINES:
            engine = engine_cls()
            for method, args in (
                ("run_projection", (minimal_db, 4)),
                ("run_selection", (minimal_db, 0.5)),
                ("run_join", (minimal_db, "large")),
                ("run_groupby", (minimal_db,)),
            ):
                report = profiler.run(engine, method, *args)
                assert report.cycles >= 0

    def test_tpch_runs_on_minimal_database(self, minimal_db, profiler):
        for query_id in ("Q1", "Q6", "Q9", "Q18"):
            report = profiler.run(TyperEngine(), "run_tpch", minimal_db, query_id)
            assert np.isfinite(report.cycles)

    def test_missing_table_fails_with_clear_error(self, profiler):
        db = Database("broken")
        db.add_table(ColumnTable("lineitem", {"l_orderkey": np.array([1], dtype=np.int64)}))
        with pytest.raises(KeyError):
            TyperEngine().run_projection(db, 4)  # no l_extendedprice column
        with pytest.raises(KeyError):
            TyperEngine().run_join(db, "large")  # no orders table


class TestCorruptedInputs:
    def test_negative_work_rejected_at_recording_time(self):
        work = WorkProfile()
        with pytest.raises(ValueError):
            work.record_sequential_read(-1.0)
        with pytest.raises(ValueError):
            work.record_random("r", -1, 100)

    def test_breakdown_of_empty_profile_is_zero(self, profiler):
        breakdown = profiler.model.breakdown(WorkProfile())
        assert breakdown.total == 0.0

    def test_duplicate_build_keys_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            ChainedHashTable(np.array([7, 7, 8]))

    def test_cross_engine_divergence_detected(self, small_db, profiler):
        """The sweep verifiers must catch a lying engine."""

        class BrokenEngine(TyperEngine):
            name = "Broken"

            def run_projection(self, db, degree, simd=False):
                result = super().run_projection(db, degree, simd=simd)
                result.value *= 1.001
                return result

        with pytest.raises(AssertionError, match="disagrees"):
            run_projection_sweep(
                small_db, (TyperEngine(), BrokenEngine()), profiler, degrees=(2,)
            )

    def test_tpch_result_verification_catches_wrong_answers(self, small_db, profiler):
        from repro.workloads import run_tpch

        class WrongQ6(TectorwiseEngine):
            def run_q6(self, db, predicated=False):
                result = super().run_q6(db, predicated=predicated)
                result.value *= 2.0
                return result

        with pytest.raises(AssertionError, match="wrong result"):
            run_tpch(small_db, (WrongQ6(),), profiler, queries=("Q6",))


class TestExtremeContexts:
    def test_many_threads_context_valid_until_socket_limit(self, small_db, profiler):
        result = TyperEngine().run_projection(small_db, 1)
        report = profiler.profile(TyperEngine(), result, ExecutionContext(threads=14))
        assert report.cycles > 0

    def test_selectivity_bounds_enforced_everywhere(self, small_db):
        for engine_cls in (TyperEngine, RowStoreEngine):
            with pytest.raises(ValueError):
                engine_cls().run_selection(small_db, 0.0)
            with pytest.raises(ValueError):
                engine_cls().run_selection(small_db, 1.0)

    def test_reports_are_finite(self, small_db, profiler):
        for engine_cls in ALL_ENGINES:
            engine = engine_cls()
            report = profiler.run(engine, "run_projection", small_db, 4)
            assert np.isfinite(report.response_time_ms)
            assert np.isfinite(report.bandwidth.gbps)
            assert 0.0 <= report.stall_ratio <= 1.0
