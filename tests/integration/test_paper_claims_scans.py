"""Integration tests pinning the paper's projection/selection claims
(Sections 3-4) at a scale where working sets exceed the modelled L3."""

import pytest

from repro.engines import (
    ColumnStoreEngine,
    RowStoreEngine,
    TectorwiseEngine,
    TyperEngine,
)
from repro.workloads import (
    normalized_response_times,
    run_projection_sweep,
    run_selection_sweep,
)


@pytest.fixture(scope="module")
def projection_reports(paper_db, profiler):
    engines = (RowStoreEngine(), ColumnStoreEngine(), TyperEngine(), TectorwiseEngine())
    return run_projection_sweep(paper_db, engines, profiler)


@pytest.fixture(scope="module")
def selection_reports(paper_db, profiler):
    return run_selection_sweep(
        paper_db, (TyperEngine(), TectorwiseEngine()), profiler
    )


class TestProjectionCommercial:
    """Figures 1-2, 6."""

    def test_dbms_r_retiring_near_half(self, projection_reports):
        for report in projection_reports["DBMS R"].values():
            assert 0.30 <= report.retiring_ratio <= 0.60

    def test_dbms_c_retiring_dominates(self, projection_reports):
        for report in projection_reports["DBMS C"].values():
            assert report.retiring_ratio >= 0.70

    def test_no_icache_problem(self, projection_reports):
        """The paper's headline negative result: unlike OLTP, no
        commercial OLAP system is Icache-bound."""
        for engine in ("DBMS R", "DBMS C"):
            for report in projection_reports[engine].values():
                assert report.cycle_shares()["icache"] < 0.10

    def test_dbms_r_stalls_are_dcache_and_execution(self, projection_reports):
        report = projection_reports["DBMS R"][4]
        shares = report.stall_shares()
        assert shares["dcache"] + shares["execution"] > 0.6

    def test_instruction_footprint_orders_of_magnitude(self, projection_reports):
        """Figure 6: DBMS R ~2 orders of magnitude slower than Typer;
        DBMS C in between, ~1 order slower."""
        normalized = normalized_response_times(projection_reports, degree=4)
        assert normalized["Typer"] == pytest.approx(1.0)
        assert 50 <= normalized["DBMS R"] <= 400
        assert 5 <= normalized["DBMS C"] <= 40
        assert normalized["DBMS R"] > 5 * normalized["DBMS C"]
        assert 0.5 <= normalized["Tectorwise"] <= 2.5


class TestProjectionHighPerformance:
    """Figures 3-5."""

    def test_stall_ratios_in_paper_band(self, projection_reports):
        """High performance engines spend 25-82% of cycles on stalls."""
        for engine in ("Typer", "Tectorwise"):
            for report in projection_reports[engine].values():
                assert 0.25 <= report.stall_ratio <= 0.82

    def test_typer_stalls_grow_with_projectivity(self, projection_reports):
        ratios = [
            projection_reports["Typer"][degree].stall_ratio for degree in (1, 2, 3, 4)
        ]
        assert all(a < b for a, b in zip(ratios, ratios[1:]))
        assert ratios[0] >= 0.5
        assert ratios[-1] <= 0.8

    def test_tectorwise_breakdown_stable(self, projection_reports):
        """Section 3: from degree two onwards the vectorized pattern is
        the same, so the breakdown barely moves."""
        ratios = [
            projection_reports["Tectorwise"][degree].stall_ratio for degree in (2, 3, 4)
        ]
        assert max(ratios) - min(ratios) < 0.1

    def test_typer_dcache_dominates_at_high_projectivity(self, projection_reports):
        for degree in (2, 3, 4):
            report = projection_reports["Typer"][degree]
            assert report.breakdown.dominant_stall() == "dcache"
            assert report.stall_shares()["dcache"] > 0.6

    def test_tectorwise_splits_dcache_and_execution(self, projection_reports):
        for degree in (2, 3, 4):
            shares = projection_reports["Tectorwise"][degree].stall_shares()
            assert shares["dcache"] > 0.3
            assert shares["execution"] > 0.15

    def test_typer_approaches_bandwidth_roof(self, projection_reports):
        """Figure 5: Typer nearly saturates the per-core sequential
        bandwidth from degree two onwards."""
        for degree in (2, 3, 4):
            usage = projection_reports["Typer"][degree].bandwidth
            assert usage.utilization >= 0.6
        p4 = projection_reports["Typer"][4].bandwidth
        assert p4.gbps >= 8.0

    def test_tectorwise_bandwidth_cut_by_materialization(self, projection_reports):
        for degree in (2, 3, 4):
            typer = projection_reports["Typer"][degree].bandwidth.gbps
            tectorwise = projection_reports["Tectorwise"][degree].bandwidth.gbps
            assert tectorwise < 0.9 * typer


class TestSelection:
    """Figures 9-10 and the Section 4 text."""

    def test_stall_ratio_highest_at_fifty_percent(self, selection_reports):
        typer = selection_reports["Typer"]
        assert typer[0.5].stall_ratio > typer[0.1].stall_ratio
        assert typer[0.5].stall_ratio > typer[0.9].stall_ratio
        tectorwise = selection_reports["Tectorwise"]
        assert tectorwise[0.5].stall_ratio > tectorwise[0.9].stall_ratio
        assert tectorwise[0.5].stall_ratio > tectorwise[0.1].stall_ratio - 0.02

    def test_branch_mispredictions_peak_at_fifty_percent(self, selection_reports):
        for engine in ("Typer", "Tectorwise"):
            shares = {
                selectivity: report.stall_shares()["branch_misp"]
                for selectivity, report in selection_reports[engine].items()
            }
            assert shares[0.5] > shares[0.1]
            assert shares[0.5] > shares[0.9]
            assert shares[0.5] >= 0.3

    def test_typer_conjunction_easier_at_low_selectivity(self, selection_reports):
        """Section 4: the compiled engine's branch sees the combined
        selectivity, the vectorized engine pays per predicate."""
        typer_ms = selection_reports["Typer"][0.1].time_breakdown_ms()["branch_misp"]
        tectorwise_ms = (
            selection_reports["Tectorwise"][0.1].time_breakdown_ms()["branch_misp"]
        )
        assert typer_ms < tectorwise_ms

    def test_bandwidth_well_below_roof(self, selection_reports):
        """Section 4: mispredictions keep the cores from generating
        enough memory traffic."""
        for engine in ("Typer", "Tectorwise"):
            for report in selection_reports[engine].values():
                assert report.bandwidth.utilization < 0.80

    def test_stall_band(self, selection_reports):
        for engine in ("Typer", "Tectorwise"):
            for report in selection_reports[engine].values():
                assert 0.25 <= report.stall_ratio <= 0.85
