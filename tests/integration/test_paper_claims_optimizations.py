"""Integration tests pinning the predication, SIMD and prefetcher
claims (Sections 7-9)."""

import pytest

from repro.engines import TectorwiseEngine, TyperEngine
from repro.hardware import PrefetcherConfig
from repro.core import ExecutionContext
from repro.workloads import run_predicated_q6, run_predication_comparison


@pytest.fixture(scope="module")
def typer_predication(paper_db, profiler):
    return run_predication_comparison(paper_db, TyperEngine(), profiler)


@pytest.fixture(scope="module")
def tectorwise_predication(paper_db, profiler):
    return run_predication_comparison(paper_db, TectorwiseEngine(), profiler)


class TestPredication:
    """Figures 17-21 and the Section 7 text."""

    def test_typer_predication_hurts_at_low_selectivity(self, typer_predication):
        variants = typer_predication[0.1]
        assert variants["predicated"].cycles > variants["branched"].cycles

    def test_typer_predication_helps_at_mid_and_high(self, typer_predication):
        for selectivity in (0.5, 0.9):
            variants = typer_predication[selectivity]
            assert variants["predicated"].cycles < variants["branched"].cycles

    def test_tectorwise_predication_always_helps(self, tectorwise_predication):
        """Section 7: only the selection-vector computation grows; the
        bulk of the projection work is unchanged."""
        for variants in tectorwise_predication.values():
            assert variants["predicated"].cycles < variants["branched"].cycles

    def test_predication_eliminates_branch_stalls(
        self, typer_predication, tectorwise_predication
    ):
        for comparison in (typer_predication, tectorwise_predication):
            for variants in comparison.values():
                assert variants["predicated"].breakdown.branch_misp == 0.0
                assert variants["branched"].breakdown.branch_misp > 0.0

    def test_predicated_selection_becomes_scan_like(self, typer_predication):
        """Figures 18/20: Dcache and Execution remain, like projection."""
        for variants in typer_predication.values():
            shares = variants["predicated"].stall_shares()
            assert shares["dcache"] + shares["execution"] > 0.9

    def test_predication_raises_bandwidth(
        self, typer_predication, tectorwise_predication
    ):
        for comparison in (typer_predication, tectorwise_predication):
            for variants in comparison.values():
                assert (
                    variants["predicated"].bandwidth.gbps
                    >= variants["branched"].bandwidth.gbps * 0.98
                )

    def test_typer_predicated_bandwidth_high_and_stable(self, typer_predication):
        """Figure 21: Typer's predicated scan streams at a constant,
        near-roof rate across selectivities."""
        rates = [
            variants["predicated"].bandwidth.gbps
            for variants in typer_predication.values()
        ]
        assert max(rates) - min(rates) < 0.5
        assert min(rates) >= 7.0

    def test_tectorwise_predicated_bandwidth_peaks_at_fifty(self, tectorwise_predication):
        rates = {
            selectivity: variants["predicated"].bandwidth.gbps
            for selectivity, variants in tectorwise_predication.items()
        }
        assert rates[0.5] >= rates[0.1]
        assert rates[0.5] > rates[0.9]

    def test_predicated_q6(self, paper_db, profiler):
        """Section 7 text: Q6 improves by ~11% on Typer and ~52% on
        Tectorwise; bandwidth rises for both."""
        typer = run_predicated_q6(paper_db, TyperEngine(), profiler)
        typer_gain = 1.0 - typer["predicated"].cycles / typer["branched"].cycles
        assert 0.02 <= typer_gain <= 0.35
        tectorwise = run_predicated_q6(paper_db, TectorwiseEngine(), profiler)
        tectorwise_gain = (
            1.0 - tectorwise["predicated"].cycles / tectorwise["branched"].cycles
        )
        assert 0.3 <= tectorwise_gain <= 0.75
        assert tectorwise_gain > typer_gain
        for reports in (typer, tectorwise):
            assert reports["predicated"].bandwidth.gbps > reports["branched"].bandwidth.gbps


@pytest.fixture(scope="module")
def simd_pairs(paper_db, skylake_profiler):
    """Tectorwise scalar/SIMD report pairs on the Skylake model."""
    engine = TectorwiseEngine()
    pairs = {}
    for label, method, args, kwargs in (
        ("projection", "run_projection", (paper_db, 4), {}),
        ("selection-50", "run_selection", (paper_db, 0.5), {"predicated": True}),
        ("join-large", "run_join", (paper_db, "large"), {}),
    ):
        runner = getattr(engine, method)
        scalar = runner(*args, **kwargs, simd=False)
        simd = runner(*args, **kwargs, simd=True)
        pairs[label] = (
            skylake_profiler.profile(engine, scalar),
            skylake_profiler.profile(engine, simd),
        )
    return pairs


class TestSimd:
    """Figures 22-25 (Skylake, AVX-512)."""

    def test_simd_reduces_response_time(self, simd_pairs):
        for label, (scalar, simd) in simd_pairs.items():
            assert simd.cycles < scalar.cycles, label

    def test_simd_cuts_retiring_time_sharply(self, simd_pairs):
        """Figure 22: 70-87% fewer retiring cycles."""
        for label in ("projection", "selection-50"):
            scalar, simd = simd_pairs[label]
            reduction = 1.0 - simd.breakdown.retiring / scalar.breakdown.retiring
            assert 0.6 <= reduction <= 0.9, label

    def test_simd_shifts_scan_stalls_toward_dcache(self, simd_pairs):
        """Figure 23: Dcache stalls up, Execution stalls down."""
        for label in ("projection", "selection-50"):
            scalar, simd = simd_pairs[label]
            assert simd.breakdown.dcache >= scalar.breakdown.dcache * 0.95
            assert simd.breakdown.execution <= scalar.breakdown.execution

    def test_simd_raises_scan_bandwidth(self, simd_pairs):
        """Figure 24."""
        for label in ("projection", "selection-50"):
            scalar, simd = simd_pairs[label]
            assert simd.bandwidth.gbps > scalar.bandwidth.gbps

    def test_simd_join_probe(self, simd_pairs):
        """Figure 25: response down ~27%, Dcache stalls down,
        bandwidth up ~50% (gathers parallelise the probes)."""
        scalar, simd = simd_pairs["join-large"]
        reduction = 1.0 - simd.cycles / scalar.cycles
        assert 0.15 <= reduction <= 0.6
        assert simd.breakdown.dcache < scalar.breakdown.dcache
        assert simd.bandwidth.gbps >= 1.25 * scalar.bandwidth.gbps


class TestPrefetchers:
    """Figure 26 and the Section 9 text."""

    @pytest.fixture(scope="class")
    def projection_by_config(self, paper_db, profiler):
        engine = TyperEngine()
        result = engine.run_projection(paper_db, 4)
        return {
            name: profiler.profile(engine, result, ExecutionContext(prefetchers=config))
            for name, config in PrefetcherConfig.figure26_configs().items()
        }

    def test_prefetchers_cut_response_severalfold(self, projection_by_config):
        """The paper: prefetchers reduce the projection's response time
        by ~73% (about 3.7x)."""
        ratio = (
            projection_by_config["All disabled"].cycles
            / projection_by_config["All enabled"].cycles
        )
        assert 2.0 <= ratio <= 5.0

    def test_prefetchers_cut_dcache_stalls_most(self, projection_by_config):
        disabled = projection_by_config["All disabled"].breakdown.dcache
        enabled = projection_by_config["All enabled"].breakdown.dcache
        assert 1.0 - enabled / disabled >= 0.6

    def test_l2_streamer_alone_matches_all_four(self, projection_by_config):
        l2_streamer = projection_by_config["L2 Str."].cycles
        everything = projection_by_config["All enabled"].cycles
        assert l2_streamer <= everything * 1.15

    def test_every_single_prefetcher_helps(self, projection_by_config):
        disabled = projection_by_config["All disabled"].cycles
        for name in ("L1 NL", "L1 Str.", "L2 NL", "L2 Str."):
            assert projection_by_config[name].cycles < disabled

    def test_prefetchers_still_not_fast_enough(self, projection_by_config):
        """Section 9's conclusion: even with all prefetchers on, 50-75%
        of cycles are stalls."""
        report = projection_by_config["All enabled"]
        assert 0.5 <= report.stall_ratio <= 0.8

    def test_join_gains_only_modestly(self, big_db, profiler):
        """Section 9: ~20% for the large join (random accesses)."""
        engine = TyperEngine()
        result = engine.run_join(big_db, "large")
        disabled = profiler.profile(
            engine, result, ExecutionContext(prefetchers=PrefetcherConfig.all_disabled())
        )
        enabled = profiler.profile(
            engine, result, ExecutionContext(prefetchers=PrefetcherConfig.all_enabled())
        )
        gain = 1.0 - enabled.cycles / disabled.cycles
        assert 0.05 <= gain <= 0.4
