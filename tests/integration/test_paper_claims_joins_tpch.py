"""Integration tests pinning the paper's join and TPC-H claims
(Sections 5-6)."""

import pytest

from repro.engines import (
    ColumnStoreEngine,
    RowStoreEngine,
    TectorwiseEngine,
    TyperEngine,
)
from repro.workloads import (
    hash_chain_comparison,
    normalized_large_join,
    run_join_sweep,
    run_tpch,
)


@pytest.fixture(scope="module")
def join_reports(paper_db, profiler):
    return run_join_sweep(paper_db, (TyperEngine(), TectorwiseEngine()), profiler)


@pytest.fixture(scope="module")
def tpch_reports(paper_db, profiler):
    return run_tpch(paper_db, (TyperEngine(), TectorwiseEngine()), profiler)


class TestJoin:
    """Figures 12-14."""

    def test_stall_ratio_grows_with_join_size(self, join_reports):
        for engine in ("Typer", "Tectorwise"):
            reports = join_reports[engine]
            assert reports["small"].stall_ratio < reports["medium"].stall_ratio
            assert reports["medium"].stall_ratio < reports["large"].stall_ratio

    def test_large_join_retiring_can_drop_below_a_quarter(self, join_reports):
        """The paper measures Retiring as low as 18% for the large join."""
        assert join_reports["Typer"]["large"].retiring_ratio <= 0.30

    def test_dcache_dominates_large_join(self, join_reports):
        for engine in ("Typer", "Tectorwise"):
            report = join_reports[engine]["large"]
            assert report.breakdown.dominant_stall() == "dcache"
            assert report.stall_shares()["dcache"] >= 0.6

    def test_execution_stalls_significant_for_smaller_joins(self, join_reports):
        """Section 5: costly hash computations surface for the small and
        medium joins."""
        for engine in ("Typer", "Tectorwise"):
            assert join_reports[engine]["small"].stall_shares()["execution"] >= 0.15

    def test_random_bandwidth_underutilized(self, join_reports):
        """Figure 14 (left): well below the 7 GB/s single-core random
        roof -- the engines cannot generate enough memory traffic."""
        for engine in ("Typer", "Tectorwise"):
            usage = join_reports[engine]["large"].bandwidth
            assert usage.access_pattern == "random"
            assert usage.gbps < 0.8 * usage.max_gbps

    def test_commercial_join_slower_with_retiring_heavy_breakdown(
        self, paper_db, profiler
    ):
        """Figure 14 (right): DBMS R and C pay orders-of-magnitude more
        retiring time than the high-performance engines."""
        engines = (RowStoreEngine(), ColumnStoreEngine(), TyperEngine(), TectorwiseEngine())
        reports = run_join_sweep(paper_db, engines, profiler, sizes=("large",))
        normalized = normalized_large_join(reports)
        assert normalized["DBMS R"] > 4.0
        assert normalized["DBMS C"] > 2.0
        assert normalized["DBMS R"] > normalized["DBMS C"]
        retiring_r = reports["DBMS R"]["large"].breakdown.retiring
        retiring_typer = reports["Typer"]["large"].breakdown.retiring
        assert retiring_r > 20 * retiring_typer

    def test_chain_statistics_match_paper_shape(self, paper_db):
        """Section 6: join chains 0-1 and regular; group-by chains
        longer-tailed and more irregular."""
        comparison = hash_chain_comparison(paper_db)
        assert comparison.join.max <= 2
        assert 0.2 <= comparison.join.mean <= 0.55
        assert comparison.groupby.max >= 4
        assert 0.1 <= comparison.groupby.mean <= 0.45
        assert comparison.groupby_more_irregular

    def test_groupby_micro_behaves_like_join(self, paper_db, profiler):
        """Section 2: the group-by micro-benchmark was omitted from the
        paper because it behaves like the join."""
        engine = TyperEngine()
        groupby = profiler.profile(engine, engine.run_groupby(paper_db))
        join = profiler.profile(engine, engine.run_join(paper_db, "large"))
        assert groupby.breakdown.dominant_stall() == join.breakdown.dominant_stall()
        assert groupby.stall_ratio == pytest.approx(join.stall_ratio, abs=0.2)


class TestTpch:
    """Figures 15-16."""

    def test_stall_band(self, tpch_reports):
        for per_query in tpch_reports.values():
            for report in per_query.values():
                assert 0.25 <= report.stall_ratio <= 0.92

    def test_q1_has_highest_retiring_ratio(self, tpch_reports):
        for engine in ("Typer", "Tectorwise"):
            per_query = tpch_reports[engine]
            q1 = per_query["Q1"].retiring_ratio
            for query_id in ("Q6", "Q9", "Q18"):
                assert q1 > per_query[query_id].retiring_ratio

    def test_lowest_retiring_queries(self, tpch_reports):
        """The paper reports Q9 as Typer's lowest-Retiring query and Q6
        as Tectorwise's.  In this reproduction Q9/Q18 (Typer) and
        Q6/Q18 (Tectorwise) sit within a couple of points of each
        other, so pin the robust part of the claim: the named query is
        far below Q1 and within noise of the minimum."""
        typer = tpch_reports["Typer"]
        q9 = typer["Q9"].retiring_ratio
        assert q9 < typer["Q1"].retiring_ratio - 0.1
        assert q9 <= min(r.retiring_ratio for r in typer.values()) + 0.05
        tectorwise = tpch_reports["Tectorwise"]
        q6 = tectorwise["Q6"].retiring_ratio
        assert q6 < tectorwise["Q1"].retiring_ratio - 0.1
        assert q6 <= min(r.retiring_ratio for r in tectorwise.values()) + 0.05

    def test_q1_execution_stalls_prominent(self, tpch_reports):
        """Q1's working set is cache resident; Execution stalls surface."""
        for engine in ("Typer", "Tectorwise"):
            shares = tpch_reports[engine]["Q1"].stall_shares()
            assert shares["execution"] >= 0.25
            assert shares["branch_misp"] < 0.1

    def test_q6_branch_bound_on_tectorwise_not_typer(self, tpch_reports):
        """Section 6: the vectorized engine pays the individual
        predicate selectivities on Q6."""
        tectorwise = tpch_reports["Tectorwise"]["Q6"].stall_shares()
        assert tectorwise["branch_misp"] >= 0.5
        assert tectorwise["branch_misp"] > tectorwise["dcache"]
        typer = tpch_reports["Typer"]["Q6"].stall_shares()
        assert typer["dcache"] >= typer["branch_misp"] - 0.05
        assert typer["branch_misp"] < tectorwise["branch_misp"]

    def test_q9_q18_dcache_dominated_with_branch_stalls(self, tpch_reports):
        for engine in ("Typer", "Tectorwise"):
            for query_id in ("Q9", "Q18"):
                shares = tpch_reports[engine][query_id].stall_shares()
                assert shares["dcache"] >= 0.5
                assert shares["branch_misp"] >= 0.03

    def test_bandwidth_low_except_typer_q6(self, tpch_reports):
        """Section 6: hash computations keep bandwidth low; only the
        scan-heavy Q6 on Typer pushes it up."""
        typer = tpch_reports["Typer"]
        assert typer["Q6"].bandwidth.gbps > typer["Q18"].bandwidth.gbps
        assert typer["Q6"].bandwidth.gbps > tpch_reports["Tectorwise"]["Q6"].bandwidth.gbps
        for engine in ("Typer", "Tectorwise"):
            assert tpch_reports[engine]["Q18"].bandwidth.gbps < 2.5

    def test_micro_benchmark_conclusions_generalize(self, tpch_reports, join_reports):
        """Section 6's closing point: operator-level behaviour predicts
        query behaviour -- the join-heavy query looks like the join
        micro-benchmark."""
        q9 = tpch_reports["Typer"]["Q9"]
        large_join = join_reports["Typer"]["large"]
        assert q9.breakdown.dominant_stall() == large_join.breakdown.dominant_stall()
