"""Integration tests pinning the multi-core claims (Section 10)."""

import pytest

from repro.engines import TectorwiseEngine, TyperEngine
from repro.core import MicroArchProfiler, MulticoreModel


@pytest.fixture(scope="module")
def model(profiler):
    return MulticoreModel(profiler)


class TestProjectionSaturation:
    """Figure 29: projection saturates the socket's sequential
    bandwidth -- Typer at ~8 threads, Tectorwise at ~12."""

    def test_typer_saturates_around_eight_threads(self, model, paper_db):
        result = TyperEngine().run_projection(paper_db, 4)
        curve = model.bandwidth_curve("Typer", result, (1, 4, 8, 12, 14))
        saturation = model.saturation_point(curve, 66.0)
        assert saturation in (4, 8)
        assert curve[14] == pytest.approx(66.0, rel=0.05)

    def test_tectorwise_saturates_later(self, model, paper_db):
        typer_result = TyperEngine().run_projection(paper_db, 4)
        tw_result = TectorwiseEngine().run_projection(paper_db, 4)
        typer_sat = model.saturation_point(
            model.bandwidth_curve("Typer", typer_result), 66.0
        )
        tw_sat = model.saturation_point(
            model.bandwidth_curve("Tectorwise", tw_result), 66.0
        )
        assert tw_sat is not None and typer_sat is not None
        assert tw_sat > typer_sat
        assert tw_sat in (12, 14)

    def test_extra_threads_beyond_saturation_wasted(self, model, paper_db):
        """Section 10: using more cores than the saturation point wastes
        them -- response time stops improving."""
        result = TyperEngine().run_projection(paper_db, 4)
        speedups = model.speedup_curve("Typer", result, (8, 12, 14))
        assert speedups[14] < speedups[8] * 14 / 8 * 0.85


class TestJoinUnderutilization:
    """Figure 30: the large join never saturates the socket's random
    bandwidth -- compute saturates first."""

    def test_join_leaves_socket_bandwidth_idle(self, model, big_db):
        for engine in (TyperEngine(), TectorwiseEngine()):
            result = engine.run_join(big_db, "large")
            curve = model.bandwidth_curve(engine, result)
            assert model.saturation_point(curve, 60.0, threshold=0.95) is None
            assert curve[14] < 0.95 * 60.0

    def test_join_scales_almost_linearly(self, model, paper_db):
        """CPU-bound work: adding threads keeps helping."""
        result = TyperEngine().run_join(paper_db, "large")
        speedups = model.speedup_curve("Typer", result, (1, 8, 14))
        assert speedups[8] > 6.0
        assert speedups[14] > 8.0


class TestMulticoreBreakdowns:
    """Figures 27-28: the 14-thread breakdowns track single-core."""

    def test_query_composition_stable(self, model, paper_db):
        """The hash-heavy queries keep their composition; the
        scan-heavy Q1 gains Dcache share from socket bandwidth
        contention (a documented divergence)."""
        for engine in (TyperEngine(), TectorwiseEngine()):
            for query_id in ("Q9", "Q18"):
                result = engine.run_tpch(paper_db, query_id)
                solo = model.run(engine, result, 1).per_thread
                crowd = model.run(engine, result, 14).per_thread
                assert crowd.stall_ratio == pytest.approx(solo.stall_ratio, abs=0.2)
                assert crowd.breakdown.dominant_stall() == solo.breakdown.dominant_stall()

    def test_q1_still_most_retiring_at_14_threads(self, model, paper_db):
        for engine in (TyperEngine(), TectorwiseEngine()):
            ratios = {}
            for query_id in ("Q1", "Q6", "Q9", "Q18"):
                result = engine.run_tpch(paper_db, query_id)
                ratios[query_id] = model.run(engine, result, 14).per_thread.retiring_ratio
            assert max(ratios, key=ratios.get) == "Q1"


class TestHeadroom:
    """Section 10's closing text: SIMD and hyper-threading raise the
    join's bandwidth but the imbalance persists."""

    def test_simd_raises_multicore_join_bandwidth(self, paper_db):
        from repro.hardware import SKYLAKE

        model = MulticoreModel(MicroArchProfiler(spec=SKYLAKE))
        engine = TectorwiseEngine()
        scalar = engine.run_join(paper_db, "large")
        simd = engine.run_join(paper_db, "large", simd=True)
        threads = SKYLAKE.cores_per_socket
        scalar_bw = model.run(engine, scalar, threads).bandwidth_gbps
        simd_bw = model.run(engine, simd, threads).bandwidth_gbps
        assert 1.2 <= simd_bw / scalar_bw <= 2.0

    def test_hyper_threading_raises_bandwidth_about_a_third(self, model, big_db):
        engine = TyperEngine()
        result = engine.run_join(big_db, "large")
        plain = model.run(engine, result, 14).bandwidth_gbps
        boosted = model.run(engine, result, 14, hyper_threading=True).bandwidth_gbps
        assert 1.08 <= boosted / plain <= 1.5

    def test_improvements_stay_below_the_roof(self, model, big_db):
        """At the paper's SF 70 the boosted join stays clearly below the
        roof; at this scale the hash table is ~2x the L3, so the
        un-boosted run must stay below while the boosted run may touch
        the cap."""
        engine = TyperEngine()
        result = engine.run_join(big_db, "large")
        plain = model.run(engine, result, 14)
        assert plain.bandwidth_gbps < plain.socket_bandwidth.max_gbps
        boosted = model.run(engine, result, 14, hyper_threading=True)
        assert boosted.bandwidth_gbps <= boosted.socket_bandwidth.max_gbps
