"""Extension features beyond the paper: Zipf-skewed data and the
NUMA-remote scenario the paper's numactl setup avoids."""

import numpy as np
import pytest

from repro import MicroArchProfiler, TyperEngine, generate_database
from repro.core import WhatIfAnalyzer
from repro.engines import GroupByHashTable


class TestSkewedGeneration:
    @pytest.fixture(scope="class")
    def pair(self, db_factory):
        uniform = db_factory(0.05, seed=9, tables=("lineitem",))
        skewed = db_factory(0.05, seed=9, tables=("lineitem",), skew=1.2)
        return uniform, skewed

    def test_skew_validation(self):
        with pytest.raises(ValueError, match="Zipf"):
            generate_database(scale_factor=0.01, tables=("lineitem",), skew=0.5)

    def test_skew_concentrates_keys(self, pair):
        uniform, skewed = pair
        def top_share(db):
            counts = np.bincount(db["lineitem"]["l_partkey"])
            return counts.max() / counts.sum()

        assert top_share(skewed) > 10 * top_share(uniform)

    def test_keys_stay_in_range(self, pair):
        _, skewed = pair
        partkeys = skewed["lineitem"]["l_partkey"]
        assert partkeys.min() >= 1
        assert partkeys.max() <= 10_000  # parts at SF 0.05

    def test_skew_deepens_hot_group_chains(self, pair):
        """With insert-at-head chaining, the hot keys (seen first) sink
        deep into their chains, so skewed aggregation walks further per
        update on average."""
        uniform, skewed = pair
        def walk_per_update(db):
            table = GroupByHashTable(db["lineitem"]["l_partkey"])
            return table.update_comparisons() / table.n_updates

        assert walk_per_update(skewed) > walk_per_update(uniform)

    def test_engines_still_agree_on_skewed_data(self, pair):
        from repro.engines import TectorwiseEngine

        _, skewed = pair
        typer = TyperEngine().run_groupby(skewed).value
        tectorwise = TectorwiseEngine().run_groupby(skewed).value
        assert typer == pytest.approx(tectorwise)


class TestNumaRemoteScenario:
    def test_remote_socket_slows_the_scan(self, paper_db):
        analyzer = WhatIfAnalyzer(MicroArchProfiler())
        projection = TyperEngine().run_projection(paper_db, 4)
        result = analyzer.project(TyperEngine(), projection, "numa-remote")
        # A "speedup" below 1 is a slowdown: remote memory hurts.
        assert result.speedup < 0.9

    def test_remote_socket_slows_the_join(self, big_db):
        analyzer = WhatIfAnalyzer(MicroArchProfiler())
        join = TyperEngine().run_join(big_db, "large")
        result = analyzer.project(TyperEngine(), join, "numa-remote")
        assert result.speedup < 0.95

    def test_numa_localization_matters_more_for_bandwidth_bound_work(
        self, paper_db, big_db
    ):
        """The paper numa-localises every experiment; the scan (which
        lives at the bandwidth roof) pays the most for remote memory."""
        analyzer = WhatIfAnalyzer(MicroArchProfiler())
        scan = analyzer.project(
            TyperEngine(), TyperEngine().run_projection(paper_db, 4), "numa-remote"
        )
        join = analyzer.project(
            TyperEngine(), TyperEngine().run_join(big_db, "large"), "numa-remote"
        )
        assert scan.speedup < join.speedup
