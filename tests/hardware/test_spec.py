"""Machine-spec tests: Table 1 parameters and derived quantities."""

import pytest

from repro.hardware import (
    BROADWELL,
    SKYLAKE,
    BandwidthSpec,
    CacheSpec,
    PortSpec,
    ServerSpec,
)
from repro.hardware.spec import KB, MB


class TestCacheSpec:
    def test_line_and_set_counts(self):
        spec = CacheSpec("L1D", 32 * KB, miss_latency_cycles=16.0, associativity=8)
        assert spec.n_lines == 512
        assert spec.n_sets == 64

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            CacheSpec("bad", 0, miss_latency_cycles=1.0)

    def test_rejects_size_not_multiple_of_line(self):
        with pytest.raises(ValueError):
            CacheSpec("bad", 1000, miss_latency_cycles=1.0)

    def test_rejects_lines_not_divisible_by_ways(self):
        with pytest.raises(ValueError):
            CacheSpec("bad", 64 * 3, miss_latency_cycles=1.0, associativity=2)


class TestBandwidthSpec:
    def test_pattern_selection(self):
        bw = BROADWELL.bandwidth
        assert bw.per_core("sequential") == 12.0
        assert bw.per_core("random") == 7.0
        assert bw.per_socket("sequential") == 66.0
        assert bw.per_socket("random") == 60.0

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError):
            BROADWELL.bandwidth.per_core("strided")

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            BandwidthSpec(0.0, 1.0, 1.0, 1.0)


class TestPortSpec:
    def test_simd_lanes(self):
        assert PortSpec(simd_width_bits=256).simd_lanes_64 == 4
        assert PortSpec(simd_width_bits=512).simd_lanes_64 == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            PortSpec(alu_ports=0)
        with pytest.raises(ValueError):
            PortSpec(simd_width_bits=100)


class TestBroadwellTable1:
    """Pin the Table 1 parameters exactly."""

    def test_core_counts(self):
        assert BROADWELL.sockets == 2
        assert BROADWELL.cores_per_socket == 14
        assert BROADWELL.total_cores == 28

    def test_clock(self):
        assert BROADWELL.clock_ghz == 2.40

    def test_cache_sizes(self):
        assert BROADWELL.l1i.size_bytes == 32 * KB
        assert BROADWELL.l1d.size_bytes == 32 * KB
        assert BROADWELL.l2.size_bytes == 256 * KB
        assert BROADWELL.l3.size_bytes == 35 * MB

    def test_miss_latencies(self):
        assert BROADWELL.l1d.miss_latency_cycles == 16.0
        assert BROADWELL.l2.miss_latency_cycles == 26.0
        assert BROADWELL.l3.miss_latency_cycles == 160.0

    def test_l3_inclusive(self):
        assert BROADWELL.l3.inclusive

    def test_smt_and_turbo_disabled(self):
        """The paper disables both (they jeopardise counter values)."""
        assert not BROADWELL.hyper_threading
        assert not BROADWELL.turbo_boost

    def test_derived_latencies_accumulate(self):
        assert BROADWELL.l2_hit_latency == pytest.approx(20.0)
        assert BROADWELL.l3_hit_latency == pytest.approx(46.0)
        assert BROADWELL.memory_latency_cycles == pytest.approx(206.0)

    def test_memory_latency_in_dram_range(self):
        assert 60.0 <= BROADWELL.memory_latency_ns <= 120.0


class TestSkylakeDifferences:
    """Section 2: Skylake has a larger L2, smaller non-inclusive L3,
    lower per-core and higher per-socket sequential bandwidth."""

    def test_l2_larger(self):
        assert SKYLAKE.l2.size_bytes > BROADWELL.l2.size_bytes
        assert SKYLAKE.l2.size_bytes == 1 * MB

    def test_l3_smaller_and_non_inclusive(self):
        assert SKYLAKE.l3.size_bytes == 16 * MB
        assert not SKYLAKE.l3.inclusive

    def test_sequential_bandwidths(self):
        assert SKYLAKE.bandwidth.per_core_seq_gbps == 10.0
        assert SKYLAKE.bandwidth.per_socket_seq_gbps == 87.0

    def test_random_bandwidth_similar(self):
        assert SKYLAKE.bandwidth.per_core_rand_gbps == BROADWELL.bandwidth.per_core_rand_gbps

    def test_avx512(self):
        assert SKYLAKE.ports.simd_width_bits == 512
        assert BROADWELL.ports.simd_width_bits == 256


class TestConversions:
    def test_cycles_to_seconds(self):
        assert BROADWELL.cycles_to_seconds(2.4e9) == pytest.approx(1.0)

    def test_cycles_to_ms(self):
        assert BROADWELL.cycles_to_ms(2.4e6) == pytest.approx(1.0)

    def test_bytes_per_cycle_roundtrip(self):
        bpc = BROADWELL.bytes_per_cycle(12.0)
        assert BROADWELL.gbps(bpc) == pytest.approx(12.0)
        assert bpc == pytest.approx(5.0)

    def test_with_hyper_threading_returns_copy(self):
        ht = BROADWELL.with_hyper_threading()
        assert ht.hyper_threading and not BROADWELL.hyper_threading
        assert ht.clock_ghz == BROADWELL.clock_ghz

    def test_invalid_server_spec(self):
        with pytest.raises(ValueError):
            ServerSpec(
                name="bad", clock_ghz=0.0, sockets=1, cores_per_socket=1,
                l1i=BROADWELL.l1i, l1d=BROADWELL.l1d, l2=BROADWELL.l2,
                l3=BROADWELL.l3, bandwidth=BROADWELL.bandwidth,
                memory_bytes=1,
            )
