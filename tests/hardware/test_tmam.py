"""TMAM cycle-container tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import COMPONENTS, STALL_COMPONENTS, CycleBreakdown

positive = st.floats(min_value=0.0, max_value=1e9, allow_nan=False)


def breakdowns():
    return st.builds(
        CycleBreakdown,
        retiring=positive, branch_misp=positive, icache=positive,
        decoding=positive, dcache=positive, execution=positive,
    )


class TestBasics:
    def test_total_and_stalls(self):
        breakdown = CycleBreakdown(retiring=40, dcache=30, execution=20, branch_misp=10)
        assert breakdown.total == 100
        assert breakdown.stall_cycles == 60
        assert breakdown.stall_ratio == pytest.approx(0.6)
        assert breakdown.retiring_ratio == pytest.approx(0.4)

    def test_zero_breakdown_ratios(self):
        zero = CycleBreakdown.zero()
        assert zero.total == 0
        assert zero.stall_ratio == 0.0
        assert zero.cycle_shares() == {name: 0.0 for name in COMPONENTS}
        assert zero.stall_shares() == {name: 0.0 for name in STALL_COMPONENTS}

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CycleBreakdown(retiring=-1)

    def test_dominant_stall(self):
        breakdown = CycleBreakdown(retiring=10, dcache=5, branch_misp=7)
        assert breakdown.dominant_stall() == "branch_misp"

    def test_component_order_matches_paper_legend(self):
        assert COMPONENTS[0] == "retiring"
        assert set(STALL_COMPONENTS) == {
            "execution", "dcache", "decoding", "icache", "branch_misp",
        }


class TestArithmetic:
    def test_add(self):
        a = CycleBreakdown(retiring=1, dcache=2)
        b = CycleBreakdown(retiring=3, execution=4)
        c = a + b
        assert c.retiring == 4
        assert c.dcache == 2
        assert c.execution == 4

    def test_sum(self):
        parts = [CycleBreakdown(retiring=1)] * 5
        assert CycleBreakdown.sum(parts).retiring == 5

    def test_scaled(self):
        assert CycleBreakdown(retiring=10).scaled(0.5).retiring == 5

    def test_scaled_rejects_negative(self):
        with pytest.raises(ValueError):
            CycleBreakdown(retiring=1).scaled(-1)

    def test_normalized_to(self):
        breakdown = CycleBreakdown(retiring=50, dcache=50)
        normalized = breakdown.normalized_to(200)
        assert normalized.total == pytest.approx(0.5)

    def test_normalized_rejects_non_positive_base(self):
        with pytest.raises(ValueError):
            CycleBreakdown(retiring=1).normalized_to(0)

    def test_with_components(self):
        breakdown = CycleBreakdown(retiring=1).with_components(dcache=9)
        assert breakdown.dcache == 9
        assert breakdown.retiring == 1

    def test_as_dict_roundtrip(self):
        breakdown = CycleBreakdown(retiring=1, icache=2)
        assert CycleBreakdown(**breakdown.as_dict()) == breakdown


@settings(max_examples=80, deadline=None)
@given(breakdown=breakdowns())
def test_property_shares_sum_to_one(breakdown):
    if breakdown.total > 0:
        assert sum(breakdown.cycle_shares().values()) == pytest.approx(1.0)
    if breakdown.stall_cycles > 0:
        assert sum(breakdown.stall_shares().values()) == pytest.approx(1.0)


@settings(max_examples=80, deadline=None)
@given(breakdown=breakdowns(), factor=st.floats(min_value=0.0, max_value=100.0))
def test_property_scaling_is_linear(breakdown, factor):
    assert breakdown.scaled(factor).total == pytest.approx(breakdown.total * factor)


@settings(max_examples=80, deadline=None)
@given(a=breakdowns(), b=breakdowns())
def test_property_addition_preserves_totals(a, b):
    assert (a + b).total == pytest.approx(a.total + b.total)
    assert (a + b).stall_cycles == pytest.approx(a.stall_cycles + b.stall_cycles)
