"""Cache-hierarchy tests: level latencies, stats and prefetcher effects."""

import numpy as np
import pytest

from repro.hardware import BROADWELL, CacheHierarchy, PrefetcherConfig


def no_prefetch_hierarchy():
    return CacheHierarchy(BROADWELL, PrefetcherConfig.all_disabled())


class TestLatencies:
    def test_cold_miss_pays_full_memory_latency(self):
        hierarchy = no_prefetch_hierarchy()
        latency = hierarchy.access(0)
        assert latency == pytest.approx(BROADWELL.memory_latency_cycles)

    def test_l1_hit_latency(self):
        hierarchy = no_prefetch_hierarchy()
        hierarchy.access(0)
        assert hierarchy.access(0) == pytest.approx(BROADWELL.l1_access_cycles)

    def test_l2_hit_latency_after_l1_eviction(self):
        hierarchy = no_prefetch_hierarchy()
        hierarchy.access(0)
        # Evict line 0 from L1 (32KB, 8-way, 64 sets): touch 8 more
        # lines mapping to set 0 (stride = 64 sets * 64B).
        stride = 64 * 64
        for k in range(1, 9):
            hierarchy.access(k * stride)
        latency = hierarchy.access(0)
        assert latency == pytest.approx(BROADWELL.l2_hit_latency)

    def test_stats_accumulate(self):
        hierarchy = no_prefetch_hierarchy()
        hierarchy.access(0)
        hierarchy.access(0)
        stats = hierarchy.stats
        assert stats.accesses == 2
        assert stats.l1_hits == 1
        assert stats.memory_accesses == 1
        assert stats.avg_latency_cycles == pytest.approx(
            (BROADWELL.memory_latency_cycles + BROADWELL.l1_access_cycles) / 2
        )


class TestPrefetcherEffect:
    def test_streamers_hide_sequential_misses(self):
        addresses = np.arange(0, 20_000, 8, dtype=np.int64)
        off = no_prefetch_hierarchy()
        off.replay(addresses)
        on = CacheHierarchy(BROADWELL, PrefetcherConfig.all_enabled())
        on.replay(addresses)
        assert on.stats.memory_accesses < off.stats.memory_accesses / 3
        assert on.prefetches_issued() > 0

    def test_disabled_issues_no_prefetches(self):
        hierarchy = no_prefetch_hierarchy()
        hierarchy.replay(np.arange(0, 4096, 64))
        assert hierarchy.prefetches_issued() == 0

    def test_l2_streamer_alone_close_to_all(self):
        """The Figure 26 headline at the structural level."""
        addresses = np.arange(0, 30_000, 8, dtype=np.int64)
        l2_only = CacheHierarchy(BROADWELL, PrefetcherConfig.only("l2_streamer"))
        l2_only.replay(addresses)
        everything = CacheHierarchy(BROADWELL, PrefetcherConfig.all_enabled())
        everything.replay(addresses)
        assert l2_only.stats.memory_accesses <= everything.stats.memory_accesses * 1.5 + 10


class TestReplayAndReset:
    def test_replay_returns_stats(self):
        hierarchy = no_prefetch_hierarchy()
        stats = hierarchy.replay([0, 64, 128])
        assert stats.accesses == 3

    def test_reset_clears_everything(self):
        hierarchy = CacheHierarchy(BROADWELL)
        hierarchy.replay(np.arange(0, 8192, 64))
        hierarchy.reset()
        assert hierarchy.stats.accesses == 0
        assert hierarchy.prefetches_issued() == 0
        assert not hierarchy.l1.occupancy

    def test_miss_rates(self):
        hierarchy = no_prefetch_hierarchy()
        hierarchy.access(0)
        hierarchy.access(0)
        assert hierarchy.stats.l1_miss_rate == pytest.approx(0.5)
        assert hierarchy.stats.memory_miss_rate == pytest.approx(0.5)
