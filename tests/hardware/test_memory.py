"""Memory-system and MLC-tool tests."""

import pytest

from repro.hardware import BROADWELL, SKYLAKE, MemoryLatencyChecker, MemorySystem


class TestMaxBandwidth:
    def test_single_core(self):
        memory = MemorySystem(BROADWELL)
        assert memory.max_bandwidth_gbps("sequential", 1) == 12.0
        assert memory.max_bandwidth_gbps("random", 1) == 7.0

    def test_scales_linearly_then_hits_socket_roof(self):
        memory = MemorySystem(BROADWELL)
        assert memory.max_bandwidth_gbps("sequential", 4) == 48.0
        assert memory.max_bandwidth_gbps("sequential", 8) == 66.0
        assert memory.max_bandwidth_gbps("sequential", 14) == 66.0

    def test_random_roof(self):
        memory = MemorySystem(BROADWELL)
        assert memory.max_bandwidth_gbps("random", 14) == 60.0

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            MemorySystem(BROADWELL).max_bandwidth_gbps("sequential", 0)


class TestUtilizationAndQueueing:
    def test_utilization(self):
        memory = MemorySystem(BROADWELL)
        assert memory.utilization(6.0, "sequential") == pytest.approx(0.5)

    def test_utilization_rejects_negative(self):
        with pytest.raises(ValueError):
            MemorySystem(BROADWELL).utilization(-1.0, "sequential")

    def test_queueing_monotone(self):
        memory = MemorySystem(BROADWELL)
        factors = [memory.queueing_factor(u) for u in (0.0, 0.3, 0.6, 0.9, 1.0)]
        assert factors[0] == pytest.approx(1.0)
        assert all(a <= b for a, b in zip(factors, factors[1:]))

    def test_queueing_capped(self):
        memory = MemorySystem(BROADWELL)
        assert memory.queueing_factor(5.0) <= MemorySystem.MAX_QUEUE_FACTOR

    def test_loaded_latency_grows_with_demand(self):
        memory = MemorySystem(BROADWELL)
        idle = memory.loaded_latency_cycles(0.0, "sequential")
        loaded = memory.loaded_latency_cycles(11.0, "sequential")
        assert idle == pytest.approx(BROADWELL.memory_latency_cycles)
        assert loaded > idle


class TestTransferCycles:
    def test_at_roof(self):
        memory = MemorySystem(BROADWELL)
        # 12 GB at 12 GB/s = 1 s = 2.4e9 cycles.
        assert memory.transfer_cycles(12e9, "sequential") == pytest.approx(2.4e9)

    def test_demand_paced(self):
        memory = MemorySystem(BROADWELL)
        slow = memory.transfer_cycles(12e9, "sequential", demand_gbps=6.0)
        assert slow == pytest.approx(4.8e9)

    def test_demand_capped_at_roof(self):
        memory = MemorySystem(BROADWELL)
        capped = memory.transfer_cycles(12e9, "sequential", demand_gbps=100.0)
        assert capped == pytest.approx(2.4e9)


class TestMemoryLatencyChecker:
    def test_latency_report(self):
        report = MemoryLatencyChecker(BROADWELL).measure_latencies()
        assert report.l1_cycles == 4.0
        assert report.l2_cycles == 20.0
        assert report.l3_cycles == 46.0
        assert report.memory_cycles == 206.0
        assert report.memory_ns == pytest.approx(206.0 / 2.4)

    def test_bandwidth_report_matches_table1(self):
        report = MemoryLatencyChecker(BROADWELL).measure_bandwidths()
        assert report.per_core_sequential == 12.0
        assert report.per_core_random == 7.0
        assert report.per_socket_sequential == 66.0
        assert report.per_socket_random == 60.0

    def test_table1_rows_complete(self):
        rows = MemoryLatencyChecker(BROADWELL).table1_rows()
        assert rows["#cores per socket"] == "14"
        assert rows["Clock speed"] == "2.40GHz"
        assert "12GB/s (sequential)" in rows["Per-core bandwidth"]
        assert "66GB/s (sequential)" in rows["Per-socket bandwidth"]
        assert "(inclusive) 35MB" in rows["L3 (shared)"]
        assert rows["Hyper-threading"] == "Off"
        assert rows["Turbo-boost"] == "Off"
        assert rows["Memory"] == "256GB"

    def test_skylake_rows_differ(self):
        rows = MemoryLatencyChecker(SKYLAKE).table1_rows()
        assert "87GB/s (sequential)" in rows["Per-socket bandwidth"]
        assert "16MB" in rows["L3 (shared)"]
        assert "(inclusive)" not in rows["L3 (shared)"]
