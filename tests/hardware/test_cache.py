"""Trace-driven cache tests: hits, LRU, associativity, prefetch
bookkeeping, plus hypothesis invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import CacheSpec, SetAssociativeCache


def make_cache(size=4096, ways=4, line=64):
    return SetAssociativeCache(
        CacheSpec("test", size, miss_latency_cycles=10.0, associativity=ways, line_bytes=line)
    )


class TestBasics:
    def test_first_access_misses_then_hits(self):
        cache = make_cache()
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_same_line_different_bytes_hit(self):
        cache = make_cache()
        cache.access(0)
        assert cache.access(63)
        assert not cache.access(64)  # next line

    def test_line_of(self):
        cache = make_cache()
        assert cache.line_of(0) == 0
        assert cache.line_of(63) == 0
        assert cache.line_of(64) == 1

    def test_contains(self):
        cache = make_cache()
        cache.access(128)
        assert cache.contains(128 + 8)
        assert not cache.contains(4096 * 10)

    def test_non_power_of_two_line_rejected(self):
        with pytest.raises(ValueError):
            make_cache(size=60 * 4, ways=4, line=60)


class TestEviction:
    def test_lru_victim(self):
        # 16 lines, 4 ways -> 4 sets; lines 0, 4, 8, 12 map to set 0.
        cache = make_cache(size=16 * 64, ways=4)
        set0_lines = [0, 4, 8, 12, 16]
        for line in set0_lines[:4]:
            cache.access_line(line)
        cache.access_line(0)  # refresh line 0: LRU is now line 4
        cache.access_line(16)  # evicts line 4
        assert cache.contains_line(0)
        assert not cache.contains_line(4)
        assert cache.stats.evictions == 1

    def test_capacity_never_exceeded(self):
        cache = make_cache(size=16 * 64, ways=4)
        for line in range(100):
            cache.access_line(line)
        assert cache.occupancy <= 16

    def test_working_set_within_capacity_all_hits_second_pass(self):
        cache = make_cache(size=64 * 64, ways=8)
        lines = range(32)
        for line in lines:
            cache.access_line(line)
        before = cache.stats.hits
        for line in lines:
            assert cache.access_line(line)
        assert cache.stats.hits == before + 32


class TestPrefetchBookkeeping:
    def test_prefetch_installs_line(self):
        cache = make_cache()
        assert cache.prefetch_line(5)
        assert cache.contains_line(5)
        assert cache.stats.prefetch_inserts == 1

    def test_redundant_prefetch_reports_false(self):
        cache = make_cache()
        cache.access_line(5)
        assert not cache.prefetch_line(5)

    def test_prefetch_hit_counted_once(self):
        cache = make_cache()
        cache.prefetch_line(9)
        cache.access_line(9)
        cache.access_line(9)
        assert cache.stats.prefetch_hits == 1
        assert cache.stats.hits == 2

    def test_invalidate(self):
        cache = make_cache()
        cache.access_line(3)
        assert cache.invalidate_line(3)
        assert not cache.contains_line(3)
        assert not cache.invalidate_line(3)

    def test_reset(self):
        cache = make_cache()
        cache.access_line(1)
        cache.prefetch_line(2)
        cache.reset()
        assert cache.occupancy == 0
        assert cache.stats.accesses == 0


class TestStats:
    def test_miss_and_hit_rates(self):
        cache = make_cache()
        cache.access_line(0)
        cache.access_line(0)
        cache.access_line(1)
        assert cache.stats.miss_rate == pytest.approx(2 / 3)
        assert cache.stats.hit_rate == pytest.approx(1 / 3)

    def test_empty_rates(self):
        cache = make_cache()
        assert cache.stats.miss_rate == 0.0
        assert cache.stats.hit_rate == 0.0


@settings(max_examples=50, deadline=None)
@given(lines=st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=300))
def test_property_residents_are_subset_of_touched(lines):
    cache = make_cache(size=32 * 64, ways=4)
    for line in lines:
        cache.access_line(line)
    touched = set(lines)
    assert set(cache.resident_lines()) <= touched


@settings(max_examples=50, deadline=None)
@given(lines=st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=300))
def test_property_occupancy_bounded_and_counts_consistent(lines):
    cache = make_cache(size=32 * 64, ways=4)
    for line in lines:
        cache.access_line(line)
    assert cache.occupancy <= 32
    assert cache.stats.hits + cache.stats.misses == len(lines)


@settings(max_examples=30, deadline=None)
@given(lines=st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=200))
def test_property_immediate_reaccess_always_hits(lines):
    cache = make_cache(size=32 * 64, ways=4)
    for line in lines:
        cache.access_line(line)
        assert cache.access_line(line)
