"""Top-Down hierarchy tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import CycleBreakdown, TopDownNode, TopDownTree

positive = st.floats(min_value=0.0, max_value=1e9, allow_nan=False)


def sample_breakdown():
    return CycleBreakdown(
        retiring=40, branch_misp=10, icache=5, decoding=3, dcache=30, execution=12
    )


class TestNode:
    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            TopDownNode("x", -1.0)

    def test_child_lookup(self):
        tree = TopDownTree.from_breakdown(sample_breakdown())
        assert tree.root.child("Retiring").cycles == 40
        with pytest.raises(KeyError):
            tree.root.child("Nope")

    def test_walk_preorder(self):
        tree = TopDownTree.from_breakdown(sample_breakdown())
        names = [node.name for _, node in tree.root.walk()]
        assert names[0] == "Pipeline Slots"
        assert "Memory Bound (Dcache)" in names

    def test_leaf_flag(self):
        tree = TopDownTree.from_breakdown(sample_breakdown())
        assert tree.root.child("Retiring").is_leaf
        assert not tree.root.is_leaf


class TestTree:
    def test_level1_structure(self):
        tree = TopDownTree.from_breakdown(sample_breakdown())
        assert [child.name for child in tree.root.children] == list(TopDownTree.LEVEL1)

    def test_level1_shares(self):
        tree = TopDownTree.from_breakdown(sample_breakdown())
        shares = tree.level1_shares()
        assert shares["Retiring"] == pytest.approx(0.4)
        assert shares["Backend Bound"] == pytest.approx(0.42)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_mapping_to_paper_classes(self):
        """Bad Speculation <-> Branch misp., Frontend <-> Icache+Decoding,
        Backend <-> Dcache+Execution."""
        breakdown = sample_breakdown()
        tree = TopDownTree.from_breakdown(breakdown)
        assert tree.root.child("Bad Speculation").cycles == breakdown.branch_misp
        assert tree.root.child("Frontend Bound").cycles == pytest.approx(
            breakdown.icache + breakdown.decoding
        )
        assert tree.root.child("Backend Bound").cycles == pytest.approx(
            breakdown.dcache + breakdown.execution
        )

    def test_dominant_category(self):
        assert TopDownTree.from_breakdown(sample_breakdown()).dominant_category() == (
            "Backend Bound"
        )

    def test_validate(self):
        assert TopDownTree.from_breakdown(sample_breakdown()).validate()

    def test_validate_detects_inconsistency(self):
        bad = TopDownTree(
            TopDownNode("root", 100, (TopDownNode("child", 10),))
        )
        assert not bad.validate()

    def test_render_contains_all_nodes(self):
        text = TopDownTree.from_breakdown(sample_breakdown()).render()
        for name in ("Retiring", "Core Bound (Execution)", "Fetch Latency (Icache)"):
            assert name in text

    def test_zero_breakdown(self):
        tree = TopDownTree.from_breakdown(CycleBreakdown.zero())
        assert tree.level1_shares() == {name: 0.0 for name in TopDownTree.LEVEL1}
        assert tree.render()


@settings(max_examples=60, deadline=None)
@given(
    breakdown=st.builds(
        CycleBreakdown,
        retiring=positive, branch_misp=positive, icache=positive,
        decoding=positive, dcache=positive, execution=positive,
    )
)
def test_property_roundtrip_and_consistency(breakdown):
    tree = TopDownTree.from_breakdown(breakdown)
    assert tree.validate()
    recovered = tree.to_breakdown()
    assert recovered.total == pytest.approx(breakdown.total)
    assert recovered.as_dict() == pytest.approx(breakdown.as_dict())
