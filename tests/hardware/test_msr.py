"""Emulated MSR 0x1A4 prefetcher-control tests (Section 9 mechanism)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import (
    ALL_PREFETCHERS_MASK,
    MSR_MISC_FEATURE_CONTROL,
    MsrFile,
    PrefetcherConfig,
    config_from_msr,
    msr_from_config,
)


class TestEncoding:
    def test_zero_means_all_enabled(self):
        """Hardware convention: a set bit *disables* its prefetcher."""
        assert config_from_msr(0x0) == PrefetcherConfig.all_enabled()

    def test_all_bits_means_all_disabled(self):
        assert config_from_msr(0xF) == PrefetcherConfig.all_disabled()

    def test_bit0_controls_l2_streamer(self):
        config = config_from_msr(0b0001)
        assert not config.l2_streamer
        assert config.l2_next_line and config.l1_streamer and config.l1_next_line

    def test_bit3_controls_l1_next_line(self):
        config = config_from_msr(0b1000)
        assert not config.l1_next_line
        assert config.l2_streamer

    def test_roundtrip_all_sixteen_values(self):
        for value in range(16):
            assert msr_from_config(config_from_msr(value)) == value

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            config_from_msr(-1)


class TestMsrFile:
    def test_defaults_to_all_enabled(self):
        assert MsrFile().prefetchers == PrefetcherConfig.all_enabled()

    def test_disable_enable_cycle(self):
        msr = MsrFile()
        msr.disable_all_prefetchers()
        assert msr.prefetchers == PrefetcherConfig.all_disabled()
        assert msr.read(MSR_MISC_FEATURE_CONTROL) == ALL_PREFETCHERS_MASK
        msr.enable_all_prefetchers()
        assert msr.prefetchers == PrefetcherConfig.all_enabled()

    def test_apply_config(self):
        msr = MsrFile()
        target = PrefetcherConfig.only("l2_streamer")
        msr.apply(target)
        assert msr.prefetchers == target

    def test_write_validation(self):
        msr = MsrFile()
        with pytest.raises(ValueError):
            msr.write(MSR_MISC_FEATURE_CONTROL, 0x10)
        with pytest.raises(PermissionError):
            msr.write(0x1A0, 1)

    def test_unknown_register_reads_zero(self):
        assert MsrFile().read(0x611) == 0

    def test_negative_core_rejected(self):
        with pytest.raises(ValueError):
            MsrFile(core=-1)

    def test_paper_workflow(self):
        """The Section 9 experiment loop: flip MSR, observe config."""
        msr = MsrFile(core=3)
        seen = []
        for name, config in PrefetcherConfig.figure26_configs().items():
            msr.apply(config)
            seen.append(msr.prefetchers)
        assert seen == list(PrefetcherConfig.figure26_configs().values())


@settings(max_examples=30, deadline=None)
@given(
    flags=st.tuples(st.booleans(), st.booleans(), st.booleans(), st.booleans())
)
def test_property_roundtrip_any_config(flags):
    config = PrefetcherConfig(*flags)
    assert config_from_msr(msr_from_config(config)) == config
