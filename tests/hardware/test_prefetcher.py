"""Prefetcher tests: configurations (Figure 26) and trace behaviour."""

import pytest

from repro.hardware import (
    CacheSpec,
    NextLinePrefetcher,
    PrefetcherConfig,
    SetAssociativeCache,
    StreamerPrefetcher,
)
from repro.hardware.prefetcher import LINES_PER_PAGE


def make_cache():
    return SetAssociativeCache(
        CacheSpec("L2", 256 * 1024, miss_latency_cycles=26.0)
    )


class TestPrefetcherConfig:
    def test_default_all_enabled(self):
        config = PrefetcherConfig.all_enabled()
        assert config.enabled_names() == PrefetcherConfig.NAMES
        assert config.any_enabled

    def test_all_disabled(self):
        config = PrefetcherConfig.all_disabled()
        assert config.enabled_names() == ()
        assert not config.any_enabled

    def test_only(self):
        config = PrefetcherConfig.only("l2_streamer")
        assert config.enabled_names() == ("l2_streamer",)

    def test_only_rejects_unknown(self):
        with pytest.raises(ValueError):
            PrefetcherConfig.only("l3_magic")

    def test_figure26_configs_in_paper_order(self):
        names = list(PrefetcherConfig.figure26_configs())
        assert names == [
            "All disabled", "L1 NL", "L1 Str.", "L2 NL", "L2 Str.", "All enabled",
        ]

    def test_coverage_ordering(self):
        """Disabled < next-line < streamer; L2 streamer ~ all enabled
        (the Figure 26 result)."""
        cov = {
            name: config.sequential_coverage()
            for name, config in PrefetcherConfig.figure26_configs().items()
        }
        assert cov["All disabled"] == 0.0
        assert cov["All disabled"] < cov["L1 NL"] < cov["L1 Str."]
        assert cov["L1 NL"] < cov["L2 Str."]
        assert cov["L2 Str."] >= 0.9
        assert cov["All enabled"] >= cov["L2 Str."]
        assert cov["All enabled"] - cov["L2 Str."] <= 0.05

    def test_random_coverage_small(self):
        assert PrefetcherConfig.all_disabled().random_coverage() == 0.0
        assert 0.0 < PrefetcherConfig.all_enabled().random_coverage() <= 0.3


class TestNextLinePrefetcher:
    def test_miss_prefetches_next_line(self):
        cache = make_cache()
        prefetcher = NextLinePrefetcher(cache)
        hit = cache.access_line(10)
        prefetcher.on_access(10, hit)
        assert cache.contains_line(11)
        assert prefetcher.issued == 1

    def test_hit_does_not_prefetch(self):
        cache = make_cache()
        prefetcher = NextLinePrefetcher(cache)
        cache.access_line(10)
        prefetcher.on_access(10, True)
        assert not cache.contains_line(11)

    def test_covers_roughly_half_a_stream(self):
        cache = make_cache()
        prefetcher = NextLinePrefetcher(cache)
        hits = 0
        for line in range(200):
            hit = cache.access_line(line)
            prefetcher.on_access(line, hit)
            hits += hit
        assert hits == pytest.approx(100, abs=2)


class TestStreamerPrefetcher:
    def test_detects_ascending_stream(self):
        cache = make_cache()
        streamer = StreamerPrefetcher(cache, degree=4)
        for line in range(3):
            hit = cache.access_line(line)
            streamer.on_access(line, hit)
        # After two same-direction steps the streamer runs ahead.
        assert cache.contains_line(3)
        assert streamer.issued > 0

    def test_detects_descending_stream(self):
        cache = make_cache()
        streamer = StreamerPrefetcher(cache, degree=2)
        for line in (40, 39, 38):
            streamer.on_access(line, False)
        assert cache.contains_line(37)

    def test_does_not_cross_page_boundary(self):
        cache = make_cache()
        streamer = StreamerPrefetcher(cache, degree=8)
        last = LINES_PER_PAGE - 1
        for line in (last - 2, last - 1, last):
            streamer.on_access(line, False)
        assert not cache.contains_line(LINES_PER_PAGE)

    def test_high_degree_covers_stream(self):
        cache = make_cache()
        streamer = StreamerPrefetcher(cache, degree=8)
        hits = 0
        for line in range(300):
            hit = cache.access_line(line)
            streamer.on_access(line, hit)
            hits += hit
        assert hits / 300 > 0.9

    def test_tracker_eviction_bounded(self):
        cache = make_cache()
        streamer = StreamerPrefetcher(cache, degree=2, max_trackers=4)
        for page in range(10):
            streamer.on_access(page * LINES_PER_PAGE, False)
        assert len(list(streamer.tracked_pages())) <= 4

    def test_random_accesses_trigger_few_prefetches(self):
        cache = make_cache()
        streamer = StreamerPrefetcher(cache, degree=4)
        import random

        rng = random.Random(3)
        for _ in range(300):
            streamer.on_access(rng.randrange(100_000), False)
        # Random traffic should not look like streams.
        assert streamer.issued < 100

    def test_degree_validation(self):
        with pytest.raises(ValueError):
            StreamerPrefetcher(make_cache(), degree=0)

    def test_reset(self):
        cache = make_cache()
        streamer = StreamerPrefetcher(cache, degree=2)
        for line in range(5):
            streamer.on_access(line, False)
        streamer.reset()
        assert streamer.issued == 0
        assert not list(streamer.tracked_pages())
