"""Equivalence tests: batch simulation kernels vs. the reference models.

The vectorized/fused kernels in :mod:`repro.hardware.fastsim` must be
*exactly* equivalent to the per-event reference loops -- identical
reported statistics, identical cache contents (including LRU order and
prefetched flags), identical predictor state -- on every trace shape
the repo uses.  The reference path stays selectable via
``REPRO_REFERENCE_SIM=1`` and serves as the oracle here.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tracesim import (
    bernoulli_outcomes,
    random_trace,
    sequential_trace,
    sparse_trace,
)
from repro.hardware import BROADWELL, SKYLAKE, CacheHierarchy, PrefetcherConfig
from repro.hardware import fastsim
from repro.hardware.branch import GSharePredictor


def reference_replay(hierarchy, addresses):
    """The per-event oracle, bypassing the batch dispatch."""
    for addr in addresses:
        hierarchy.access(int(addr))
    return hierarchy.stats


def hierarchy_stats(hierarchy):
    """Every reported statistic of a hierarchy, as plain data."""
    return {
        "hierarchy": dataclasses.asdict(hierarchy.stats),
        "l1": dataclasses.asdict(hierarchy.l1.stats),
        "l2": dataclasses.asdict(hierarchy.l2.stats),
        "l3": dataclasses.asdict(hierarchy.l3.stats),
        "prefetches_issued": hierarchy.prefetches_issued(),
    }


def cache_contents(hierarchy):
    """Full contents of all levels: lines in LRU->MRU order with their
    prefetched flags (tick values themselves are representation detail;
    only their order is behaviour)."""
    levels = []
    for cache in (hierarchy.l1, hierarchy.l2, hierarchy.l3):
        levels.append(
            [
                [
                    (line, bool(entry[1]))
                    for line, entry in sorted(
                        cache_set.items(), key=lambda item: item[1][0]
                    )
                ]
                for cache_set in cache._sets
            ]
        )
    return levels


RNG = np.random.default_rng(1234)

TRACES = {
    "sequential": sequential_trace(16_000, stride_bytes=8),
    "sequential_wide": sequential_trace(8_000, stride_bytes=256),
    "random": random_trace(12_000, working_set_bytes=1 << 24, seed=3),
    "random_small_ws": random_trace(12_000, working_set_bytes=1 << 14, seed=4),
    "sparse": sparse_trace(24_000, density=0.1, seed=5),
    "mixed": np.concatenate(
        [
            sequential_trace(6_000, stride_bytes=8),
            random_trace(6_000, working_set_bytes=1 << 22, seed=6),
        ]
    ),
    "repeated": np.repeat(
        np.arange(0, 2_000 * 64, 64, dtype=np.int64), 4
    ),
}

CONFIGS = PrefetcherConfig.figure26_configs()


class TestHierarchyEquivalence:
    @pytest.mark.parametrize("trace_name", sorted(TRACES))
    @pytest.mark.parametrize("config_name", sorted(CONFIGS))
    def test_stats_and_contents_identical(self, trace_name, config_name):
        trace = TRACES[trace_name]
        config = CONFIGS[config_name]
        reference = CacheHierarchy(BROADWELL, config)
        reference_replay(reference, trace)
        fast = CacheHierarchy(BROADWELL, config)
        fastsim.replay_hierarchy(fast, trace)
        assert hierarchy_stats(fast) == hierarchy_stats(reference)
        assert cache_contents(fast) == cache_contents(reference)

    @pytest.mark.parametrize("config_name", ["All disabled", "All enabled"])
    def test_skylake_spec(self, config_name):
        config = CONFIGS[config_name]
        trace = TRACES["mixed"]
        reference = CacheHierarchy(SKYLAKE, config)
        reference_replay(reference, trace)
        fast = CacheHierarchy(SKYLAKE, config)
        fastsim.replay_hierarchy(fast, trace)
        assert hierarchy_stats(fast) == hierarchy_stats(reference)
        assert cache_contents(fast) == cache_contents(reference)

    @pytest.mark.parametrize("config_name", sorted(CONFIGS))
    def test_chunked_replay_preserves_state(self, config_name):
        """Multiple batch calls on one hierarchy must be equivalent to
        one long reference replay (state continuity across calls)."""
        config = CONFIGS[config_name]
        trace = TRACES["mixed"]
        reference = CacheHierarchy(BROADWELL, config)
        reference_replay(reference, trace)
        fast = CacheHierarchy(BROADWELL, config)
        for chunk in np.array_split(trace, 9):
            fastsim.replay_hierarchy(fast, chunk)
        assert hierarchy_stats(fast) == hierarchy_stats(reference)
        assert cache_contents(fast) == cache_contents(reference)

    def test_batch_then_scalar_access_agrees(self):
        """Future per-event accesses see the exact post-batch state."""
        trace = TRACES["random_small_ws"]
        reference = CacheHierarchy(BROADWELL, PrefetcherConfig.all_enabled())
        reference_replay(reference, trace)
        fast = CacheHierarchy(BROADWELL, PrefetcherConfig.all_enabled())
        fastsim.replay_hierarchy(fast, trace)
        probes = random_trace(2_000, working_set_bytes=1 << 14, seed=9)
        for addr in probes:
            assert fast.access(int(addr)) == reference.access(int(addr))

    def test_reference_env_forces_scalar_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_REFERENCE_SIM", "1")
        assert fastsim.use_reference()
        calls = []
        hierarchy = CacheHierarchy(BROADWELL, PrefetcherConfig.all_disabled())
        original = hierarchy.access
        hierarchy.access = lambda addr: (calls.append(addr), original(addr))[1]
        hierarchy.replay(sequential_trace(100, 64))
        assert len(calls) == 100

    def test_replay_dispatches_to_batch(self, monkeypatch):
        monkeypatch.delenv("REPRO_REFERENCE_SIM", raising=False)
        hierarchy = CacheHierarchy(BROADWELL, PrefetcherConfig.all_disabled())
        hierarchy.access = None  # batch path must not call access()
        stats = hierarchy.replay(sequential_trace(1_000, 64))
        assert stats.accesses == 1_000


class TestHierarchyProperties:
    """Hypothesis property tests: invariants plus reference equivalence
    on adversarial short traces (set-conflict-heavy address space)."""

    @settings(max_examples=15, deadline=None)
    @given(
        lines=st.lists(st.integers(min_value=0, max_value=2_000), min_size=32, max_size=300),
        config_index=st.integers(min_value=0, max_value=5),
    )
    def test_matches_reference_on_arbitrary_traces(self, lines, config_index):
        config = list(CONFIGS.values())[config_index]
        addresses = np.array(lines, dtype=np.int64) * 64
        reference = CacheHierarchy(BROADWELL, config)
        reference_replay(reference, addresses)
        fast = CacheHierarchy(BROADWELL, config)
        fastsim.replay_hierarchy(fast, addresses)
        assert hierarchy_stats(fast) == hierarchy_stats(reference)
        assert cache_contents(fast) == cache_contents(reference)

    @settings(max_examples=25, deadline=None)
    @given(lines=st.lists(st.integers(min_value=0, max_value=10_000), min_size=32, max_size=400))
    def test_cache_invariants(self, lines):
        addresses = np.array(lines, dtype=np.int64) * 64
        hierarchy = CacheHierarchy(BROADWELL, PrefetcherConfig.all_enabled())
        fastsim.replay_hierarchy(hierarchy, addresses)
        for cache in (hierarchy.l1, hierarchy.l2, hierarchy.l3):
            stats = cache.stats
            assert stats.hits + stats.misses == stats.accesses
            assert stats.prefetch_hits <= stats.hits
            assert 0 <= stats.miss_rate <= 1
            for cache_set in cache._sets:
                assert len(cache_set) <= cache._ways
                for line, entry in cache_set.items():
                    assert line % cache._n_sets is not None
                    assert entry[0] <= cache._tick
        stats = hierarchy.stats
        assert (
            stats.l1_hits + stats.l2_hits + stats.l3_hits + stats.memory_accesses
            == stats.accesses
        )
        assert stats.total_latency_cycles >= stats.accesses * BROADWELL.l1_access_cycles


def predictor_state(predictor):
    return {
        "table": predictor._table.copy(),
        "history": predictor._history,
        "predictions": predictor.predictions,
        "mispredictions": predictor.mispredictions,
    }


def assert_same_predictor(fast, reference):
    assert fast._history == reference._history
    assert fast.predictions == reference.predictions
    assert fast.mispredictions == reference.mispredictions
    assert np.array_equal(fast._table, reference._table)


BRANCH_STREAMS = {
    "p10": bernoulli_outcomes(8_000, 0.10, seed=21),
    "p50": bernoulli_outcomes(8_000, 0.50, seed=22),
    "p90": bernoulli_outcomes(8_000, 0.90, seed=23),
    "alternating": np.tile([True, False], 4_000),
    "clustered": np.repeat(bernoulli_outcomes(250, 0.5, seed=24), 33),
    "all_taken": np.ones(5_000, dtype=bool),
    "all_not_taken": np.zeros(5_000, dtype=bool),
}


class TestGshareEquivalence:
    @pytest.mark.parametrize("stream_name", sorted(BRANCH_STREAMS))
    def test_counts_and_state_identical(self, stream_name):
        outcomes = BRANCH_STREAMS[stream_name]
        reference = GSharePredictor()
        for taken in outcomes:
            reference.predict_and_update(0x4F21, bool(taken))
        fast = GSharePredictor()
        added = fastsim.gshare_run_batch(fast, 0x4F21, outcomes)
        assert added == reference.mispredictions
        assert_same_predictor(fast, reference)

    def test_batch_then_scalar_updates_agree(self):
        """predict_and_update after a batch run sees the exact state."""
        outcomes = BRANCH_STREAMS["p50"]
        reference = GSharePredictor()
        for taken in outcomes:
            reference.predict_and_update(7, bool(taken))
        fast = GSharePredictor()
        fastsim.gshare_run_batch(fast, 7, outcomes)
        tail = bernoulli_outcomes(500, 0.3, seed=31)
        for taken in tail:
            assert fast.predict_and_update(7, bool(taken)) == (
                reference.predict_and_update(7, bool(taken))
            )
        assert_same_predictor(fast, reference)

    def test_chunked_runs_preserve_state(self):
        outcomes = BRANCH_STREAMS["p50"]
        reference = GSharePredictor()
        for taken in outcomes:
            reference.predict_and_update(11, bool(taken))
        fast = GSharePredictor()
        for chunk in np.array_split(outcomes, 5):
            fastsim.gshare_run_batch(fast, 11, chunk)
        assert_same_predictor(fast, reference)

    def test_run_returns_rate(self):
        outcomes = BRANCH_STREAMS["p50"]
        reference = GSharePredictor()
        for taken in outcomes:
            reference.predict_and_update(3, bool(taken))
        reference_rate = reference.mispredictions / len(outcomes)
        fast = GSharePredictor()
        assert fast.run(3, outcomes) == pytest.approx(reference_rate)

    def test_reference_env_forces_scalar_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_REFERENCE_SIM", "1")
        predictor = GSharePredictor()
        calls = []
        original = predictor.predict_and_update
        predictor.predict_and_update = lambda pc, taken: (
            calls.append(pc),
            original(pc, taken),
        )[1]
        predictor.run(5, bernoulli_outcomes(200, 0.5))
        assert len(calls) == 200

    @settings(max_examples=30, deadline=None)
    @given(
        outcomes=st.lists(st.booleans(), min_size=32, max_size=400),
        pc=st.integers(min_value=0, max_value=1 << 16),
    )
    def test_property_equivalence(self, outcomes, pc):
        outcomes = np.array(outcomes, dtype=bool)
        reference = GSharePredictor(table_bits=6, history_bits=4)
        for taken in outcomes:
            reference.predict_and_update(pc, bool(taken))
        fast = GSharePredictor(table_bits=6, history_bits=4)
        fastsim.gshare_run_batch(fast, pc, outcomes)
        assert_same_predictor(fast, reference)

    def test_zero_history_bits(self):
        outcomes = BRANCH_STREAMS["p50"]
        reference = GSharePredictor(history_bits=0)
        for taken in outcomes:
            reference.predict_and_update(42, bool(taken))
        fast = GSharePredictor(history_bits=0)
        fastsim.gshare_run_batch(fast, 42, outcomes)
        assert_same_predictor(fast, reference)
