"""Execution-port pressure model tests."""

import pytest

from repro.hardware import ExecutionPorts, OpCounts, PortSpec


@pytest.fixture
def ports():
    return ExecutionPorts(PortSpec())


class TestOpCounts:
    def test_scaled(self):
        counts = OpCounts(alu_ops=4, load_ops=2, store_ops=1, simd_ops=8, hash_ops=3)
        half = counts.scaled(0.5)
        assert half.alu_ops == 2
        assert half.simd_ops == 4
        assert half.hash_ops == 1.5


class TestPortCycles:
    def test_alu_throughput_four_per_cycle(self, ports):
        assert ports.alu_cycles(OpCounts(alu_ops=400)) == pytest.approx(100)

    def test_loads_two_per_cycle(self, ports):
        assert ports.load_cycles(OpCounts(load_ops=400)) == pytest.approx(200)

    def test_stores_one_per_cycle(self, ports):
        assert ports.store_cycles(OpCounts(store_ops=400)) == pytest.approx(400)

    def test_simd_two_per_cycle(self, ports):
        assert ports.simd_cycles(OpCounts(simd_ops=400)) == pytest.approx(200)

    def test_hash_ops_occupy_the_multiply_port(self, ports):
        """One hash op costs several cycles on the single imul port --
        the Section 5/6 'costly hash computations' mechanism."""
        hash_cycles = ports.alu_cycles(OpCounts(hash_ops=100))
        plain_cycles = ports.alu_cycles(OpCounts(alu_ops=100))
        assert hash_cycles >= 4 * plain_cycles

    def test_min_issue_is_binding_group(self, ports):
        counts = OpCounts(alu_ops=4, load_ops=2, store_ops=10)
        assert ports.min_issue_cycles(counts) == pytest.approx(10.0)
        assert ports.binding_port_group(counts) == "store"

    def test_binding_group_alu_with_hashes(self, ports):
        counts = OpCounts(alu_ops=1, load_ops=1, hash_ops=10)
        assert ports.binding_port_group(counts) == "alu"

    def test_empty_counts(self, ports):
        assert ports.min_issue_cycles(OpCounts()) == 0.0
