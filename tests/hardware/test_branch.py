"""Branch-predictor tests: the 2-bit Markov model and gshare."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import (
    GSharePredictor,
    TwoBitCounter,
    conjunction_mispredict_rate,
    two_bit_mispredict_rate,
    two_bit_stationary_distribution,
)


class TestStationaryDistribution:
    def test_sums_to_one(self):
        for p in (0.0, 0.1, 0.5, 0.73, 1.0):
            assert two_bit_stationary_distribution(p).sum() == pytest.approx(1.0)

    def test_degenerate_cases(self):
        assert two_bit_stationary_distribution(0.0)[0] == 1.0
        assert two_bit_stationary_distribution(1.0)[3] == 1.0

    def test_uniform_at_half(self):
        pi = two_bit_stationary_distribution(0.5)
        assert np.allclose(pi, 0.25)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            two_bit_stationary_distribution(1.5)


class TestMispredictRate:
    def test_peak_at_half(self):
        """Section 4: the prediction task is hardest at 50%."""
        rates = {p: two_bit_mispredict_rate(p) for p in np.linspace(0.01, 0.99, 21)}
        assert max(rates, key=rates.get) == pytest.approx(0.5)
        assert rates[0.5] == pytest.approx(0.5)

    def test_symmetric(self):
        for p in (0.1, 0.25, 0.4):
            assert two_bit_mispredict_rate(p) == pytest.approx(
                two_bit_mispredict_rate(1.0 - p)
            )

    def test_monotone_increasing_to_half(self):
        points = np.linspace(0.0, 0.5, 26)
        rates = [two_bit_mispredict_rate(p) for p in points]
        assert all(a <= b + 1e-12 for a, b in zip(rates, rates[1:]))

    def test_perfectly_biased_branches_never_mispredict(self):
        assert two_bit_mispredict_rate(0.0) == 0.0
        assert two_bit_mispredict_rate(1.0) == 0.0

    def test_close_to_optimal_for_biased_branch(self):
        # A 2-bit counter on Bernoulli(p) is near min(p, 1-p).
        assert two_bit_mispredict_rate(0.1) == pytest.approx(0.11, abs=0.02)


class TestConjunction:
    def test_combined_selectivity_is_product(self):
        """The compiled-engine effect: 10% x 10% x 10% -> easy branch."""
        rate = conjunction_mispredict_rate([0.1, 0.1, 0.1])
        assert rate == pytest.approx(two_bit_mispredict_rate(0.001))
        assert rate < two_bit_mispredict_rate(0.1) / 10

    def test_single_predicate_unchanged(self):
        assert conjunction_mispredict_rate([0.3]) == pytest.approx(
            two_bit_mispredict_rate(0.3)
        )

    def test_empty_conjunction(self):
        assert conjunction_mispredict_rate([]) == 0.0

    def test_rejects_bad_selectivity(self):
        with pytest.raises(ValueError):
            conjunction_mispredict_rate([1.4])


class TestTwoBitCounter:
    def test_saturates(self):
        counter = TwoBitCounter(state=3)
        counter.update(True)
        assert counter.state == 3
        counter = TwoBitCounter(state=0)
        counter.update(False)
        assert counter.state == 0

    def test_hysteresis(self):
        counter = TwoBitCounter(state=3)
        counter.update(False)  # one not-taken does not flip prediction
        assert counter.predict()
        counter.update(False)
        assert not counter.predict()

    def test_update_reports_correctness(self):
        counter = TwoBitCounter(state=3)
        assert counter.update(True)
        assert not counter.update(False)

    def test_state_validation(self):
        with pytest.raises(ValueError):
            TwoBitCounter(state=4)


class TestGShare:
    def test_learns_constant_branch(self):
        predictor = GSharePredictor()
        rate = predictor.run(0x400, np.ones(2000, dtype=bool))
        assert rate < 0.01

    def test_learns_alternating_pattern(self):
        """Global history makes periodic patterns nearly free."""
        predictor = GSharePredictor(history_bits=8)
        outcomes = np.tile([True, False], 2000)
        rate = predictor.run(0x400, outcomes)
        assert rate < 0.05

    def test_bernoulli_close_to_two_bit_model(self):
        rng = np.random.default_rng(5)
        for p in (0.1, 0.5, 0.9):
            predictor = GSharePredictor()
            outcomes = rng.random(6000) < p
            rate = predictor.run(0x400, outcomes)
            assert rate == pytest.approx(two_bit_mispredict_rate(p), abs=0.08)

    def test_tracks_counts(self):
        predictor = GSharePredictor()
        predictor.run(0x1, np.array([True, False, True]))
        assert predictor.predictions == 3
        assert 0 <= predictor.mispredictions <= 3
        assert predictor.mispredict_rate == predictor.mispredictions / 3

    def test_reset(self):
        predictor = GSharePredictor()
        predictor.run(0x1, np.ones(10, dtype=bool))
        predictor.reset()
        assert predictor.predictions == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            GSharePredictor(table_bits=0)


@settings(max_examples=60, deadline=None)
@given(p=st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
def test_property_rate_bounded_by_half(p):
    rate = two_bit_mispredict_rate(p)
    assert 0.0 <= rate <= 0.5 + 1e-12


@settings(max_examples=60, deadline=None)
@given(p=st.floats(min_value=0.001, max_value=0.999))
def test_property_rate_at_least_optimal(p):
    """No predictor beats always-guess-the-majority on Bernoulli data."""
    assert two_bit_mispredict_rate(p) >= min(p, 1.0 - p) - 1e-9
