"""Workload-driver tests: sweeps, cross-checks and chain comparison."""

import pytest

from repro.engines import HPE_ENGINES, TectorwiseEngine, TyperEngine
from repro.workloads import (
    hash_chain_comparison,
    join_chain_stats,
    normalized_large_join,
    normalized_response_times,
    run_groupby,
    run_join_sweep,
    run_predicated_q6,
    run_predication_comparison,
    run_projection_sweep,
    run_selection_sweep,
    run_tpch,
)


@pytest.fixture(scope="module")
def engines():
    return [engine_cls() for engine_cls in HPE_ENGINES]


class TestProjectionSweep:
    def test_covers_all_engines_and_degrees(self, small_db, engines, profiler):
        reports = run_projection_sweep(small_db, engines, profiler)
        assert set(reports) == {"Typer", "Tectorwise"}
        for per_degree in reports.values():
            assert set(per_degree) == {1, 2, 3, 4}

    def test_normalized_response_base_is_one(self, small_db, engines, profiler):
        reports = run_projection_sweep(small_db, engines, profiler, degrees=(4,))
        normalized = normalized_response_times(reports)
        assert normalized["Typer"] == pytest.approx(1.0)
        assert normalized["Tectorwise"] > 0


class TestSelectionSweep:
    def test_covers_selectivities(self, small_db, engines, profiler):
        reports = run_selection_sweep(small_db, engines, profiler)
        for per_sel in reports.values():
            assert set(per_sel) == {0.1, 0.5, 0.9}

    def test_predicated_variant(self, small_db, engines, profiler):
        reports = run_selection_sweep(
            small_db, engines, profiler, selectivities=(0.5,), predicated=True
        )
        for per_sel in reports.values():
            assert not per_sel[0.5].work.branch_streams


class TestJoinSweep:
    def test_covers_sizes(self, small_db, engines, profiler):
        reports = run_join_sweep(small_db, engines, profiler)
        for per_size in reports.values():
            assert set(per_size) == {"small", "medium", "large"}

    def test_normalized_large_join(self, small_db, engines, profiler):
        reports = run_join_sweep(small_db, engines, profiler, sizes=("large",))
        normalized = normalized_large_join(reports)
        assert normalized["Typer"] == pytest.approx(1.0)

    def test_chain_stats_accessor(self, small_db):
        stats = join_chain_stats(small_db, TyperEngine())
        assert stats.n_keys == small_db["orders"].n_rows


class TestGroupBy:
    def test_runs_on_all_engines(self, small_db, engines, profiler):
        reports = run_groupby(small_db, engines, profiler)
        assert set(reports) == {"Typer", "Tectorwise"}

    def test_chain_comparison_reproduces_paper_shape(self, small_db):
        comparison = hash_chain_comparison(small_db)
        assert comparison.join.max <= 2
        assert comparison.groupby.max > comparison.join.max
        assert comparison.groupby_more_irregular


class TestTpch:
    def test_runs_and_verifies(self, small_db, engines, profiler):
        reports = run_tpch(small_db, engines, profiler)
        for per_query in reports.values():
            assert set(per_query) == {"Q1", "Q6", "Q9", "Q18"}

    def test_query_subset(self, small_db, engines, profiler):
        reports = run_tpch(small_db, engines, profiler, queries=("Q6",))
        assert set(reports["Typer"]) == {"Q6"}

    def test_predicated_q6(self, small_db, profiler):
        reports = run_predicated_q6(small_db, TectorwiseEngine(), profiler)
        assert set(reports) == {"branched", "predicated"}
        assert not reports["predicated"].work.branch_streams


class TestPredicationComparison:
    def test_structure(self, small_db, profiler):
        comparison = run_predication_comparison(small_db, TyperEngine(), profiler)
        assert set(comparison) == {0.1, 0.5, 0.9}
        for variants in comparison.values():
            assert set(variants) == {"branched", "predicated"}
