"""TCP server, wire protocol, dispatch and the stdin REPL."""

import io
import json
import socket

import pytest

from repro.core.execcache import EXECUTION_CACHE
from repro.serve import (
    QueryClient,
    QueryServer,
    QueryService,
    ServiceConfig,
    run_batch,
    run_repl,
)
from repro.serve.protocol import decode, encode, jsonable
from repro.serve.server import dispatch
from repro.tpch.sql import GROUPBY_SQL, JOIN_SQL, projection_sql


@pytest.fixture(scope="module")
def service(tiny_db):
    EXECUTION_CACHE.clear()
    service = QueryService(
        ServiceConfig(workers=4, queue_depth=32, timeout_s=60.0), db=tiny_db
    )
    with service:
        yield service
    EXECUTION_CACHE.clear()


@pytest.fixture(scope="module")
def server(service):
    import threading

    server = QueryServer(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    with server:
        yield server
        server.shutdown()
    thread.join(timeout=10)


class TestProtocol:
    def test_encode_decode_round_trip(self):
        message = {"op": "sql", "sql": "SELECT 1", "engine": "Typer"}
        assert decode(encode(message).rstrip(b"\n")) == message

    def test_encode_is_one_line(self):
        assert encode({"a": "x\ny"}).count(b"\n") == 1

    def test_jsonable_flattens_tuple_keys(self):
        out = jsonable({("a", "b"): 1})
        assert out == {"a,b": 1}


class TestDispatch:
    def test_ping(self, service):
        assert dispatch(service, {"op": "ping"})["status"] == "ok"

    def test_stats(self, service):
        response = dispatch(service, {"op": "stats"})
        assert response["status"] == "ok"
        assert "submitted" in response["stats"]

    def test_stats_exposes_plan_cache_and_executor(self, service):
        """The op=stats response carries the plan-cache counters, the
        executor mode and the storage section."""
        assert dispatch(service, {"sql": projection_sql(1)})["status"] == "ok"
        assert dispatch(service, {"sql": projection_sql(1)})["status"] == "ok"
        stats = dispatch(service, {"op": "stats"})["stats"]
        plan_cache = stats["plan_cache"]
        for counter in ("hits", "misses", "evictions", "entries", "capacity"):
            assert isinstance(plan_cache[counter], int)
        assert plan_cache["hits"] >= 1
        assert plan_cache["misses"] >= 1
        assert stats["executor"] == "thread"
        storage = stats["storage"]
        assert isinstance(storage["encoding_enabled"], bool)
        assert storage["database_loaded"] is True  # fixture injects a db
        assert storage["stored_bytes"] <= storage["logical_bytes"]
        assert storage["compression_ratio"] >= 1.0
        if storage["encoding_enabled"]:
            assert storage["encoded_columns"] > 0

    def test_stats_without_database_reports_toggle_only(self):
        service = QueryService(ServiceConfig(workers=1))
        storage = service.stats_snapshot()["storage"]
        assert storage["database_loaded"] is False
        assert "logical_bytes" not in storage

    def test_unknown_op(self, service):
        response = dispatch(service, {"op": "explode"})
        assert response["status"] == "error"
        assert "unknown op" in response["error"]

    def test_sql_requires_sql_field(self, service):
        response = dispatch(service, {"op": "sql"})
        assert response["status"] == "error"
        assert "sql" in response["error"]

    def test_options_must_be_object(self, service):
        response = dispatch(
            service, {"op": "sql", "sql": projection_sql(1), "options": 7}
        )
        assert response["status"] == "error"


class TestTcp:
    def test_ping_and_stats_over_socket(self, server):
        host, port = server.address
        with QueryClient(host, port) as client:
            assert client.ping()["status"] == "ok"
            assert "latency" in client.stats()["stats"]

    def test_query_over_socket(self, server):
        host, port = server.address
        with QueryClient(host, port) as client:
            response = client.query(projection_sql(1), engine="DBMS C")
            assert response["status"] == "ok"
            assert response["engine"] == "DBMS C"

    def test_malformed_json_line_gets_error_response(self, server):
        host, port = server.address
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(b"this is not json\n")
            line = sock.makefile("rb").readline()
        response = json.loads(line)
        assert response["status"] == "error"
        assert "malformed JSON" in response["error"]

    def test_concurrent_batch_and_cache_hits(self, server):
        host, port = server.address
        statements = [projection_sql(1 + index % 4) for index in range(6)]
        statements += [GROUPBY_SQL, JOIN_SQL["small"]]
        requests = [{"sql": sql} for sql in statements]
        assert len(requests) >= 8
        first = run_batch(host, port, requests, timeout=120.0)
        assert all(r["status"] == "ok" for r in first), first
        repeats = run_batch(host, port, requests, timeout=120.0)
        assert all(r["status"] == "ok" and r["cached"] for r in repeats), repeats


class TestRepl:
    def test_repl_executes_and_switches_engine(self, service):
        stdin = io.StringIO(
            f"{projection_sql(1)}\n:engine DBMS R\n{projection_sql(1)}\n:quit\n"
        )
        stdout = io.StringIO()
        run_repl(service, stdin=stdin, stdout=stdout)
        lines = [
            json.loads(line)
            for line in stdout.getvalue().splitlines()
            if line.startswith("{")
        ]
        ok = [line for line in lines if line.get("status") == "ok"]
        assert {line["engine"] for line in ok} == {"Typer", "DBMS R"}

    def test_repl_stats_directive(self, service):
        stdin = io.StringIO(":stats\n:quit\n")
        stdout = io.StringIO()
        run_repl(service, stdin=stdin, stdout=stdout)
        assert "submitted" in stdout.getvalue()
