"""Rollup routing through the service layer: stats, metrics, ops.

The service observes every routing decision -- hit or reasoned
fallback -- from both executors, folds it into ``stats_snapshot()``
and the ``repro_rollup_*`` metric families, and exposes the summary
through the ``rollups`` wire op and the ``:rollups`` REPL directive.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.core.execcache import EXECUTION_CACHE
from repro.obs import parse_exposition
from repro.rollup import PartitionSpec, build_and_attach, partitioned_database
from repro.serve import QueryService, ServiceConfig
from repro.serve.server import dispatch, run_repl
from repro.tpch.schema import DATE_1998_09_02
from repro.tpch.sql import GROUPBY_SQL, TPCH_SQL, projection_sql


@pytest.fixture(scope="module")
def routed_db(tiny_db):
    db = partitioned_database(
        tiny_db, PartitionSpec("l_shipdate", (2300.0, DATE_1998_09_02 + 0.5))
    )
    build_and_attach(db)
    return db


@pytest.fixture
def service(routed_db):
    EXECUTION_CACHE.clear()
    service = QueryService(
        ServiceConfig(workers=1, queue_depth=8), db=routed_db
    )
    with service:
        yield service
    EXECUTION_CACHE.clear()


class TestStats:
    def test_snapshot_accumulates_hits_and_fallbacks(self, service):
        assert service.submit(GROUPBY_SQL)["status"] == "ok"
        assert service.submit(TPCH_SQL["Q1"])["status"] == "ok"
        assert service.submit(TPCH_SQL["Q6"])["status"] == "ok"
        stats = service.stats_snapshot()["rollups"]
        assert stats["enabled"] is True
        assert stats["tables"] == ["lineitem_by_flag_status"]
        assert stats["queries"] == 3
        assert stats["routed"] == 2
        assert stats["fallbacks"] == 1
        assert stats["rows_read"] > 0
        assert stats["base_rows_avoided"] > stats["rows_read"]
        assert stats["base_bytes_avoided"] > stats["bytes_read"] > 0

    def test_routed_response_still_matches_base_value(self, service, routed_db):
        from repro.engines import TyperEngine

        response = service.submit(GROUPBY_SQL)
        assert response["status"] == "ok"
        assert response["value"] == TyperEngine().run_groupby(routed_db).value

    def test_disabled_toggle_counts_nothing(self, routed_db, monkeypatch):
        monkeypatch.setenv("REPRO_ROLLUPS", "0")
        EXECUTION_CACHE.clear()
        with QueryService(
            ServiceConfig(workers=1, queue_depth=8), db=routed_db
        ) as service:
            assert service.submit(GROUPBY_SQL)["status"] == "ok"
            stats = service.stats_snapshot()["rollups"]
        assert stats["enabled"] is False
        assert stats["queries"] == 0 and stats["routed"] == 0
        EXECUTION_CACHE.clear()


class TestMetrics:
    def test_families_and_counts(self, service):
        service.submit(GROUPBY_SQL)
        service.submit(TPCH_SQL["Q6"])
        samples = parse_exposition(service.metrics_text())
        assert samples["repro_rollup_routed_total"][()] == 1
        assert samples["repro_rollup_fallbacks_total"][
            (("reason", "unsupported-method"),)
        ] == 1
        assert samples["repro_rollup_rows_read_total"][()] > 0
        assert samples["repro_rollup_base_rows_avoided_total"][()] > 0
        assert samples["repro_rollup_tables"][()] == 1

    def test_fallback_reasons_are_labelled(self, service):
        service.submit(TPCH_SQL["Q1"], engine="DBMS R")
        samples = parse_exposition(service.metrics_text())
        assert samples["repro_rollup_fallbacks_total"][
            (("reason", "engine-finisher-not-decomposable"),)
        ] == 1


class TestWireAndRepl:
    def test_dispatch_rollups_op(self, service):
        service.submit(GROUPBY_SQL)
        response = dispatch(service, {"op": "rollups"})
        assert response["status"] == "ok"
        assert response["rollups"]["routed"] == 1
        assert response["rollups"]["tables"] == ["lineitem_by_flag_status"]

    def test_unknown_op_mentions_rollups(self, service):
        response = dispatch(service, {"op": "nope"})
        assert "rollups" in response["error"]

    def test_repl_rollups_directive(self, service):
        stdin = io.StringIO(f"{GROUPBY_SQL}\n:rollups\n:quit\n")
        stdout = io.StringIO()
        run_repl(service, stdin=stdin, stdout=stdout)
        payloads = [
            json.loads(line)
            for line in stdout.getvalue().splitlines()
            if line.startswith("{")
        ]
        rollups = [p["rollups"] for p in payloads if "rollups" in p]
        assert rollups and rollups[0]["routed"] == 1


class TestProcessExecutor:
    def test_process_service_routes_identically(self, routed_db):
        EXECUTION_CACHE.clear()
        thread_service = QueryService(
            ServiceConfig(workers=1, queue_depth=8), db=routed_db
        )
        with thread_service:
            expected = thread_service.submit(TPCH_SQL["Q1"])
        EXECUTION_CACHE.clear()
        process_service = QueryService(
            ServiceConfig(workers=1, queue_depth=8, executor="process"),
            db=routed_db,
        )
        with process_service:
            response = process_service.submit(TPCH_SQL["Q1"])
            stats = process_service.stats_snapshot()["rollups"]
        EXECUTION_CACHE.clear()
        assert response["status"] == "ok"
        assert response["value"] == expected["value"]
        assert stats["routed"] == 1 and stats["queries"] == 1
