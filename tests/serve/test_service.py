"""QueryService: admission control, worker pool, caches and stats.

Admission tests run against an *unstarted* service (no workers ever
drain the queue), so queue-full rejection and deadline timeout are
deterministic rather than racy.
"""

import pytest

from repro.core.execcache import EXECUTION_CACHE
from repro.serve import QueryService, ServiceConfig
from repro.tpch.sql import GROUPBY_SQL, TPCH_SQL, projection_sql


@pytest.fixture
def service(tiny_db):
    EXECUTION_CACHE.clear()
    service = QueryService(
        # queue_depth must hold a full 10-submission burst (see
        # test_concurrent_submissions_all_succeed) before a worker pops.
        ServiceConfig(workers=3, queue_depth=16, timeout_s=30.0), db=tiny_db
    )
    with service:
        yield service
    EXECUTION_CACHE.clear()


class TestAdmissionControl:
    def test_deadline_timeout_without_workers(self, tiny_db):
        stalled = QueryService(ServiceConfig(queue_depth=4), db=tiny_db)
        response = stalled.submit(projection_sql(1), timeout=0.05)
        assert response["status"] == "timeout"
        assert "deadline" in response["error"]

    def test_full_queue_rejects_cleanly(self, tiny_db):
        stalled = QueryService(ServiceConfig(queue_depth=2), db=tiny_db)
        for _ in range(2):  # abandoned requests still occupy the queue
            stalled.submit(projection_sql(1), timeout=0.01)
        response = stalled.submit(projection_sql(1), timeout=0.01)
        assert response["status"] == "rejected"
        assert "queue full" in response["error"]
        stats = stalled.stats_snapshot()
        assert stats["rejected"] == 1
        assert stats["timeouts"] == 2

    def test_rejection_does_not_block(self, tiny_db):
        import time

        stalled = QueryService(ServiceConfig(queue_depth=1), db=tiny_db)
        stalled.submit(projection_sql(1), timeout=0.01)
        start = time.perf_counter()
        response = stalled.submit(projection_sql(1), timeout=10.0)
        assert response["status"] == "rejected"
        assert time.perf_counter() - start < 1.0


class TestExecution:
    def test_ok_response_shape(self, service):
        response = service.submit(projection_sql(2))
        assert response["status"] == "ok"
        assert response["workload"] == "projection-2"
        assert response["method"] == "run_projection"
        assert response["engine"] == "Typer"
        assert response["tuples"] > 0
        assert isinstance(response["value"], float)
        assert response["latency_ms"] > 0

    def test_engine_selection_per_request(self, service):
        for engine in ("DBMS R", "DBMS C", "Typer", "Tectorwise"):
            response = service.submit(projection_sql(1), engine=engine)
            assert response["status"] == "ok", response
            assert response["engine"] == engine
        values = {
            service.submit(projection_sql(1), engine=engine)["value"]
            for engine in ("DBMS R", "Typer")
        }
        assert len(values) == 1  # engines agree on the result

    def test_repeat_served_from_execution_cache(self, service):
        first = service.submit(GROUPBY_SQL)
        repeat = service.submit(GROUPBY_SQL)
        assert first["status"] == repeat["status"] == "ok"
        assert first["cached"] is False
        assert repeat["cached"] is True
        assert repeat["value"] == first["value"]

    def test_plan_cache_shared_across_formatting(self, service):
        service.submit("SELECT SUM(l_extendedprice) FROM lineitem")
        service.submit("select sum(L_EXTENDEDPRICE)   from LINEITEM;")
        stats = service.stats_snapshot()
        assert stats["plan_cache_entries"] == 1
        assert stats["plan_cache_hits"] >= 1

    def test_tpch_queries_run(self, service):
        for query_id in ("Q1", "Q6"):
            response = service.submit(TPCH_SQL[query_id])
            assert response["status"] == "ok", response
            assert response["workload"] == f"tpch-{query_id}"

    def test_options_pass_through(self, service):
        response = service.submit(
            TPCH_SQL["Q6"], engine="Tectorwise", options={"predicated": True}
        )
        assert response["status"] == "ok", response


class TestErrors:
    def test_bad_sql_reports_position(self, service):
        response = service.submit("SELECT FROM lineitem")
        assert response["status"] == "error"
        assert "line 1" in response["error"]

    def test_unknown_column(self, service):
        response = service.submit("SELECT nope FROM lineitem")
        assert response["status"] == "error"
        assert "unknown column" in response["error"]

    def test_unbindable_query(self, service):
        # A plain projection of a non-lineitem table: no template
        # matches and the compiler declines non-aggregate plans.
        response = service.submit("SELECT o_orderkey FROM orders")
        assert response["status"] == "error"
        assert "profiled workload" in response["error"]

    def test_unmatched_aggregate_falls_back_to_the_compiler(self, service):
        # Bound by the plan compiler (PR 9); previously an error.
        response = service.submit("SELECT SUM(o_totalprice) FROM orders")
        assert response["status"] == "ok", response
        assert response["method"] == "run_compiled"

    def test_unknown_engine(self, service):
        response = service.submit(projection_sql(1), engine="Postgres")
        assert response["status"] == "error"
        assert "unknown engine" in response["error"]

    def test_errors_counted_in_stats(self, service):
        before = service.stats_snapshot()["errors"]
        service.submit("SELECT FROM lineitem")
        assert service.stats_snapshot()["errors"] == before + 1


class TestStats:
    def test_latency_percentiles_present(self, service):
        for _ in range(4):
            service.submit(projection_sql(1))
        latency = service.stats_snapshot()["latency"]
        assert set(latency) == {"p50_ms", "p90_ms", "p99_ms", "max_ms"}
        assert latency["p50_ms"] <= latency["max_ms"]

    def test_queue_depth_reported(self, service):
        assert service.stats_snapshot()["queue_depth"] == 0

    def test_concurrent_submissions_all_succeed(self, service):
        import threading

        responses = [None] * 10
        statements = [projection_sql(1 + index % 4) for index in range(10)]

        def submit(index):
            responses[index] = service.submit(statements[index])

        threads = [
            threading.Thread(target=submit, args=(index,)) for index in range(10)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert all(r is not None and r["status"] == "ok" for r in responses)
