"""Process-executor service mode and the bounded plan cache."""

from __future__ import annotations

import pytest

from repro.core.execcache import EXECUTION_CACHE
from repro.serve import QueryService, ServiceConfig
from repro.tpch.sql import JOIN_SQL, TPCH_SQL, projection_sql


@pytest.fixture(scope="module")
def process_service(tiny_db):
    EXECUTION_CACHE.clear()
    service = QueryService(
        ServiceConfig(
            workers=2,
            queue_depth=16,
            timeout_s=120.0,
            executor="process",
            process_workers=2,
        ),
        db=tiny_db,
    )
    with service:
        yield service
    EXECUTION_CACHE.clear()


class TestConfigValidation:
    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            ServiceConfig(executor="fibers")

    def test_plan_cache_size_must_be_positive(self):
        with pytest.raises(ValueError, match="plan_cache_size"):
            ServiceConfig(plan_cache_size=0)


class TestProcessExecutor:
    def test_submit_runs_in_pool(self, process_service):
        response = process_service.submit(projection_sql(2))
        assert response["status"] == "ok", response
        assert response["tuples"] > 0
        stats = process_service.stats_snapshot()
        assert stats["executor"] == "process"
        assert stats["process_pool"]["n_workers"] == 2
        assert stats["process_pool"]["queries_run"] >= 1

    def test_results_match_thread_executor(self, tiny_db, process_service):
        """Same SQL, same engine, both executors: the responses must
        agree bit for bit (the pool merge is exact)."""
        EXECUTION_CACHE.clear()
        statements = [projection_sql(3), JOIN_SQL["large"], TPCH_SQL["Q6"]]
        thread_service = QueryService(
            ServiceConfig(workers=2, queue_depth=16, timeout_s=120.0),
            db=tiny_db,
        )
        with thread_service:
            for sql in statements:
                for engine in ("Typer", "DBMS C"):
                    via_pool = process_service.submit(sql, engine=engine)
                    via_thread = thread_service.submit(sql, engine=engine)
                    assert via_pool["status"] == via_thread["status"] == "ok"
                    assert via_pool["value"] == via_thread["value"], (sql, engine)
                    assert via_pool["tuples"] == via_thread["tuples"]

    def test_tpch_queries_run_morsel_parallel(self, process_service):
        for query in ("Q1", "Q6", "Q9", "Q18"):
            response = process_service.submit(TPCH_SQL[query])
            assert response["status"] == "ok", (query, response)

    def test_pool_survives_across_requests(self, process_service):
        """The pool is persistent: repeated submissions reuse the same
        worker processes instead of respawning (counted per query)."""
        before = process_service.stats_snapshot()["process_pool"]["queries_run"]
        for _ in range(3):
            assert process_service.submit(projection_sql(1))["status"] == "ok"
        after = process_service.stats_snapshot()["process_pool"]["queries_run"]
        assert after == before + 3
        assert process_service.pool().stats()["worker_dbgen_runs"] == 0

    def test_stop_closes_pool(self, tiny_db):
        EXECUTION_CACHE.clear()
        service = QueryService(
            ServiceConfig(executor="process", process_workers=1, timeout_s=120.0),
            db=tiny_db,
        )
        with service:
            assert service.submit(projection_sql(1))["status"] == "ok"
            pool = service._pool
            assert pool is not None
        assert service._pool is None
        with pytest.raises(RuntimeError, match="closed"):
            pool.run_query(None, "run_q1")


class TestPlanCacheLru:
    @pytest.fixture
    def service(self, tiny_db):
        EXECUTION_CACHE.clear()
        service = QueryService(
            ServiceConfig(workers=2, queue_depth=16, plan_cache_size=2),
            db=tiny_db,
        )
        with service:
            yield service
        EXECUTION_CACHE.clear()

    def test_capacity_is_enforced(self, service):
        for degree in (1, 2, 3, 4):
            assert service.submit(projection_sql(degree))["status"] == "ok"
        cache = service.stats_snapshot()["plan_cache"]
        assert cache["capacity"] == 2
        assert cache["entries"] == 2
        assert cache["misses"] == 4
        assert cache["evictions"] == 2

    def test_lru_keeps_recent_plans(self, service):
        service.submit(projection_sql(1))
        service.submit(projection_sql(2))
        service.submit(projection_sql(1))  # refresh 1 -> evicting drops 2
        service.submit(projection_sql(3))
        before = service.stats_snapshot()["plan_cache"]
        service.submit(projection_sql(1))  # still cached
        after = service.stats_snapshot()["plan_cache"]
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]

    def test_hits_count_repeats_and_formatting(self, service):
        sql = projection_sql(2)
        service.submit(sql)
        service.submit(sql)
        service.submit("  " + sql.replace(" ", "   "))  # same normalized text
        cache = service.stats_snapshot()["plan_cache"]
        assert cache["hits"] >= 2
        assert cache["entries"] == 1
