"""The Section 10 multi-core study.

Scales the projection and the large join across the 14 cores of one
Broadwell socket and prints the Figure 29/30 bandwidth curves: the
sequential-scan workload saturates the socket (wasting cores beyond
the saturation point) while the join leaves the random-access
bandwidth idle.

Run:  python examples/multicore_scaling.py [scale_factor]
"""

import sys

from repro import MicroArchProfiler, TectorwiseEngine, TyperEngine, generate_database
from repro.core import THREAD_SWEEP, MulticoreModel
from repro.analysis import bandwidth_chart


def curve_section(model, engines, results, title, pattern):
    print(f"\n=== {title} ===")
    roof = model.profiler.spec.bandwidth.per_socket(pattern)
    for engine in engines:
        result = results[engine.name]
        curve = model.bandwidth_curve(engine, result)
        saturation = model.saturation_point(curve, roof)
        label = f"saturates at {saturation} threads" if saturation else "never saturates"
        print(f"\n{engine.name} ({label}):")
        print(
            bandwidth_chart(
                [(f"{threads:2d} threads", curve[threads]) for threads in THREAD_SWEEP],
                max_gbps=roof,
            )
        )


def main() -> None:
    scale_factor = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    print(f"Generating TPC-H at SF {scale_factor} ...")
    db = generate_database(
        scale_factor=scale_factor, seed=42,
        tables=("lineitem", "orders", "supplier", "nation"),
    )
    profiler = MicroArchProfiler()
    model = MulticoreModel(profiler)
    engines = (TyperEngine(), TectorwiseEngine())

    projections = {engine.name: engine.run_projection(db, 4) for engine in engines}
    curve_section(model, engines, projections,
                  "Figure 29: projection p4 socket bandwidth", "sequential")

    joins = {engine.name: engine.run_join(db, "large") for engine in engines}
    curve_section(model, engines, joins,
                  "Figure 30: large join socket bandwidth", "random")

    print("\nSection 10 headroom: SIMD and hyper-threading for the join")
    typer_join = joins["Typer"]
    plain = model.run("Typer", typer_join, 14)
    boosted = model.run("Typer", typer_join, 14, hyper_threading=True)
    print(f"  Typer  14 threads          : {plain.bandwidth_gbps:5.1f} GB/s")
    print(f"  Typer  14 threads + HT     : {boosted.bandwidth_gbps:5.1f} GB/s")
    tectorwise = TectorwiseEngine()
    simd_join = tectorwise.run_join(db, "large", simd=True)
    simd = model.run(tectorwise, simd_join, 14)
    print(f"  Tectorwise 14 threads +SIMD: {simd.bandwidth_gbps:5.1f} GB/s "
          f"(roof {simd.socket_bandwidth.max_gbps:.0f} GB/s)")
    print("  -> substantial, but the compute/memory imbalance persists.")


if __name__ == "__main__":
    main()
