"""Regenerate every table and figure of the paper in one run.

Walks the experiment registry (DESIGN.md's per-experiment index),
executes each experiment on shared databases and writes a full text
report.  This is the batch equivalent of
``python -m repro.analysis run all``.

Run:  python examples/regenerate_paper.py [scale_factor] [output.txt]
"""

import sys
import time

from repro.analysis import EXPERIMENTS
from repro.tpch import generate_database


def main() -> None:
    scale_factor = float(sys.argv[1]) if len(sys.argv) > 1 else 0.2
    output_path = sys.argv[2] if len(sys.argv) > 2 else "paper_report.txt"

    print(f"Generating TPC-H at SF {scale_factor} ...")
    db = generate_database(scale_factor=scale_factor, seed=42)

    sections = []
    for experiment_id, spec in EXPERIMENTS.items():
        started = time.perf_counter()
        figure = spec.execute(db=db)
        elapsed = time.perf_counter() - started
        print(f"  {experiment_id:15s} {spec.title:45s} [{elapsed:5.1f}s]")
        block = [figure.to_text()]
        if spec.paper_claim:
            block.append(f"paper claim: {spec.paper_claim}")
        sections.append("\n".join(block))

    report = (
        f"Reproduction report -- Micro-architectural Analysis of OLAP\n"
        f"TPC-H scale factor {scale_factor}\n\n" + "\n\n".join(sections) + "\n"
    )
    with open(output_path, "w") as fh:
        fh.write(report)
    print(f"\nWrote {output_path} ({len(sections)} experiments).")


if __name__ == "__main__":
    main()
