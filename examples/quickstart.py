"""Quickstart: profile one query the way the paper profiles it.

Generates a small TPC-H database, runs the projection micro-benchmark
of degree four on the compiled engine (Typer), and prints the VTune-
style Top-Down breakdown plus bandwidth utilisation.

Run:  python examples/quickstart.py [scale_factor]

See also examples/sql_quickstart.py for driving the same engines
through the SQL frontend (parse -> plan -> execute on all four), and
``python -m repro.serve`` for the concurrent query service.
"""

import sys

from repro import MicroArchProfiler, TyperEngine, generate_database
from repro.analysis import cycle_chart


def main() -> None:
    scale_factor = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    print(f"Generating TPC-H at SF {scale_factor} ...")
    db = generate_database(scale_factor=scale_factor, seed=42, tables=("lineitem",))
    print(f"  lineitem: {db['lineitem'].n_rows:,} rows")

    engine = TyperEngine()
    profiler = MicroArchProfiler()  # the paper's Broadwell server
    report = profiler.run(engine, "run_projection", db, 4)

    print(f"\n{report.label} on {profiler.spec.name}")
    print(f"  result checksum : {engine.run_projection(db, 4).value:,.2f}")
    print(f"  response time   : {report.response_time_ms:8.2f} ms")
    print(f"  instructions    : {report.work.instructions_per_tuple():8.2f} per tuple")
    print(f"  stall cycles    : {report.stall_ratio:8.1%}")
    print(f"  bandwidth       : {report.bandwidth.gbps:8.2f} GB/s "
          f"(max {report.bandwidth.max_gbps:.0f} GB/s)")

    print("\nCPU cycles breakdown (Figure 3 style):")
    print(cycle_chart([(report.workload, report.cycle_shares())]))

    print("\nStall cycles breakdown (Figure 4 style):")
    print(cycle_chart([(report.workload, report.stall_shares())]))


if __name__ == "__main__":
    main()
