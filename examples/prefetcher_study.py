"""The Section 9 hardware-prefetcher study.

Flips the four prefetchers (L1/L2 x next-line/streamer) the way the
paper flips MSR 0x1A4 bits, profiles Typer's projection under each of
the six configurations of Figure 26, and cross-validates the analytic
coverage numbers against the trace-driven cache/prefetcher simulator.

Run:  python examples/prefetcher_study.py [scale_factor]
"""

import sys

from repro import BROADWELL, MicroArchProfiler, PrefetcherConfig, TyperEngine, generate_database
from repro.core import ExecutionContext, TraceSimulator


def main() -> None:
    scale_factor = float(sys.argv[1]) if len(sys.argv) > 1 else 0.2
    print(f"Generating TPC-H at SF {scale_factor} ...")
    db = generate_database(scale_factor=scale_factor, seed=42, tables=("lineitem", "orders"))
    profiler = MicroArchProfiler()
    engine = TyperEngine()
    projection = engine.run_projection(db, 4)
    join = engine.run_join(db, "large")

    print("\nFigure 26: projection p4 under the six prefetcher configs")
    header = f"{'config':14s} {'response':>10s} {'dcache':>10s} {'vs off':>8s} {'coverage':>9s}"
    print(header)
    print("-" * len(header))
    baseline = None
    for name, config in PrefetcherConfig.figure26_configs().items():
        report = profiler.profile(engine, projection, ExecutionContext(prefetchers=config))
        if baseline is None:
            baseline = report.response_time_ms
        print(
            f"{name:14s} {report.response_time_ms:8.2f}ms "
            f"{report.time_breakdown_ms()['dcache']:8.2f}ms "
            f"{report.response_time_ms / baseline:7.2f}x "
            f"{config.sequential_coverage():8.0%}"
        )

    print("\nSection 9: the random-access-heavy join barely benefits:")
    for name in ("All disabled", "All enabled"):
        config = PrefetcherConfig.figure26_configs()[name]
        report = profiler.profile(engine, join, ExecutionContext(prefetchers=config))
        print(f"  {name:14s} large join: {report.response_time_ms:8.2f} ms")

    print("\nTrace-driven validation (structural cache + prefetcher simulation")
    print("over a sampled sequential scan; measures coverage = hidden misses):")
    for name, config in PrefetcherConfig.figure26_configs().items():
        simulator = TraceSimulator(BROADWELL, config)
        measured = simulator.sequential_coverage(n_accesses=30_000)
        print(f"  {name:14s} trace-measured coverage: {measured:6.1%}  "
              f"(analytic table: {config.sequential_coverage():6.1%})")


if __name__ == "__main__":
    main()
