"""SQL quickstart: parse -> plan -> execute on all four engines.

Takes a SQL statement of the documented dialect (default: TPC-H Q6),
shows its tokenized/normalized form and logical plan, then executes it
on every engine and cross-checks that the SQL path returns exactly the
hand-wired path's result.  Finishes with a selection statement whose
thresholds are generated from the data (``selection_sql``).

Run:  python examples/sql_quickstart.py ["SELECT ..."] [scale_factor]
"""

import sys

from repro import generate_database
from repro.engines import ALL_ENGINES
from repro.sql import compile_sql, normalize_sql, plan_sql
from repro.sql.plan import to_text
from repro.tpch.sql import TPCH_SQL, selection_sql


def show(sql: str, db) -> None:
    print("SQL:")
    print(f"  {normalize_sql(sql)}")
    bound = compile_sql(sql)
    print("\nLogical plan:")
    print(to_text(plan_sql(sql), indent=1))
    print(f"\nLowered to: {bound}\n")
    print(f"{'engine':<12} {'value':<24} {'tuples':>10}  cached")
    for engine_cls in ALL_ENGINES:
        engine = engine_cls()
        result = bound.execute(engine, db)
        value = result.value
        text = f"{value:,.2f}" if isinstance(value, float) else str(value)
        print(f"{engine_cls.name:<12} {text:<24} {result.tuples:>10,}  "
              f"{bool(result.details.get('cached'))}")
    print()


def main() -> None:
    argv = sys.argv[1:]
    sql = argv[0] if argv and not _is_number(argv[0]) else TPCH_SQL["Q6"]
    sf_args = [a for a in argv if _is_number(a)]
    scale_factor = float(sf_args[0]) if sf_args else 0.01

    print(f"Generating TPC-H at SF {scale_factor} ...\n")
    db = generate_database(scale_factor=scale_factor, seed=42)
    show(sql, db)

    print("=" * 72)
    print("Selection micro-benchmark with data-derived thresholds:\n")
    show(selection_sql(0.5, db), db)


def _is_number(text: str) -> bool:
    try:
        float(text)
    except ValueError:
        return False
    return True


if __name__ == "__main__":
    main()
