"""Profile the four TPC-H queries the paper studies (Section 6).

Q1 (low-cardinality group by), Q6 (highly selective filter), Q9
(join-intensive) and Q18 (high-cardinality group by) on Typer and
Tectorwise, with the Figure 15/16-style breakdowns and the bandwidth
observations.

Run:  python examples/tpch_profile.py [scale_factor]
"""

import sys

from repro import MicroArchProfiler, TectorwiseEngine, TyperEngine, generate_database
from repro.tpch import QUERY_SPECS
from repro.workloads import run_tpch
from repro.analysis import cycle_chart, stall_chart


def main() -> None:
    scale_factor = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    print(f"Generating TPC-H at SF {scale_factor} ...")
    db = generate_database(scale_factor=scale_factor, seed=42)
    profiler = MicroArchProfiler()

    print("Running Q1, Q6, Q9, Q18 on Typer and Tectorwise "
          "(results verified against the reference implementations) ...")
    reports = run_tpch(db, (TyperEngine(), TectorwiseEngine()), profiler)

    for query_id, spec in QUERY_SPECS.items():
        print(f"\n{query_id}: {spec.category}")
        for engine, per_query in reports.items():
            report = per_query[query_id]
            print(
                f"  {engine:12s} {report.response_time_ms:9.2f} ms  "
                f"stall {report.stall_ratio:5.1%}  "
                f"dominant stall: {report.breakdown.dominant_stall():11s}  "
                f"bw {report.bandwidth.gbps:5.2f} GB/s"
            )

    print("\nCPU cycles breakdown (Figure 15):")
    print(
        cycle_chart(
            [
                (f"{engine[:2]} {query_id}", per_query[query_id].cycle_shares())
                for engine, per_query in reports.items()
                for query_id in ("Q1", "Q6", "Q9", "Q18")
            ]
        )
    )

    print("\nStall cycles breakdown (Figure 16):")
    print(
        stall_chart(
            [
                (f"{engine[:2]} {query_id}", per_query[query_id].stall_shares())
                for engine, per_query in reports.items()
                for query_id in ("Q1", "Q6", "Q9", "Q18")
            ]
        )
    )

    typer_q6 = reports["Typer"]["Q6"].bandwidth.gbps
    print(
        f"\nSection 6 bandwidth observation: only the scan-heavy Q6 on the "
        f"compiled engine pushes bandwidth up ({typer_q6:.1f} GB/s); the "
        f"hash-heavy queries stay low."
    )


if __name__ == "__main__":
    main()
