"""Compare all four profiled systems on one workload.

Reproduces the paper's core comparison (Sections 3 and 5): the two
commercial systems pay orders of magnitude more retired instructions,
while the high-performance engines stall on memory -- run the
projection micro-benchmark and the large hash join across DBMS R,
DBMS C, Typer and Tectorwise.

Run:  python examples/compare_engines.py [scale_factor]
"""

import sys

from repro import MicroArchProfiler, generate_database
from repro.engines import ALL_ENGINES
from repro.analysis import bandwidth_chart, cycle_chart


def show(title: str, reports) -> None:
    base = min(report.cycles for report in reports.values())
    print(f"\n=== {title} ===")
    header = f"{'engine':12s} {'response':>12s} {'vs best':>9s} {'stall':>7s} {'instr/tuple':>12s} {'GB/s':>6s}"
    print(header)
    print("-" * len(header))
    for name, report in reports.items():
        print(
            f"{name:12s} {report.response_time_ms:10.2f}ms "
            f"{report.cycles / base:8.1f}x {report.stall_ratio:6.1%} "
            f"{report.work.instructions_per_tuple():12.1f} "
            f"{report.bandwidth.gbps:6.2f}"
        )
    print("\nCPU cycle composition:")
    print(cycle_chart([(name, report.cycle_shares()) for name, report in reports.items()]))


def main() -> None:
    scale_factor = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    print(f"Generating TPC-H at SF {scale_factor} ...")
    db = generate_database(scale_factor=scale_factor, seed=42)
    profiler = MicroArchProfiler()
    engines = [engine_cls() for engine_cls in ALL_ENGINES]

    projection = {
        engine.name: profiler.run(engine, "run_projection", db, 4)
        for engine in engines
    }
    show("Projection, degree 4 (Figures 1-6)", projection)

    join = {
        engine.name: profiler.run(engine, "run_join", db, "large")
        for engine in engines
    }
    show("Large hash join: lineitem x orders (Figures 11-14)", join)

    print("\nSingle-core bandwidth (projection p4, vs the sequential roof):")
    print(
        bandwidth_chart(
            [(name, report.bandwidth.gbps) for name, report in projection.items()],
            max_gbps=profiler.spec.bandwidth.per_core_seq_gbps,
        )
    )


if __name__ == "__main__":
    main()
