"""The "opportunities" half of the paper's title, quantified.

Sweeps the what-if scenarios over the paper's workload archetypes and
prints the projected speedups: which hardware/software change would
actually move each workload.  The result mirrors the paper's
conclusions -- scans want bandwidth, joins want memory-level
parallelism or cache, selections want branch handling, aggregation
wants shorter dependency chains.

Run:  python examples/opportunities.py [scale_factor]
"""

import sys

from repro import MicroArchProfiler, TyperEngine, generate_database
from repro.core import SCENARIOS, WhatIfAnalyzer


def main() -> None:
    scale_factor = float(sys.argv[1]) if len(sys.argv) > 1 else 0.2
    print(f"Generating TPC-H at SF {scale_factor} ...")
    db = generate_database(scale_factor=scale_factor, seed=42)
    engine = TyperEngine()
    analyzer = WhatIfAnalyzer(MicroArchProfiler())

    workloads = {
        "projection p4 (scan)": engine.run_projection(db, 4),
        "selection 50% (branchy)": engine.run_selection(db, 0.5),
        "large join (random)": engine.run_join(db, "large"),
        "TPC-H Q1 (aggregation)": engine.run_q1(db),
    }

    names = list(SCENARIOS)
    header = f"{'scenario':26s}" + "".join(f"{label.split(' (')[0]:>16s}" for label in workloads)
    print(f"\nProjected speedups on {analyzer.profiler.spec.name} (Typer):")
    print(header)
    print("-" * len(header))
    sweeps = {
        label: analyzer.sweep(engine, result) for label, result in workloads.items()
    }
    for name in names:
        row = f"{name:26s}"
        for label in workloads:
            row += f"{sweeps[label][name].speedup:15.2f}x"
        print(row)

    print("\nBest opportunity per workload:")
    for label, results in sweeps.items():
        best = WhatIfAnalyzer.best_opportunity(results)
        print(
            f"  {label:26s} -> {best:26s} "
            f"({results[best].speedup:4.2f}x; {SCENARIOS[best].description.split('(')[0].strip()})"
        )


if __name__ == "__main__":
    main()
