"""Scale-factor study: where cache-residency crossovers fall.

The paper runs at SF 5 so working sets dwarf the caches; this study
sweeps the scale factor and shows the crossovers the machine model
predicts: the large join's hash table crossing the 35 MB L3 turns its
probes from L3 hits into DRAM misses, and the stall profile with it.
Useful for picking a scale factor when reproducing the paper's shapes.

Run:  python examples/scale_study.py [sf1 sf2 ...]
"""

import sys

from repro import BROADWELL, MicroArchProfiler, TyperEngine, generate_database

DEFAULT_SWEEP = (0.05, 0.2, 0.5, 1.0)


def main() -> None:
    scale_factors = (
        tuple(float(arg) for arg in sys.argv[1:]) if len(sys.argv) > 1 else DEFAULT_SWEEP
    )
    profiler = MicroArchProfiler()
    engine = TyperEngine()
    l3 = BROADWELL.l3.size_bytes / 1e6

    header = (
        f"{'SF':>5s} {'lineitem':>10s} {'HT (MB)':>8s} {'vs L3':>6s} "
        f"{'join stall':>11s} {'join dcache':>12s} {'join GB/s':>10s} {'proj stall':>11s}"
    )
    print(f"L3 = {l3:.0f} MB; watching the large join's hash table cross it:\n")
    print(header)
    print("-" * len(header))
    for scale_factor in scale_factors:
        db = generate_database(
            scale_factor=scale_factor, seed=42,
            tables=("lineitem", "orders"),
        )
        join = engine.run_join(db, "large")
        join_report = profiler.profile(engine, join)
        projection_report = profiler.run(engine, "run_projection", db, 4)
        ht_mb = join.details["hash_table_bytes"] / 1e6
        print(
            f"{scale_factor:5.2f} {db['lineitem'].n_rows:10,d} {ht_mb:8.1f} "
            f"{ht_mb / l3:5.1f}x {join_report.stall_ratio:10.1%} "
            f"{join_report.stall_shares()['dcache']:11.1%} "
            f"{join_report.bandwidth.gbps:10.2f} {projection_report.stall_ratio:10.1%}"
        )
    print(
        "\nThe join's stall ratio climbs as the hash table outgrows the L3 "
        "(the paper's SF 5 sits far beyond the crossover); the projection's "
        "profile is scale-free once the columns exceed the cache."
    )


if __name__ == "__main__":
    main()
