"""Operator-level drill-down of a TPC-H query.

Section 6's closing point: "we can evaluate micro-architectural
behavior of a given query by examining its individual operators."  This
example profiles Q9 and the large join operator by operator, showing
that the probes inside the query look like the join micro-benchmark and
the scan looks like the projection.

Run:  python examples/operator_drilldown.py [scale_factor]
"""

import sys

from repro import MicroArchProfiler, TyperEngine, generate_database
from repro.analysis import cycle_chart


def drill(profiler, engine, result, title: str) -> None:
    total = profiler.profile(engine, result)
    print(f"\n=== {title} ===")
    print(f"query total: {total.response_time_ms:8.2f} ms, "
          f"stall {total.stall_ratio:.1%}, dominant {total.breakdown.dominant_stall()}")
    reports = profiler.operator_reports(engine, result)
    header = f"{'operator':24s} {'time':>10s} {'share':>7s} {'stall':>7s} {'dominant':>12s} {'GB/s':>6s}"
    print(header)
    print("-" * len(header))
    total_ms = sum(report.response_time_ms for report in reports.values())
    for name, report in reports.items():
        print(
            f"{name:24s} {report.response_time_ms:8.2f}ms "
            f"{report.response_time_ms / total_ms:6.1%} {report.stall_ratio:6.1%} "
            f"{report.breakdown.dominant_stall():>12s} {report.bandwidth.gbps:6.2f}"
        )
    print("\nPer-operator cycle composition:")
    print(cycle_chart([(name, report.cycle_shares()) for name, report in reports.items()]))


def main() -> None:
    scale_factor = float(sys.argv[1]) if len(sys.argv) > 1 else 0.2
    print(f"Generating TPC-H at SF {scale_factor} ...")
    db = generate_database(scale_factor=scale_factor, seed=42)
    profiler = MicroArchProfiler()
    engine = TyperEngine()

    drill(profiler, engine, engine.run_join(db, "large"),
          "Large join micro-benchmark, by operator")
    drill(profiler, engine, engine.run_q9(db),
          "TPC-H Q9 (join-intensive), by operator")
    print(
        "\nSection 6 takeaway: Q9's probe operators carry the join "
        "micro-benchmark's Dcache profile; its scan carries the "
        "projection's bandwidth profile."
    )


if __name__ == "__main__":
    main()
