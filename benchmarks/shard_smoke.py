"""Sharded scatter-gather smoke + open-loop load benchmark (PR 10).

Two modes:

- default (CI): a fast correctness gate -- 2-shard bit-identity against
  the single-node oracle on all four engines, plus one injected shard
  kill on a replicated process cluster, asserting the failover still
  produces the oracle's bits and the labelled failover counter moved.
- ``--record``: an open-loop load generator against thread-spawn
  clusters of 1, 2 and 3 shards.  Arrivals are scheduled on a fixed
  Poisson-free (deterministic-interval) clock; latency is measured from
  the *scheduled* arrival, so coordinator queueing shows up honestly in
  the tail.  Records exact p50/p99/p999 from the sorted sample next to
  the coordinator's own histogram-interpolated quantiles, and a
  throughput-vs-shard-count curve, into ``BENCH_PR10.json``.

Honest context: scatter-gather fans one query out to N shard nodes.  On
a host with one real core (see the recorded ``cpus``) the shards time-
slice that core, so the curve records coordination overhead rather than
speedup -- the same caveat BENCH_PR3 recorded when its process
executors lost to the thread executor on a 1-cpu box.  The bit-identity
claims are hardware-independent; the throughput curve is not.

Usage::

    PYTHONPATH=src python benchmarks/shard_smoke.py            # CI gate
    PYTHONPATH=src python benchmarks/shard_smoke.py --record   # BENCH_PR10.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SCALE_FACTOR = 0.002
SEED = 7
ENGINES = ("Typer", "Tectorwise", "DBMS R", "DBMS C")


def _host_context() -> dict:
    import numpy as np

    try:
        git_sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        git_sha = None
    return {
        "git_sha": git_sha,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
    }


def _oracles(db):
    """Single-node oracle (value, tuples) per (query, engine)."""
    from repro.engines import engine_by_name
    from repro.serve import protocol
    from repro.sql import compile_sql
    from repro.tpch.sql import GROUPBY_SQL, TPCH_SQL

    queries = {
        "Q1": TPCH_SQL["Q1"],
        "Q6": TPCH_SQL["Q6"],
        "groupby": GROUPBY_SQL,
    }
    oracles = {}
    for name, sql in queries.items():
        bound = compile_sql(sql)
        for engine_name in ENGINES:
            result = bound.execute(engine_by_name(engine_name), db)
            oracles[(name, engine_name)] = (
                sql, protocol.jsonable(result.value), result.tuples
            )
    return oracles


def smoke(db) -> None:
    """The CI gate: bit-identity on 2 shards, then a real killed node."""
    from repro.shard.cluster import ShardCluster
    from repro.shard.coordinator import Coordinator
    from repro.shard.faults import FaultPlan

    oracles = _oracles(db)
    with ShardCluster(db, n_shards=2, mode="hash", spawn="thread") as cluster:
        coordinator = Coordinator(db, cluster)
        for (name, engine_name), (sql, value, tuples) in oracles.items():
            response = coordinator.execute(sql, engine=engine_name)
            assert response["status"] == "ok", (name, engine_name, response.get("error"))
            assert response["value"] == value, (name, engine_name)
            assert response["tuples"] == tuples, (name, engine_name)
        print(f"bit-identity: {len(oracles)} (query, engine) cells OK on 2 shards")

    sql, value, tuples = oracles[("Q6", "Typer")]
    with ShardCluster(
        db, n_shards=2, replicas=2, spawn="process", faults=True
    ) as cluster:
        coordinator = Coordinator(db, cluster, fault_plan=FaultPlan().kill(0))
        response = coordinator.execute(sql)
        assert response["status"] == "ok", response.get("error")
        assert response["value"] == value and response["tuples"] == tuples
        assert response["failovers"], "the injected kill must surface as a failover"
        counts = coordinator.metrics.snapshot()["repro_shard_failover_total"]["series"]
        assert counts.get(("0", "connection")) == 1.0, counts
        print(
            "fault injection: killed shard 0's primary mid-run, replica served "
            f"the same bits (failover reason {response['failovers'][0]['reason']!r})"
        )
    print("shard smoke OK")


def _exact_quantiles(latencies_s: list) -> dict:
    ordered = sorted(latencies_s)

    def pick(q: float) -> float:
        index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
        return ordered[index]

    return {
        "p50": round(pick(0.50), 4),
        "p99": round(pick(0.99), 4),
        "p999": round(pick(0.999), 4),
    }


def open_loop_run(coordinator, sql: str, rate_qps: float, n_requests: int) -> dict:
    """Open-loop load: arrivals on a fixed clock, latency measured from
    the scheduled arrival (coordinator queueing counts against the
    tail, as it would for a real client population)."""
    interval = 1.0 / rate_qps
    start = time.perf_counter() + 0.05
    latencies: list = []
    errors = [0]
    lock = threading.Lock()

    def client(index: int) -> None:
        scheduled = start + index * interval
        now = time.perf_counter()
        if now < scheduled:
            time.sleep(scheduled - now)
        response = coordinator.execute(sql)
        done = time.perf_counter()
        with lock:
            if response["status"] == "ok":
                latencies.append(done - scheduled)
            else:
                errors[0] += 1

    threads = [
        threading.Thread(target=client, args=(index,))
        for index in range(n_requests)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    assert errors[0] == 0, f"{errors[0]} requests failed"
    return {
        "offered_qps": rate_qps,
        "requests": n_requests,
        "achieved_qps": round(n_requests / elapsed, 2),
        "latency_s": _exact_quantiles(latencies),
    }


def record(db, output: Path, rate_qps: float, n_requests: int) -> dict:
    from repro.shard.cluster import ShardCluster
    from repro.shard.coordinator import Coordinator
    from repro.tpch.sql import TPCH_SQL

    sql = TPCH_SQL["Q6"]
    curve = {}
    for n_shards in (1, 2, 3):
        with ShardCluster(db, n_shards=n_shards, mode="hash", spawn="thread") as cluster:
            coordinator = Coordinator(db, cluster)
            coordinator.execute(sql)  # warm compile/engine/zone-map caches
            entry = open_loop_run(coordinator, sql, rate_qps, n_requests)
            entry["coordinator_histogram_latency_s"] = {
                name: round(value, 4)
                for name, value in coordinator.stats_snapshot()[
                    "latency_quantiles_s"
                ].get("route=scatter", {}).items()
            }
            curve[str(n_shards)] = entry
            print(f"{n_shards} shard(s): {entry}", flush=True)

    payload = {
        "pr": 10,
        **_host_context(),
        "note": (
            "open-loop load (latency from scheduled arrival) of Q6 over "
            "thread-spawn shard clusters at SF "
            f"{SCALE_FACTOR}.  'latency_s' is exact quantiles of the "
            "sorted sample; 'coordinator_histogram_latency_s' is the "
            "coordinator's own bucket-interpolated view of the same "
            "runs.  On a host where 'cpus' is 1 the shards time-slice "
            "one core, so the shard-count curve measures scatter-gather "
            "coordination overhead, not speedup -- the same real-core "
            "caveat BENCH_PR3 recorded when process executors lost to "
            "the thread executor on this class of box.  Bit-identity "
            "of sharded results is asserted separately by the smoke "
            "gate and tests/shard, and is hardware-independent."
        ),
        "scale_factor": SCALE_FACTOR,
        "query": "Q6",
        "throughput_vs_shard_count": curve,
    }
    output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--record", action="store_true",
                        help="run the open-loop load curve and write BENCH_PR10.json")
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_PR10.json"))
    parser.add_argument("--rate-qps", type=float, default=20.0,
                        help="offered open-loop arrival rate per cluster size")
    parser.add_argument("--requests", type=int, default=200,
                        help="requests per cluster size in --record mode")
    args = parser.parse_args(argv)

    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.tpch import generate_database

    db = generate_database(scale_factor=SCALE_FACTOR, seed=SEED)
    smoke(db)
    if args.record:
        record(db, Path(args.output), args.rate_qps, args.requests)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
