"""Figure 19: predication helps Tectorwise at every selectivity.

Regenerates experiment ``fig19`` of the registry (see DESIGN.md) and
checks the figure's headline shape.
"""


def test_fig19_predication_tectorwise_response(regenerate, bench_db):
    figure = regenerate("fig19", bench_db)
    for sel in (0.1, 0.5, 0.9):
        branched = figure.row_for(variant="branched", selectivity=sel)["response_ms"]
        predicated = figure.row_for(variant="predicated", selectivity=sel)["response_ms"]
        assert predicated < branched
