"""Plan-compilation smoke: compiled queries are bit-identical on both
executors and the chooser prices every route.

Compiles two of the queries that have no hand-wired template (Q5: a
six-table join pipeline; Q12: grouped sums with decoded keys), checks
that lowering actually fell back to the compiler, and asserts value
equality between the single-shot thread path and the process pool
(morsel partials merged through ExactSum units).  Also exercises the
chooser (a decision with all three routes priced) and the
``REPRO_COMPILE=0`` escape hatch (lowering must raise, not guess).
Run from CI as a real file (not a heredoc): the process pool uses the
spawn start method, which re-imports ``__main__`` and therefore needs
a path-backed script.

Usage::

    PYTHONPATH=src REPRO_EXEC_CACHE=0 python benchmarks/compile_smoke.py
"""

from __future__ import annotations

import os


def main() -> int:
    from repro.compile.chooser import choose
    from repro.core.parallel import WorkerPool
    from repro.engines import TectorwiseEngine, TyperEngine
    from repro.sql.api import compile_sql
    from repro.sql.errors import SqlError
    from repro.tpch import generate_database
    from repro.tpch.sql import EXTENDED_TPCH_SQL

    db = generate_database(scale_factor=0.01, seed=7)
    engine = TyperEngine()

    routes = set()
    with WorkerPool(db, n_workers=2) as pool:
        for qid in ("Q5", "Q12"):
            bound = compile_sql(EXTENDED_TPCH_SQL[qid])
            assert bound.method == "run_compiled", (qid, bound.method)

            single = engine.run_compiled(db, bound.plan)
            pooled = pool.run_query(engine, "run_compiled", plan=bound.plan)
            assert pooled.value == single.value, qid
            assert pooled.tuples == single.tuples, qid
            assert (
                pooled.details["exact_totals"] == single.details["exact_totals"]
            ), qid

            decision = choose(db, bound)
            assert sorted(decision["predicted_cycles"]) == sorted(
                ("Typer", "Tectorwise", "compiled")
            ), qid
            routes.add(decision["chosen"])

    # A second engine style must agree bitwise on the compiled path.
    plan = compile_sql(EXTENDED_TPCH_SQL["Q14"]).plan
    typer = TyperEngine().run_compiled(db, plan)
    tecto = TectorwiseEngine().run_compiled(db, plan)
    assert typer.value == tecto.value

    # The escape hatch: with the compiler off, lowering says why.
    os.environ["REPRO_COMPILE"] = "0"
    try:
        compile_sql(EXTENDED_TPCH_SQL["Q5"])
    except SqlError as error:
        assert "REPRO_COMPILE" in str(error)
    else:
        raise AssertionError("REPRO_COMPILE=0 must disable the fallback")
    finally:
        os.environ.pop("REPRO_COMPILE", None)

    print(
        "compiled == single-shot on thread and process executors "
        f"(Q5/Q12/Q14; chooser picked {sorted(routes)})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
