"""Section 10: every system peaks at fourteen threads.

Regenerates experiment ``sec10-speedup`` of the registry (see DESIGN.md) and
checks the result's headline shape.
"""


def test_sec10_speedup_curves(regenerate, bench_db):
    figure = regenerate("sec10-speedup", bench_db)
    for engine in ("Typer", "Tectorwise"):
        for query in ("Q1", "Q9"):
            speedups = {row["threads"]: row["speedup"] for row in figure.rows
                        if row["engine"] == engine and row["query"] == query}
            assert speedups[14] == max(speedups.values())
            assert speedups[14] > 4.0
