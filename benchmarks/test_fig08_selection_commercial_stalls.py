"""Figure 8: no major instruction-related stalls for the commercial systems.

Regenerates experiment ``fig08`` of the registry (see DESIGN.md) and
checks the figure's headline shape.
"""


def test_fig08_selection_commercial_stalls(regenerate, bench_db):
    figure = regenerate("fig08", bench_db)
    for row in figure.rows:
        assert row["stall_share_icache"] < 0.3
