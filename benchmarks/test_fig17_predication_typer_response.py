"""Figure 17: predication hurts Typer at 10% and helps at 50/90%.

Regenerates experiment ``fig17`` of the registry (see DESIGN.md) and
checks the figure's headline shape.
"""


def test_fig17_predication_typer_response(regenerate, bench_db):
    figure = regenerate("fig17", bench_db)
    def ms(variant, sel):
        return figure.row_for(variant=variant, selectivity=sel)["response_ms"]
    assert ms("predicated", 0.1) > ms("branched", 0.1)
    assert ms("predicated", 0.5) < ms("branched", 0.5)
    assert ms("predicated", 0.9) < ms("branched", 0.9)
