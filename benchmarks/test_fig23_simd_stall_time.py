"""Figure 23 (Skylake): SIMD raises Dcache stalls and cuts Execution stalls.

Regenerates experiment ``fig23`` of the registry (see DESIGN.md) and
checks the figure's headline shape.
"""


def test_fig23_simd_stall_time(regenerate, bench_db):
    figure = regenerate("fig23", bench_db)
    for case in ("Proj.", "Sel. 90%"):
        scalar = figure.row_for(case=case, variant="W/o SIMD")
        simd = figure.row_for(case=case, variant="W/ SIMD")
        assert simd["normalized_dcache"] >= scalar["normalized_dcache"] * 0.95
        assert simd["normalized_execution"] <= scalar["normalized_execution"]
