"""Figure 27: multi-core TPC-H breakdowns keep Q1 as the most Retiring-heavy query.

Regenerates experiment ``fig27`` of the registry (see DESIGN.md) and
checks the figure's headline shape.
"""


def test_fig27_multicore_tpch_cycles(regenerate, bench_db):
    figure = regenerate("fig27", bench_db)
    for engine in ("Typer", "Tectorwise"):
        q1 = figure.row_for(engine=engine, query="Q1")["share_retiring"]
        for query in ("Q6", "Q9", "Q18"):
            assert q1 >= figure.row_for(engine=engine, query=query)["share_retiring"]
