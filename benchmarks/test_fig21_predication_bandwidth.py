"""Figure 21: predication raises bandwidth; Typer high and stable, Tectorwise peaks at 50%.

Regenerates experiment ``fig21`` of the registry (see DESIGN.md) and
checks the figure's headline shape.
"""


def test_fig21_predication_bandwidth(regenerate, bench_db):
    figure = regenerate("fig21", bench_db)
    typer = [figure.row_for(engine="Typer", selectivity=s, variant="predicated")["bandwidth_gbps"] for s in (0.1, 0.5, 0.9)]
    assert max(typer) - min(typer) < 0.5 and min(typer) >= 7.0
    tw = {s: figure.row_for(engine="Tectorwise", selectivity=s, variant="predicated")["bandwidth_gbps"] for s in (0.1, 0.5, 0.9)}
    assert tw[0.5] >= tw[0.1] and tw[0.5] > tw[0.9]
