"""Figure 22 (Skylake): SIMD cuts response via a 70-87% Retiring-time drop.

Regenerates experiment ``fig22`` of the registry (see DESIGN.md) and
checks the figure's headline shape.
"""


def test_fig22_simd_response_time(regenerate, bench_db):
    figure = regenerate("fig22", bench_db)
    for case in ("Proj.", "Sel. 50%"):
        with_simd = figure.row_for(case=case, variant="W/ SIMD")
        assert with_simd["normalized_response"] < 1.0
        assert with_simd["normalized_retiring"] < 0.4
