"""Figure 30: the large join leaves the socket's random bandwidth underutilised.

Regenerates experiment ``fig30`` of the registry (see DESIGN.md) and
checks the figure's headline shape.
"""


def test_fig30_multicore_join_bandwidth(regenerate, join_db):
    figure = regenerate("fig30", join_db)
    for engine in ("Typer", "Tectorwise"):
        assert figure.row_for(engine=engine, threads=14)["bandwidth_gbps"] < 0.95 * 60.0
