"""Pruning-equivalence smoke: pruned execution is bit-identical to the
full scan on both executors.

Builds a shipdate-clustered twin of a small TPC-H database, checks
that the zone-map planner actually prunes chunks for Q6 and a 2%
selection, and asserts value/tuples/work equality between the pruned
thread path, the morsel-parallel process pool, and the single-shot
baseline.  Run from CI as a real file (not a heredoc): the process
pool uses the spawn start method, which re-imports ``__main__`` and
therefore needs a path-backed script.

Usage::

    PYTHONPATH=src REPRO_EXEC_CACHE=0 python benchmarks/pruning_smoke.py
"""

from __future__ import annotations

import numpy as np


def main() -> int:
    from repro.core import pruning
    from repro.core.parallel import WorkerPool
    from repro.engines import TectorwiseEngine, TyperEngine
    from repro.storage import ColumnTable, Database
    from repro.tpch import generate_database

    base = generate_database(scale_factor=0.01, seed=7)
    twin = Database(
        name=f"{base.name}-clustered", scale_factor=base.scale_factor
    )
    for name in base.table_names:
        table = base.table(name)
        cols = {c: np.asarray(table[c]) for c in table.column_names}
        if name == "lineitem":
            order = np.argsort(cols["l_shipdate"], kind="stable")
            cols = {c: v[order] for c, v in cols.items()}
        twin.add_table(ColumnTable(name, cols))

    engine = TyperEngine()
    for method, kwargs in (
        ("run_q6", {}),
        ("run_selection", {"selectivity": 0.02}),
    ):
        atoms = pruning.atoms_for(twin, method, kwargs)
        plan = pruning.compute_prune_plan(twin, atoms)
        assert plan is not None and plan.chunks_pruned > 0, method
        baseline = getattr(engine, method)(twin, **kwargs)
        pruned = pruning.execute_pruned(
            engine, twin, method, dict(kwargs), plan
        )
        assert pruned.value == baseline.value, method
        assert pruned.tuples == baseline.tuples, method
        assert pruned.work == baseline.work, method

    with WorkerPool(twin, n_workers=2) as pool:
        pooled = pool.run_query(TectorwiseEngine(), "run_q6")
    single = TectorwiseEngine().run_q6(twin)
    assert pooled.value == single.value
    assert pooled.work == single.work
    assert pooled.details["pruning"]["morsels_pruned"] > 0
    print(
        "pruned == unpruned on thread and process executors "
        f"({pooled.details['pruning']['morsels_pruned']} chunks pruned)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
