"""Table 1: Broadwell server parameters, with the MLC-derived rows.

Regenerates experiment ``table1`` of the registry (see DESIGN.md) and
checks the figure's headline shape.
"""


def test_table1_server_parameters(regenerate, bench_db):
    figure = regenerate("table1", bench_db)
    values = dict(zip(figure.column("parameter"), figure.column("value")))
    assert "12GB/s (sequential)" in values["Per-core bandwidth"]
    assert "(inclusive) 35MB" in values["L3 (shared)"]
