"""Figure 16: Q1 Execution-heavy; Q6 branch-bound on Tectorwise; Q9/Q18 Dcache-dominated.

Regenerates experiment ``fig16`` of the registry (see DESIGN.md) and
checks the figure's headline shape.
"""


def test_fig16_tpch_stalls(regenerate, bench_db):
    figure = regenerate("fig16", bench_db)
    assert figure.row_for(engine="Tectorwise", query="Q6")["stall_share_branch_misp"] >= 0.5
    for engine in ("Typer", "Tectorwise"):
        assert figure.row_for(engine=engine, query="Q9")["stall_share_dcache"] >= 0.5
        assert figure.row_for(engine=engine, query="Q1")["stall_share_execution"] >= 0.25
