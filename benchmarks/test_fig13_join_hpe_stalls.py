"""Figure 13: Dcache dominates the large join; Execution significant for small/medium.

Regenerates experiment ``fig13`` of the registry (see DESIGN.md) and
checks the figure's headline shape.
"""


def test_fig13_join_hpe_stalls(regenerate, join_db):
    figure = regenerate("fig13", join_db)
    for engine in ("Typer", "Tectorwise"):
        assert figure.row_for(engine=engine, size="large")["stall_share_dcache"] >= 0.6
        assert figure.row_for(engine=engine, size="small")["stall_share_execution"] >= 0.15
