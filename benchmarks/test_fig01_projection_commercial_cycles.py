"""Figure 1: projection CPU cycles for DBMS R (~50% Retiring) and DBMS C (Retiring-dominated).

Regenerates experiment ``fig01`` of the registry (see DESIGN.md) and
checks the figure's headline shape.
"""


def test_fig01_projection_commercial_cycles(regenerate, bench_db):
    figure = regenerate("fig01", bench_db)
    r4 = figure.row_for(engine="DBMS R", degree=4)
    c4 = figure.row_for(engine="DBMS C", degree=4)
    assert 0.3 <= r4["share_retiring"] <= 0.6
    assert c4["share_retiring"] >= 0.7
