"""Figure 14: random bandwidth well below the roof; commercial systems several times slower.

Regenerates experiment ``fig14`` of the registry (see DESIGN.md) and
checks the figure's headline shape.
"""


def test_fig14_join_bandwidth_response(regenerate, bench_db):
    figure = regenerate("fig14", bench_db)
    for engine in ("Typer", "Tectorwise"):
        row = figure.row_for(engine=engine)
        assert row["bandwidth_gbps"] < 0.8 * row["max_gbps"]
    assert figure.row_for(engine="DBMS R")["normalized_response"] > 4.0
