"""Rollup-routing smoke: routed execution is bit-identical to the base
scan on both executors.

Builds a shipdate-partitioned twin of a small TPC-H database with the
default lineitem rollup attached, checks that the router actually
routes Q1 / group-by / projection to the rollup, and asserts value
equality between the routed thread path, the process pool (which
routes parent-side), and the single-shot base-table baseline.  Also
exercises the reasoned-fallback path (Q6 has no rollup profile).  Run
from CI as a real file (not a heredoc): the process pool uses the
spawn start method, which re-imports ``__main__`` and therefore needs
a path-backed script.

Usage::

    PYTHONPATH=src REPRO_EXEC_CACHE=0 python benchmarks/rollup_smoke.py
"""

from __future__ import annotations


def main() -> int:
    from repro.core.parallel import WorkerPool
    from repro.engines import TectorwiseEngine, TyperEngine
    from repro.rollup import (
        PartitionSpec,
        build_and_attach,
        partitioned_database,
        route,
    )
    from repro.tpch import generate_database
    from repro.tpch.schema import DATE_1998_09_02

    base = generate_database(scale_factor=0.01, seed=7)
    db = partitioned_database(
        base, PartitionSpec("l_shipdate", (2300.0, DATE_1998_09_02 + 0.5))
    )
    rollup = build_and_attach(db)

    engine = TyperEngine()
    routed_rows = 0
    for method, kwargs in (
        ("run_q1", {}),
        ("run_groupby", {}),
        ("run_projection", {"degree": 2}),
    ):
        baseline = getattr(engine, method)(db, **kwargs)
        result, decision = route(db, engine, method, dict(kwargs))
        assert decision["reason"] == "routed", (method, decision["reason"])
        assert result.value == baseline.value, method
        routed_rows += decision["rows_read"]

    # Q6 has no rollup profile: the router must decline with a reason,
    # never guess.
    result, decision = route(db, engine, "run_q6", {})
    assert result is None and decision["reason"] == "unsupported-method"

    with WorkerPool(db, n_workers=2) as pool:
        pooled = pool.run_query(TectorwiseEngine(), "run_groupby")
    single = TectorwiseEngine().run_groupby(db)
    assert pooled.value == single.value
    assert pooled.details["rollup"]["reason"] == "routed"
    print(
        "routed == base on thread and process executors "
        f"({rollup.n_rows}-row rollup, {routed_rows} partial rows read "
        f"vs {db.table('lineitem').n_rows} base rows per scan)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
