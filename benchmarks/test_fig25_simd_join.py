"""Figure 25 (Skylake): SIMD join probe: response down, bandwidth up ~50%.

Regenerates experiment ``fig25`` of the registry (see DESIGN.md) and
checks the figure's headline shape.
"""


def test_fig25_simd_join(regenerate, join_db):
    figure = regenerate("fig25", join_db)
    simd = figure.row_for(variant="W/ SIMD")
    scalar = figure.row_for(variant="W/o SIMD")
    assert simd["normalized_response"] < 0.85
    assert simd["bandwidth_gbps"] >= 1.25 * scalar["bandwidth_gbps"]
