"""Benchmark fixtures: shared TPC-H databases.

``REPRO_SF`` controls the default scale factor (0.3 keeps the scanned
columns beyond the modelled L3).  The join-regime figures additionally
use an SF 1.0 database whose large-join hash table (~68 MB) exceeds the
L3 the way the paper's SF 5 setup does.

Both fixtures are served through the dbgen cache
(:mod:`repro.tpch.dbcache`): the first session generates and persists
each database under ``~/.cache/repro`` (override with
``REPRO_CACHE_DIR``), and every later session -- and the second of the
two fixtures within one session, when their parameters coincide --
memory-maps the persisted columns instead of regenerating them.
"""

from __future__ import annotations

import os

import pytest

from repro.tpch import generate_database

BENCH_SF = float(os.environ.get("REPRO_SF", "0.3"))
JOIN_SF = float(os.environ.get("REPRO_JOIN_SF", "1.0"))


@pytest.fixture(scope="session")
def bench_db():
    """Database for the scan/TPC-H/commercial experiments."""
    return generate_database(scale_factor=BENCH_SF, seed=42)


@pytest.fixture(scope="session")
def join_db():
    """Database whose large-join structures exceed the modelled L3."""
    return generate_database(
        scale_factor=max(JOIN_SF, BENCH_SF),
        seed=42,
        tables=("lineitem", "orders", "supplier", "nation", "partsupp"),
    )


@pytest.fixture
def regenerate(benchmark):
    """Run one registry experiment under pytest-benchmark and print the
    regenerated table/figure."""

    def run(experiment_id: str, db):
        from repro.analysis import EXPERIMENTS

        spec = EXPERIMENTS[experiment_id]
        figure = benchmark.pedantic(
            lambda: spec.execute(db=db), rounds=1, iterations=1, warmup_rounds=0
        )
        print()
        print(figure.to_text())
        if spec.paper_claim:
            print(f"paper: {spec.paper_claim}")
        assert figure.rows
        return figure

    return run
