"""Section 9 (omitted graphs): prefetcher findings agree on the other scan workloads.

Regenerates experiment ``sec9-extended`` of the registry (see DESIGN.md) and
checks the result's headline shape.
"""


def test_sec9_prefetchers_extended(regenerate, bench_db):
    figure = regenerate("sec9-extended", bench_db)
    for row in figure.rows:
        assert row["slowdown"] > 1.5
        assert row["dcache_cut"] > 0.5
