"""Figure 20: the predicated selection becomes Dcache/Execution-bound.

Regenerates experiment ``fig20`` of the registry (see DESIGN.md) and
checks the figure's headline shape.
"""


def test_fig20_predication_tectorwise_stalls(regenerate, bench_db):
    figure = regenerate("fig20", bench_db)
    for sel in (0.1, 0.5, 0.9):
        row = figure.row_for(variant="predicated", selectivity=sel)
        assert row["branch_misp_ms"] == 0.0
        assert row["dcache_ms"] + row["execution_ms"] > 0.0
