"""Figure 2: projection stall cycles; Dcache+Execution dominate DBMS R, no Icache problem.

Regenerates experiment ``fig02`` of the registry (see DESIGN.md) and
checks the figure's headline shape.
"""


def test_fig02_projection_commercial_stalls(regenerate, bench_db):
    figure = regenerate("fig02", bench_db)
    r4 = figure.row_for(engine="DBMS R", degree=4)
    assert r4["stall_share_dcache"] + r4["stall_share_execution"] > 0.6
    assert r4["stall_share_icache"] < 0.25
