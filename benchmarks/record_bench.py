"""Benchmark-trajectory recorder.

Measures the wall-clock metrics the performance PRs target and writes
them to ``BENCH_PR<n>.json`` at the repo root, so future PRs can
compare against a recorded trajectory instead of folklore:

- tier-1 suite seconds (one full ``pytest -x -q`` subprocess),
- cache-hierarchy replay throughput (events/s), batch kernels vs. the
  ``REPRO_REFERENCE_SIM=1`` per-event reference,
- gshare predictor throughput (events/s), batch vs. reference,
- figure regeneration rate (figures/minute) over the full registry,
- query-service throughput (queries/s) of a CPU-bound SQL mix on the
  thread executor vs. the morsel-parallel process executor at several
  worker counts (the execution cache is disabled for these runs so
  every query actually executes),
- compressed storage (PR 4): encode throughput over the lineitem
  columns, raw-vs-encoded bytes on the Q1/Q6 scan columns, and the
  measured end-to-end Q1/Q6 wall-clock on encoded vs raw databases,
- zone-map pruning (PR 6): end-to-end Q6 wall-clock with pruning on vs
  off over shipdate-clustered lineitem (raw and encoded twins) and the
  shuffled generator order, plus a selection selectivity sweep (pruned
  fraction and speedup per selectivity),
- rollup routing (PR 7): end-to-end wall-clock of rollup-subsumed
  aggregates (Q1, group-by, projection) answered from the
  pre-aggregated rollup vs the base-table scan on a partitioned SF>=1
  database, with bit-identity asserted on every routed value, plus the
  reasoned-fallback overhead on a non-subsumed query (Q6),
- code-domain aggregation (PR 8): end-to-end wall-clock of Q1,
  group-by and the degree-1 projection on raw arrays vs the encoded
  database with REPRO_ENCODED_AGG off vs on, bit-identity asserted on
  every leg, with the per-slot morph decision recorded,
- plan compilation (PR 9): end-to-end wall-clock of the six TPC-H
  queries that only run through the compiled kernel programs (Q3, Q5,
  Q10, Q12, Q14, Q19) with the chooser's per-route cycle predictions,
  compiled-vs-hand-wired latency on Q1/Q6 (bit-identity asserted),
  and chooser predicted-vs-measured route accuracy where all three
  routes are measurable.

Every record carries a uniform host-context stamp (git SHA, Python and
numpy versions, machine, cpu count), so recorded numbers are always
attributable to a commit and a box.

Usage::

    PYTHONPATH=src python benchmarks/record_bench.py [--output BENCH_PR6.json]
    PYTHONPATH=src python benchmarks/record_bench.py --skip-suite --skip-figures
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent


def _host_context() -> dict:
    """Uniform provenance stamp for every BENCH_PRn.json record."""
    try:
        git_sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        git_sha = None
    return {
        "git_sha": git_sha,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
    }


def _time_suite(repo_root: Path = REPO_ROOT) -> float:
    """One tier-1 run in a subprocess (the ROADMAP verify command)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(repo_root / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    start = time.perf_counter()
    completed = subprocess.run(
        [sys.executable, "-m", "pytest", "-x", "-q"],
        cwd=repo_root,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    elapsed = time.perf_counter() - start
    if completed.returncode != 0:
        raise SystemExit(f"tier-1 suite failed (exit {completed.returncode})")
    return elapsed


def _replay_events_per_second(reference: bool) -> dict[str, float]:
    from repro.hardware import BROADWELL, CacheHierarchy, PrefetcherConfig

    n = 100_000
    rng = np.random.default_rng(3)
    traces = {
        "sequential": 8 * np.arange(n, dtype=np.int64),
        "random": rng.integers(0, 1 << 26, n, dtype=np.int64),
    }
    env_key = "REPRO_REFERENCE_SIM"
    previous = os.environ.get(env_key)
    os.environ[env_key] = "1" if reference else "0"
    try:
        rates = {}
        for name, trace in traces.items():
            for config_name, config in (
                ("no_prefetch", PrefetcherConfig.all_disabled()),
                ("all_prefetch", PrefetcherConfig.all_enabled()),
            ):
                hierarchy = CacheHierarchy(BROADWELL, config)
                start = time.perf_counter()
                hierarchy.replay(trace)
                rates[f"{name}_{config_name}"] = n / (time.perf_counter() - start)
        return rates
    finally:
        if previous is None:
            os.environ.pop(env_key, None)
        else:
            os.environ[env_key] = previous


def _gshare_events_per_second(reference: bool) -> float:
    from repro.hardware.branch import GSharePredictor

    n = 300_000
    outcomes = np.random.default_rng(5).random(n) < 0.5
    env_key = "REPRO_REFERENCE_SIM"
    previous = os.environ.get(env_key)
    os.environ[env_key] = "1" if reference else "0"
    try:
        predictor = GSharePredictor()
        start = time.perf_counter()
        predictor.run(0x4F21, outcomes)
        return n / (time.perf_counter() - start)
    finally:
        if previous is None:
            os.environ.pop(env_key, None)
        else:
            os.environ[env_key] = previous


def _figures_per_minute(scale_factor: float) -> dict[str, float]:
    from repro.analysis.registry import EXPERIMENTS, run_experiment

    start = time.perf_counter()
    for experiment_id in EXPERIMENTS:
        run_experiment(experiment_id, scale_factor=scale_factor)
    elapsed = time.perf_counter() - start
    return {
        "figures": len(EXPERIMENTS),
        "seconds": elapsed,
        "figures_per_minute": len(EXPERIMENTS) / elapsed * 60.0,
        "scale_factor": scale_factor,
    }


def _service_mix() -> list[dict]:
    """A CPU-bound SQL mix: the heavy TPC-H queries plus the large join,
    round-robined over the four engines."""
    from repro.tpch.sql import GROUPBY_SQL, JOIN_SQL, TPCH_SQL

    statements = [
        TPCH_SQL["Q1"],
        TPCH_SQL["Q6"],
        TPCH_SQL["Q9"],
        TPCH_SQL["Q18"],
        JOIN_SQL["large"],
        GROUPBY_SQL,
    ]
    engines = ("Typer", "Tectorwise", "DBMS R", "DBMS C")
    return [
        {"sql": statements[i % len(statements)],
         "engine": engines[i % len(engines)]}
        for i in range(24)
    ]


def _service_queries_per_second(service, requests: list[dict]) -> dict:
    """Submit ``requests`` concurrently (one client thread each) and
    time the batch end to end."""
    import threading

    service.submit(requests[0]["sql"], engine=requests[0]["engine"])  # warm-up
    responses: list[dict] = []
    lock = threading.Lock()

    def _client(request: dict) -> None:
        response = service.submit(
            request["sql"], engine=request["engine"], timeout=600.0
        )
        with lock:
            responses.append(response)

    threads = [
        threading.Thread(target=_client, args=(request,))
        for request in requests
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    ok = sum(1 for response in responses if response.get("status") == "ok")
    if ok != len(requests):
        bad = next(r for r in responses if r.get("status") != "ok")
        raise SystemExit(f"service benchmark request failed: {bad}")
    return {
        "queries": len(requests),
        "seconds": round(elapsed, 3),
        "queries_per_second": round(len(requests) / elapsed, 3),
    }


def _parallel_service_throughput(scale_factor: float, worker_counts) -> dict:
    """Thread-executor service vs morsel-parallel process-executor
    service on the same database and SQL mix.

    The execution cache is disabled so every query executes; otherwise
    the repeated statements in the mix degenerate into memo lookups and
    both executors just measure cache latency.
    """
    from repro.serve.service import QueryService, ServiceConfig
    from repro.tpch.dbgen import generate_database

    requests = _service_mix()
    db = generate_database(scale_factor=scale_factor)
    base = dict(workers=4, queue_depth=max(32, len(requests)),
                timeout_s=600.0, scale_factor=scale_factor)

    env_key = "REPRO_EXEC_CACHE"
    previous = os.environ.get(env_key)
    os.environ[env_key] = "0"
    try:
        def run(config) -> dict:
            service = QueryService(config, db=db).start()
            try:
                return _service_queries_per_second(service, requests)
            finally:
                service.stop()

        record: dict = {
            "scale_factor": scale_factor,
            "statements": len(requests),
            "note": (
                "speedup_vs_thread reflects real cores only: on hosts "
                "with fewer cores than workers (see top-level 'cpus') "
                "the process executor pays IPC overhead with no "
                "parallelism to win, so ratios <= 1 are expected there"
            ),
            "thread_service": run(ServiceConfig(**base)),
            "process_service": {},
        }
        thread_qps = record["thread_service"]["queries_per_second"]
        for n_workers in worker_counts:
            entry = run(ServiceConfig(
                **base, executor="process", process_workers=n_workers
            ))
            entry["speedup_vs_thread"] = round(
                entry["queries_per_second"] / thread_qps, 3
            )
            record["process_service"][str(n_workers)] = entry
        return record
    finally:
        if previous is None:
            os.environ.pop(env_key, None)
        else:
            os.environ[env_key] = previous


def _compression_metrics(scale_factor: float) -> dict:
    """Encode throughput, byte reductions, and measured encoded-vs-raw
    query wall-clock (execution cache disabled so queries execute)."""
    import numpy as np

    from repro.engines import TyperEngine
    from repro.storage import ColumnTable, Database, encode_columns
    from repro.tpch.dbgen import generate_database

    env_key = "REPRO_EXEC_CACHE"
    previous = os.environ.get(env_key)
    os.environ[env_key] = "0"
    try:
        encoded_db = generate_database(scale_factor=scale_factor, seed=42)
        lineitem = encoded_db.table("lineitem")

        # Encode throughput over the raw lineitem arrays.
        raw_columns = {
            name: np.asarray(lineitem[name]) for name in lineitem.column_names
        }
        raw_bytes = sum(values.nbytes for values in raw_columns.values())
        start = time.perf_counter()
        encode_columns(raw_columns)
        encode_seconds = time.perf_counter() - start

        raw_db = Database(
            name=encoded_db.name, scale_factor=encoded_db.scale_factor
        )
        for name in encoded_db.table_names:
            table = encoded_db.table(name)
            raw_db.add_table(ColumnTable(
                name,
                {c: np.asarray(table[c]) for c in table.column_names},
            ))

        def scan_bytes(columns, encoded: bool) -> float:
            from repro.engines.morsel import (
                bytes_for_rows, encoded_bytes_for_rows,
            )

            table = (encoded_db if encoded else raw_db).table("lineitem")
            fn = encoded_bytes_for_rows if encoded else bytes_for_rows
            return fn(table, columns, 0, table.n_rows)

        q1_columns = ("l_shipdate", "l_returnflag", "l_linestatus",
                      "l_quantity", "l_extendedprice", "l_discount", "l_tax")
        q6_columns = ("l_shipdate", "l_discount", "l_quantity",
                      "l_extendedprice")

        def best_of(runner, repeats: int = 5) -> float:
            runner()  # warm decode caches and shared structures alike
            return min(
                (lambda s: (runner(), time.perf_counter() - s)[1])(
                    time.perf_counter()
                )
                for _ in range(repeats)
            )

        engine = TyperEngine()
        timings = {}
        aggregation_modes = {}
        for query, method in (("q1", engine.run_q1), ("q6", engine.run_q6)):
            aggregation_modes[query] = method(encoded_db).details.get(
                "encoded_agg",
                {"measures": [], "code_domain": 0, "decoded": 0},
            )
            raw_s = best_of(lambda m=method: m(raw_db))
            encoded_s = best_of(lambda m=method: m(encoded_db))
            timings[query] = {
                "engine": "Typer",
                "raw_seconds": round(raw_s, 4),
                "encoded_seconds": round(encoded_s, 4),
                "speedup": round(raw_s / encoded_s, 3),
            }

        return {
            "scale_factor": scale_factor,
            "note": (
                "speedups are single-core numpy wall-clock on this "
                "machine (see 'cpus'/'machine'); predicate kernels read "
                "1-2 byte codes instead of 8-byte values, and since "
                "PR 8 eligible aggregates also sum in the code domain "
                "('aggregation_modes' records the per-slot morph "
                "decision; the 'encoded_agg' section carries the "
                "before/after timings).  Q6 is predicate-dominated and "
                "shows the code-scan win; Q1 now wins too, by folding "
                "(returnflag, linestatus, quantity) codes into one "
                "bincount instead of exact-summing the decoded "
                "quantity column"
            ),
            "aggregation_modes": aggregation_modes,
            "encode_throughput": {
                "lineitem_mb": round(raw_bytes / 1e6, 1),
                "seconds": round(encode_seconds, 3),
                "mb_per_second": round(raw_bytes / 1e6 / encode_seconds, 1),
            },
            "lineitem_bytes": {
                "raw": lineitem.nbytes,
                "encoded": lineitem.encoded_nbytes,
                "reduction": round(lineitem.nbytes / lineitem.encoded_nbytes, 2),
            },
            "scan_bytes_per_tuple": {
                "q1": {
                    "raw": round(scan_bytes(q1_columns, False) / lineitem.n_rows, 2),
                    "encoded": round(scan_bytes(q1_columns, True) / lineitem.n_rows, 2),
                    "reduction": round(
                        scan_bytes(q1_columns, False) / scan_bytes(q1_columns, True), 2
                    ),
                },
                "q6": {
                    "raw": round(scan_bytes(q6_columns, False) / lineitem.n_rows, 2),
                    "encoded": round(scan_bytes(q6_columns, True) / lineitem.n_rows, 2),
                    "reduction": round(
                        scan_bytes(q6_columns, False) / scan_bytes(q6_columns, True), 2
                    ),
                },
            },
            "end_to_end": timings,
        }
    finally:
        if previous is None:
            os.environ.pop(env_key, None)
        else:
            os.environ[env_key] = previous


def _encoded_agg_metrics(scale_factor: float) -> dict:
    """Measured code-domain aggregation wins (execution cache disabled).

    Times each aggregation workload on Typer three ways: the raw twin
    (plain arrays, no codes anywhere), the encoded database with
    ``REPRO_ENCODED_AGG=0`` (codes feed predicates and group keys but
    every aggregate decodes first -- the pre-PR-8 configuration whose
    Q1 ran below 1x), and with the toggle on (eligible aggregates sum
    codes, not values).  Every leg is asserted bit-identical before
    timing, and each workload records its morph decision: which
    aggregate slots ran in the code domain and why the rest stayed
    decoded."""
    from repro.engines import TyperEngine
    from repro.storage import ColumnTable, Database
    from repro.tpch.dbgen import generate_database

    cache_key = "REPRO_EXEC_CACHE"
    agg_key = "REPRO_ENCODED_AGG"
    previous = {k: os.environ.get(k) for k in (cache_key, agg_key)}
    os.environ[cache_key] = "0"
    os.environ.pop(agg_key, None)  # default: toggle on
    try:
        encoded_db = generate_database(scale_factor=scale_factor, seed=42)
        raw_db = Database(
            name=encoded_db.name, scale_factor=encoded_db.scale_factor
        )
        for name in encoded_db.table_names:
            table = encoded_db.table(name)
            raw_db.add_table(ColumnTable(
                name,
                {c: np.asarray(table[c]) for c in table.column_names},
            ))

        def best_of(runner, repeats: int = 5) -> float:
            runner()  # warm decode caches and shared structures alike
            return min(
                (lambda s: (runner(), time.perf_counter() - s)[1])(
                    time.perf_counter()
                )
                for _ in range(repeats)
            )

        engine = TyperEngine()
        record: dict = {
            "scale_factor": scale_factor,
            "engine": "Typer",
            "note": (
                "single-core numpy wall-clock, execution cache off, "
                "best of 5 (see 'cpus'/'machine').  'decoded_agg' legs "
                "run the encoded database with REPRO_ENCODED_AGG=0.  "
                "On Q1 the code-domain path rebases each occupied "
                "(returnflag, linestatus, quantity) bincount cell once "
                "into ExactSum units; l_extendedprice is stored raw "
                "and disc_price/charge round per row, so those slots "
                "stay decoded -- 'aggregation_modes' says so per "
                "slot.  Every leg was asserted bit-identical before "
                "timing"
            ),
            "workloads": {},
        }
        for label, method, kwargs in (
            ("q1", "run_q1", {}),
            ("groupby", "run_groupby", {}),
            ("projection_p1", "run_projection", {"degree": 1}),
        ):
            run = getattr(engine, method)
            encoded_on = run(encoded_db, **kwargs)
            os.environ[agg_key] = "0"
            encoded_off = run(encoded_db, **kwargs)
            os.environ.pop(agg_key, None)
            raw = run(raw_db, **kwargs)
            assert encoded_on.value == encoded_off.value == raw.value, label

            on_s = best_of(lambda r=run, k=kwargs: r(encoded_db, **k))
            os.environ[agg_key] = "0"
            off_s = best_of(lambda r=run, k=kwargs: r(encoded_db, **k))
            os.environ.pop(agg_key, None)
            raw_s = best_of(lambda r=run, k=kwargs: r(raw_db, **k))

            record["workloads"][label] = {
                "raw_seconds": round(raw_s, 4),
                "decoded_agg_seconds": round(off_s, 4),
                "code_domain_seconds": round(on_s, 4),
                "speedup_vs_raw": round(raw_s / on_s, 3),
                "speedup_vs_decoded_agg": round(off_s / on_s, 3),
                "aggregation_modes": encoded_on.details.get("encoded_agg"),
            }
        return record
    finally:
        for key, value in previous.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _pruning_metrics(scale_factor: float) -> dict:
    """Measured zone-map pruning wins (execution cache disabled).

    Q6 end to end and a selection selectivity sweep, each over three
    twins of the same data: lineitem *clustered* on l_shipdate and kept
    raw (the favourable physical design for a hot uncompressed working
    set), the same clustered order *encoded* (dict/FOR/RLE), and the
    generator's *shuffled* order (the honest no-win case: full-range
    chunks decide nothing, pruning falls back to the normal scan).

    The raw-clustered twin carries the headline: its unpruned scan
    streams 8-byte values, so skipping chunks removes real work.  On
    the encoded twin the clustered predicate columns collapse into RLE
    runs whose compare kernels are already run-granular -- the unpruned
    scan is nearly free and pruning has little left to win, which the
    recorded ~1x ratios state honestly."""
    from repro.core import pruning
    from repro.engines import TyperEngine
    from repro.storage import ColumnTable, Database, encode_columns
    from repro.storage.encoding import compare_values
    from repro.tpch.dbgen import generate_database

    env_key = "REPRO_EXEC_CACHE"
    previous = os.environ.get(env_key)
    os.environ[env_key] = "0"
    try:
        shuffled_db = generate_database(scale_factor=scale_factor, seed=42)
        order = np.argsort(
            np.asarray(shuffled_db.table("lineitem")["l_shipdate"]),
            kind="stable",
        )

        def clustered_twin(suffix: str, encoded: bool) -> Database:
            twin = Database(
                name=f"{shuffled_db.name}-{suffix}",
                scale_factor=scale_factor,
            )
            for name in shuffled_db.table_names:
                table = shuffled_db.table(name)
                columns = {
                    c: np.asarray(table[c]) for c in table.column_names
                }
                if name == "lineitem":
                    columns = {c: v[order] for c, v in columns.items()}
                if encoded:
                    columns = encode_columns(columns)
                twin.add_table(ColumnTable(name, columns))
            return twin

        raw_db = clustered_twin("clustered-raw", encoded=False)
        encoded_db = clustered_twin("clustered-encoded", encoded=True)

        engine = TyperEngine()
        n_rows = shuffled_db.table("lineitem").n_rows

        def best_of(runner, repeats: int = 5) -> float:
            runner()  # warm shared structures / decode caches
            return min(
                (lambda s: (runner(), time.perf_counter() - s)[1])(
                    time.perf_counter()
                )
                for _ in range(repeats)
            )

        def qualifying_fraction(db, atoms) -> float:
            """True conjunctive selectivity, measured on the data (the
            engine result's ``tuples`` counts processed rows, not
            qualifying ones)."""
            table = db.table("lineitem")
            mask = np.ones(table.n_rows, dtype=bool)
            for atom in atoms:
                mask &= compare_values(
                    np.asarray(table[atom.column]), atom.op, atom.threshold
                )
            return float(np.count_nonzero(mask)) / table.n_rows

        def case(db, method: str, kwargs: dict) -> dict:
            atoms = pruning.atoms_for(db, method, kwargs)
            plan = pruning.compute_prune_plan(db, atoms)
            baseline = getattr(engine, method)(db, **kwargs)
            unpruned_s = best_of(lambda: getattr(engine, method)(db, **kwargs))
            if plan is not None and not plan.nothing_pruned:
                pruned = pruning.execute_pruned(engine, db, method, kwargs, plan)
                assert pruned.value == baseline.value, "pruning broke the result"
                assert pruned.tuples == baseline.tuples
                pruned_s = best_of(
                    lambda: pruning.execute_pruned(
                        engine, db, method, kwargs, plan)
                )
            else:
                pruned_s = unpruned_s  # runtime falls back to the normal path
            plan_s = best_of(
                lambda: pruning.compute_prune_plan(db, atoms), repeats=3)
            return {
                "selectivity": round(qualifying_fraction(db, atoms), 4),
                "morsels_total": plan.chunks_total if plan else 0,
                "morsels_pruned": plan.chunks_pruned if plan else 0,
                "rows_pruned": plan.rows_pruned if plan else 0,
                "plan_seconds": round(plan_s, 5),
                "unpruned_seconds": round(unpruned_s, 4),
                "pruned_seconds": round(pruned_s, 4),
                "speedup": round(unpruned_s / pruned_s, 3),
            }

        record: dict = {
            "scale_factor": scale_factor,
            "engine": "Typer",
            "note": (
                "single-core numpy wall-clock, execution cache off, "
                "best of 5 (see 'cpus'/'machine'); 'clustered_raw' "
                "sorts lineitem by l_shipdate and keeps raw arrays "
                "(headline: the scan streams 8-byte values, skipping "
                "chunks removes real work), 'clustered_encoded' encodes "
                "the same order (sorted predicate columns become RLE "
                "whose compares are run-granular, so the unpruned scan "
                "is already nearly free and ~1x is expected), "
                "'shuffled' is the generator order where full-range "
                "chunks prune nothing and the pruned path falls back to "
                "the normal scan (speedup 1.0 by construction, "
                "plan_seconds is the decision overhead)"
            ),
            "q6": {
                "clustered_raw": case(raw_db, "run_q6", {}),
                "clustered_encoded": case(encoded_db, "run_q6", {}),
                "shuffled": case(shuffled_db, "run_q6", {}),
            },
            "selection_sweep": {},
        }

        for selectivity in (0.01, 0.02, 0.05, 0.2, 0.5):
            kwargs = {"selectivity": selectivity}
            record["selection_sweep"][str(selectivity)] = {
                "clustered_raw": case(raw_db, "run_selection", kwargs),
                "clustered_encoded": case(encoded_db, "run_selection", kwargs),
                "shuffled": case(shuffled_db, "run_selection", kwargs),
            }

        # Model-side upper bound: a bandwidth-bound scan gains the full
        # byte ratio (hardware.memory.pruning_speedup).
        from repro.hardware import BROADWELL
        from repro.hardware.memory import MemorySystem

        plan = pruning.compute_prune_plan(
            raw_db, pruning.atoms_for(raw_db, "run_q6", {})
        )
        summary = plan.summary(raw_db, "run_q6")
        table = raw_db.table("lineitem")
        itemsize = sum(
            table.column(c).itemsize
            for c in pruning.METHOD_SCAN_COLUMNS["run_q6"]
        )
        total = n_rows * itemsize
        record["q6"]["model_upper_bound"] = round(
            MemorySystem(BROADWELL).pruning_speedup(
                total, total - summary["bytes_pruned"]
            ),
            3,
        )
        return record
    finally:
        if previous is None:
            os.environ.pop(env_key, None)
        else:
            os.environ[env_key] = previous


def _rollup_metrics(scale_factor: float) -> dict:
    """Measured rollup-routing wins (execution cache disabled).

    Builds a shipdate-partitioned twin of the SF>=1 database with the
    default flag/status lineitem rollup attached, then times each
    rollup-subsumed workload end to end on the base path vs the routed
    path.  Every routed value is asserted bit-identical to the base
    scan before timing.  The fallback entry times the router's decline
    on a non-subsumed query (Q6) to show the routing attempt costs
    noise relative to the scan it precedes."""
    from repro.engines import TyperEngine
    from repro.rollup import (
        PartitionSpec, build_and_attach, partitioned_database, route,
    )
    from repro.tpch.dbgen import generate_database
    from repro.tpch.schema import DATE_1998_09_02

    env_key = "REPRO_EXEC_CACHE"
    previous = os.environ.get(env_key)
    os.environ[env_key] = "0"
    try:
        base_db = generate_database(scale_factor=scale_factor, seed=42)

        start = time.perf_counter()
        db = partitioned_database(
            base_db,
            PartitionSpec("l_shipdate", (2300.0, DATE_1998_09_02 + 0.5)),
        )
        partition_seconds = time.perf_counter() - start
        start = time.perf_counter()
        rollup = build_and_attach(db)
        build_seconds = time.perf_counter() - start
        lineitem = db.table("lineitem")

        def best_of(runner, repeats: int = 5) -> float:
            runner()  # warm shared structures / decode caches
            return min(
                (lambda s: (runner(), time.perf_counter() - s)[1])(
                    time.perf_counter()
                )
                for _ in range(repeats)
            )

        engine = TyperEngine()
        record: dict = {
            "scale_factor": scale_factor,
            "engine": "Typer",
            "note": (
                "single-core numpy wall-clock, execution cache off, "
                "best of 5 (see 'cpus'/'machine'); routed queries read "
                "the pre-aggregated exact partials instead of scanning "
                "lineitem, and every routed value was asserted "
                "bit-identical to the base scan before timing.  The "
                "fallback entry shows the router declining Q6 "
                "(no rollup profile) costs microseconds next to the "
                "scan that follows"
            ),
            "build": {
                "partition_seconds": round(partition_seconds, 3),
                "rollup_build_seconds": round(build_seconds, 3),
                "rollup_rows": rollup.n_rows,
                "rollup_bytes": rollup.nbytes,
                "base_rows": lineitem.n_rows,
                "base_bytes": lineitem.nbytes,
                "size_ratio": round(lineitem.nbytes / rollup.nbytes, 1),
            },
            "routed": {},
        }

        for label, method, kwargs in (
            ("q1", "run_q1", {}),
            ("groupby", "run_groupby", {}),
            ("projection_p2", "run_projection", {"degree": 2}),
        ):
            baseline = getattr(engine, method)(db, **kwargs)
            routed, decision = route(db, engine, method, dict(kwargs))
            assert decision["reason"] == "routed", (method, decision)
            assert routed.value == baseline.value, method
            base_s = best_of(
                lambda m=method, k=kwargs: getattr(engine, m)(db, **k)
            )
            routed_s = best_of(
                lambda m=method, k=kwargs: route(db, engine, m, dict(k))
            )
            record["routed"][label] = {
                "rows_read": decision["rows_read"],
                "base_rows_avoided": decision["base_rows_avoided"],
                "bytes_read": decision["bytes_read"],
                "base_bytes_avoided": decision["base_bytes_avoided"],
                "base_seconds": round(base_s, 4),
                "routed_seconds": round(routed_s, 6),
                "speedup": round(base_s / routed_s, 1),
            }

        result, decision = route(db, engine, "run_q6", {})
        assert result is None and decision["reason"] == "unsupported-method"
        attempt_s = best_of(lambda: route(db, engine, "run_q6", {}))
        base_s = best_of(lambda: engine.run_q6(db))
        record["fallback_q6"] = {
            "reason": decision["reason"],
            "attempt_seconds": round(attempt_s, 6),
            "base_seconds": round(base_s, 4),
            "overhead_fraction": round(attempt_s / base_s, 6),
        }
        return record
    finally:
        if previous is None:
            os.environ.pop(env_key, None)
        else:
            os.environ[env_key] = previous


def _compile_metrics(scale_factor: float) -> dict:
    """Measured plan-compilation latencies and chooser accuracy
    (execution cache disabled).

    Times the six TPC-H queries that only exist through the compiled
    kernel programs, recording the chooser's per-route cycle
    predictions next to the measured compiled latency.  On Q1/Q6 --
    where the hand-wired Typer and Tectorwise paths also exist -- the
    compiled result is asserted bit-identical to the hand-wired one,
    all three routes are timed, and the chooser's predicted-cheapest
    route is compared against the measured winner."""
    from repro.compile.chooser import choose, clear_chooser_cache
    from repro.engines import TectorwiseEngine, TyperEngine
    from repro.sql.api import compile_sql
    from repro.tpch.dbgen import generate_database
    from repro.tpch.sql import EXTENDED_TPCH_SQL, TPCH_SQL

    env_key = "REPRO_EXEC_CACHE"
    previous = os.environ.get(env_key)
    os.environ[env_key] = "0"
    try:
        db = generate_database(scale_factor=scale_factor, seed=42)
        clear_chooser_cache()

        def best_of(runner, repeats: int = 5) -> float:
            runner()  # warm shared build sides / decode caches
            return min(
                (lambda s: (runner(), time.perf_counter() - s)[1])(
                    time.perf_counter()
                )
                for _ in range(repeats)
            )

        engine = TyperEngine()
        record: dict = {
            "scale_factor": scale_factor,
            "engine": "Typer",
            "note": (
                "single-core numpy wall-clock, execution cache off, "
                "best of 5 (see 'cpus'/'machine').  'compiled_queries' "
                "are the six TPC-H queries with no hand-wired template "
                "-- before PR 9 they did not run at all, so the "
                "recorded latency is the new capability, and "
                "'predicted_cycles' is the chooser's per-route cycle "
                "model next to it.  'chooser_accuracy' checks the "
                "prediction where all three routes are measurable "
                "(Q1/Q6): hand-wired Typer, hand-wired Tectorwise and "
                "the compiled program are timed and the predicted "
                "cheapest is compared with the measured winner; the "
                "compiled value is asserted bit-identical to the "
                "hand-wired one first"
            ),
            "compiled_queries": {},
            "chooser_accuracy": {},
        }

        for qid in sorted(EXTENDED_TPCH_SQL):
            bound = compile_sql(EXTENDED_TPCH_SQL[qid])
            plan = bound.plan
            decision = choose(db, bound)
            seconds = best_of(lambda p=plan: engine.run_compiled(db, p))
            record["compiled_queries"][qid.lower()] = {
                "compiled_seconds": round(seconds, 4),
                "chosen": decision["chosen"],
                "predicted_cycles": {
                    route: round(cycles)
                    for route, cycles in decision["predicted_cycles"].items()
                },
            }

        tectorwise = TectorwiseEngine()
        for qid, hand_method in (("Q1", "run_q1"), ("Q6", "run_q6")):
            from repro.sql.api import plan_sql

            bound = compile_sql(TPCH_SQL[qid])
            plan = plan_sql(TPCH_SQL[qid])
            hand = getattr(engine, hand_method)(db)
            compiled = engine.run_compiled(db, plan)
            if qid == "Q6":
                # One scalar: the compiled revenue must match bitwise.
                assert compiled.value["rows"][0][0] == hand.value, qid
            else:
                # Q1: per-group rows vs the hand-wired flat totals; the
                # quantity column is integer-valued, so summing the
                # groups is exact.
                rows = compiled.value["rows"]
                assert len(rows) == hand.value["groups"], qid
                assert sum(row[2] for row in rows) == hand.value["sum_qty"], qid
            decision = choose(db, bound)
            measured = {
                "Typer": best_of(lambda m=hand_method: getattr(engine, m)(db)),
                "Tectorwise": best_of(
                    lambda m=hand_method: getattr(tectorwise, m)(db)
                ),
                "compiled": best_of(lambda p=plan: engine.run_compiled(db, p)),
            }
            winner = min(measured, key=measured.get)
            record["chooser_accuracy"][qid.lower()] = {
                "hand_tuples": hand.tuples,
                "measured_seconds": {
                    route: round(s, 4) for route, s in measured.items()
                },
                "measured_winner": winner,
                "predicted_winner": decision["chosen"],
                "prediction_correct": winner == decision["chosen"],
                "predicted_cycles": {
                    route: round(cycles)
                    for route, cycles in decision["predicted_cycles"].items()
                },
            }
        correct = [
            entry["prediction_correct"]
            for entry in record["chooser_accuracy"].values()
        ]
        record["chooser_hit_rate"] = round(sum(correct) / len(correct), 2)
        return record
    finally:
        if previous is None:
            os.environ.pop(env_key, None)
        else:
            os.environ[env_key] = previous


def _parallel_worker_counts() -> tuple[int, ...]:
    """2, 4, and N (the machine's cores), deduplicated and sorted.
    On boxes with fewer than 4 cores the larger counts still run --
    oversubscribed, which the recorded 'cpus' field makes visible."""
    cpus = os.cpu_count() or 1
    return tuple(sorted({2, 4, max(2, min(8, cpus))}))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_PR9.json"))
    parser.add_argument("--skip-suite", action="store_true")
    parser.add_argument("--skip-figures", action="store_true")
    parser.add_argument("--skip-parallel", action="store_true",
                        help="skip the thread-vs-process service benchmark")
    parser.add_argument("--figure-sf", type=float, default=0.05,
                        help="scale factor for the figure-regeneration timing")
    parser.add_argument("--parallel-sf", type=float, default=0.05,
                        help="scale factor for the service-throughput benchmark")
    parser.add_argument("--compression-sf", type=float, default=0.2,
                        help="scale factor for the compression benchmark")
    parser.add_argument("--encoded-agg-sf", type=float, default=0.2,
                        help="scale factor for the code-domain aggregation "
                        "benchmark (the PR 8 headline)")
    parser.add_argument("--pruning-sf", type=float, default=0.2,
                        help="scale factor for the zone-map pruning benchmark")
    parser.add_argument("--rollup-sf", type=float, default=1.0,
                        help="scale factor for the rollup-routing benchmark "
                        "(the PR 7 headline is recorded at SF >= 1)")
    parser.add_argument("--compile-sf", type=float, default=0.2,
                        help="scale factor for the plan-compilation benchmark "
                        "(the PR 9 headline)")
    parser.add_argument("--baseline-dir", default=None,
                        help="checkout of the pre-PR repo to time for a "
                        "same-machine baseline (e.g. a git worktree at the "
                        "seed commit); machine speed drifts, so ratios only "
                        "mean something when both suites run back to back")
    args = parser.parse_args(argv)

    sys.path.insert(0, str(REPO_ROOT / "src"))

    record: dict = {"pr": 9, **_host_context()}

    print("plan compilation & chooser ...", flush=True)
    record["compile"] = _compile_metrics(args.compile_sf)

    print("code-domain aggregation ...", flush=True)
    record["encoded_agg"] = _encoded_agg_metrics(args.encoded_agg_sf)

    print("rollup routing ...", flush=True)
    record["rollup"] = _rollup_metrics(args.rollup_sf)

    print("zone-map pruning ...", flush=True)
    record["pruning"] = _pruning_metrics(args.pruning_sf)

    print("compressed storage ...", flush=True)
    record["compression"] = _compression_metrics(args.compression_sf)

    if not args.skip_parallel:
        print("thread vs process service throughput ...", flush=True)
        record["service_throughput"] = _parallel_service_throughput(
            args.parallel_sf, _parallel_worker_counts()
        )

    print("replay kernels ...", flush=True)
    record["replay_events_per_second"] = {
        "batch": {k: round(v) for k, v in _replay_events_per_second(False).items()},
        "reference": {k: round(v) for k, v in _replay_events_per_second(True).items()},
    }
    print("gshare kernels ...", flush=True)
    record["gshare_events_per_second"] = {
        "batch": round(_gshare_events_per_second(False)),
        "reference": round(_gshare_events_per_second(True)),
    }

    if not args.skip_figures:
        print("figure regeneration ...", flush=True)
        figures = _figures_per_minute(args.figure_sf)
        figures["seconds"] = round(figures["seconds"], 2)
        figures["figures_per_minute"] = round(figures["figures_per_minute"], 2)
        record["figure_regeneration"] = figures

    if not args.skip_suite:
        print("tier-1 suite (this takes a while) ...", flush=True)
        record["tier1_suite_seconds"] = round(_time_suite(), 2)
        if args.baseline_dir:
            print("baseline tier-1 suite ...", flush=True)
            baseline = round(_time_suite(Path(args.baseline_dir)), 2)
            record["baseline_suite_seconds"] = baseline
            record["suite_speedup"] = round(
                baseline / record["tier1_suite_seconds"], 2
            )

    output = Path(args.output)
    output.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}")
    print(json.dumps(record, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
