"""Figure 11: commercial joins keep 40-75% Retiring across sizes (instruction footprint).

Regenerates experiment ``fig11`` of the registry (see DESIGN.md) and
checks the figure's headline shape.
"""


def test_fig11_join_commercial_cycles(regenerate, bench_db):
    figure = regenerate("fig11", bench_db)
    for row in figure.rows:
        assert 0.3 <= row["share_retiring"] <= 0.85
