"""Figure 6: DBMS R ~2 orders of magnitude slower than Typer, DBMS C ~1 order.

Regenerates experiment ``fig06`` of the registry (see DESIGN.md) and
checks the figure's headline shape.
"""


def test_fig06_projection_response_time(regenerate, bench_db):
    figure = regenerate("fig06", bench_db)
    assert 50 <= figure.row_for(engine="DBMS R")["normalized_response"] <= 400
    assert 5 <= figure.row_for(engine="DBMS C")["normalized_response"] <= 40
