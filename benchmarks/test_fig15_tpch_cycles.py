"""Figure 15: Q1 has the highest Retiring ratio on both engines.

Regenerates experiment ``fig15`` of the registry (see DESIGN.md) and
checks the figure's headline shape.
"""


def test_fig15_tpch_cycles(regenerate, bench_db):
    figure = regenerate("fig15", bench_db)
    for engine in ("Typer", "Tectorwise"):
        q1 = figure.row_for(engine=engine, query="Q1")["share_retiring"]
        for query in ("Q6", "Q9", "Q18"):
            assert q1 > figure.row_for(engine=engine, query=query)["share_retiring"]
