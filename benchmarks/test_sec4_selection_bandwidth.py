"""Section 4 text: branched selection leaves bandwidth well below the roof.

Regenerates experiment ``sec4-bandwidth`` of the registry (see DESIGN.md) and
checks the figure's headline shape.
"""


def test_sec4_selection_bandwidth(regenerate, bench_db):
    figure = regenerate("sec4-bandwidth", bench_db)
    for row in figure.rows:
        assert row["bandwidth_gbps"] < 0.8 * 12.0
