"""Figure 10: branch mispredictions dominate and peak at 50%.

Regenerates experiment ``fig10`` of the registry (see DESIGN.md) and
checks the figure's headline shape.
"""


def test_fig10_selection_hpe_stalls(regenerate, bench_db):
    figure = regenerate("fig10", bench_db)
    for engine in ("Typer", "Tectorwise"):
        shares = {s: figure.row_for(engine=engine, selectivity=s)["stall_share_branch_misp"] for s in (0.1, 0.5, 0.9)}
        assert shares[0.5] > shares[0.1] and shares[0.5] > shares[0.9]
