"""Figure 18: predication eliminates Typer's branch misprediction stalls.

Regenerates experiment ``fig18`` of the registry (see DESIGN.md) and
checks the figure's headline shape.
"""


def test_fig18_predication_typer_stalls(regenerate, bench_db):
    figure = regenerate("fig18", bench_db)
    for sel in (0.1, 0.5, 0.9):
        assert figure.row_for(variant="predicated", selectivity=sel)["branch_misp_ms"] == 0.0
        assert figure.row_for(variant="branched", selectivity=sel)["branch_misp_ms"] > 0.0
