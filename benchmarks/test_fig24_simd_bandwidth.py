"""Figure 24 (Skylake): SIMD exploits the underutilised bandwidth.

Regenerates experiment ``fig24`` of the registry (see DESIGN.md) and
checks the figure's headline shape.
"""


def test_fig24_simd_bandwidth(regenerate, bench_db):
    figure = regenerate("fig24", bench_db)
    for case in ("Proj.", "Sel. 90%"):
        scalar = figure.row_for(case=case, variant="W/o SIMD")["bandwidth_gbps"]
        simd = figure.row_for(case=case, variant="W/ SIMD")["bandwidth_gbps"]
        assert simd > scalar
