"""Validation benchmark: the analytic model's effective parameters
against the structural (trace-driven) simulators.

Plays the role of the calibration micro-benchmarks a measurement study
runs before trusting its counters: prefetcher coverage, random-access
latency mixes and branch misprediction rates, including streams
measured from the actual generated data.
"""

from repro.core import ModelValidator


def test_model_validation(benchmark, bench_db):
    validator = ModelValidator()
    report = benchmark.pedantic(
        lambda: validator.run(bench_db), rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(report.to_text())
    assert report.passed, report.to_text()
