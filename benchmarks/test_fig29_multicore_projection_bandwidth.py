"""Figure 29: projection saturates the socket at ~8 (Typer) / ~12 (Tectorwise) threads.

Regenerates experiment ``fig29`` of the registry (see DESIGN.md) and
checks the figure's headline shape.
"""


def test_fig29_multicore_projection_bandwidth(regenerate, bench_db):
    figure = regenerate("fig29", bench_db)
    assert figure.row_for(engine="Typer", threads=8)["bandwidth_gbps"] >= 0.9 * 66.0
    assert figure.row_for(engine="Tectorwise", threads=8)["bandwidth_gbps"] < 0.9 * 66.0
    assert figure.row_for(engine="Tectorwise", threads=12)["bandwidth_gbps"] >= 0.75 * 66.0
