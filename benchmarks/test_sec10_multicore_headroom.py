"""Section 10 text: SIMD and hyper-threading raise the join's bandwidth substantially.

Regenerates experiment ``sec10-headroom`` of the registry (see DESIGN.md) and
checks the figure's headline shape.
"""


def test_sec10_multicore_headroom(regenerate, join_db):
    figure = regenerate("sec10-headroom", join_db)
    scalar = figure.row_for(engine="Tectorwise", variant="scalar")["bandwidth_gbps"]
    simd = figure.row_for(engine="Tectorwise", variant="SIMD")["bandwidth_gbps"]
    assert simd > scalar * 1.15
