"""Section 6 text: join chains 0-1 (regular); group-by chains 0-7 (irregular).

Regenerates experiment ``sec6-chains`` of the registry (see DESIGN.md) and
checks the figure's headline shape.
"""


def test_sec6_hash_chain_stats(regenerate, bench_db):
    figure = regenerate("sec6-chains", bench_db)
    join = figure.row_for(table="hash join")
    groupby = figure.row_for(table="group by")
    assert join["max"] <= 2
    assert groupby["max"] >= 4
    assert 0.1 <= groupby["mean"] <= 0.45
