"""Figure 12: stall ratio grows with join size; Retiring drops sharply for the large join.

Regenerates experiment ``fig12`` of the registry (see DESIGN.md) and
checks the figure's headline shape.
"""


def test_fig12_join_hpe_cycles(regenerate, join_db):
    figure = regenerate("fig12", join_db)
    for engine in ("Typer", "Tectorwise"):
        sizes = [figure.row_for(engine=engine, size=s)["stall_ratio"] for s in ("small", "medium", "large")]
        assert sizes[0] < sizes[1] < sizes[2]
    assert figure.row_for(engine="Typer", size="large")["share_retiring"] <= 0.3
