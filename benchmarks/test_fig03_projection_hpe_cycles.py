"""Figure 3: Typer's stall ratio grows with projectivity; Tectorwise stays flat ~60%.

Regenerates experiment ``fig03`` of the registry (see DESIGN.md) and
checks the figure's headline shape.
"""


def test_fig03_projection_hpe_cycles(regenerate, bench_db):
    figure = regenerate("fig03", bench_db)
    typer = [figure.row_for(engine="Typer", degree=d)["stall_ratio"] for d in (1, 2, 3, 4)]
    assert all(a < b for a, b in zip(typer, typer[1:]))
    tw = [figure.row_for(engine="Tectorwise", degree=d)["stall_ratio"] for d in (2, 3, 4)]
    assert max(tw) - min(tw) < 0.1
