"""Figure 26: all-off is severalfold slower; the L2 streamer alone matches all four.

Regenerates experiment ``fig26`` of the registry (see DESIGN.md) and
checks the figure's headline shape.
"""


def test_fig26_prefetchers(regenerate, join_db):
    figure = regenerate("fig26", join_db)
    disabled = figure.row_for(config="All disabled")["response_ms"]
    enabled = figure.row_for(config="All enabled")["response_ms"]
    l2_streamer = figure.row_for(config="L2 Str.")["response_ms"]
    assert 2.0 <= disabled / enabled <= 5.0
    assert l2_streamer <= enabled * 1.15
