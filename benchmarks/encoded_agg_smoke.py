"""Encoded-aggregation smoke: code-domain sums are bit-identical to
the decoded path and to raw storage on both executors.

Builds a small encoded TPC-H database plus a raw twin, checks that
Q1's morph decision actually routes slots into the code domain, and
asserts value/tuples/work equality across three legs per workload:
``REPRO_ENCODED_AGG`` on (sum codes), off (decode first), and the raw
twin — on the thread path and the morsel-parallel process pool.  Run
from CI as a real file (not a heredoc): the process pool uses the
spawn start method, which re-imports ``__main__`` and therefore needs
a path-backed script.

Usage::

    PYTHONPATH=src REPRO_EXEC_CACHE=0 python benchmarks/encoded_agg_smoke.py
"""

from __future__ import annotations

import os

import numpy as np


def assert_identical(a, b, context) -> None:
    assert a.value == b.value, context
    assert a.tuples == b.tuples, context
    assert a.work == b.work, context


def main() -> int:
    from repro.core.parallel import WorkerPool
    from repro.engines import TectorwiseEngine, TyperEngine
    from repro.storage import ColumnTable, Database
    from repro.tpch import generate_database

    os.environ.pop("REPRO_ENCODED_AGG", None)  # default: toggle on

    encoded = generate_database(scale_factor=0.01, seed=7)
    raw = Database(name=encoded.name, scale_factor=encoded.scale_factor)
    for name in encoded.table_names:
        table = encoded.table(name)
        raw.add_table(ColumnTable(
            name, {c: np.asarray(table[c]) for c in table.column_names}
        ))

    # The morph decision must actually route Q1 slots code-domain.
    q1 = TyperEngine().run_q1(encoded)
    decision = q1.details["encoded_agg"]
    assert decision["code_domain"] >= 2, decision
    modes = {m["slot"]: m["mode"] for m in decision["measures"]}
    assert modes["sum_qty"] == "code-domain", modes

    workloads = (
        ("run_q1", {}),
        ("run_groupby", {}),
        ("run_projection", {"degree": 1}),
    )
    for engine in (TyperEngine(), TectorwiseEngine()):
        for method, kwargs in workloads:
            on = getattr(engine, method)(encoded, **kwargs)
            os.environ["REPRO_ENCODED_AGG"] = "0"
            off = getattr(engine, method)(encoded, **kwargs)
            os.environ.pop("REPRO_ENCODED_AGG", None)
            base = getattr(engine, method)(raw, **kwargs)
            context = (engine.name, method, kwargs)
            assert_identical(on, off, context)
            assert_identical(off, base, context)

    # Process pool: workers inherit the toggle at spawn, so run one
    # pool per setting and pin both against the single-shot result.
    single = TectorwiseEngine().run_q1(encoded)
    for toggle in (None, "0"):
        if toggle is None:
            os.environ.pop("REPRO_ENCODED_AGG", None)
        else:
            os.environ["REPRO_ENCODED_AGG"] = toggle
        with WorkerPool(encoded, n_workers=2) as pool:
            pooled = pool.run_query(TectorwiseEngine(), "run_q1")
        assert_identical(pooled, single, ("pool", toggle))
    os.environ.pop("REPRO_ENCODED_AGG", None)

    print(
        "code-domain == decoded == raw on thread and process executors "
        f"({decision['code_domain']} Q1 slots code-domain, "
        f"{decision['decoded']} decoded)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
