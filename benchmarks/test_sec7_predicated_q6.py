"""Section 7 text: predicated Q6 improves both engines, Tectorwise far more.

Regenerates experiment ``sec7-q6`` of the registry (see DESIGN.md) and
checks the figure's headline shape.
"""


def test_sec7_predicated_q6(regenerate, bench_db):
    figure = regenerate("sec7-q6", bench_db)
    typer = figure.row_for(engine="Typer", variant="predicated")["response_change"]
    tw = figure.row_for(engine="Tectorwise", variant="predicated")["response_change"]
    assert -0.35 <= typer <= -0.02
    assert -0.75 <= tw <= -0.3
