"""Section 10 (omitted graph): multi-core TPC-H bandwidth spans projection-high to join-low.

Regenerates experiment ``sec10-tpch-bw`` of the registry (see DESIGN.md) and
checks the result's headline shape.
"""


def test_sec10_tpch_multicore_bandwidth(regenerate, bench_db):
    figure = regenerate("sec10-tpch-bw", bench_db)
    for engine in ("Typer", "Tectorwise"):
        q6 = figure.row_for(engine=engine, query="Q6 (predicated)")
        q18 = figure.row_for(engine=engine, query="Q18")
        assert q6["bandwidth_gbps"] >= 0.8 * q6["max_gbps"]
        assert q18["bandwidth_gbps"] < 0.6 * q18["max_gbps"]
