"""Section 6 (omitted discussion): commercial systems on TPC-H.

Regenerates experiment ``sec6-commercial`` of the registry (see DESIGN.md) and
checks the result's headline shape.
"""


def test_sec6_commercial_tpch(regenerate, bench_db):
    figure = regenerate("sec6-commercial", bench_db)
    for query in ("Q1", "Q6", "Q9", "Q18"):
        r = figure.row_for(engine="DBMS R", query=query)
        assert r["vs_typer"] > 10.0
        c = figure.row_for(engine="DBMS C", query=query)
        assert c["vs_typer"] > 2.0
