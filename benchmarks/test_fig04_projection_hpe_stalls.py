"""Figure 4: Typer Dcache-dominated; Tectorwise splits Dcache/Execution.

Regenerates experiment ``fig04`` of the registry (see DESIGN.md) and
checks the figure's headline shape.
"""


def test_fig04_projection_hpe_stalls(regenerate, bench_db):
    figure = regenerate("fig04", bench_db)
    assert figure.row_for(engine="Typer", degree=4)["stall_share_dcache"] > 0.6
    tw = figure.row_for(engine="Tectorwise", degree=4)
    assert tw["stall_share_dcache"] > 0.3 and tw["stall_share_execution"] > 0.15
