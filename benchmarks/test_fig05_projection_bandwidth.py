"""Figure 5: Typer nearly saturates the 12 GB/s per-core roof from degree two.

Regenerates experiment ``fig05`` of the registry (see DESIGN.md) and
checks the figure's headline shape.
"""


def test_fig05_projection_bandwidth(regenerate, bench_db):
    figure = regenerate("fig05", bench_db)
    for degree in (2, 3, 4):
        assert figure.row_for(engine="Typer", degree=degree)["utilization"] >= 0.6
        typer = figure.row_for(engine="Typer", degree=degree)["bandwidth_gbps"]
        tw = figure.row_for(engine="Tectorwise", degree=degree)["bandwidth_gbps"]
        assert tw < typer
