"""Figure 7: commercial selection; Retiring grows with selectivity.

Regenerates experiment ``fig07`` of the registry (see DESIGN.md) and
checks the figure's headline shape.
"""


def test_fig07_selection_commercial_cycles(regenerate, bench_db):
    figure = regenerate("fig07", bench_db)
    for engine in ("DBMS R", "DBMS C"):
        low = figure.row_for(engine=engine, selectivity=0.1)["share_retiring"]
        high = figure.row_for(engine=engine, selectivity=0.9)["share_retiring"]
        assert high >= low
