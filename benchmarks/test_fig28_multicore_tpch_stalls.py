"""Figure 28: multi-core stall composition: Dcache still dominates Q9/Q18.

Regenerates experiment ``fig28`` of the registry (see DESIGN.md) and
checks the figure's headline shape.
"""


def test_fig28_multicore_tpch_stalls(regenerate, bench_db):
    figure = regenerate("fig28", bench_db)
    for engine in ("Typer", "Tectorwise"):
        for query in ("Q9", "Q18"):
            assert figure.row_for(engine=engine, query=query)["stall_share_dcache"] >= 0.4
