"""Ablation benchmark: sensitivity of the headline metrics to each
calibrated model constant (the design-choice ablations DESIGN.md
promises).

Regenerates one sensitivity table per calibrated parameter and asserts
that the paper's qualitative conclusions survive halving/doubling the
calibrated constants.
"""

from repro.analysis import AblationStudy

#: The genuinely *calibrated* constants (architectural facts like the
#: 3-cycle FP-add latency are excluded; see tests/analysis).
CALIBRATED = (
    "store_pressure_cycles",
    "prefetch_residual_cycles",
    "mlp_random_independent",
    "cached_access_stall",
    "seq_queue_coeff",
)


def test_ablation_calibration(benchmark, bench_db):
    study = AblationStudy(bench_db)
    figures = benchmark.pedantic(
        lambda: study.run(parameters=CALIBRATED),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    print()
    for parameter, figure in figures.items():
        print(figure.to_text(float_format="{:.3f}"))
        survives = study.conclusions_survive(figure)
        print(f"conclusions survive 0.5x/2x of {parameter}: {survives}")
        print()
        assert survives
