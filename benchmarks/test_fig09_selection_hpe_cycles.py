"""Figure 9: Typer/Tectorwise stall the most at 50% selectivity.

Regenerates experiment ``fig09`` of the registry (see DESIGN.md) and
checks the figure's headline shape.
"""


def test_fig09_selection_hpe_cycles(regenerate, bench_db):
    figure = regenerate("fig09", bench_db)
    for engine in ("Typer", "Tectorwise"):
        mid = figure.row_for(engine=engine, selectivity=0.5)["stall_ratio"]
        assert mid > figure.row_for(engine=engine, selectivity=0.9)["stall_ratio"]
