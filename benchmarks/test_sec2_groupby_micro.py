"""Section 2 (omitted graph): the group-by micro-benchmark behaves like the join.

Regenerates experiment ``sec2-groupby`` of the registry (see DESIGN.md) and
checks the result's headline shape.
"""


def test_sec2_groupby_micro(regenerate, join_db):
    figure = regenerate("sec2-groupby", join_db)
    for engine in ("Typer", "Tectorwise"):
        groupby = figure.row_for(engine=engine, workload="group-by")
        join = figure.row_for(engine=engine, workload="large join")
        assert groupby["dominant_stall"] == join["dominant_stall"]
        assert abs(groupby["stall_ratio"] - join["stall_ratio"]) < 0.25
