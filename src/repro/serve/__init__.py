"""Concurrent query service: SQL in, profiled engine executions out.

``python -m repro.serve`` listens on TCP (line-delimited JSON) or, with
``--repl``, reads SQL from stdin; every request picks one of the four
engines and flows through admission control (bounded queue + deadline)
into a worker pool that executes via :mod:`repro.sql` and the
process-wide execution cache.
"""

from repro.serve.client import QueryClient, run_batch
from repro.serve.server import QueryServer, run_repl
from repro.serve.service import QueryService, ServiceConfig, ServiceStats

__all__ = [
    "QueryClient",
    "QueryServer",
    "QueryService",
    "ServiceConfig",
    "ServiceStats",
    "run_batch",
    "run_repl",
]
