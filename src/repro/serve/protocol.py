"""Wire format of the query service: line-delimited JSON.

One request per line, one response per line, UTF-8.  Requests::

    {"sql": "SELECT ...", "engine": "Typer", "options": {"simd": true},
     "timeout": 10.0, "trace": true}
    {"op": "stats"}
    {"op": "ping"}
    {"op": "metrics"}
    {"op": "slowlog"}

``"trace": true`` attaches a span tree (see :mod:`repro.obs.trace`)
to the query response under ``"trace"``.  ``op=metrics`` returns
Prometheus text exposition under ``"metrics"`` -- service counters,
latency histograms, cache hit/miss and gauges aggregated across all
morsel-pool worker processes.  ``op=slowlog`` returns the N slowest
queries (slowest first), each with its span tree when one was
recorded.

Responses always carry ``status``: ``ok``, ``error`` (bad SQL or
execution failure), ``rejected`` (admission queue full) or ``timeout``
(admitted but not finished within the deadline).
"""

from __future__ import annotations

import json

STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_REJECTED = "rejected"
STATUS_TIMEOUT = "timeout"


def jsonable(value):
    """``value`` with numpy scalars/arrays and tuple keys made JSON-safe."""
    if isinstance(value, dict):
        return {
            key if isinstance(key, str) else ",".join(str(part) for part in (
                key if isinstance(key, tuple) else (key,)
            )): jsonable(item)
            for key, item in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        try:
            return value.item()
        except (AttributeError, ValueError):
            pass
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def encode(message: dict) -> bytes:
    """One response/request as a JSON line."""
    return (json.dumps(jsonable(message), sort_keys=True) + "\n").encode("utf-8")


def decode(line: bytes | str) -> dict:
    """Parse one JSON line; raises ValueError with a clear message."""
    if isinstance(line, bytes):
        line = line.decode("utf-8")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(f"malformed JSON request: {exc}") from None
    if not isinstance(message, dict):
        raise ValueError("request must be a JSON object")
    return message
