"""Minimal client for the query service, plus the CI smoke driver.

``QueryClient`` is a blocking line-protocol client (one socket, one
request in flight).  ``run_batch`` opens one client per thread and
fires a concurrent batch -- this is what the CI smoke test uses to
assert the service answers >= 8 concurrent requests and serves repeats
from the execution cache.
"""

from __future__ import annotations

import socket
import threading

from repro.serve import protocol


class QueryClient:
    """Blocking client: one JSON line out, one JSON line back."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, timeout: float = 60.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def request(self, message: dict) -> dict:
        self._file.write(protocol.encode(message))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return protocol.decode(line)

    def query(
        self,
        sql: str,
        engine: str | None = None,
        trace: bool = False,
        **options,
    ) -> dict:
        message: dict = {"sql": sql}
        if engine is not None:
            message["engine"] = engine
        if trace:
            message["trace"] = True
        if options:
            message["options"] = options
        return self.request(message)

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def metrics(self) -> dict:
        """Prometheus text exposition under the ``metrics`` key."""
        return self.request({"op": "metrics"})

    def slowlog(self) -> dict:
        """The N slowest queries (slowest first) under ``slowlog``."""
        return self.request({"op": "slowlog"})

    def rollups(self) -> dict:
        """Rollup routing totals under the ``rollups`` key."""
        return self.request({"op": "rollups"})

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "QueryClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def run_batch(
    host: str, port: int, requests: list[dict], timeout: float = 120.0
) -> list[dict]:
    """Fire ``requests`` concurrently (one connection per request) and
    return responses in request order."""
    responses: list[dict | None] = [None] * len(requests)

    def one(index: int, message: dict) -> None:
        try:
            with QueryClient(host, port, timeout=timeout) as client:
                responses[index] = client.request(message)
        except (OSError, ValueError) as exc:
            responses[index] = {
                "status": protocol.STATUS_ERROR,
                "error": f"client failure: {exc}",
            }

    threads = [
        threading.Thread(target=one, args=(index, message), daemon=True)
        for index, message in enumerate(requests)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=timeout)
    return [
        response
        if response is not None
        else {"status": protocol.STATUS_ERROR, "error": "no response"}
        for response in responses
    ]
