"""TCP and stdin frontends over :class:`~repro.serve.service.QueryService`.

The TCP server speaks the line-delimited JSON protocol of
:mod:`repro.serve.protocol`; each connection is handled on its own
thread (``ThreadingTCPServer``) and each request line blocks only its
own connection -- concurrency and admission control live in the
service's worker pool, not here.

The REPL reads bare SQL lines from stdin (``:engine NAME``, ``:stats``,
``:quit`` directives) so the service is usable without any network.
"""

from __future__ import annotations

import os
import socketserver
import sys
import threading

from repro.serve import protocol
from repro.serve.service import QueryService


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        service: QueryService = self.server.service  # type: ignore[attr-defined]
        for line in self.rfile:
            if not line.strip():
                continue
            try:
                message = protocol.decode(line)
            except ValueError as exc:
                self.wfile.write(
                    protocol.encode({"status": protocol.STATUS_ERROR, "error": str(exc)})
                )
                continue
            response = dispatch(service, message)
            self.wfile.write(protocol.encode(response))
            if message.get("op") == "shutdown":
                threading.Thread(
                    target=self.server.shutdown, daemon=True
                ).start()
                return
            if message.get("op") == "die" and response.get("dying"):
                # Fault injection (gated in dispatch): simulate a node
                # crash *after* acking, so the client's next request --
                # not this one -- observes the dead node.
                self.wfile.flush()
                if os.environ.get("REPRO_SHARD_NODE") == "1":
                    os._exit(17)  # a real process death: no cleanup
                threading.Thread(target=self._stop_server, daemon=True).start()
                return

    def _stop_server(self) -> None:
        self.server.shutdown()
        self.server.server_close()


def dispatch(service: QueryService, message: dict) -> dict:
    """Route one decoded request to the service."""
    op = message.get("op")
    if op == "ping":
        return {"status": protocol.STATUS_OK, "pong": True}
    if op == "stats":
        return {"status": protocol.STATUS_OK, "stats": service.stats_snapshot()}
    if op == "metrics":
        return {"status": protocol.STATUS_OK, "metrics": service.metrics_text()}
    if op == "slowlog":
        return {"status": protocol.STATUS_OK, "slowlog": service.slowlog_snapshot()}
    if op == "rollups":
        return {
            "status": protocol.STATUS_OK,
            "rollups": service.stats_snapshot()["rollups"],
        }
    if op == "explain":
        sql = message.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            return {
                "status": protocol.STATUS_ERROR,
                "error": "explain needs a non-empty 'sql' string",
            }
        from repro.sql import SqlError

        try:
            return {
                "status": protocol.STATUS_OK,
                "explain": protocol.jsonable(service.explain(sql)),
            }
        except SqlError as exc:
            return {"status": protocol.STATUS_ERROR, "error": str(exc)}
    if op == "shutdown":
        return {"status": protocol.STATUS_OK, "stopping": True}
    if op == "partial":
        if not getattr(service.config, "shard_node", False):
            return {
                "status": protocol.STATUS_ERROR,
                "error": "this service is not a shard node",
            }
        from repro.shard import wire

        try:
            method, kwargs_items = wire.decode_call(message)
            partial = service.execute_partial(
                method, kwargs_items, engine=message.get("engine")
            )
        except wire.CorruptPartial as exc:
            return {"status": protocol.STATUS_ERROR, "error": str(exc)}
        except Exception as exc:  # noqa: BLE001 - a node must answer, not die
            return {
                "status": protocol.STATUS_ERROR,
                "error": f"{type(exc).__name__}: {exc}",
            }
        return {"status": protocol.STATUS_OK, **wire.encode_partial(partial)}
    if op == "die":
        allowed = (
            getattr(service.config, "shard_node", False)
            and os.environ.get("REPRO_SHARD_FAULTS") == "1"
        )
        if not allowed:
            return {
                "status": protocol.STATUS_ERROR,
                "error": "die is enabled only on shard nodes with "
                "REPRO_SHARD_FAULTS=1",
            }
        return {"status": protocol.STATUS_OK, "dying": True}
    if op is not None:
        return {
            "status": protocol.STATUS_ERROR,
            "error": (
                f"unknown op {op!r} "
                f"(expected ping, stats, metrics, slowlog, rollups, "
                f"explain, partial, die or shutdown)"
            ),
        }
    sql = message.get("sql")
    if not isinstance(sql, str) or not sql.strip():
        return {
            "status": protocol.STATUS_ERROR,
            "error": "request needs a non-empty 'sql' string (or an 'op')",
        }
    options = message.get("options") or {}
    if not isinstance(options, dict):
        return {
            "status": protocol.STATUS_ERROR,
            "error": "'options' must be a JSON object",
        }
    return service.submit(
        sql,
        engine=message.get("engine"),
        options=options,
        timeout=message.get("timeout"),
        trace_query=bool(message.get("trace")),
    )


class QueryServer(socketserver.ThreadingTCPServer):
    """One listening socket bound to a running QueryService."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, service: QueryService, host: str = "127.0.0.1", port: int = 0):
        super().__init__((host, port), _Handler)
        self.service = service

    @property
    def address(self) -> tuple[str, int]:
        return self.server_address[:2]


def run_repl(service: QueryService, stdin=None, stdout=None) -> None:
    """Execute bare SQL lines from ``stdin``; directives start with ':'."""
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    engine = service.config.default_engine
    stdout.write(
        f"repro query REPL -- engine {engine}; "
        f":engine NAME, :explain SQL, :stats, :metrics, :slowlog, "
        f":rollups, :quit\n"
    )
    stdout.flush()
    for line in stdin:
        line = line.strip()
        if not line:
            continue
        if line.startswith(":"):
            parts = line[1:].split()
            if parts[0] in ("quit", "exit", "q"):
                return
            if parts[0] == "stats":
                stdout.write(protocol.encode(service.stats_snapshot()).decode())
            elif parts[0] == "metrics":
                stdout.write(service.metrics_text())
            elif parts[0] == "slowlog":
                stdout.write(protocol.encode({"slowlog": service.slowlog_snapshot()}).decode())
            elif parts[0] == "rollups":
                stdout.write(
                    protocol.encode(
                        {"rollups": service.stats_snapshot()["rollups"]}
                    ).decode()
                )
            elif parts[0] == "explain" and len(parts) > 1:
                from repro.sql import SqlError

                sql = line[1:].split(None, 1)[1]
                try:
                    report = service.explain(sql)
                except SqlError as exc:
                    stdout.write(f"error: {exc}\n")
                else:
                    stdout.write(
                        protocol.encode(
                            {"explain": protocol.jsonable(report)}
                        ).decode()
                    )
            elif parts[0] == "engine" and len(parts) > 1:
                engine = " ".join(parts[1:])  # engine names may contain spaces
                stdout.write(f"engine set to {engine}\n")
            else:
                stdout.write(f"unknown directive {line!r}\n")
            stdout.flush()
            continue
        response = service.submit(line, engine=engine)
        stdout.write(protocol.encode(response).decode())
        stdout.flush()
