"""TCP and stdin frontends over :class:`~repro.serve.service.QueryService`.

The TCP server speaks the line-delimited JSON protocol of
:mod:`repro.serve.protocol`; each connection is handled on its own
thread (``ThreadingTCPServer``) and each request line blocks only its
own connection -- concurrency and admission control live in the
service's worker pool, not here.

The REPL reads bare SQL lines from stdin (``:engine NAME``, ``:stats``,
``:quit`` directives) so the service is usable without any network.
"""

from __future__ import annotations

import socketserver
import sys
import threading

from repro.serve import protocol
from repro.serve.service import QueryService


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        service: QueryService = self.server.service  # type: ignore[attr-defined]
        for line in self.rfile:
            if not line.strip():
                continue
            try:
                message = protocol.decode(line)
            except ValueError as exc:
                self.wfile.write(
                    protocol.encode({"status": protocol.STATUS_ERROR, "error": str(exc)})
                )
                continue
            response = dispatch(service, message)
            self.wfile.write(protocol.encode(response))
            if message.get("op") == "shutdown":
                threading.Thread(
                    target=self.server.shutdown, daemon=True
                ).start()
                return


def dispatch(service: QueryService, message: dict) -> dict:
    """Route one decoded request to the service."""
    op = message.get("op")
    if op == "ping":
        return {"status": protocol.STATUS_OK, "pong": True}
    if op == "stats":
        return {"status": protocol.STATUS_OK, "stats": service.stats_snapshot()}
    if op == "metrics":
        return {"status": protocol.STATUS_OK, "metrics": service.metrics_text()}
    if op == "slowlog":
        return {"status": protocol.STATUS_OK, "slowlog": service.slowlog_snapshot()}
    if op == "rollups":
        return {
            "status": protocol.STATUS_OK,
            "rollups": service.stats_snapshot()["rollups"],
        }
    if op == "explain":
        sql = message.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            return {
                "status": protocol.STATUS_ERROR,
                "error": "explain needs a non-empty 'sql' string",
            }
        from repro.sql import SqlError

        try:
            return {
                "status": protocol.STATUS_OK,
                "explain": protocol.jsonable(service.explain(sql)),
            }
        except SqlError as exc:
            return {"status": protocol.STATUS_ERROR, "error": str(exc)}
    if op == "shutdown":
        return {"status": protocol.STATUS_OK, "stopping": True}
    if op is not None:
        return {
            "status": protocol.STATUS_ERROR,
            "error": (
                f"unknown op {op!r} "
                f"(expected ping, stats, metrics, slowlog, rollups, "
                f"explain or shutdown)"
            ),
        }
    sql = message.get("sql")
    if not isinstance(sql, str) or not sql.strip():
        return {
            "status": protocol.STATUS_ERROR,
            "error": "request needs a non-empty 'sql' string (or an 'op')",
        }
    options = message.get("options") or {}
    if not isinstance(options, dict):
        return {
            "status": protocol.STATUS_ERROR,
            "error": "'options' must be a JSON object",
        }
    return service.submit(
        sql,
        engine=message.get("engine"),
        options=options,
        timeout=message.get("timeout"),
        trace_query=bool(message.get("trace")),
    )


class QueryServer(socketserver.ThreadingTCPServer):
    """One listening socket bound to a running QueryService."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, service: QueryService, host: str = "127.0.0.1", port: int = 0):
        super().__init__((host, port), _Handler)
        self.service = service

    @property
    def address(self) -> tuple[str, int]:
        return self.server_address[:2]


def run_repl(service: QueryService, stdin=None, stdout=None) -> None:
    """Execute bare SQL lines from ``stdin``; directives start with ':'."""
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    engine = service.config.default_engine
    stdout.write(
        f"repro query REPL -- engine {engine}; "
        f":engine NAME, :explain SQL, :stats, :metrics, :slowlog, "
        f":rollups, :quit\n"
    )
    stdout.flush()
    for line in stdin:
        line = line.strip()
        if not line:
            continue
        if line.startswith(":"):
            parts = line[1:].split()
            if parts[0] in ("quit", "exit", "q"):
                return
            if parts[0] == "stats":
                stdout.write(protocol.encode(service.stats_snapshot()).decode())
            elif parts[0] == "metrics":
                stdout.write(service.metrics_text())
            elif parts[0] == "slowlog":
                stdout.write(protocol.encode({"slowlog": service.slowlog_snapshot()}).decode())
            elif parts[0] == "rollups":
                stdout.write(
                    protocol.encode(
                        {"rollups": service.stats_snapshot()["rollups"]}
                    ).decode()
                )
            elif parts[0] == "explain" and len(parts) > 1:
                from repro.sql import SqlError

                sql = line[1:].split(None, 1)[1]
                try:
                    report = service.explain(sql)
                except SqlError as exc:
                    stdout.write(f"error: {exc}\n")
                else:
                    stdout.write(
                        protocol.encode(
                            {"explain": protocol.jsonable(report)}
                        ).decode()
                    )
            elif parts[0] == "engine" and len(parts) > 1:
                engine = " ".join(parts[1:])  # engine names may contain spaces
                stdout.write(f"engine set to {engine}\n")
            else:
                stdout.write(f"unknown directive {line!r}\n")
            stdout.flush()
            continue
        response = service.submit(line, engine=engine)
        stdout.write(protocol.encode(response).decode())
        stdout.flush()
