"""Entry point: ``python -m repro.serve``.

Modes:

* default -- listen on TCP and serve the line-JSON protocol.
* ``--repl`` -- read bare SQL from stdin (no network).
* ``--smoke`` -- self-contained concurrency check: start the service
  and a TCP server in-process, fire a concurrent batch of SQL requests
  over real sockets (every statement twice), then assert that all
  succeeded and that the repeats were served from the execution cache.
  This is the CI gate; it exits non-zero on any violation.
* ``--obs-smoke`` -- observability check: start the server, run a few
  queries (one traced), fetch ``metrics`` + ``slowlog`` over the
  socket and validate that the exposition parses and the trace covers
  the whole request path.  Also a CI gate.
"""

from __future__ import annotations

import argparse
import json

from repro.serve.client import QueryClient, run_batch
from repro.serve.server import QueryServer, run_repl
from repro.serve.service import QueryService, ServiceConfig


def _config(args: argparse.Namespace) -> ServiceConfig:
    return ServiceConfig(
        workers=args.workers,
        queue_depth=args.queue_depth,
        timeout_s=args.timeout,
        default_engine=args.engine,
        scale_factor=args.scale_factor,
        seed=args.seed,
        executor=args.executor,
        process_workers=args.process_workers,
    )


def _serve(args: argparse.Namespace) -> int:
    service = QueryService(_config(args)).start()
    server = QueryServer(service, host=args.host, port=args.port)
    host, port = server.address
    print(f"serving on {host}:{port} "
          f"(workers={args.workers}, queue={args.queue_depth})", flush=True)
    if args.ready_file:
        with open(args.ready_file, "w", encoding="utf-8") as handle:
            handle.write(f"{host} {port}\n")
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.stop()
    return 0


def _smoke_statements() -> list[str]:
    from repro.tpch.sql import GROUPBY_SQL, JOIN_SQL, TPCH_SQL, projection_sql

    statements = [projection_sql(degree) for degree in (1, 2, 3, 4)]
    statements += list(JOIN_SQL.values())
    statements.append(GROUPBY_SQL)
    statements += [TPCH_SQL["Q1"], TPCH_SQL["Q6"]]
    return statements


def _smoke(args: argparse.Namespace) -> int:
    engines = ("DBMS R", "DBMS C", "Typer", "Tectorwise")
    statements = _smoke_statements()
    requests = []
    for index in range(max(args.requests, 8)):
        requests.append({
            "sql": statements[index % len(statements)],
            "engine": engines[index % len(engines)],
        })
    config = _config(args)
    if config.queue_depth < len(requests):
        # The smoke asserts all-success; admission rejections are
        # exercised deterministically in tests/serve instead.
        config = ServiceConfig(**{**config.__dict__, "queue_depth": len(requests)})

    service = QueryService(config).start()
    server = QueryServer(service, host="127.0.0.1", port=0)
    host, port = server.address
    import threading

    listener = threading.Thread(target=server.serve_forever, daemon=True)
    listener.start()
    try:
        # Wave 1 concurrently, then the same statements again: wave 2
        # must be served from the execution cache.
        first = run_batch(host, port, requests, timeout=args.timeout)
        repeats = run_batch(host, port, requests, timeout=args.timeout)
    finally:
        server.shutdown()
        server.server_close()
        service.stop()

    responses = first + repeats
    failures = [r for r in responses if r.get("status") != "ok"]
    uncached_repeats = [r for r in repeats if not r.get("cached")]
    stats = service.stats_snapshot()
    print(json.dumps({"stats": stats}, indent=2, sort_keys=True))
    print(f"requests answered: {len(responses)} "
          f"({len(first)} concurrent unique + {len(repeats)} concurrent repeats)")
    if failures:
        print(f"FAIL: {len(failures)} non-ok responses; first: {failures[0]}")
        return 1
    # The cached-repeat invariant is a thread-executor property: the
    # process executor re-runs queries morsel-parallel in the pool,
    # where results merge fresh every time (and are bit-identical to
    # single-process runs by construction, asserted in tests/core).
    if args.executor == "thread" and uncached_repeats:
        print(f"FAIL: {len(uncached_repeats)} repeat responses were not "
              f"served from the execution cache; first: {uncached_repeats[0]}")
        return 1
    if args.executor == "thread":
        print("smoke OK: all responses ok, all repeats cache hits")
    else:
        print("smoke OK: all responses ok (process executor)")
    return 0


def _span_names(node: dict, into: set) -> set:
    into.add(node["name"])
    for child in node.get("children", ()):
        _span_names(child, into)
    return into


def _obs_smoke(args: argparse.Namespace) -> int:
    from repro.obs import parse_exposition

    service = QueryService(_config(args)).start()
    server = QueryServer(service, host="127.0.0.1", port=0)
    host, port = server.address
    import threading

    listener = threading.Thread(target=server.serve_forever, daemon=True)
    listener.start()
    statements = _smoke_statements()
    failures: list[str] = []
    try:
        with QueryClient(host, port, timeout=args.timeout) as client:
            responses = [
                client.query(statements[0], trace=True),
                client.query(statements[1]),
                client.query(statements[-1]),
            ]
            metrics = client.metrics()
            slowlog = client.slowlog()
    finally:
        server.shutdown()
        server.server_close()
        service.stop()

    for response in responses:
        if response.get("status") != "ok":
            failures.append(f"query failed: {response}")
    trace_tree = responses[0].get("trace")
    if not trace_tree:
        failures.append("traced query returned no trace")
    else:
        names = _span_names(trace_tree, set())
        missing = {
            "query", "admission", "plan_cache", "parse", "plan",
            "execute", "morsel", "serialize",
        } - names
        if missing:
            failures.append(f"trace is missing spans: {sorted(missing)}")
    try:
        samples = parse_exposition(metrics.get("metrics", ""))
    except ValueError as exc:
        failures.append(f"metrics exposition does not parse: {exc}")
        samples = {}
    for required in (
        "repro_queries_total",
        "repro_query_latency_seconds_bucket",
        "repro_plan_cache_misses_total",
        "repro_execcache_misses_total",
        "repro_queue_depth",
        "repro_service_workers",
    ):
        if not samples.get(required):
            failures.append(f"metrics exposition lacks {required}")
    if args.executor == "process" and not samples.get("repro_worker_morsels_total"):
        failures.append("metrics lack worker-pool morsel counters")
    entries = slowlog.get("slowlog") or []
    if len(entries) != len(responses):
        failures.append(
            f"slowlog has {len(entries)} entries, expected {len(responses)}"
        )
    latencies = [entry.get("latency_ms", 0.0) for entry in entries]
    if latencies != sorted(latencies, reverse=True):
        failures.append(f"slowlog is not sorted slowest-first: {latencies}")
    if not any(entry.get("trace") for entry in entries):
        failures.append("no slowlog entry carries a span tree")

    print(f"obs-smoke: {len(responses)} queries, "
          f"{sum(len(v) for k, v in samples.items() if k != '__types__')} "
          f"metric samples, {len(entries)} slowlog entries")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("obs-smoke OK: trace complete, exposition parses, slowlog ordered")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Concurrent SQL query service over the four engines.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7432,
                        help="TCP port (0 picks an ephemeral port)")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--queue-depth", type=int, default=16)
    parser.add_argument("--timeout", type=float, default=30.0,
                        help="per-request deadline in seconds")
    parser.add_argument("--engine", default="Typer",
                        help="default engine (DBMS R, DBMS C, Typer, Tectorwise)")
    parser.add_argument("--scale-factor", type=float, default=0.01)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--executor", choices=("thread", "process"),
                        default="thread",
                        help="query execution backend: GIL-bound service "
                             "threads, or a morsel-parallel process pool "
                             "with shared-memory columns")
    parser.add_argument("--process-workers", type=int, default=None,
                        help="process-pool size for --executor process "
                             "(default: auto)")
    parser.add_argument("--ready-file",
                        help="write 'host port' here once listening")
    parser.add_argument("--repl", action="store_true",
                        help="serve a stdin SQL REPL instead of TCP")
    parser.add_argument("--smoke", action="store_true",
                        help="run the in-process concurrency smoke test")
    parser.add_argument("--obs-smoke", action="store_true",
                        help="run the tracing/metrics/slowlog smoke test")
    parser.add_argument("--requests", type=int, default=12,
                        help="unique requests in the smoke batch (min 8)")
    args = parser.parse_args(argv)

    if args.smoke:
        return _smoke(args)
    if args.obs_smoke:
        return _obs_smoke(args)
    if args.repl:
        service = QueryService(_config(args)).start()
        try:
            run_repl(service)
        finally:
            service.stop()
        return 0
    return _serve(args)


if __name__ == "__main__":
    raise SystemExit(main())
