"""Concurrent query service: admission control + worker pool.

The service owns one generated database and one engine instance per
name; requests pick their engine (default configurable).  Admission is
a bounded queue -- a full queue rejects immediately with
``status="rejected"`` rather than building unbounded backlog -- and
every admitted request carries a deadline; a request that misses it
returns ``status="timeout"`` and is marked abandoned so a worker that
later pops it drops it instead of executing dead work.

Compiled plans are cached per normalized SQL text (the parse/plan/lower
pipeline is pure), and the engine executions themselves hit the
process-wide :mod:`repro.core.execcache`, so repeated statements -- the
common case for a profiling service -- cost one dictionary lookup plus
a result snapshot.  Responses carry ``cached`` so callers can see which
tier served them.
"""

from __future__ import annotations

import queue
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.obs import (
    Clock,
    DEFAULT_CLOCK,
    MetricsRegistry,
    SlowLog,
    Tracer,
    merge_snapshots,
    render_snapshot,
    trace,
)
from repro.serve.protocol import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_REJECTED,
    STATUS_TIMEOUT,
    jsonable,
)
from repro.sql import SqlError, compile_sql, normalize_sql


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one :class:`QueryService`."""

    workers: int = 4
    queue_depth: int = 16
    timeout_s: float = 30.0
    default_engine: str = "Typer"
    scale_factor: float = 0.01
    seed: int = 7
    #: "thread" executes on the admission threads (GIL-bound);
    #: "process" runs each query morsel-parallel across a persistent
    #: :class:`repro.core.parallel.WorkerPool` of spawned processes.
    executor: str = "thread"
    #: Process-pool size for ``executor="process"`` (None = auto).
    process_workers: int | None = None
    #: Bound on the compiled-plan LRU cache.
    plan_cache_size: int = 64
    #: How many of the slowest queries the slowlog retains.
    slowlog_capacity: int = 32
    #: True on services fronting one shard of a sharded database: the
    #: server then accepts the ``partial`` op (execute-and-stop-before-
    #: the-finisher, see :meth:`QueryService.execute_partial`).
    shard_node: bool = False

    def __post_init__(self) -> None:
        if self.executor not in ("thread", "process"):
            raise ValueError(
                f"unknown executor {self.executor!r}; use 'thread' or 'process'"
            )
        if self.plan_cache_size < 1:
            raise ValueError("plan_cache_size must be >= 1")
        if self.slowlog_capacity < 1:
            raise ValueError("slowlog_capacity must be >= 1")


@dataclass
class _Request:
    """One admitted query and its completion rendezvous."""

    sql: str
    engine_name: str
    options: dict
    submitted_at: float
    queued_depth: int
    tracer: Tracer | None = None
    done: threading.Event = field(default_factory=threading.Event)
    response: dict | None = None
    lock: threading.Lock = field(default_factory=threading.Lock)
    abandoned: bool = False


class ServiceStats:
    """Counters and latency percentiles, all under one lock."""

    KEEP_LATENCIES = 4096

    def __init__(self):
        self._lock = threading.Lock()
        self.submitted = 0
        self.ok = 0
        self.errors = 0
        self.rejected = 0
        self.timeouts = 0
        self.cache_hits = 0
        self._latencies_ms: list[float] = []

    def record(self, status: str, latency_ms: float | None, cached: bool) -> None:
        with self._lock:
            self.submitted += 1
            if status == STATUS_OK:
                self.ok += 1
            elif status == STATUS_REJECTED:
                self.rejected += 1
            elif status == STATUS_TIMEOUT:
                self.timeouts += 1
            else:
                self.errors += 1
            if cached:
                self.cache_hits += 1
            if latency_ms is not None:
                self._latencies_ms.append(latency_ms)
                if len(self._latencies_ms) > self.KEEP_LATENCIES:
                    del self._latencies_ms[: -self.KEEP_LATENCIES]

    def snapshot(self) -> dict:
        with self._lock:
            latencies = sorted(self._latencies_ms)
            summary = {}
            if latencies:
                def pct(p: float) -> float:
                    index = min(len(latencies) - 1, int(p * len(latencies)))
                    return round(latencies[index], 3)

                summary = {
                    "p50_ms": pct(0.50),
                    "p90_ms": pct(0.90),
                    "p99_ms": pct(0.99),
                    "max_ms": round(latencies[-1], 3),
                }
            return {
                "submitted": self.submitted,
                "ok": self.ok,
                "errors": self.errors,
                "rejected": self.rejected,
                "timeouts": self.timeouts,
                "cache_hits": self.cache_hits,
                "latency": summary,
            }


class QueryService:
    """Thread-pooled SQL execution over the four engines."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        db=None,
        clock: Clock | None = None,
    ):
        self.config = config or ServiceConfig()
        #: Every latency/span measurement in this service reads this
        #: clock; tests inject a FakeClock for deterministic timings.
        self.clock = clock or DEFAULT_CLOCK
        self._db = db
        self._db_lock = threading.Lock()
        self._engines: dict[str, object] = {}
        self._engines_lock = threading.Lock()
        self._plans: "OrderedDict[str, object]" = OrderedDict()
        self._plans_lock = threading.Lock()
        self.plan_hits = 0
        self.plan_misses = 0
        self.plan_evictions = 0
        self._pool = None
        self._pool_lock = threading.Lock()
        self._profiler = None
        self._profiler_lock = threading.Lock()
        self._queue: queue.Queue[_Request] = queue.Queue(
            maxsize=self.config.queue_depth
        )
        self.stats = ServiceStats()
        self.metrics = MetricsRegistry()
        self.slowlog = SlowLog(self.config.slowlog_capacity)
        self._pruning_lock = threading.Lock()
        self._pruning_totals = {
            "queries": 0,
            "queries_pruned": 0,
            "morsels_scanned": 0,
            "morsels_pruned": 0,
            "rows_pruned": 0,
            "bytes_pruned": 0,
        }
        self._rollup_lock = threading.Lock()
        self._rollup_totals = {
            "queries": 0,
            "routed": 0,
            "fallbacks": 0,
            "rows_read": 0,
            "base_rows_avoided": 0,
            "bytes_read": 0,
            "base_bytes_avoided": 0,
        }
        self._encoded_agg_lock = threading.Lock()
        self._encoded_agg_totals = {
            "queries": 0,
            "queries_code_domain": 0,
            "aggregates_code_domain": 0,
            "aggregates_decoded": 0,
        }
        self._compile_lock = threading.Lock()
        self._compile_totals = {
            "queries": 0,
            "joins": 0,
            "groups_emitted": 0,
        }
        self._chooser_lock = threading.Lock()
        self._chooser_totals = {
            "decisions": 0,
            "declined": 0,
            "chosen": {},
        }
        self._register_metrics()
        self._workers: list[threading.Thread] = []
        self._stop = threading.Event()

    def _register_metrics(self) -> None:
        """Declare this service's metric families up front so the
        exposition is complete even before the first query."""
        m = self.metrics
        self._m_queries = m.counter(
            "repro_queries_total", "Queries by engine and status",
            ("engine", "status"),
        )
        self._m_latency = m.histogram(
            "repro_query_latency_seconds", "End-to-end query latency", ("engine",)
        )
        self._m_plan_hits = m.counter(
            "repro_plan_cache_hits_total", "Plan-cache hits"
        )
        self._m_plan_misses = m.counter(
            "repro_plan_cache_misses_total", "Plan-cache misses"
        )
        self._m_plan_evictions = m.counter(
            "repro_plan_cache_evictions_total", "Plan-cache evictions"
        )
        self._m_plan_entries = m.gauge(
            "repro_plan_cache_entries", "Compiled plans currently cached"
        )
        self._m_exec_hits = m.counter(
            "repro_execcache_hits_total", "Execution-cache hits"
        )
        self._m_exec_misses = m.counter(
            "repro_execcache_misses_total", "Execution-cache misses"
        )
        self._m_exec_entries = m.gauge(
            "repro_execcache_entries", "Execution-cache entries"
        )
        self._m_queue_depth = m.gauge(
            "repro_queue_depth", "Requests waiting for admission"
        )
        self._m_workers = m.gauge(
            "repro_service_workers", "Admission worker threads"
        )
        self._m_pool_alive = m.gauge(
            "repro_pool_workers_alive", "Live morsel-pool worker processes"
        )
        self._m_pool_queries = m.counter(
            "repro_pool_queries_total", "Queries executed on the morsel pool"
        )
        self._m_prune_queries = m.counter(
            "repro_prune_queries_total",
            "Queries that skipped at least one morsel via zone maps",
        )
        self._m_prune_scanned = m.counter(
            "repro_prune_morsels_scanned_total",
            "Zone-map chunks scanned by prune-eligible queries",
        )
        self._m_prune_pruned = m.counter(
            "repro_prune_morsels_pruned_total",
            "Zone-map chunks skipped without scanning",
        )
        self._m_prune_rows = m.counter(
            "repro_prune_rows_pruned_total", "Rows skipped via zone maps"
        )
        self._m_rollup_routed = m.counter(
            "repro_rollup_routed_total",
            "Queries answered from a materialized rollup",
        )
        self._m_rollup_fallbacks = m.counter(
            "repro_rollup_fallbacks_total",
            "Rollup-eligible queries that fell back to base execution",
            ("reason",),
        )
        self._m_rollup_rows_read = m.counter(
            "repro_rollup_rows_read_total",
            "Pre-aggregated rollup rows read by routed queries",
        )
        self._m_rollup_rows_avoided = m.counter(
            "repro_rollup_base_rows_avoided_total",
            "Base-table rows routed queries did not scan",
        )
        self._m_rollup_tables = m.gauge(
            "repro_rollup_tables", "Rollup tables attached to the served database"
        )
        self._m_encoded_agg_queries = m.counter(
            "repro_encoded_agg_queries_total",
            "Queries that aggregated at least one measure in the code domain",
        )
        self._m_encoded_agg_aggregates = m.counter(
            "repro_encoded_agg_aggregates_total",
            "Aggregate slots by morph decision (code-domain vs decoded)",
            ("mode",),
        )
        self._m_compile_queries = m.counter(
            "repro_compile_queries_total",
            "Queries executed through a compiled kernel program",
        )
        self._m_compile_hits = m.counter(
            "repro_compile_cache_hits_total", "Compiled-program cache hits"
        )
        self._m_compile_misses = m.counter(
            "repro_compile_cache_misses_total",
            "Compiled-program cache misses (fresh compilations)",
        )
        self._m_compile_entries = m.gauge(
            "repro_compile_cache_entries", "Compiled programs currently cached"
        )
        self._m_chooser_decisions = m.counter(
            "repro_chooser_decisions_total",
            "Engine-chooser decisions by predicted-fastest route",
            ("chosen",),
        )
        self._m_chooser_declined = m.counter(
            "repro_chooser_declined_total",
            "Queries the engine chooser could not model",
        )

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "QueryService":
        if self._workers:
            raise RuntimeError("service already started")
        self._stop.clear()
        for index in range(self.config.workers):
            worker = threading.Thread(
                target=self._worker_loop, name=f"query-worker-{index}", daemon=True
            )
            worker.start()
            self._workers.append(worker)
        return self

    def stop(self) -> None:
        self._stop.set()
        for _ in self._workers:
            try:
                self._queue.put_nowait(None)  # wake blocked workers
            except queue.Full:
                break
        for worker in self._workers:
            worker.join(timeout=5.0)
        self._workers = []
        with self._pool_lock:
            if self._pool is not None:
                self._pool.close()
                self._pool = None

    def __enter__(self) -> "QueryService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def db(self):
        """The served database, generated lazily on first use."""
        with self._db_lock:
            if self._db is None:
                from repro.tpch import generate_database

                self._db = generate_database(
                    scale_factor=self.config.scale_factor, seed=self.config.seed
                )
            return self._db

    def engine(self, name: str):
        with self._engines_lock:
            if name not in self._engines:
                from repro.engines import engine_by_name

                self._engines[name] = engine_by_name(name)
            return self._engines[name]

    def pool(self):
        """The process executor's worker pool (created on first use so
        thread-mode services never spawn processes)."""
        with self._pool_lock:
            if self._pool is None:
                from repro.core.parallel import WorkerPool

                self._pool = WorkerPool(
                    self.db, n_workers=self.config.process_workers
                )
            return self._pool

    def compile(self, sql: str):
        """Compile with the per-service plan cache: an LRU bounded at
        ``config.plan_cache_size`` entries, keyed on normalized text so
        formatting differences share one plan."""
        key = normalize_sql(sql)
        with self._plans_lock:
            bound = self._plans.get(key)
            if bound is not None:
                self._plans.move_to_end(key)
                self.plan_hits += 1
                trace.annotate(outcome="hit")
                return bound
            self.plan_misses += 1
        trace.annotate(outcome="miss")
        bound = compile_sql(sql)
        with self._plans_lock:
            if key not in self._plans:
                self._plans[key] = bound
                while len(self._plans) > self.config.plan_cache_size:
                    self._plans.popitem(last=False)
                    self.plan_evictions += 1
            else:
                self._plans.move_to_end(key)
            bound = self._plans[key]
        return bound

    def execute_partial(self, method: str, kwargs_items: tuple, engine=None):
        """One shard's share of a scattered query: execute the already
        normalized call over this service's (shard) database and stop
        *before* the finisher, returning a still-mergeable partial
        QueryResult for the coordinator's exact cross-node merge.

        The coordinator lowered and normalized once; this node never
        parses SQL for scattered work.  Shard-aware reuse happens in
        :mod:`repro.shard.partial_exec`: zone-map pruning runs against
        this shard's own morsels, and rollup routing contributes
        ExactSum partials instead of finished (rounded) values.
        """
        if not self.config.shard_node:
            raise RuntimeError("execute_partial requires a shard_node service")
        from repro.shard import partial_exec

        engine_obj = self.engine(engine or self.config.default_engine)
        kwargs_items = tuple(kwargs_items)
        if self.config.executor == "process":
            partial, prune_summary, rollup_decision = partial_exec.pooled_partial(
                self.pool(), engine_obj, method, kwargs_items
            )
        else:
            partial, prune_summary, rollup_decision = partial_exec.thread_partial(
                self.db, engine_obj, method, kwargs_items
            )
        if prune_summary is not None:
            partial.details["pruning"] = prune_summary
            self._record_pruning(partial)
        if rollup_decision is not None:
            self._record_rollup(partial)
        return partial

    def queue_depth(self) -> int:
        return self._queue.qsize()

    def profiler(self):
        """The micro-arch profiler used to attach modeled TMAM costs
        (cycles, bytes) to ``execute`` spans."""
        with self._profiler_lock:
            if self._profiler is None:
                from repro.core.profiler import MicroArchProfiler

                self._profiler = MicroArchProfiler()
            return self._profiler

    # -- request path --------------------------------------------------
    def submit(
        self,
        sql: str,
        engine: str | None = None,
        options: dict | None = None,
        timeout: float | None = None,
        trace_query: bool = False,
    ) -> dict:
        """Run one statement; blocks the caller until a terminal status.

        ``trace_query=True`` attaches a span tree to the response (see
        :mod:`repro.obs.trace`); the default path stays untraced and
        pays only a ``None`` contextvar check at each instrumentation
        site.
        """
        deadline = timeout if timeout is not None else self.config.timeout_s
        engine_name = engine or self.config.default_engine
        tracer = None
        if trace_query:
            tracer = Tracer(clock=self.clock)
            tracer.start("query", sql=sql, engine=engine_name)
        request = _Request(
            sql=sql,
            engine_name=engine_name,
            options=dict(options or {}),
            submitted_at=self.clock.now(),
            queued_depth=self._queue.qsize(),
            tracer=tracer,
        )
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            response = self._finish(
                request,
                status=STATUS_REJECTED,
                error=(
                    f"admission queue full "
                    f"({self.config.queue_depth} requests queued)"
                ),
            )
            return response
        if request.done.wait(deadline):
            return request.response
        with request.lock:
            if request.done.is_set():  # finished while we took the lock
                return request.response
            request.abandoned = True
        return self._finish(
            request,
            status=STATUS_TIMEOUT,
            error=f"request missed its {deadline:.3f}s deadline",
        )

    def _finish(
        self, request: _Request, *, skip_if_abandoned: bool = False, **fields
    ) -> dict | None:
        """Publish a terminal response exactly once per request."""
        with request.lock:
            if request.done.is_set():
                return request.response
            if skip_if_abandoned and request.abandoned:
                return None  # the submitter already reported a timeout
            latency_ms = (self.clock.now() - request.submitted_at) * 1e3
            response = {
                "status": STATUS_ERROR,
                "engine": request.engine_name,
                "latency_ms": round(latency_ms, 3),
                "queued_depth": request.queued_depth,
                "cached": False,
                **fields,
            }
            if response.get("trace") is None:
                response.pop("trace", None)  # untraced responses stay as before
            status = response["status"]
            self.stats.record(
                status,
                latency_ms if status == STATUS_OK else None,
                bool(response.get("cached")),
            )
            self._m_queries.labels(engine=request.engine_name, status=status).inc()
            if status == STATUS_OK:
                self._m_latency.labels(engine=request.engine_name).observe(
                    latency_ms / 1e3
                )
            if status != STATUS_REJECTED:  # rejected queries never ran
                self.slowlog.record(
                    sql=request.sql,
                    engine=request.engine_name,
                    status=status,
                    latency_ms=latency_ms,
                    trace=response.get("trace"),
                )
            request.response = response
            request.done.set()
            return response

    # -- workers -------------------------------------------------------
    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            try:
                request = self._queue.get(timeout=0.2)
            except queue.Empty:
                continue
            if request is None:
                continue
            with request.lock:
                if request.abandoned:
                    continue
            self._execute(request)

    def _execute(self, request: _Request) -> None:
        tracer = request.tracer
        token = trace.activate(tracer, tracer.root) if tracer is not None else None
        try:
            self._execute_traced(request)
        finally:
            if token is not None:
                trace.deactivate(token)

    def _trace_dict(self, request: _Request) -> dict | None:
        """Finish and render the request's span tree, if it has one."""
        if request.tracer is None:
            return None
        return request.tracer.render()

    def _morsel_rows(self, bound, engine) -> int | None:
        """Row count the thread executor's single 'morsel' covers."""
        try:
            kwargs = bound.call_kwargs()
            kwargs["args"] = list(bound.args)
            return engine.partition_rows(self.db, bound.method, kwargs)
        except (ValueError, KeyError):
            return None

    def _thread_pruned(self, bound, engine, options: dict):
        """Execute on this thread with zone-map pruning, or return None
        when the normal path should run (pruning off, no prunable
        predicate summary, or nothing pruned).

        Emits a ``prune`` span whenever a summary was evaluated, so the
        decision -- including "kept everything" -- is visible in traces.
        """
        from repro.core import parallel, pruning

        if not pruning.pruning_enabled():
            return None
        merged = bound.call_kwargs()
        merged.update(options)
        try:
            method, kwargs_items = parallel.normalized_call(
                engine, bound.method, bound.args, merged
            )
        except ValueError:
            return None  # no morsel support: nothing to prune
        atoms = pruning.atoms_for(self.db, method, dict(kwargs_items))
        if not atoms:
            return None
        with trace.span("prune", executor="thread"):
            plan = pruning.compute_prune_plan(self.db, atoms)
            if plan is not None:
                trace.annotate(**plan.summary(self.db, method))
        if plan is None or plan.nothing_pruned:
            return None
        return pruning.execute_pruned(
            engine, self.db, method, dict(kwargs_items), plan
        )

    def _thread_routed(self, bound, engine, options: dict):
        """Try to answer on this thread from a materialized rollup.

        Returns ``(result, decision)`` from
        :func:`repro.rollup.router.attempt`: ``(None, None)`` when
        routing is inactive, ``(None, decision)`` on a reasoned
        fallback, a routed result otherwise."""
        from repro.core import parallel
        from repro.rollup import router

        merged = bound.call_kwargs()
        merged.update(options)
        try:
            method, kwargs_items = parallel.normalized_call(
                engine, bound.method, bound.args, merged
            )
        except ValueError:
            return None, None  # no morsel support: rollups target scans
        return router.attempt(
            self.db, engine, method, dict(kwargs_items), executor="thread"
        )

    def _record_rollup(self, result) -> None:
        """Fold one result's routing decision into service totals and
        the rollup metric family (both executors ship the decision in
        ``result.details['rollup']``)."""
        info = result.details.get("rollup")
        if not info:
            return
        routed = bool(info.get("rollup_used"))
        rows_read = int(info.get("rows_read", 0))
        rows_avoided = int(info.get("base_rows_avoided", 0))
        with self._rollup_lock:
            totals = self._rollup_totals
            totals["queries"] += 1
            if routed:
                totals["routed"] += 1
                totals["rows_read"] += rows_read
                totals["base_rows_avoided"] += rows_avoided
                totals["bytes_read"] += int(info.get("bytes_read", 0))
                totals["base_bytes_avoided"] += int(
                    info.get("base_bytes_avoided", 0)
                )
            else:
                totals["fallbacks"] += 1
        if routed:
            self._m_rollup_routed.inc()
            self._m_rollup_rows_read.inc(rows_read)
            self._m_rollup_rows_avoided.inc(rows_avoided)
        else:
            self._m_rollup_fallbacks.labels(
                reason=str(info.get("reason", "unknown"))
            ).inc()

    def _record_pruning(self, result) -> None:
        """Fold one result's pruning decision into service totals and
        the prune metric family (works for both executors: the decision
        rides in ``result.details['pruning']``)."""
        info = result.details.get("pruning")
        if not info:
            return
        pruned = int(info.get("morsels_pruned", 0))
        scanned = int(info.get("morsels_scanned", 0))
        rows_pruned = int(info.get("rows_pruned", 0))
        bytes_pruned = int(info.get("bytes_pruned", 0))
        with self._pruning_lock:
            totals = self._pruning_totals
            totals["queries"] += 1
            totals["queries_pruned"] += 1 if pruned else 0
            totals["morsels_scanned"] += scanned
            totals["morsels_pruned"] += pruned
            totals["rows_pruned"] += rows_pruned
            totals["bytes_pruned"] += bytes_pruned
        if pruned:
            self._m_prune_queries.inc()
        self._m_prune_scanned.inc(scanned)
        self._m_prune_pruned.inc(pruned)
        self._m_prune_rows.inc(rows_pruned)

    def _record_encoded_agg(self, result) -> None:
        """Fold one result's aggregation morph decision into service
        totals and the encoded-agg metric family (both executors ship
        the decision in ``result.details['encoded_agg']``)."""
        info = result.details.get("encoded_agg")
        if not info:
            return
        code_domain = int(info.get("code_domain", 0))
        decoded = int(info.get("decoded", 0))
        with self._encoded_agg_lock:
            totals = self._encoded_agg_totals
            totals["queries"] += 1
            totals["queries_code_domain"] += 1 if code_domain else 0
            totals["aggregates_code_domain"] += code_domain
            totals["aggregates_decoded"] += decoded
        if code_domain:
            self._m_encoded_agg_queries.inc()
            self._m_encoded_agg_aggregates.labels(mode="code-domain").inc(
                code_domain
            )
        if decoded:
            self._m_encoded_agg_aggregates.labels(mode="decoded").inc(decoded)

    def _record_compile(self, result, bound) -> None:
        """Fold one compiled-path execution into service totals and the
        compile metric family (the program summary rides in
        ``result.details['compiled']``)."""
        if bound.method != "run_compiled":
            return
        info = result.details.get("compiled") or {}
        with self._compile_lock:
            totals = self._compile_totals
            totals["queries"] += 1
            totals["joins"] += len(info.get("joins", ()))
            totals["groups_emitted"] += int(result.details.get("groups", 0))
        self._m_compile_queries.inc()

    def _chooser_decision(self, bound) -> dict:
        """The engine chooser's prediction for ``bound`` (a
        ``{"declined": reason}`` stub when the plan cannot be
        modelled).  Runs parent-side (both executors) so worker
        processes never pay for it."""
        from repro.compile.chooser import ChooserError, choose

        with trace.span("chooser"):
            try:
                decision = choose(self.db, bound)
            except ChooserError as exc:
                trace.annotate(outcome="declined")
                with self._chooser_lock:
                    self._chooser_totals["declined"] += 1
                self._m_chooser_declined.inc()
                return {"declined": str(exc)}
            trace.annotate(
                outcome="decided",
                chosen=decision["chosen"],
                predicted_cycles=decision["predicted_cycles"][decision["chosen"]],
            )
        with self._chooser_lock:
            totals = self._chooser_totals
            totals["decisions"] += 1
            chosen = decision["chosen"]
            totals["chosen"][chosen] = totals["chosen"].get(chosen, 0) + 1
        self._m_chooser_decisions.labels(chosen=decision["chosen"]).inc()
        return decision

    def explain(self, sql: str) -> dict:
        """Compile ``sql`` and report how it would run, without running
        it: the bound route (hand-wired template vs compiled kernel
        program), the program shape when compiled, and the engine
        chooser's predicted cycles per candidate route."""
        from repro.compile import CompileError, compile_enabled
        from repro.compile.program import compiled_program

        bound = self.compile(sql)
        report: dict = {
            "workload": bound.workload,
            "method": bound.method,
            "route": "compiled" if bound.method == "run_compiled" else "template",
            "binding": str(bound),
        }
        if bound.plan is not None and compile_enabled():
            try:
                report["program"] = compiled_program(bound.plan).describe()
            except CompileError as exc:
                report["program"] = None
                report["compile_declined"] = str(exc)
        report["chooser"] = self._chooser_decision(bound)
        return report

    def _execute_traced(self, request: _Request) -> None:
        tracing = request.tracer is not None
        if tracing:
            trace.record(
                "admission",
                request.submitted_at,
                self.clock.now(),
                queued_depth=request.queued_depth,
            )
        try:
            with trace.span("plan_cache"):
                bound = self.compile(request.sql)
            engine = self.engine(request.engine_name)
            with trace.span(
                "execute",
                engine=request.engine_name,
                executor=self.config.executor,
            ):
                if self.config.executor == "process":
                    merged = bound.call_kwargs()
                    merged.update(request.options)
                    result = self.pool().run_query(
                        engine, bound.method, *bound.args, **merged
                    )
                    self._m_pool_queries.inc()
                else:
                    result, rollup_decision = self._thread_routed(
                        bound, engine, request.options
                    )
                    if result is None:
                        result = self._thread_pruned(
                            bound, engine, request.options
                        )
                    if result is None and tracing:
                        # Thread mode runs the whole table as one morsel
                        # on this worker thread; record it in the same
                        # shape the process executor produces.
                        n_rows = self._morsel_rows(bound, engine)
                        with trace.span(
                            "morsel",
                            worker=threading.current_thread().name,
                            row_range=(0, n_rows) if n_rows is not None else None,
                            stolen=False,
                        ):
                            result = bound.execute(
                                engine, self.db, **request.options
                            )
                    elif result is None:
                        result = bound.execute(engine, self.db, **request.options)
                    if rollup_decision is not None and "rollup" not in result.details:
                        result.details["rollup"] = rollup_decision
                if "chooser" not in result.details:
                    result.details["chooser"] = self._chooser_decision(bound)
                if tracing:
                    trace.annotate(
                        cached=bool(result.details.get("cached")),
                        **self.profiler().span_attrs(engine, result),
                    )
            self._record_pruning(result)
            self._record_rollup(result)
            self._record_encoded_agg(result)
            self._record_compile(result, bound)
        except SqlError as exc:
            self._finish(
                request,
                skip_if_abandoned=True,
                status=STATUS_ERROR,
                error=str(exc),
                trace=self._trace_dict(request),
            )
            return
        except (ValueError, TypeError, RuntimeError) as exc:
            self._finish(
                request,
                skip_if_abandoned=True,
                status=STATUS_ERROR,
                error=str(exc),
                trace=self._trace_dict(request),
            )
            return
        with trace.span("serialize"):
            value = jsonable(result.value)
        self._finish(
            request,
            skip_if_abandoned=True,
            status=STATUS_OK,
            workload=bound.workload,
            method=bound.method,
            value=value,
            tuples=result.tuples,
            cached=bool(result.details.get("cached")),
            trace=self._trace_dict(request),
        )

    def _storage_stats(self) -> dict:
        """Storage shape of the served database: encoding state and
        logical vs stored bytes.  Never triggers generation -- an
        unserved database reports only the toggle."""
        from repro.storage import encoding_enabled

        stats: dict = {"encoding_enabled": encoding_enabled()}
        with self._db_lock:
            db = self._db
        if db is None:
            stats["database_loaded"] = False
            return stats
        encoded_columns = sum(
            1
            for name in db.table_names
            for column in db.table(name).column_names
            if db.table(name).encoding(column) is not None
        )
        stats.update(
            database_loaded=True,
            logical_bytes=db.nbytes,
            stored_bytes=db.encoded_nbytes,
            compression_ratio=round(db.nbytes / db.encoded_nbytes, 3)
            if db.encoded_nbytes
            else 1.0,
            encoded_columns=encoded_columns,
        )
        return stats

    def _pruning_stats(self) -> dict:
        """Zone-map pruning state and service-lifetime totals."""
        from repro.core.pruning import pruning_enabled

        with self._pruning_lock:
            totals = dict(self._pruning_totals)
        return {"enabled": pruning_enabled(), **totals}

    def _rollup_stats(self) -> dict:
        """Rollup routing state and service-lifetime totals.  Never
        triggers generation -- an unserved database reports only the
        toggle and counters."""
        from repro.rollup import rollups_enabled

        with self._db_lock:
            db = self._db
        stats: dict = {
            "enabled": rollups_enabled(),
            "tables": sorted(getattr(db, "rollup_names", ())) if db else [],
        }
        with self._rollup_lock:
            stats.update(self._rollup_totals)
        return stats

    def _encoded_agg_stats(self) -> dict:
        """Code-domain aggregation state and service-lifetime totals."""
        from repro.storage.encoding import encoded_agg_enabled

        with self._encoded_agg_lock:
            totals = dict(self._encoded_agg_totals)
        return {"enabled": encoded_agg_enabled(), **totals}

    def _compile_stats(self) -> dict:
        """Compiled-path state, program-cache counters and totals."""
        from repro.compile import compile_enabled
        from repro.compile.program import compile_cache_stats

        with self._compile_lock:
            totals = dict(self._compile_totals)
        return {
            "enabled": compile_enabled(),
            "cache": compile_cache_stats(),
            **totals,
        }

    def _chooser_stats(self) -> dict:
        """Engine-chooser decision totals."""
        with self._chooser_lock:
            totals = dict(self._chooser_totals)
            totals["chosen"] = dict(totals["chosen"])
        return totals

    def stats_snapshot(self) -> dict:
        snapshot = self.stats.snapshot()
        with self._plans_lock:
            snapshot["plan_cache_entries"] = len(self._plans)
            snapshot["plan_cache_hits"] = self.plan_hits
            snapshot["plan_cache"] = {
                "hits": self.plan_hits,
                "misses": self.plan_misses,
                "evictions": self.plan_evictions,
                "entries": len(self._plans),
                "capacity": self.config.plan_cache_size,
            }
        snapshot["queue_depth"] = self.queue_depth()
        snapshot["workers"] = self.config.workers
        snapshot["executor"] = self.config.executor
        snapshot["storage"] = self._storage_stats()
        snapshot["pruning"] = self._pruning_stats()
        snapshot["rollups"] = self._rollup_stats()
        snapshot["encoded_agg"] = self._encoded_agg_stats()
        snapshot["compile"] = self._compile_stats()
        snapshot["chooser"] = self._chooser_stats()
        with self._pool_lock:
            if self._pool is not None:
                snapshot["process_pool"] = {
                    "n_workers": self._pool.n_workers,
                    "queries_run": self._pool.queries_run,
                }
        return snapshot

    # -- observability -------------------------------------------------
    def _sync_mirrored_metrics(self) -> None:
        """Refresh metrics that mirror state owned elsewhere (plan
        cache, execcache, queue, pool) at scrape time."""
        from repro.compile.program import compile_cache_stats
        from repro.core.execcache import EXECUTION_CACHE

        compile_cache = compile_cache_stats()
        self._m_compile_hits.sync(compile_cache["hits"])
        self._m_compile_misses.sync(compile_cache["misses"])
        self._m_compile_entries.set(compile_cache["entries"])
        with self._plans_lock:
            self._m_plan_hits.sync(self.plan_hits)
            self._m_plan_misses.sync(self.plan_misses)
            self._m_plan_evictions.sync(self.plan_evictions)
            self._m_plan_entries.set(len(self._plans))
        self._m_exec_hits.sync(EXECUTION_CACHE.hits)
        self._m_exec_misses.sync(EXECUTION_CACHE.misses)
        self._m_exec_entries.set(len(EXECUTION_CACHE))
        self._m_queue_depth.set(self.queue_depth())
        self._m_workers.set(len(self._workers))
        with self._db_lock:
            db = self._db
        self._m_rollup_tables.set(len(getattr(db, "rollup_names", ())) if db else 0)

    def metrics_snapshot(self) -> dict:
        """This service's metrics merged with every pool worker
        process's registry snapshot (fetched over the result channel)."""
        self._sync_mirrored_metrics()
        worker_snapshots: list[dict] = []
        with self._pool_lock:
            pool = self._pool
        if pool is not None:
            self._m_pool_alive.set(
                sum(1 for process in pool._processes if process.is_alive())
            )
            worker_snapshots = pool.metrics_snapshots()
        else:
            self._m_pool_alive.set(0)
        return merge_snapshots([self.metrics.snapshot(), *worker_snapshots])

    def metrics_text(self) -> str:
        """Prometheus text exposition of :meth:`metrics_snapshot`."""
        return render_snapshot(self.metrics_snapshot())

    def slowlog_snapshot(self) -> list[dict]:
        """The N slowest queries (slowest first) with their traces."""
        return self.slowlog.snapshot()
