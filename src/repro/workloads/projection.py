"""Projection micro-benchmark driver (Section 3).

SUM() over one to four lineitem columns (l_extendedprice, l_discount,
l_tax, l_quantity), profiled per engine and degree.
"""

from __future__ import annotations

from repro.engines.base import Engine
from repro.core.profiler import MicroArchProfiler
from repro.core.report import ProfileReport

DEGREES = (1, 2, 3, 4)


def run_projection_sweep(
    db,
    engines,
    profiler: MicroArchProfiler,
    degrees=DEGREES,
    simd: bool = False,
) -> dict[str, dict[int, ProfileReport]]:
    """Profile every engine at every projectivity degree.

    Returns ``{engine name: {degree: ProfileReport}}``; engine result
    values are cross-checked to be identical before returning.
    """
    results: dict[str, dict[int, ProfileReport]] = {}
    reference_values: dict[int, float] = {}
    for engine in engines:
        per_degree = {}
        for degree in degrees:
            query = engine.run_projection(db, degree, simd=simd)
            reference = reference_values.setdefault(degree, query.value)
            if abs(query.value - reference) > 1e-6 * max(1.0, abs(reference)):
                raise AssertionError(
                    f"{engine.name} disagrees on projection p{degree}: "
                    f"{query.value} != {reference}"
                )
            per_degree[degree] = profiler.profile(engine, query)
        results[engine.name] = per_degree
    return results


def normalized_response_times(
    reports: dict[str, dict[int, ProfileReport]],
    degree: int = 4,
    base_engine: str = "Typer",
) -> dict[str, float]:
    """Figure 6: response time at ``degree`` normalised to one engine."""
    base = reports[base_engine][degree].cycles
    return {
        name: per_degree[degree].cycles / base
        for name, per_degree in reports.items()
    }
