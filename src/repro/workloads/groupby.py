"""Group-by micro-benchmark driver.

Section 2 mentions a group-by micro-benchmark that behaves like the
join at the micro-architectural level; Section 6 compares the *hash
chain statistics* of group-by and join hash tables: group-by chains
are much more irregular (lengths 0-7, mean 0.23, std 0.5) than join
chains (lengths 0-1, mean 0.44, std 0.49) because groups sharing a
common grouping attribute collide more than evenly-spread keys.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engines.base import Engine, JOIN_SPECS
from repro.engines.hashtable import ChainedHashTable, ChainStats, GroupByHashTable
from repro.core.profiler import MicroArchProfiler
from repro.core.report import ProfileReport


def run_groupby(
    db, engines, profiler: MicroArchProfiler
) -> dict[str, ProfileReport]:
    """Profile the group-by micro-benchmark on every engine."""
    results: dict[str, ProfileReport] = {}
    reference = None
    for engine in engines:
        query = engine.run_groupby(db)
        if reference is None:
            reference = query.value
        elif abs(query.value - reference) > 1e-6 * max(1.0, abs(reference)):
            raise AssertionError(f"{engine.name} disagrees on the group-by result")
        results[engine.name] = profiler.profile(engine, query)
    return results


@dataclass(frozen=True)
class ChainComparison:
    """Side-by-side hash-chain statistics (the Section 6 table)."""

    join: ChainStats
    groupby: ChainStats

    @property
    def groupby_more_irregular(self) -> bool:
        """The paper's observation: group-by chains are longer-tailed
        and relatively more dispersed than join chains."""
        if not self.join.mean or not self.groupby.mean:
            return False
        join_cv = self.join.std / self.join.mean
        groupby_cv = self.groupby.std / self.groupby.mean
        return self.groupby.max > self.join.max and groupby_cv > join_cv


def hash_chain_comparison(db) -> ChainComparison:
    """Build the large join's and the group-by micro-benchmark's hash
    tables and measure their chain-length distributions."""
    spec = JOIN_SPECS["large"]
    join_table = ChainedHashTable(db.table(spec.build_table)[spec.build_key])
    lineitem = db.table("lineitem")
    composite = lineitem["l_partkey"] * 4 + lineitem["l_returnflag"]
    group_table = GroupByHashTable(composite)
    return ChainComparison(join=join_table.chain_stats(), groupby=group_table.chain_stats())
