"""TPC-H query driver (Section 6).

Runs Q1, Q6, Q9 and Q18 on the profiled engines, cross-checking engine
results against the numpy reference implementations.
"""

from __future__ import annotations

import numpy as np

from repro.engines.base import Engine
from repro.tpch.queries import (
    PROFILED_QUERIES,
    q1_reference,
    q6_reference,
    q9_reference,
    q18_reference,
)
from repro.core.profiler import MicroArchProfiler
from repro.core.report import ProfileReport


def _check_q1(db, value) -> bool:
    reference = q1_reference(db)
    if isinstance(value, dict) and "sum_qty" in value:
        expected = sum(group["sum_qty"] for group in reference.values())
        return np.isclose(value["sum_qty"], expected, rtol=1e-9)
    # Interpreter engines return the reference grouping directly.
    return value == reference or len(value) == len(reference)


def _check_q6(db, value) -> bool:
    return np.isclose(float(value), q6_reference(db), rtol=1e-9)


def _check_q9(db, value) -> bool:
    reference = q9_reference(db)
    expected = sum(reference.values())
    if isinstance(value, dict):
        return np.isclose(sum(value.values()), expected, rtol=1e-6)
    return np.isclose(float(value), expected, rtol=1e-6)


def _check_q18(db, value) -> bool:
    reference = q18_reference(db)
    if isinstance(value, dict) and "winners" in value:
        return value["winners"] == len(reference)
    return len(value) == len(reference)


RESULT_CHECKS = {"Q1": _check_q1, "Q6": _check_q6, "Q9": _check_q9, "Q18": _check_q18}


def run_tpch(
    db,
    engines,
    profiler: MicroArchProfiler,
    queries=PROFILED_QUERIES,
    verify: bool = True,
) -> dict[str, dict[str, ProfileReport]]:
    """Profile each engine on each query.

    Returns ``{engine name: {query id: ProfileReport}}``.  With
    ``verify`` (default) every engine result is checked against the
    numpy reference implementation.
    """
    results: dict[str, dict[str, ProfileReport]] = {}
    for engine in engines:
        per_query = {}
        for query_id in queries:
            query = engine.run_tpch(db, query_id)
            if verify and not RESULT_CHECKS[query_id](db, query.value):
                raise AssertionError(
                    f"{engine.name} produced a wrong result for {query_id}"
                )
            per_query[query_id] = profiler.profile(engine, query)
        results[engine.name] = per_query
    return results


def run_predicated_q6(
    db, engine: Engine, profiler: MicroArchProfiler
) -> dict[str, ProfileReport]:
    """Section 7's predicated Q6 experiment for one engine."""
    branched = engine.run_q6(db)
    predicated = engine.run_q6(db, predicated=True)
    if not np.isclose(branched.value, predicated.value, rtol=1e-9):
        raise AssertionError(f"{engine.name} predicated Q6 result diverges")
    return {
        "branched": profiler.profile(engine, branched),
        "predicated": profiler.profile(engine, predicated),
    }
