"""Join micro-benchmark driver (Section 5).

Three hash joins of increasing size: supplier x nation (small),
partsupp x supplier (medium), lineitem x orders (large), each followed
by a SUM() over probe-side columns.
"""

from __future__ import annotations

from repro.engines.base import JOIN_SIZES, Engine
from repro.core.profiler import MicroArchProfiler
from repro.core.report import ProfileReport


def run_join_sweep(
    db,
    engines,
    profiler: MicroArchProfiler,
    sizes=JOIN_SIZES,
    simd: bool = False,
) -> dict[str, dict[str, ProfileReport]]:
    """Profile every engine at every join size, cross-checking results."""
    results: dict[str, dict[str, ProfileReport]] = {}
    reference_values: dict[str, float] = {}
    for engine in engines:
        per_size = {}
        for size in sizes:
            query = engine.run_join(db, size, simd=simd)
            reference = reference_values.setdefault(size, query.value)
            if abs(query.value - reference) > 1e-6 * max(1.0, abs(reference)):
                raise AssertionError(
                    f"{engine.name} disagrees on the {size} join: "
                    f"{query.value} != {reference}"
                )
            per_size[size] = profiler.profile(engine, query)
        results[engine.name] = per_size
    return results


def join_chain_stats(db, engine: Engine, size: str = "large"):
    """Measured hash-chain statistics of one join's build table
    (Section 6's chain-length discussion)."""
    return engine.run_join(db, size).details["chain_stats"]


def normalized_large_join(
    reports: dict[str, dict[str, ProfileReport]],
    base_engine: str = "Typer",
) -> dict[str, float]:
    """Figure 14 (right): large-join response normalised to Typer."""
    base = reports[base_engine]["large"].cycles
    return {name: per_size["large"].cycles / base for name, per_size in reports.items()}
