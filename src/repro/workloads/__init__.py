"""Experiment drivers for the paper's micro-benchmarks and TPC-H runs."""

from repro.workloads.projection import (
    DEGREES,
    normalized_response_times,
    run_projection_sweep,
)
from repro.workloads.selection import run_predication_comparison, run_selection_sweep
from repro.workloads.join import join_chain_stats, normalized_large_join, run_join_sweep
from repro.workloads.groupby import ChainComparison, hash_chain_comparison, run_groupby
from repro.workloads.tpch_queries import run_predicated_q6, run_tpch

__all__ = [
    "ChainComparison",
    "DEGREES",
    "hash_chain_comparison",
    "join_chain_stats",
    "normalized_large_join",
    "normalized_response_times",
    "run_groupby",
    "run_join_sweep",
    "run_predicated_q6",
    "run_predication_comparison",
    "run_projection_sweep",
    "run_selection_sweep",
    "run_tpch",
]
