"""Selection micro-benchmark driver (Sections 4 and 7).

The projection query of degree four behind three predicates over
l_shipdate, l_commitdate and l_receiptdate, with per-predicate
selectivity swept over 10%, 50% and 90%; Section 7 compares the
branched and predicated (branch-free) variants.
"""

from __future__ import annotations

from repro.engines.base import SELECTION_SELECTIVITIES, Engine
from repro.core.profiler import MicroArchProfiler
from repro.core.report import ProfileReport


def run_selection_sweep(
    db,
    engines,
    profiler: MicroArchProfiler,
    selectivities=SELECTION_SELECTIVITIES,
    predicated: bool = False,
    simd: bool = False,
) -> dict[str, dict[float, ProfileReport]]:
    """Profile every engine at every selectivity.

    Returns ``{engine name: {selectivity: ProfileReport}}`` with result
    values cross-checked across engines.
    """
    results: dict[str, dict[float, ProfileReport]] = {}
    reference_values: dict[float, float] = {}
    for engine in engines:
        per_selectivity = {}
        for selectivity in selectivities:
            query = engine.run_selection(
                db, selectivity, predicated=predicated, simd=simd
            )
            reference = reference_values.setdefault(selectivity, query.value)
            if abs(query.value - reference) > 1e-6 * max(1.0, abs(reference)):
                raise AssertionError(
                    f"{engine.name} disagrees on selection "
                    f"{selectivity:.0%}: {query.value} != {reference}"
                )
            per_selectivity[selectivity] = profiler.profile(engine, query)
        results[engine.name] = per_selectivity
    return results


def run_predication_comparison(
    db,
    engine: Engine,
    profiler: MicroArchProfiler,
    selectivities=SELECTION_SELECTIVITIES,
) -> dict[float, dict[str, ProfileReport]]:
    """Figures 17-21: branched vs branch-free selection per selectivity.

    Returns ``{selectivity: {"branched": report, "predicated": report}}``.
    """
    comparison: dict[float, dict[str, ProfileReport]] = {}
    for selectivity in selectivities:
        branched = engine.run_selection(db, selectivity, predicated=False)
        predicated = engine.run_selection(db, selectivity, predicated=True)
        if abs(branched.value - predicated.value) > 1e-6 * max(1.0, abs(branched.value)):
            raise AssertionError(
                f"{engine.name} branched/predicated results diverge at "
                f"{selectivity:.0%}"
            )
        comparison[selectivity] = {
            "branched": profiler.profile(engine, branched),
            "predicated": profiler.profile(engine, predicated),
        }
    return comparison
