"""The micro-architectural profiler: the paper's measurement harness.

Where the paper wraps each query in a VTune collection run, this
profiler wraps an engine execution: it runs the query (for real),
collects the measured :class:`~repro.core.workprofile.WorkProfile` and
turns it into a :class:`~repro.core.report.ProfileReport` carrying the
TMAM cycle breakdown, response time and bandwidth utilisation.
"""

from __future__ import annotations

from repro.engines.base import Engine, QueryResult
from repro.hardware.spec import BROADWELL, ServerSpec
from repro.core.bandwidth import BandwidthEstimator
from repro.core.cyclemodel import CalibrationParams, CycleModel, ExecutionContext
from repro.core.report import ProfileReport


class MicroArchProfiler:
    """Profiles engine executions on a modelled server."""

    def __init__(
        self,
        spec: ServerSpec = BROADWELL,
        params: CalibrationParams | None = None,
        context: ExecutionContext | None = None,
    ):
        self.spec = spec
        self.model = CycleModel(spec, params)
        self.estimator = BandwidthEstimator(self.model)
        self.context = context or ExecutionContext()

    def profile(
        self,
        engine: Engine | str,
        result: QueryResult,
        context: ExecutionContext | None = None,
    ) -> ProfileReport:
        """Turn a finished execution into a profile report."""
        context = context or self.context
        engine_name = engine if isinstance(engine, str) else engine.name
        breakdown = self.model.breakdown(result.work, context)
        bandwidth = self.estimator.usage(result.work, breakdown, context)
        return ProfileReport(
            engine=engine_name,
            workload=result.workload,
            breakdown=breakdown,
            bandwidth=bandwidth,
            work=result.work,
            spec=self.spec,
            threads=context.threads,
            cached=bool(result.details.get("cached", False)),
        )

    def span_attrs(
        self,
        engine: Engine | str,
        result: QueryResult,
        context: ExecutionContext | None = None,
    ) -> dict:
        """Modeled-cost attributes for a trace span.

        The observability layer attaches these to each query's
        ``execute`` span so measured wall-clock time and the paper's
        modeled TMAM cost sit side by side in one tree.
        """
        report = self.profile(engine, result, context)
        work = result.work
        return {
            "tuples": int(result.tuples),
            "instructions": float(work.instructions),
            "streamed_bytes": float(work.streamed_bytes),
            "random_bytes": float(work.random_bytes),
            "modeled_cycles": float(report.cycles),
            "modeled_ms": float(report.response_time_ms),
        }

    def run(
        self,
        engine: Engine,
        method: str,
        *args,
        context: ExecutionContext | None = None,
        **kwargs,
    ) -> ProfileReport:
        """Execute ``engine.<method>(*args, **kwargs)`` and profile it.

        Example::

            profiler.run(TyperEngine(), "run_projection", db, 4)
        """
        runner = getattr(engine, method)
        result = runner(*args, **kwargs)
        if not isinstance(result, QueryResult):
            raise TypeError(f"{method} did not return a QueryResult")
        return self.profile(engine, result, context)

    def operator_reports(
        self,
        engine: Engine | str,
        result: QueryResult,
        context: ExecutionContext | None = None,
    ) -> dict[str, ProfileReport]:
        """Per-operator reports for executions that recorded them.

        Each operator's profile is accounted independently, matching
        how the paper profiles operators through the micro-benchmarks
        (Section 6: operator behaviour predicts query behaviour).  Note
        that the components are not strictly additive across operators:
        profile-wide effects (bandwidth floors, compute/memory overlap)
        are evaluated per profile.
        """
        context = context or self.context
        engine_name = engine if isinstance(engine, str) else engine.name
        operators = result.operator_work
        if not operators:
            raise ValueError(
                f"{result.workload} recorded no per-operator profiles"
            )
        reports = {}
        for name, profile in operators.items():
            breakdown = self.model.breakdown(profile, context)
            bandwidth = self.estimator.usage(profile, breakdown, context)
            reports[name] = ProfileReport(
                engine=engine_name,
                workload=f"{result.workload}/{name}",
                breakdown=breakdown,
                bandwidth=bandwidth,
                work=profile,
                spec=self.spec,
                threads=context.threads,
                cached=bool(result.details.get("cached", False)),
            )
        return reports
