"""Measured execution work, the input to the cycle-accounting model.

While a real VTune run samples hardware counters, this reproduction
measures the *work* a query execution performs -- retired instructions,
operation mix, bytes streamed, random-access patterns, branch outcome
statistics -- during actual engine execution, and feeds it to
:mod:`repro.core.cyclemodel` which plays the role of the Broadwell
micro-architecture.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hardware.ports import OpCounts


@dataclass
class BranchStream:
    """One static branch and the outcome statistics of its dynamic
    executions (e.g. one selection predicate's pass/fail stream)."""

    name: str
    count: float
    taken_fraction: float
    #: Optional measured misprediction rate (e.g. from the gshare trace
    #: simulator); when None the cycle model applies the analytic
    #: two-bit-counter rate to ``taken_fraction``.
    mispredict_rate: float | None = None

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("branch count must be non-negative")
        if not 0.0 <= self.taken_fraction <= 1.0:
            raise ValueError("taken_fraction must be in [0, 1]")
        if self.mispredict_rate is not None and not 0.0 <= self.mispredict_rate <= 1.0:
            raise ValueError("mispredict_rate must be in [0, 1]")


@dataclass
class SparseScanPattern:
    """A scan that touches a fraction of the lines of a contiguous
    region (e.g. a gather through a selection vector).

    ``density`` is the fraction of cache lines touched.  Low densities
    break the hardware prefetchers' streams; mid densities make them
    overshoot (Figure 21's "most confusing at 50%" effect).

    Gathers recorded through :meth:`WorkProfile.record_gather`
    additionally carry the integer line counts and the region size the
    density was derived from.  Those integers merge exactly across
    row-range morsels (cache lines never straddle an aligned morsel
    boundary), which is what makes merged sparse-scan accounting
    bit-identical to a single-shot run.
    """

    name: str
    bytes_touched: float
    density: float
    #: Integer accounting behind ``density`` (None for scans recorded
    #: directly via :meth:`WorkProfile.record_sparse_scan`).
    touched_lines: float | None = None
    total_lines: float | None = None
    region_bytes: float | None = None

    def __post_init__(self) -> None:
        if self.bytes_touched < 0:
            raise ValueError("bytes_touched must be non-negative")
        if self.touched_lines is None:
            # Directly recorded scans must be non-empty; gathers may be
            # zero-count congruence placeholders (pruned at finalize).
            if not 0.0 < self.density <= 1.0:
                raise ValueError("density must be in (0, 1]")
        elif not 0.0 <= self.density <= 1.0:
            raise ValueError("density must be in [0, 1]")


@dataclass
class RandomAccessPattern:
    """A batch of random accesses into one data structure.

    ``dependent`` marks pointer-chasing accesses (hash-chain walks)
    whose latencies serialise; independent probes overlap up to the
    line-fill-buffer limit.
    """

    name: str
    count: float
    working_set_bytes: float
    dependent: bool = False
    #: Optional memory-level-parallelism hint: SIMD gather instructions
    #: issue several probes at once (Section 8.2), raising the MLP the
    #: cycle model may assume for this pattern.
    mlp_hint: float | None = None

    def __post_init__(self) -> None:
        if self.count < 0 or self.working_set_bytes < 0:
            raise ValueError("count and working set must be non-negative")
        if self.mlp_hint is not None and self.mlp_hint < 1.0:
            raise ValueError("mlp_hint must be >= 1")


@dataclass
class WorkProfile:
    """Everything the profiler measured about one query execution.

    Engines build this while executing; sizes are totals over the whole
    run (single thread).  ``seq_*_bytes`` is DRAM-destined streaming
    traffic (table columns / pages); cache-resident intermediate
    traffic (Tectorwise's vectors) is tracked separately because it
    costs instructions and L1 cycles but no DRAM bandwidth.
    """

    label: str = ""
    tuples: int = 0
    instructions: float = 0.0
    alu_ops: float = 0.0
    load_ops: float = 0.0
    store_ops: float = 0.0
    simd_ops: float = 0.0
    hash_ops: float = 0.0
    #: Serially dependent long-latency operations: FP reduction
    #: (accumulator) chains and pointer-following interpreter dispatch.
    #: Each costs the chain-op latency (~an FP add).
    chain_ops: float = 0.0
    seq_read_bytes: float = 0.0
    seq_write_bytes: float = 0.0
    cached_read_bytes: float = 0.0
    cached_write_bytes: float = 0.0
    #: Number of load/store *events* moving the cached intermediate
    #: traffic; SIMD moves the same bytes in 8x fewer accesses, which
    #: is why vector materialisation stalls shrink under AVX-512.
    cached_access_events: float = 0.0
    random_patterns: list[RandomAccessPattern] = field(default_factory=list)
    sparse_scans: list[SparseScanPattern] = field(default_factory=list)
    branch_streams: list[BranchStream] = field(default_factory=list)
    #: Approximate bytes of hot code; drives Icache/Decoding pressure.
    code_footprint_bytes: float = 4096.0
    #: Effective instruction-level parallelism of the code: dependency-
    #: laden interpreter code cannot fill the 4-wide core; the gap is
    #: core-bound (Execution) stall time.  None means issue-width ILP.
    effective_ilp: float | None = None
    #: Deferred work units (see :meth:`record_pending`): exactly
    #: mergeable counts whose non-dyadic per-unit instruction costs the
    #: owning engine applies once, at finalization.  Empty on every
    #: published profile.
    pending: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Recording API used by the engines
    # ------------------------------------------------------------------
    def record_work(
        self,
        instructions: float = 0.0,
        alu: float = 0.0,
        loads: float = 0.0,
        stores: float = 0.0,
        simd: float = 0.0,
        hash_ops: float = 0.0,
        chain: float = 0.0,
    ) -> None:
        """Add instruction/operation counts."""
        if min(instructions, alu, loads, stores, simd, hash_ops, chain) < 0:
            raise ValueError("work counts must be non-negative")
        self.instructions += instructions
        self.alu_ops += alu
        self.load_ops += loads
        self.store_ops += stores
        self.simd_ops += simd
        self.hash_ops += hash_ops
        self.chain_ops += chain

    def record_sequential_read(self, n_bytes: float) -> None:
        """DRAM-destined streaming read traffic (column/page scans)."""
        if n_bytes < 0:
            raise ValueError("bytes must be non-negative")
        self.seq_read_bytes += n_bytes

    def record_sequential_write(self, n_bytes: float) -> None:
        """DRAM-destined streaming write traffic."""
        if n_bytes < 0:
            raise ValueError("bytes must be non-negative")
        self.seq_write_bytes += n_bytes

    def record_cached_traffic(
        self, read: float = 0.0, write: float = 0.0, access_bytes: float = 8.0
    ) -> None:
        """Cache-resident intermediate traffic (vectorized engines'
        vectors): costs instructions/L1 cycles, not DRAM bandwidth.
        ``access_bytes`` is the width of one access (8 for scalar
        loads/stores, 64 for AVX-512)."""
        if read < 0 or write < 0:
            raise ValueError("bytes must be non-negative")
        if access_bytes <= 0:
            raise ValueError("access_bytes must be positive")
        self.cached_read_bytes += read
        self.cached_write_bytes += write
        self.cached_access_events += (read + write) / access_bytes

    def record_random(
        self,
        name: str,
        count: float,
        working_set_bytes: float,
        dependent: bool = False,
        mlp_hint: float | None = None,
    ) -> None:
        """A batch of random accesses into one structure."""
        self.random_patterns.append(
            RandomAccessPattern(name, count, working_set_bytes, dependent, mlp_hint)
        )

    def record_sparse_scan(self, name: str, bytes_touched: float, density: float) -> None:
        """A gather/strided scan touching ``density`` of a region's lines."""
        self.sparse_scans.append(SparseScanPattern(name, bytes_touched, density))

    def record_branch_stream(
        self,
        name: str,
        count: float,
        taken_fraction: float,
        mispredict_rate: float | None = None,
    ) -> None:
        self.branch_streams.append(
            BranchStream(name, count, taken_fraction, mispredict_rate)
        )

    def record_branch_outcomes(self, name: str, outcomes: np.ndarray) -> None:
        """Record a branch from its actual boolean outcome stream."""
        count = len(outcomes)
        taken = float(np.count_nonzero(outcomes)) / count if count else 0.0
        self.record_branch_stream(name, count, taken)

    def record_gather(
        self, name: str, region_bytes: float, touched_lines: int, total_lines: int
    ) -> None:
        """A gather through a selection vector, in integer cache-line
        counts.  ``bytes_touched``/``density`` follow the same formula
        as :func:`repro.engines.base.line_density`-based recording, but
        the integers are kept so morsel partials merge exactly."""
        if total_lines > 0 and touched_lines > 0:
            density = min(1.0, touched_lines / total_lines)
        elif touched_lines > 0:
            density = 1.0
        else:
            density = 0.0
        self.sparse_scans.append(
            SparseScanPattern(
                name,
                density * region_bytes,
                density,
                touched_lines=touched_lines,
                total_lines=total_lines,
                region_bytes=region_bytes,
            )
        )

    def record_pending(self, key: str, amount: float) -> None:
        """Defer work whose per-unit cost is not exactly representable.

        Morsel partials accumulate the (dyadic, exactly mergeable)
        ``amount`` here; the engine's finalizer converts the merged
        total into instruction counts once, so any partitioning yields
        the same rounding as a single-shot run.
        """
        if amount < 0:
            raise ValueError("pending amounts must be non-negative")
        self.pending[key] = self.pending.get(key, 0.0) + amount

    def drop_negligible(self) -> None:
        """Remove entries below one dynamic event.

        Morsel partials record every stream unconditionally (including
        zero-count ones) so partial lists stay congruent and merge
        positionally; finalization prunes the entries the engines'
        single-shot guards would have skipped.
        """
        self.random_patterns = [
            pattern for pattern in self.random_patterns if pattern.count >= 1.0
        ]
        self.branch_streams = [
            stream for stream in self.branch_streams if stream.count >= 1.0
        ]
        self.sparse_scans = [
            scan for scan in self.sparse_scans if scan.bytes_touched > 0.0
        ]

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def ops(self) -> OpCounts:
        return OpCounts(
            alu_ops=self.alu_ops,
            load_ops=self.load_ops,
            store_ops=self.store_ops,
            simd_ops=self.simd_ops,
            hash_ops=self.hash_ops,
        )

    @property
    def seq_bytes(self) -> float:
        return self.seq_read_bytes + self.seq_write_bytes

    @property
    def sparse_bytes(self) -> float:
        return sum(scan.bytes_touched for scan in self.sparse_scans)

    @property
    def streamed_bytes(self) -> float:
        """All DRAM-destined streaming traffic (dense + sparse scans)."""
        return self.seq_bytes + self.sparse_bytes

    @property
    def random_access_count(self) -> float:
        return sum(pattern.count for pattern in self.random_patterns)

    @property
    def random_bytes(self) -> float:
        """Memory traffic of the random accesses (one line each,
        counting only accesses whose working set exceeds the L1)."""
        return self.random_access_count * 64.0

    def instructions_per_tuple(self) -> float:
        return self.instructions / self.tuples if self.tuples else 0.0

    def merge(self, other: "WorkProfile") -> None:
        """Fold another profile (e.g. one operator's) into this one."""
        self.tuples += other.tuples
        self.instructions += other.instructions
        self.alu_ops += other.alu_ops
        self.load_ops += other.load_ops
        self.store_ops += other.store_ops
        self.simd_ops += other.simd_ops
        self.hash_ops += other.hash_ops
        self.chain_ops += other.chain_ops
        self.seq_read_bytes += other.seq_read_bytes
        self.seq_write_bytes += other.seq_write_bytes
        self.cached_read_bytes += other.cached_read_bytes
        self.cached_write_bytes += other.cached_write_bytes
        self.cached_access_events += other.cached_access_events
        self.random_patterns.extend(other.random_patterns)
        self.sparse_scans.extend(other.sparse_scans)
        self.branch_streams.extend(other.branch_streams)
        for key, amount in other.pending.items():
            self.pending[key] = self.pending.get(key, 0.0) + amount
        self.code_footprint_bytes = max(
            self.code_footprint_bytes, other.code_footprint_bytes
        )
        if other.effective_ilp is not None:
            self.effective_ilp = (
                other.effective_ilp
                if self.effective_ilp is None
                else min(self.effective_ilp, other.effective_ilp)
            )

    # ------------------------------------------------------------------
    # Morsel partials (repro.core.parallel)
    # ------------------------------------------------------------------
    def merge_partial(self, other: "WorkProfile") -> None:
        """Fold another *morsel partial* of the same execution into this
        one, exactly.

        Unlike :meth:`merge` (which concatenates operator profiles),
        partials of one execution record the *same* sequence of
        patterns/streams -- engines record unconditionally in morsel
        mode, keeping zero-count placeholders -- so the lists combine
        positionally and every scalar merges by exact addition (engines
        only record dyadic quantities per morsel; non-dyadic costs ride
        in :attr:`pending`).  The result is bit-identical to recording
        the union of the morsels' rows in one shot, for any
        partitioning and any merge order.
        """
        self.tuples += other.tuples
        self.instructions += other.instructions
        self.alu_ops += other.alu_ops
        self.load_ops += other.load_ops
        self.store_ops += other.store_ops
        self.simd_ops += other.simd_ops
        self.hash_ops += other.hash_ops
        self.chain_ops += other.chain_ops
        self.seq_read_bytes += other.seq_read_bytes
        self.seq_write_bytes += other.seq_write_bytes
        self.cached_read_bytes += other.cached_read_bytes
        self.cached_write_bytes += other.cached_write_bytes
        self.cached_access_events += other.cached_access_events
        for name in ("random_patterns", "sparse_scans", "branch_streams"):
            ours, theirs = getattr(self, name), getattr(other, name)
            if len(ours) != len(theirs):
                raise ValueError(
                    f"partial profiles are not congruent: "
                    f"{len(ours)} vs {len(theirs)} {name}"
                )
        self.random_patterns = [
            _merge_random(a, b)
            for a, b in zip(self.random_patterns, other.random_patterns)
        ]
        self.sparse_scans = [
            _merge_sparse(a, b)
            for a, b in zip(self.sparse_scans, other.sparse_scans)
        ]
        self.branch_streams = [
            _merge_branch(a, b)
            for a, b in zip(self.branch_streams, other.branch_streams)
        ]
        for key, amount in other.pending.items():
            self.pending[key] = self.pending.get(key, 0.0) + amount
        self.code_footprint_bytes = max(
            self.code_footprint_bytes, other.code_footprint_bytes
        )
        if other.effective_ilp is not None:
            self.effective_ilp = (
                other.effective_ilp
                if self.effective_ilp is None
                else min(self.effective_ilp, other.effective_ilp)
            )

    def scaled(self, factor: float) -> "WorkProfile":
        """A copy with all volume quantities scaled (e.g. per-thread
        share of a multi-core run)."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return WorkProfile(
            label=self.label,
            tuples=int(self.tuples * factor),
            instructions=self.instructions * factor,
            alu_ops=self.alu_ops * factor,
            load_ops=self.load_ops * factor,
            store_ops=self.store_ops * factor,
            simd_ops=self.simd_ops * factor,
            hash_ops=self.hash_ops * factor,
            chain_ops=self.chain_ops * factor,
            seq_read_bytes=self.seq_read_bytes * factor,
            seq_write_bytes=self.seq_write_bytes * factor,
            cached_read_bytes=self.cached_read_bytes * factor,
            cached_write_bytes=self.cached_write_bytes * factor,
            cached_access_events=self.cached_access_events * factor,
            random_patterns=[
                RandomAccessPattern(
                    pattern.name,
                    pattern.count * factor,
                    pattern.working_set_bytes,
                    pattern.dependent,
                    pattern.mlp_hint,
                )
                for pattern in self.random_patterns
            ],
            sparse_scans=[
                SparseScanPattern(
                    scan.name,
                    scan.bytes_touched * factor,
                    scan.density,
                    touched_lines=None if scan.touched_lines is None
                    else scan.touched_lines * factor,
                    total_lines=None if scan.total_lines is None
                    else scan.total_lines * factor,
                    region_bytes=None if scan.region_bytes is None
                    else scan.region_bytes * factor,
                )
                for scan in self.sparse_scans
            ],
            branch_streams=[
                BranchStream(
                    stream.name,
                    stream.count * factor,
                    stream.taken_fraction,
                    stream.mispredict_rate,
                )
                for stream in self.branch_streams
            ],
            code_footprint_bytes=self.code_footprint_bytes,
            effective_ilp=self.effective_ilp,
            pending={key: amount * factor for key, amount in self.pending.items()},
        )

    def with_sequential_scaled(self, factor: float) -> "WorkProfile":
        """A copy whose *sequential read* traffic is scaled by
        ``factor`` while every other quantity -- instruction mix,
        writes, gathers, random patterns, branch streams -- is
        untouched.

        ``factor < 1`` models the same operator streaming compressed
        column widths instead of full-width values
        (:mod:`repro.storage.encoding`): the work stays identical, only
        the bytes the scan drags through the hierarchy shrink.  This is
        the opt-in side channel behind the ``sec8-compression`` figure;
        recorded profiles themselves always account logical widths,
        which is what keeps encoded and raw execution bit-identical.
        """
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        clone = self.scaled(1.0)
        clone.seq_read_bytes = self.seq_read_bytes * factor
        return clone


def _merge_random(
    a: RandomAccessPattern, b: RandomAccessPattern
) -> RandomAccessPattern:
    if a.name != b.name:
        raise ValueError(f"partial pattern mismatch: {a.name!r} vs {b.name!r}")
    primary = a if a.count >= b.count else b
    if (
        a.count > 0
        and b.count > 0
        and (a.working_set_bytes, a.dependent, a.mlp_hint)
        != (b.working_set_bytes, b.dependent, b.mlp_hint)
    ):
        raise ValueError(f"partial pattern {a.name!r} parameters diverge")
    return RandomAccessPattern(
        a.name,
        a.count + b.count,
        primary.working_set_bytes,
        primary.dependent,
        primary.mlp_hint,
    )


def _merge_sparse(a: SparseScanPattern, b: SparseScanPattern) -> SparseScanPattern:
    if a.name != b.name:
        raise ValueError(f"partial sparse scan mismatch: {a.name!r} vs {b.name!r}")
    if a.touched_lines is None or b.touched_lines is None:
        raise ValueError(
            f"sparse scan {a.name!r} lacks line counts; morsel partials "
            f"must record gathers via record_gather()"
        )
    touched = a.touched_lines + b.touched_lines
    total = a.total_lines + b.total_lines
    region = a.region_bytes + b.region_bytes
    if total > 0 and touched > 0:
        density = min(1.0, touched / total)
    elif touched > 0:
        density = 1.0
    else:
        density = 0.0
    return SparseScanPattern(
        a.name,
        density * region,
        density,
        touched_lines=touched,
        total_lines=total,
        region_bytes=region,
    )


def _merge_branch(a: BranchStream, b: BranchStream) -> BranchStream:
    """Exact merge of one static branch's per-morsel outcome statistics.

    Contract: across the morsels of one execution a stream's
    ``taken_fraction`` is either a constant (analytic rates) or derived
    as ``takens / count`` from actual outcomes; in the latter case the
    integer taken count is recovered exactly from the stored fraction
    (the rounding error of ``count * (takens / count)`` is far below
    0.5 for any realistic count), so merged fractions equal the
    single-shot ones bit-for-bit.
    """
    if a.name != b.name:
        raise ValueError(f"partial branch mismatch: {a.name!r} vs {b.name!r}")
    count = a.count + b.count
    if a.count == 0:
        return BranchStream(a.name, count, b.taken_fraction, b.mispredict_rate)
    if b.count == 0:
        return BranchStream(a.name, count, a.taken_fraction, a.mispredict_rate)
    if a.taken_fraction == b.taken_fraction:
        taken = a.taken_fraction
    else:
        takens = round(a.count * a.taken_fraction) + round(b.count * b.taken_fraction)
        taken = takens / count
    if a.mispredict_rate == b.mispredict_rate:
        rate = a.mispredict_rate
    else:
        weights = (
            (a.mispredict_rate or 0.0) * a.count + (b.mispredict_rate or 0.0) * b.count
        )
        rate = weights / count
    return BranchStream(a.name, count, taken, rate)
