"""Exact (error-free) summation of IEEE-754 doubles.

The morsel-parallel executor (:mod:`repro.core.parallel`) must merge
per-morsel partial aggregates into results that are **bit-identical**
to a single-shot run, for *any* partitioning of the rows.  Plain float
accumulation cannot deliver that -- float addition is not associative
-- so partial sums are carried as arbitrary-precision integers instead:

Every finite double is an integer multiple of 2**-1074 (the subnormal
quantum), so the *true* sum of any set of doubles is representable as a
Python integer in units of 2**-1074.  Integer addition is exact and
associative, which makes :class:`ExactSum` merges partition-invariant
by construction; the final :meth:`total` rounds the true sum to the
nearest double exactly once (via :class:`fractions.Fraction`, whose
float conversion is correctly rounded).

The per-array conversion is vectorized: ``np.frexp`` splits values into
a 53-bit integer mantissa and an exponent, mantissas are summed per
distinct exponent (hi/lo split so int64 never overflows), and the few
per-exponent subtotals are combined with Python integers.
"""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np

#: Units of the fixed-point representation: 2**-_SHIFT per unit.
_SHIFT = 1074


def _float_to_units(value: float) -> int:
    """One finite double as an integer count of 2**-1074 units."""
    if not np.isfinite(value):
        raise ValueError(f"cannot exactly sum non-finite value {value!r}")
    fraction = Fraction(float(value))
    units = fraction * (1 << _SHIFT)
    # Denominators of finite doubles divide 2**1074, so this is exact.
    assert units.denominator == 1
    return units.numerator


def _array_to_units(values: np.ndarray) -> int:
    """The exact sum of an array of doubles, in 2**-1074 units."""
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.size == 0:
        return 0
    if not np.all(np.isfinite(values)):
        raise ValueError("cannot exactly sum non-finite values")
    mantissa, exponent = np.frexp(values)
    # mantissa in +-[0.5, 1); mantissa * 2**53 is an exact int64
    # (doubles have 53 significant bits), value = m53 * 2**(e - 53).
    m53 = np.round(np.ldexp(mantissa, 53)).astype(np.int64)
    total = 0
    for exp in np.unique(exponent):
        group = m53[exponent == exp]
        # hi/lo split keeps the int64 partial sums overflow-free for
        # any realistic array length (|hi| < 2**27, lo < 2**26).
        hi = int(np.sum(group >> 26, dtype=np.int64))
        lo = int(np.sum(group & ((1 << 26) - 1), dtype=np.int64))
        group_sum = (hi << 26) + lo
        shift = int(exp) - 53 + _SHIFT
        if shift >= 0:
            total += group_sum << shift
        else:
            # Subnormal inputs: the mantissa has trailing zero bits, so
            # the right shift is still exact.
            assert group_sum % (1 << -shift) == 0
            total += group_sum >> -shift
    return total


class ExactSum:
    """A partial sum of doubles carried exactly as a Python integer.

    Instances merge with ``+`` (exact, associative, commutative) and
    pickle as a single integer, so they are the unit of value state the
    worker processes ship back to the parent.
    """

    __slots__ = ("units",)

    def __init__(self, units: int = 0):
        self.units = int(units)

    @classmethod
    def of_array(cls, values) -> "ExactSum":
        return cls(_array_to_units(np.asarray(values)))

    @classmethod
    def of(cls, *values: float) -> "ExactSum":
        total = 0
        for value in values:
            total += _float_to_units(value)
        return cls(total)

    @classmethod
    def of_counts(cls, values, counts) -> "ExactSum":
        """Exact sum of ``values`` where ``values[i]`` occurs ``counts[i]``
        times, without materialising the expansion.

        This is the rebase primitive of code-domain aggregation
        (:mod:`repro.storage.encoding`): a dictionary/RLE/FoR codec
        reduces an aggregate to per-code (or per-run) occurrence counts,
        and ``sum(units(v) * count(v))`` equals ``of_array`` over the
        decoded expansion *bit for bit* -- each value is converted to
        float64 first, exactly the rounding ``of_array``'s
        ``np.asarray(..., dtype=float64)`` applies, and the per-value
        units are exact integers, so scaling by an integer count is
        exact too.
        """
        values = np.asarray(values, dtype=np.float64).ravel()
        counts = np.asarray(counts).ravel()
        if len(values) != len(counts):
            raise ValueError("values and counts must have equal length")
        total = 0
        for value, count in zip(values.tolist(), counts.tolist()):
            count = int(count)
            if count:
                total += _float_to_units(value) * count
        return cls(total)

    @classmethod
    def of_integer_total(cls, total: int) -> "ExactSum":
        """An already-exact integer sum, lifted into units.

        The FoR identity ``sum(values) = reference * count + sum(codes)``
        produces an arbitrary-precision Python integer; ``total * 2**1074``
        represents it exactly.  Callers must guarantee every *individual*
        summed value converts to float64 exactly (|value| <= 2**53), so
        the decoded path's per-element float64 conversion is the
        identity and both paths sum the same multiset of units.
        """
        return cls(int(total) << _SHIFT)

    def add_array(self, values) -> "ExactSum":
        self.units += _array_to_units(np.asarray(values))
        return self

    def __add__(self, other: "ExactSum") -> "ExactSum":
        if not isinstance(other, ExactSum):
            return NotImplemented
        return ExactSum(self.units + other.units)

    def __iadd__(self, other: "ExactSum") -> "ExactSum":
        if not isinstance(other, ExactSum):
            return NotImplemented
        self.units += other.units
        return self

    def __eq__(self, other) -> bool:
        return isinstance(other, ExactSum) and self.units == other.units

    def __hash__(self) -> int:
        return hash(("ExactSum", self.units))

    def __repr__(self) -> str:
        return f"ExactSum({self.total()!r})"

    # Pickle as the bare integer: cheap and version-stable.
    def __reduce__(self):
        return (ExactSum, (self.units,))

    def total(self) -> float:
        """The true sum, correctly rounded to the nearest double.

        A true sum beyond the double range rounds to signed infinity
        (what IEEE-754 round-to-nearest does with overflow), not an
        exception -- partials that individually overflow may still
        cancel once merged, so only the final rounding can tell.
        """
        if self.units == 0:
            return 0.0
        try:
            return float(Fraction(self.units, 1 << _SHIFT))
        except OverflowError:
            return math.inf if self.units > 0 else -math.inf
