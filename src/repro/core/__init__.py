"""The paper's contribution: VTune-style micro-architectural profiling
of OLAP executions -- work measurement, Top-Down cycle accounting,
bandwidth estimation, multi-core scaling and trace-driven validation."""

from repro.core.workprofile import (
    BranchStream,
    RandomAccessPattern,
    SparseScanPattern,
    WorkProfile,
)
from repro.core.cyclemodel import (
    CalibrationParams,
    CycleModel,
    DEFAULT_CALIBRATION,
    ExecutionContext,
)
from repro.core.bandwidth import BandwidthEstimator, BandwidthUsage, dominant_access_pattern
from repro.core.report import COMPONENT_LABELS, ProfileReport
from repro.core.profiler import MicroArchProfiler
from repro.core.multicore import THREAD_SWEEP, MulticoreModel, MulticoreRun
from repro.core.whatif import SCENARIOS, Scenario, WhatIfAnalyzer, WhatIfResult
from repro.core.validation import ModelValidator, ValidationReport, ValidationRow
from repro.core.tracesim import (
    ProfileTraceEstimate,
    TraceResult,
    TraceSimulator,
    bernoulli_outcomes,
    gshare_mispredict_rate,
    random_trace,
    sequential_trace,
    simulate_profile,
    sparse_trace,
)

__all__ = [
    "BandwidthEstimator",
    "BandwidthUsage",
    "BranchStream",
    "CalibrationParams",
    "COMPONENT_LABELS",
    "CycleModel",
    "DEFAULT_CALIBRATION",
    "ExecutionContext",
    "MicroArchProfiler",
    "ModelValidator",
    "MulticoreModel",
    "MulticoreRun",
    "ProfileReport",
    "ProfileTraceEstimate",
    "RandomAccessPattern",
    "SCENARIOS",
    "Scenario",
    "SparseScanPattern",
    "THREAD_SWEEP",
    "TraceResult",
    "TraceSimulator",
    "ValidationReport",
    "ValidationRow",
    "WhatIfAnalyzer",
    "WhatIfResult",
    "WorkProfile",
    "bernoulli_outcomes",
    "dominant_access_pattern",
    "gshare_mispredict_rate",
    "random_trace",
    "simulate_profile",
    "sequential_trace",
    "sparse_trace",
]
