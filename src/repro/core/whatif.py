"""What-if analysis: quantify the paper's *opportunities*.

The paper's title promises limitations **and opportunities**: stalls
would shrink with faster prefetchers (Section 9), more memory bandwidth
(Sections 3, 10), cheaper hashing (Sections 5-6) and better
branch handling (Sections 4, 7).  This module re-runs a measured
execution on hypothetical machines -- the same work profile, a modified
:class:`~repro.hardware.spec.ServerSpec` or
:class:`~repro.core.cyclemodel.CalibrationParams` -- and reports the
projected speedup, making those opportunities quantitative.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.engines.base import QueryResult
from repro.hardware.spec import ServerSpec
from repro.core.cyclemodel import CalibrationParams, ExecutionContext
from repro.core.profiler import MicroArchProfiler
from repro.core.report import ProfileReport


@dataclass(frozen=True)
class Scenario:
    """A named machine modification."""

    name: str
    description: str
    transform_spec: Callable[[ServerSpec], ServerSpec] = lambda spec: spec
    transform_params: Callable[[CalibrationParams], CalibrationParams] = (
        lambda params: params
    )


def _scale_bandwidth(spec: ServerSpec, factor: float) -> ServerSpec:
    bandwidth = replace(
        spec.bandwidth,
        per_core_seq_gbps=spec.bandwidth.per_core_seq_gbps * factor,
        per_core_rand_gbps=spec.bandwidth.per_core_rand_gbps * factor,
        per_socket_seq_gbps=spec.bandwidth.per_socket_seq_gbps * factor,
        per_socket_rand_gbps=spec.bandwidth.per_socket_rand_gbps * factor,
    )
    return replace(spec, bandwidth=bandwidth)


def _scale_l3(spec: ServerSpec, factor: float) -> ServerSpec:
    l3 = replace(spec.l3, size_bytes=int(spec.l3.size_bytes * factor))
    return replace(spec, l3=l3)


def _more_alus(spec: ServerSpec, extra: int) -> ServerSpec:
    ports = replace(
        spec.ports,
        n_ports=spec.ports.n_ports + extra,
        alu_ports=spec.ports.alu_ports + extra,
    )
    return replace(spec, ports=ports)


def _numa_remote(spec: ServerSpec) -> ServerSpec:
    """Cross-socket memory access: the interconnect cuts bandwidth and
    stretches the DRAM portion of the latency."""
    remote = _scale_bandwidth(spec, 0.7)
    l3 = replace(
        remote.l3, miss_latency_cycles=remote.l3.miss_latency_cycles * 1.6
    )
    return replace(remote, l3=l3)


#: Opportunity scenarios matching the paper's discussion.
SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            "double-bandwidth",
            "2x per-core and per-socket memory bandwidth (Sections 3/10: "
            "sequential scans are bandwidth-limited).",
            transform_spec=lambda spec: _scale_bandwidth(spec, 2.0),
        ),
        Scenario(
            "perfect-prefetchers",
            "Prefetchers that fully keep up with the demand stream "
            "(Section 9).  With the default prefetchers already at ~95% "
            "coverage, the model shows almost no headroom here: once the "
            "prefetchers are on, the bandwidth roof is the wall.",
            transform_params=lambda params: replace(
                params, prefetch_residual_cycles=0.0
            ),
        ),
        Scenario(
            "low-latency-fp",
            "Single-cycle dependent FP adds (removes the serial "
            "aggregation-chain stalls behind Q1's Execution share).",
            transform_params=lambda params: replace(params, chain_op_latency=1.0),
        ),
        Scenario(
            "no-materialization",
            "Vector materialisation at zero cost (the fused-pipeline "
            "advantage Typer holds over Tectorwise, Sections 3/7).",
            transform_params=lambda params: replace(
                params, cached_access_stall=0.0, store_pressure_cycles=0.0
            ),
        ),
        Scenario(
            "quadruple-l3",
            "A 4x larger last-level cache (keeps join/group-by working "
            "sets resident, Sections 5-6).",
            transform_spec=lambda spec: _scale_l3(spec, 4.0),
        ),
        Scenario(
            "perfect-branch-prediction",
            "An oracle branch predictor (Sections 4/7: what predication "
            "buys, without the extra compute).",
            transform_params=lambda params: replace(params, branch_penalty=0.0),
        ),
        Scenario(
            "free-hashing",
            "Hash computation at plain-ALU cost (Sections 5-6: 'costly "
            "hash computations' saturate the multiply port).",
            transform_params=lambda params: params,  # see _FREE_HASH below
        ),
        Scenario(
            "double-mlp",
            "2x memory-level parallelism for random accesses (what the "
            "coroutine-interleaving work [13, 21] achieves in software).",
            transform_params=lambda params: replace(
                params,
                mlp_random_independent=params.mlp_random_independent * 2,
                mlp_random_dependent=params.mlp_random_dependent * 2,
            ),
        ),
        Scenario(
            "extra-alus",
            "Two extra ALU execution ports (Section 3: despite eight "
            "ports, arithmetic-heavy analytics saturates the ALUs).",
            transform_spec=lambda spec: _more_alus(spec, 2),
        ),
        Scenario(
            "numa-remote",
            "Run against the *other* socket's memory -- what the paper's "
            "numactl localisation avoids: ~30% less bandwidth and ~60% "
            "higher DRAM latency over the interconnect.",
            transform_spec=lambda spec: _numa_remote(spec),
        ),
    )
}


@dataclass(frozen=True)
class WhatIfResult:
    """Projected effect of one scenario on one execution."""

    scenario: Scenario
    baseline: ProfileReport
    projected: ProfileReport

    @property
    def speedup(self) -> float:
        return self.baseline.cycles / self.projected.cycles if self.projected.cycles else float("inf")

    @property
    def stall_reduction(self) -> float:
        """Fraction of baseline stall cycles removed."""
        baseline = self.baseline.breakdown.stall_cycles
        if not baseline:
            return 0.0
        return 1.0 - self.projected.breakdown.stall_cycles / baseline


class WhatIfAnalyzer:
    """Replays measured work profiles on hypothetical machines."""

    def __init__(self, profiler: MicroArchProfiler):
        self.profiler = profiler

    def project(
        self,
        engine,
        result: QueryResult,
        scenario: Scenario | str,
        context: ExecutionContext | None = None,
    ) -> WhatIfResult:
        """Project one execution onto a scenario machine."""
        if isinstance(scenario, str):
            try:
                scenario = SCENARIOS[scenario]
            except KeyError:
                raise KeyError(
                    f"unknown scenario {scenario!r}; available: {sorted(SCENARIOS)}"
                ) from None
        baseline = self.profiler.profile(engine, result, context)
        spec = scenario.transform_spec(self.profiler.spec)
        params = scenario.transform_params(self.profiler.model.params)
        work = result.work
        if scenario.name == "free-hashing":
            work = _without_hash_cost(work)
        modified = MicroArchProfiler(spec=spec, params=params)
        projected = modified.profile(engine, _clone_result(result, work), context)
        return WhatIfResult(scenario=scenario, baseline=baseline, projected=projected)

    def sweep(
        self,
        engine,
        result: QueryResult,
        scenarios=None,
        context: ExecutionContext | None = None,
    ) -> dict[str, WhatIfResult]:
        """Project one execution onto many scenarios."""
        names = scenarios or list(SCENARIOS)
        return {
            name: self.project(engine, result, name, context) for name in names
        }

    @staticmethod
    def best_opportunity(results: dict[str, WhatIfResult]) -> str:
        """Scenario with the largest projected speedup."""
        return max(results, key=lambda name: results[name].speedup)


def _without_hash_cost(work):
    """Copy of a work profile with hash ops demoted to plain ALU ops."""
    copy = work.scaled(1.0)
    copy.alu_ops += copy.hash_ops
    copy.hash_ops = 0.0
    return copy


def _clone_result(result: QueryResult, work) -> QueryResult:
    return QueryResult(
        workload=result.workload,
        value=result.value,
        tuples=result.tuples,
        work=work,
        details=dict(result.details),
    )
