"""Memory-bandwidth estimation (the paper's VTune memory-access view).

The paper reports average per-socket bandwidth while a query runs.
Here the same number is derived from the measured traffic of a
:class:`~repro.core.workprofile.WorkProfile` and the modelled response
time: GB/s = traffic / time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.spec import ServerSpec
from repro.hardware.tmam import CycleBreakdown
from repro.core.cyclemodel import CycleModel, ExecutionContext
from repro.core.workprofile import WorkProfile


@dataclass(frozen=True)
class BandwidthUsage:
    """Measured bandwidth next to the attainable maximum."""

    gbps: float
    max_gbps: float
    access_pattern: str

    @property
    def utilization(self) -> float:
        return self.gbps / self.max_gbps if self.max_gbps else 0.0

    @property
    def saturated(self) -> bool:
        """The paper treats ~90% of the roof as saturation."""
        return self.utilization >= 0.9


def dominant_access_pattern(profile: WorkProfile) -> str:
    """Whether the run's DRAM traffic is mostly streaming or random."""
    random_bytes = profile.random_bytes
    return "random" if random_bytes > profile.streamed_bytes else "sequential"


class BandwidthEstimator:
    """Derives bandwidth figures from work profiles and breakdowns."""

    def __init__(self, model: CycleModel):
        self.model = model

    @property
    def spec(self) -> ServerSpec:
        return self.model.spec

    def usage(
        self,
        profile: WorkProfile,
        breakdown: CycleBreakdown,
        context: ExecutionContext | None = None,
    ) -> BandwidthUsage:
        """Average bandwidth over the run (single thread's share)."""
        context = context or ExecutionContext()
        traffic = self.model.memory_traffic_bytes(profile, context)
        seconds = self.spec.cycles_to_seconds(breakdown.total)
        gbps = traffic / seconds / 1e9 if seconds else 0.0
        pattern = dominant_access_pattern(profile)
        max_gbps = self.spec.bandwidth.per_core(pattern)
        return BandwidthUsage(gbps=gbps, max_gbps=max_gbps, access_pattern=pattern)

    def multicore_usage(
        self,
        profile: WorkProfile,
        context: ExecutionContext,
    ) -> BandwidthUsage:
        """Aggregate socket bandwidth of a data-parallel run.

        ``profile`` is one thread's share of the work.  Each thread
        *offers* the bandwidth it would pull with the socket to itself;
        the memory controllers serve the sum until the socket roof --
        at saturation all the queueing-inflated stall time is transfer
        time, so the aggregate sits on the roof (Figures 29/30).
        """
        unconstrained = ExecutionContext(
            threads=1,
            prefetchers=context.prefetchers,
            hyper_threading=context.hyper_threading,
        )
        solo_breakdown = self.model.breakdown(profile, unconstrained)
        solo = self.usage(profile, solo_breakdown, unconstrained)
        pattern = solo.access_pattern
        socket_max = self.spec.bandwidth.per_socket(pattern)
        aggregate = min(solo.gbps * context.threads, socket_max)
        return BandwidthUsage(gbps=aggregate, max_gbps=socket_max, access_pattern=pattern)
