"""In-process memoization of engine executions.

The profiling drivers -- profiler, multicore model, what-if analyzer,
figure registry, test fixtures -- repeatedly execute *identical* engine
runs: the same engine class, the same query, the same database.  Each
run costs real numpy execution (seconds at benchmark scale factors).
This cache memoizes ``(engine class, method, database identity,
arguments) -> QueryResult`` so each distinct execution happens once per
process.

Correctness guards:

- **Database identity** comes from :attr:`repro.storage.Database.identity`
  -- the dbgen cache key when the content is known, a per-object uid
  otherwise.  Mutating a database (``add_table``) drops its content key,
  so derived databases never alias cached runs.
- **Snapshot on both put and get.**  Callers receive a private
  :class:`~repro.engines.base.QueryResult` copy (work profile and
  operator profiles deep-copied via ``scaled(1.0)``), so callers that
  mutate their result cannot poison the cache and cached entries cannot
  be mutated through earlier handles.
- **Only first-party engines participate.**  Engine subclasses defined
  outside ``repro.*`` (test doubles that override behaviour while
  inheriting ``name``) bypass the cache entirely.
- Served copies carry ``details["cached"] = True`` so downstream
  reports can mark memoized measurements (see
  :class:`repro.core.report.ProfileReport`).

Disable with ``REPRO_EXEC_CACHE=0``.
"""

from __future__ import annotations

import inspect
import os
import threading
from collections import OrderedDict
from functools import wraps

from repro.compile import compile_enabled
from repro.core.pruning import pruning_enabled
from repro.obs import trace
from repro.rollup.router import rollups_enabled
from repro.storage.encoding import encoded_agg_enabled, encoding_enabled

#: Engine methods that are memoized (the complete execution surface).
#: ``run_compiled`` is defined concretely on the base Engine and
#: wrapped by :func:`repro.engines.base._wrap_base_cached_methods`.
CACHED_METHODS = (
    "run_projection",
    "run_selection",
    "run_join",
    "run_groupby",
    "run_q1",
    "run_q6",
    "run_q9",
    "run_q18",
    "run_compiled",
)


def cache_enabled() -> bool:
    return os.environ.get("REPRO_EXEC_CACHE", "1").strip().lower() not in {
        "0", "false", "no", "off",
    }


def _snapshot(result, cached: bool):
    """A private copy of a QueryResult (see module docstring)."""
    from repro.engines.base import QueryResult

    details = dict(result.details)
    operators = details.get("operators")
    if operators:
        details["operators"] = {
            name: profile.scaled(1.0) for name, profile in operators.items()
        }
    if cached:
        details["cached"] = True
    return QueryResult(
        workload=result.workload,
        value=result.value,
        tuples=result.tuples,
        work=result.work.scaled(1.0),
        details=details,
    )


class ExecutionCache:
    """Bounded LRU map of engine executions.

    Thread-safe: the query service executes on a worker pool, so
    lookups, stores and stats all happen under one re-entrant lock
    (the critical sections are tiny next to an engine execution).
    """

    def __init__(self, max_entries: int = 512):
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0

    def lookup(self, key):
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return _snapshot(entry, cached=True)

    def store(self, key, result) -> None:
        with self._lock:
            self._entries[key] = _snapshot(result, cached=False)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0


#: The process-wide cache instance.
EXECUTION_CACHE = ExecutionCache()


def _first_party(cls) -> bool:
    return cls.__module__ == "repro" or cls.__module__.startswith("repro.")


def memoized_execution(method_name: str, func):
    """Wrap one engine ``run_*`` method with cache lookup/store."""
    signature = inspect.signature(func)

    @wraps(func)
    def wrapper(self, db, *args, **kwargs):
        cls = type(self)
        if not cache_enabled() or not _first_party(cls):
            return func(self, db, *args, **kwargs)
        try:
            bound = signature.bind(self, db, *args, **kwargs)
            bound.apply_defaults()
            if bound.arguments.get("row_range") is not None:
                # Morsel partials are never cached: their QueryResults
                # carry mutable mergeable state that merging consumes.
                return func(self, db, *args, **kwargs)
            call_args = tuple(
                item for item in bound.arguments.items()
                if item[0] not in ("self", "db", "row_range")
            )
            key = (
                f"{cls.__module__}.{cls.__qualname__}",
                method_name,
                db.identity,
                call_args,
                # Storage-tier state: results are bit-identical across
                # these modes, but byte accounting (encoded_nbytes,
                # details like storage stats) and downstream pruning
                # behaviour are not -- a raw-storage run must never be
                # served an entry produced under different settings.
                encoding_enabled(),
                encoded_agg_enabled(),
                pruning_enabled(),
                rollups_enabled(),
                compile_enabled(),
            )
            hash(key)
        except TypeError:
            return func(self, db, *args, **kwargs)
        with trace.span("execcache", method=method_name):
            cached = EXECUTION_CACHE.lookup(key)
            if cached is not None:
                trace.annotate(outcome="hit")
                return cached
            trace.annotate(outcome="miss")
            result = func(self, db, *args, **kwargs)
            EXECUTION_CACHE.store(key, result)
            return result

    wrapper._execcache_wrapped = True
    return wrapper
