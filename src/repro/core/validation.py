"""Cross-validation of the analytic model against the trace simulators.

The analytic cycle model uses effective parameters (prefetcher
coverage, random-access latency mixes, branch misprediction rates).
This module checks each of them against the *structural* models — the
set-associative cache hierarchy with real prefetchers and the gshare
predictor — the way the paper validates VTune-derived conclusions with
micro-benchmarks.  Used by the validation tests and the
``python -m repro.analysis validate`` command.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.branch import two_bit_mispredict_rate
from repro.hardware.prefetcher import PrefetcherConfig
from repro.hardware.spec import BROADWELL, ServerSpec
from repro.core.cyclemodel import CycleModel
from repro.core.tracesim import TraceSimulator, bernoulli_outcomes, gshare_mispredict_rate


@dataclass(frozen=True)
class ValidationRow:
    """One analytic-vs-trace comparison.

    ``mode`` is ``"close"`` when the analytic value should match the
    trace measurement, or ``"upper_bound"`` when the analytic value is
    a deliberate conservative bound (e.g. the Bernoulli branch model on
    *clustered* real data streams, which history predictors beat).
    """

    quantity: str
    case: str
    analytic: float
    trace: float
    tolerance: float
    mode: str = "close"

    @property
    def error(self) -> float:
        """Absolute difference, normalised by max(|trace|, 1e-9)."""
        scale = max(abs(self.trace), 1e-9)
        return abs(self.analytic - self.trace) / scale

    @property
    def ok(self) -> bool:
        if self.mode == "upper_bound":
            return self.trace <= self.analytic * 1.1 + 0.02
        return self.error <= self.tolerance or abs(self.analytic - self.trace) <= 0.06


@dataclass
class ValidationReport:
    """Collection of validation rows with summary helpers."""

    rows: list[ValidationRow]

    @property
    def passed(self) -> bool:
        return all(row.ok for row in self.rows)

    def failures(self) -> list[ValidationRow]:
        return [row for row in self.rows if not row.ok]

    def to_text(self) -> str:
        lines = [
            f"{'quantity':22s} {'case':26s} {'analytic':>10s} {'trace':>10s} {'err':>7s}  ok"
        ]
        lines.append("-" * len(lines[0]))
        for row in self.rows:
            lines.append(
                f"{row.quantity:22s} {row.case:26s} {row.analytic:10.3f} "
                f"{row.trace:10.3f} {row.error:6.1%}  {'yes' if row.ok else 'NO'}"
            )
        lines.append(
            f"{len(self.rows)} checks, "
            f"{len(self.failures())} failures -> {'PASS' if self.passed else 'FAIL'}"
        )
        return "\n".join(lines)


class ModelValidator:
    """Runs the analytic-vs-structural comparisons."""

    #: Working sets spanning L1-resident to DRAM-resident.
    WORKING_SETS = (16 * 1024, 2 * 1024 * 1024, 256 * 1024 * 1024)
    #: Taken probabilities for the branch comparison.
    TAKEN_PROBABILITIES = (0.05, 0.1, 0.3, 0.5, 0.7, 0.9)

    def __init__(self, spec: ServerSpec = BROADWELL, seed: int = 17):
        self.spec = spec
        self.seed = seed
        self.model = CycleModel(spec)

    def validate_prefetcher_coverage(
        self, n_accesses: int = 30_000, tolerance: float = 0.45
    ) -> list[ValidationRow]:
        """Analytic coverage table vs trace-measured coverage.

        The structural simulator installs prefetches instantly, so it
        measures pure *coverage* (misses removed) without the timing
        residual; streamer configurations therefore read high.  The
        comparison checks ordering-consistency via a generous bound.
        """
        rows = []
        for name, config in PrefetcherConfig.figure26_configs().items():
            analytic = config.sequential_coverage()
            trace = TraceSimulator(self.spec, config).sequential_coverage(n_accesses)
            rows.append(
                ValidationRow("sequential coverage", name, analytic, trace, tolerance)
            )
        return rows

    def validate_random_latency(
        self, n_accesses: int = 6_000, tolerance: float = 0.45
    ) -> list[ValidationRow]:
        """Capacity-based latency mix vs trace-replayed latency."""
        simulator = TraceSimulator(self.spec, PrefetcherConfig.all_disabled())
        rows = []
        for working_set in self.WORKING_SETS:
            analytic = self.model.random_latency_cycles(working_set)
            trace = simulator.random_latency(working_set, n_accesses, seed=self.seed)
            label = f"ws={working_set // 1024}KB"
            rows.append(
                ValidationRow("random latency (cyc)", label, analytic, trace, tolerance)
            )
        return rows

    def validate_branch_rates(
        self, n_branches: int = 8_000, tolerance: float = 0.5
    ) -> list[ValidationRow]:
        """Two-bit Markov rate vs gshare on Bernoulli streams."""
        rows = []
        for p_taken in self.TAKEN_PROBABILITIES:
            analytic = two_bit_mispredict_rate(p_taken)
            outcomes = bernoulli_outcomes(n_branches, p_taken, seed=self.seed)
            trace = gshare_mispredict_rate(outcomes)
            rows.append(
                ValidationRow(
                    "branch mispredict", f"p_taken={p_taken:.2f}", analytic, trace, tolerance
                )
            )
        return rows

    def validate_measured_streams(self, db, tolerance: float = 0.5) -> list[ValidationRow]:
        """Replay *actual* predicate outcome streams from a generated
        database through gshare and compare with the analytic rate.

        Real lineitem predicate streams are *clustered* (the 1-7 lines
        of one order share their dates), so a history predictor beats
        the Bernoulli assumption; the analytic rate is therefore
        validated as an upper bound, and the 50%-is-hardest ordering is
        checked separately by the caller/tests."""
        from repro.engines.base import selection_predicate_masks, selection_thresholds

        rows = []
        for selectivity in (0.1, 0.5, 0.9):
            thresholds = selection_thresholds(db, selectivity)
            name, mask = selection_predicate_masks(db, thresholds)[0]
            sample = np.asarray(mask[:8000])
            analytic = two_bit_mispredict_rate(float(sample.mean()))
            trace = gshare_mispredict_rate(sample)
            rows.append(
                ValidationRow(
                    "predicate stream",
                    f"{name}@{selectivity:.0%}",
                    analytic,
                    trace,
                    tolerance,
                    mode="upper_bound",
                )
            )
        return rows

    def run(self, db=None) -> ValidationReport:
        """All validations (the database-backed one only if ``db`` is
        provided)."""
        rows = []
        rows += self.validate_prefetcher_coverage()
        rows += self.validate_random_latency()
        rows += self.validate_branch_rates()
        if db is not None:
            rows += self.validate_measured_streams(db)
        return ValidationReport(rows)
