"""Top-Down cycle accounting: WorkProfile x ServerSpec -> CycleBreakdown.

This module plays the role VTune's general-exploration analysis plays in
the paper: it attributes every CPU cycle of an execution to Retiring or
to one of the five stall classes (Branch misprediction, Icache,
Decoding, Dcache, Execution).  The attribution follows the Top-Down
methodology (Yasin [32], refined by Sirin et al. [26]):

- *Retiring* is bounded by the 4-wide retirement of the core.
- *Branch misprediction* stalls charge the front-end re-steer penalty
  per mispredicted branch; misprediction rates come from the measured
  branch outcome statistics through the 2-bit-counter model (or a
  measured trace-simulator rate).
- *Icache* and *Decoding* pressure grows with the hot-code footprint;
  tight query loops stay near zero, interpreter loops pay a per-
  instruction front-end tax but -- as the paper stresses -- do *not*
  become Icache-bound the way OLTP systems do.
- *Dcache* stalls expose the memory time that out-of-order execution
  cannot hide: sequential streams are bounded below by the bandwidth
  roof and above by demand-miss latency exposure (prefetcher
  dependent); random accesses pay the cache-level latency mix of their
  working set divided by the achievable memory-level parallelism.
- *Execution* stalls account port pressure, long-latency hash
  arithmetic and serial FP reduction chains beyond the retirement
  bound.

The handful of micro-architectural constants that VTune would measure
directly are collected in :class:`CalibrationParams` with the rationale
for each value; the test-suite pins the resulting behaviour to the
bands the paper reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.hardware.branch import two_bit_mispredict_rate
from repro.hardware.ports import ExecutionPorts
from repro.hardware.prefetcher import PrefetcherConfig
from repro.hardware.spec import CACHE_LINE_BYTES, ServerSpec
from repro.hardware.tmam import CycleBreakdown
from repro.core.workprofile import WorkProfile


@dataclass(frozen=True)
class CalibrationParams:
    """Micro-architectural constants of the cycle model.

    Each value is either an architectural fact of the Broadwell core or
    a calibrated effective parameter whose resulting behaviour is
    validated against the paper's reported bands (see
    ``tests/integration``).
    """

    #: Latency of a dependent floating-point add (Broadwell: 3 cycles).
    #: Serial aggregation chains retire one FP add per this many cycles.
    chain_op_latency: float = 3.0
    #: Extra cycles per store beyond the port model: store-buffer
    #: drain, RFO traffic and L1 write-port contention of
    #: materialization-heavy vectorized loops.
    store_pressure_cycles: float = 0.45
    #: Fraction of non-memory work that out-of-order execution overlaps
    #: under outstanding memory accesses.
    overlap_factor: float = 0.7
    #: Effective memory-level parallelism of demand-miss sequential
    #: streams with prefetchers off (line-fill buffers minus queueing).
    mlp_sequential_demand: float = 3.5
    #: Exposed cycles per prefetched line when streaming at full rate:
    #: the "prefetchers are not fast enough" residual of Section 3/9.
    prefetch_residual_cycles: float = 7.5
    #: Effective MLP of independent random accesses (hash probes whose
    #: addresses are known up front).
    mlp_random_independent: float = 3.0
    #: Effective MLP of dependent random accesses (chain walks).
    mlp_random_dependent: float = 1.5
    #: Icache misses per kilo-instruction as a function of footprint:
    #: mpki = icache_mpki_per_doubling * log2(footprint / L1I size).
    icache_mpki_per_doubling: float = 0.2
    #: Per-instruction decode tax for footprints exceeding the uop
    #: cache (~breaks DSB residency), i.e. interpreter code.
    decode_tax_large_code: float = 0.012
    #: Footprint (bytes) above which the decode tax applies fully.
    decode_footprint_threshold: float = 64 * 1024
    #: Branch misprediction penalty override; None uses the spec value.
    branch_penalty: float | None = None
    #: Prefetcher overshoot coefficient for sparse scans: wasted
    #: bandwidth fraction peaks at mid densities (Figure 21).
    sparse_overshoot: float = 0.5
    #: Stall cycles per cache-resident intermediate access event
    #: (vectorized materialization: store-to-load forwarding and L1/L2
    #: pressure between primitives).
    cached_access_stall: float = 0.5
    #: Fraction of materialization stalls TMAM attributes to Dcache
    #: (L1/L2-bound); the rest shows as Execution (store-buffer /
    #: core-bound), which is why Tectorwise's projection splits evenly
    #: between Dcache and Execution (Figure 4).
    cached_stall_dcache_fraction: float = 0.45
    #: Memory-controller queueing: streaming stalls inflate by
    #: ``1 + coeff * rho^2`` as offered load rho approaches the roof --
    #: the super-linear Dcache growth of Section 3.
    seq_queue_coeff: float = 0.5
    #: Fraction of streaming demand-miss time hidden under concurrent
    #: random-access misses (they share the line-fill buffers): this is
    #: why the prefetchers matter far less for the join (Section 9).
    seq_random_overlap: float = 0.8
    #: Hyper-threading: the second hardware context keeps more misses
    #: in flight, raising achievable MLP and bandwidth ~1.3x
    #: (Section 10).
    hyper_threading_mlp_boost: float = 1.6


DEFAULT_CALIBRATION = CalibrationParams()


@dataclass(frozen=True)
class ExecutionContext:
    """How a profile is executed: thread placement and machine knobs."""

    threads: int = 1
    prefetchers: PrefetcherConfig = field(default_factory=PrefetcherConfig.all_enabled)
    hyper_threading: bool = False

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise ValueError("threads must be >= 1")

    def with_threads(self, threads: int) -> "ExecutionContext":
        return replace(self, threads=threads)


class CycleModel:
    """Computes TMAM cycle breakdowns from measured work profiles."""

    def __init__(self, spec: ServerSpec, params: CalibrationParams | None = None):
        self.spec = spec
        self.params = params or DEFAULT_CALIBRATION
        self.ports = ExecutionPorts(spec.ports)

    # ------------------------------------------------------------------
    # Component models
    # ------------------------------------------------------------------
    def retiring_cycles(self, profile: WorkProfile) -> float:
        return profile.instructions / self.spec.issue_width

    def branch_cycles(self, profile: WorkProfile) -> float:
        penalty = (
            self.params.branch_penalty
            if self.params.branch_penalty is not None
            else self.spec.branch_mispredict_penalty
        )
        total = 0.0
        for stream in profile.branch_streams:
            rate = (
                stream.mispredict_rate
                if stream.mispredict_rate is not None
                else two_bit_mispredict_rate(stream.taken_fraction)
            )
            total += stream.count * rate * penalty
        return total

    def icache_cycles(self, profile: WorkProfile) -> float:
        footprint = profile.code_footprint_bytes
        l1i = self.spec.l1i.size_bytes
        if footprint <= l1i:
            return 0.0
        mpki = self.params.icache_mpki_per_doubling * math.log2(footprint / l1i)
        misses = profile.instructions * mpki / 1000.0
        return misses * self.spec.l1i.miss_latency_cycles

    def decoding_cycles(self, profile: WorkProfile) -> float:
        footprint = profile.code_footprint_bytes
        threshold = self.params.decode_footprint_threshold
        if footprint <= self.spec.l1i.size_bytes:
            return 0.0
        scale = min(1.0, footprint / threshold)
        return profile.instructions * self.params.decode_tax_large_code * scale

    def execution_cycles(self, profile: WorkProfile) -> float:
        """Execution (core-bound) stall cycles beyond retirement:
        port pressure, serial dependency chains, store-buffer pressure
        and -- for dependency-laden interpreter code -- the gap between
        the code's effective ILP and the 4-wide core."""
        port_cycles = self.ports.min_issue_cycles(profile.ops)
        chain_cycles = profile.chain_ops * self.params.chain_op_latency
        store_extra = profile.store_ops * self.params.store_pressure_cycles
        ilp_cycles = 0.0
        if profile.effective_ilp is not None:
            ilp_cycles = profile.instructions / profile.effective_ilp
        demand = max(port_cycles, chain_cycles, ilp_cycles) + store_extra
        return max(0.0, demand - self.retiring_cycles(profile))

    # -- memory ---------------------------------------------------------
    def _per_thread_bandwidth_gbps(self, access_pattern: str, context: ExecutionContext) -> float:
        per_core = self.spec.bandwidth.per_core(access_pattern)
        if context.hyper_threading:
            # Section 10: hyper-threading raises achievable per-core
            # bandwidth utilisation by ~1.3x.
            per_core *= 1.3
        socket = self.spec.bandwidth.per_socket(access_pattern)
        return min(per_core, socket / context.threads)

    def _seq_line_exposure(self, coverage: float) -> float:
        """Exposed stall cycles per sequentially streamed line."""
        params = self.params
        demand_exposure = (
            self.spec.memory_latency_cycles / params.mlp_sequential_demand
        )
        return (1.0 - coverage) * demand_exposure + coverage * params.prefetch_residual_cycles

    def _sparse_coverage(self, coverage: float, density: float) -> float:
        """Prefetcher coverage degrades when a scan skips lines."""
        return coverage * density ** 0.22

    def random_latency_cycles(self, working_set_bytes: float) -> float:
        """Average load-to-use latency of a uniform random access into a
        working set, from the cache-capacity hit mix."""
        spec = self.spec
        ws = max(working_set_bytes, 1.0)
        p_l1 = min(1.0, spec.l1d.size_bytes / ws)
        p_l2 = max(0.0, min(1.0, spec.l2.size_bytes / ws) - p_l1)
        p_l3 = max(0.0, min(1.0, spec.l3.size_bytes / ws) - p_l1 - p_l2)
        p_mem = max(0.0, 1.0 - p_l1 - p_l2 - p_l3)
        return (
            p_l1 * spec.l1_access_cycles
            + p_l2 * spec.l2_hit_latency
            + p_l3 * spec.l3_hit_latency
            + p_mem * spec.memory_latency_cycles
        )

    def memory_time_cycles(self, profile: WorkProfile, context: ExecutionContext) -> dict:
        """Raw memory-time components before overlap with compute.

        Returns a dict with ``seq_latency`` / ``seq_floor`` (streaming
        exposure and the bandwidth-roof cycles), ``random_latency``
        (MLP-adjusted random-access exposure, which out-of-order
        execution cannot further hide) and ``traffic_bytes`` (what a
        bandwidth monitor would count, including prefetch overshoot on
        sparse scans).
        """
        params = self.params
        coverage = context.prefetchers.sequential_coverage()
        line = CACHE_LINE_BYTES

        seq_lines = profile.seq_bytes / line
        seq_latency = seq_lines * self._seq_line_exposure(coverage)
        traffic = profile.seq_bytes

        for scan in profile.sparse_scans:
            lines = scan.bytes_touched / line
            sparse_cov = self._sparse_coverage(coverage, scan.density)
            seq_latency += lines * self._seq_line_exposure(sparse_cov)
            overshoot = params.sparse_overshoot * 4.0 * scan.density * (1.0 - scan.density)
            traffic += scan.bytes_touched * (1.0 + overshoot)

        random_coverage = context.prefetchers.random_coverage()
        random_latency = 0.0
        random_bytes = 0.0
        for pattern in profile.random_patterns:
            if pattern.working_set_bytes <= self.spec.l1d.size_bytes:
                continue  # L1-resident structures cost load ops only
            latency = self.random_latency_cycles(pattern.working_set_bytes)
            mlp = (
                params.mlp_random_dependent
                if pattern.dependent
                else params.mlp_random_independent
            )
            if pattern.mlp_hint is not None:
                mlp = max(mlp, pattern.mlp_hint)
            if context.hyper_threading:
                mlp *= params.hyper_threading_mlp_boost
            random_latency += (
                pattern.count * latency * (1.0 - random_coverage) / mlp
            )
            # Only DRAM-destined fractions show up as memory traffic.
            p_mem = max(0.0, 1.0 - self.spec.l3.size_bytes / pattern.working_set_bytes)
            random_bytes += pattern.count * line * p_mem

        traffic += random_bytes
        seq_bw = self._per_thread_bandwidth_gbps("sequential", context)
        rand_bw = self._per_thread_bandwidth_gbps("random", context)
        seq_floor = (profile.seq_bytes + profile.sparse_bytes) / self.spec.bytes_per_cycle(seq_bw)
        rand_floor = random_bytes / self.spec.bytes_per_cycle(rand_bw)
        return {
            "seq_latency": seq_latency,
            "seq_floor": seq_floor,
            "random_latency": random_latency,
            "random_floor": rand_floor,
            "traffic_bytes": traffic,
        }

    # ------------------------------------------------------------------
    # Full breakdown
    # ------------------------------------------------------------------
    def breakdown(
        self, profile: WorkProfile, context: ExecutionContext | None = None
    ) -> CycleBreakdown:
        """Attribute the execution's cycles per the Top-Down hierarchy."""
        context = context or ExecutionContext()
        retiring = self.retiring_cycles(profile)
        branch = self.branch_cycles(profile)
        icache = self.icache_cycles(profile)
        decoding = self.decoding_cycles(profile)
        execution = self.execution_cycles(profile)

        memory = self.memory_time_cycles(profile, context)
        non_memory = retiring + branch + icache + decoding + execution
        # Streaming memory time: bounded below by the bandwidth roof,
        # above by latency exposure; out-of-order execution hides it
        # under issue-parallel (retiring) work, but the total can never
        # beat the bandwidth roof.
        seq_raw = max(memory["seq_latency"], memory["seq_floor"])
        # Random-access exposure is already MLP-adjusted (the only
        # overlap such accesses get); the random-bandwidth roof is a
        # floor for very high probe rates.
        random_exposed = max(memory["random_latency"], memory["random_floor"])
        seq_exposed = max(
            0.0,
            seq_raw
            - self.params.overlap_factor * retiring
            - self.params.seq_random_overlap * random_exposed,
            memory["seq_floor"] - non_memory,
        )
        # Memory-controller queueing near the bandwidth roof: streams
        # that saturate the roof see super-linear stall growth.
        if seq_exposed > 0.0:
            pre_queue_total = non_memory + seq_exposed + random_exposed
            rho = min(1.0, memory["seq_floor"] / pre_queue_total)
            seq_exposed *= 1.0 + self.params.seq_queue_coeff * rho * rho
        dcache = seq_exposed + random_exposed
        # Vector-materialisation stalls: partly L1/L2-bound (Dcache),
        # partly store-buffer pressure (Execution).
        cached_stall = profile.cached_access_events * self.params.cached_access_stall
        dcache += cached_stall * self.params.cached_stall_dcache_fraction
        execution += cached_stall * (1.0 - self.params.cached_stall_dcache_fraction)

        return CycleBreakdown(
            retiring=retiring,
            branch_misp=branch,
            icache=icache,
            decoding=decoding,
            dcache=dcache,
            execution=execution,
        )

    def memory_traffic_bytes(
        self, profile: WorkProfile, context: ExecutionContext | None = None
    ) -> float:
        """Bytes a memory-bandwidth monitor would count for the run."""
        context = context or ExecutionContext()
        return self.memory_time_cycles(profile, context)["traffic_bytes"]
