"""Multi-core execution model (Section 10).

OLAP operators are data-parallel: the paper runs the same query on N
threads of one socket over a partitioned input.  The model scales one
measured single-thread execution: each thread processes 1/N of the
work, the socket bandwidth roofs are shared, and the per-thread cycle
breakdown plus the aggregate socket bandwidth reproduce Figures 27-30.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engines.base import Engine, QueryResult
from repro.core.bandwidth import BandwidthUsage
from repro.core.cyclemodel import ExecutionContext
from repro.core.profiler import MicroArchProfiler
from repro.core.report import ProfileReport

#: Thread counts of Figures 29/30 (up to 14, the cores per socket).
THREAD_SWEEP = (1, 4, 8, 12, 14)


@dataclass(frozen=True)
class MulticoreRun:
    """One multi-threaded execution: per-thread profile plus the
    aggregate socket bandwidth."""

    threads: int
    per_thread: ProfileReport
    socket_bandwidth: BandwidthUsage

    @property
    def response_time_ms(self) -> float:
        """Threads run the partitions concurrently; the response time
        is one thread's time."""
        return self.per_thread.response_time_ms

    @property
    def bandwidth_gbps(self) -> float:
        return self.socket_bandwidth.gbps


class MulticoreModel:
    """Scales single-thread executions across the cores of a socket."""

    def __init__(self, profiler: MicroArchProfiler):
        self.profiler = profiler

    def run(
        self,
        engine: Engine | str,
        result: QueryResult,
        threads: int,
        hyper_threading: bool = False,
    ) -> MulticoreRun:
        """Model ``result``'s workload partitioned over ``threads``."""
        spec = self.profiler.spec
        if not 1 <= threads <= spec.cores_per_socket:
            raise ValueError(
                f"threads must be in [1, {spec.cores_per_socket}] (one socket)"
            )
        context = ExecutionContext(threads=threads, hyper_threading=hyper_threading)
        share = result.work.scaled(1.0 / threads)
        breakdown = self.profiler.model.breakdown(share, context)
        bandwidth = self.profiler.estimator.usage(share, breakdown, context)
        engine_name = engine if isinstance(engine, str) else engine.name
        per_thread = ProfileReport(
            engine=engine_name,
            workload=result.workload,
            breakdown=breakdown,
            bandwidth=bandwidth,
            work=share,
            spec=spec,
            threads=threads,
            cached=bool(result.details.get("cached", False)),
        )
        socket = self.profiler.estimator.multicore_usage(share, context)
        return MulticoreRun(threads=threads, per_thread=per_thread, socket_bandwidth=socket)

    def bandwidth_curve(
        self,
        engine: Engine | str,
        result: QueryResult,
        thread_counts=THREAD_SWEEP,
        hyper_threading: bool = False,
    ) -> dict[int, float]:
        """Socket bandwidth (GB/s) at each thread count (Figures 29/30)."""
        return {
            threads: self.run(engine, result, threads, hyper_threading).bandwidth_gbps
            for threads in thread_counts
        }

    @staticmethod
    def saturation_point(curve: dict[int, float], max_gbps: float, threshold: float = 0.9) -> int | None:
        """Smallest thread count reaching ``threshold`` of the roof, or
        None if the curve never saturates (the join case, Figure 30)."""
        for threads in sorted(curve):
            if curve[threads] >= threshold * max_gbps:
                return threads
        return None

    def speedup_curve(
        self,
        engine: Engine | str,
        result: QueryResult,
        thread_counts=THREAD_SWEEP,
    ) -> dict[int, float]:
        """Response-time speedup over the single-thread run."""
        base = self.run(engine, result, 1).response_time_ms
        return {
            threads: base / self.run(engine, result, threads).response_time_ms
            for threads in thread_counts
        }


def measured_speedup_curve(
    db,
    engine: Engine,
    method: str = "run_q1",
    args: tuple = (),
    kwargs: dict | None = None,
    worker_counts=(1, 2, 4),
    repeats: int = 3,
) -> dict:
    """Measured wall-clock scaling of the morsel-parallel executor.

    Where :meth:`MulticoreModel.speedup_curve` predicts scaling from
    the cycle model (work split N ways, shared bandwidth roofs), this
    actually runs the query on :class:`repro.core.parallel.WorkerPool`
    at each worker count and times it, so model and reality can be
    overlaid (the measured analogue of Figures 29/30).

    Timing uses the best of ``repeats`` runs after one warm-up (the
    warm-up also populates per-worker shared structures such as hash
    tables).  The execution cache is disabled around the single-process
    baseline so repeats measure execution, not memo lookups.  Returns
    ``{"baseline_s", "workers": {n: {"seconds", "speedup"}}}``.
    """
    import os

    from repro.core.parallel import WorkerPool

    kwargs = dict(kwargs or {})
    runner = getattr(engine, method)

    saved = os.environ.get("REPRO_EXEC_CACHE")
    os.environ["REPRO_EXEC_CACHE"] = "0"
    try:
        runner(db, *args, **kwargs)  # warm-up
        baseline = min(
            _timed(lambda: runner(db, *args, **kwargs)) for _ in range(repeats)
        )
    finally:
        if saved is None:
            os.environ.pop("REPRO_EXEC_CACHE", None)
        else:
            os.environ["REPRO_EXEC_CACHE"] = saved

    curve: dict[int, dict[str, float]] = {}
    for n_workers in worker_counts:
        with WorkerPool(db, n_workers=n_workers) as pool:
            pool.run_query(engine, method, *args, **kwargs)  # warm-up
            seconds = min(
                _timed(lambda: pool.run_query(engine, method, *args, **kwargs))
                for _ in range(repeats)
            )
        curve[n_workers] = {
            "seconds": seconds,
            "speedup": baseline / seconds if seconds else float("inf"),
        }
    return {"baseline_s": baseline, "workers": curve}


def _timed(call) -> float:
    import time

    start = time.perf_counter()
    call()
    return time.perf_counter() - start
