"""Planner-driven morsel pruning over zone maps.

The paper shows OLAP scans are memory-bandwidth-bound, so the biggest
win is not touching data at all.  This module turns the per-chunk
statistics of :mod:`repro.storage.zonemap` into executable pruning
decisions: a conjunctive predicate summary (extracted from the logical
plan by :mod:`repro.sql.lower`, or derived canonically from the bound
call here) is classified chunk-by-chunk *before* dispatch, and chunks
no row of which can pass are never scanned -- by the thread executor
or by :mod:`repro.core.parallel`'s worker pool alike.

Bit-identity
------------
The repository's merge contract says a morsel partition must merge to
the *bit-identical* single-shot result -- values, tuple counts, work
profiles, modeled cycles.  Pruning keeps that contract by construction
rather than by re-deriving profiles:

1. **Verdicts are theorems.**  A chunk is pruned only when a prefix of
   its atoms is ALL_TRUE followed by one ALL_FALSE atom (the
   ``first_false`` index ``j``).  Zone-map verdicts are exact (see
   :mod:`repro.storage.zonemap`), so on a pruned chunk every engine's
   per-atom masks are *known constants*: all-ones for atoms before
   ``j``, all-zeros at ``j``, and dead (zero surviving candidates) after.

2. **Constant-mask substitution.**  While a pruned chunk executes,
   :func:`scan_outcome` tells :func:`repro.engines.scan.predicate_mask`
   those constants, so the engine runs its full recording path -- branch
   streams, gathers, byte accounting -- without reading the column data.
   Because the constants equal what the data would have produced, the
   recorded partial is bit-identical to a real scan of the chunk.

3. **Memoized clones.**  On a pruned chunk the recorded partial is a
   pure function of ``(j, chunk length, position signature)`` -- every
   engine records translation-invariant quantities over 64-aligned
   ranges (the one exception, DBMS R's page-granular scan bytes, is
   captured by :meth:`Engine.morsel_position_signature`).  So one
   representative execution per key is cloned across all equal-key
   blocks, and the cost of pruned ranges collapses to a deep copy.

False positives only: a chunk the statistics cannot decide is scanned
normally, so pruning can waste a scan but never drop a row.  Disable
with ``REPRO_PRUNING=0``.
"""

from __future__ import annotations

import bisect
import contextvars
import copy
import os
from dataclasses import dataclass

import numpy as np

from repro.storage.zonemap import ALL_FALSE, ALL_TRUE, CHUNK_ROWS, MIXED

#: Rows per synthesized pruned block.  Matches the process executor's
#: claim size; pruned runs split into blocks of this size (aligned to
#: the run start) so equal-length blocks share one memoized partial.
PRUNED_BLOCK_ROWS = 1 << 16

_OFF_VALUES = {"0", "false", "no", "off"}


def pruning_enabled() -> bool:
    """Zone-map pruning toggle (``REPRO_PRUNING``, on by default)."""
    return os.environ.get("REPRO_PRUNING", "1").strip().lower() not in _OFF_VALUES


# ----------------------------------------------------------------------
# Predicate summaries
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PredicateAtom:
    """One conjunct ``column <op> threshold`` over lineitem, in the
    engines' canonical evaluation order."""

    column: str
    op: str
    threshold: float

    def key(self) -> tuple[str, str, float]:
        return (self.column, self.op, float(self.threshold))


#: Lineitem columns each prunable method streams, for the byte
#: accounting of pruning decisions (the model side channel).
METHOD_SCAN_COLUMNS = {
    "run_q6": ("l_shipdate", "l_discount", "l_quantity", "l_extendedprice"),
    "run_q1": (
        "l_shipdate", "l_returnflag", "l_linestatus", "l_quantity",
        "l_extendedprice", "l_discount", "l_tax",
    ),
    "run_selection": None,  # predicate columns + the 4 projected, see below
}


def atoms_for(db, method: str, kwargs) -> tuple[PredicateAtom, ...]:
    """Canonical conjunctive summary of one bound engine call.

    Mirrors exactly the ``predicate_mask`` calls the engines make, in
    order; methods without morsel-local predicates (projection, joins,
    group-bys -- their filters are not lineitem-range predicates) return
    no atoms and are never pruned.
    """
    from repro.tpch import schema as sc

    kwargs = dict(kwargs)
    if method == "run_q6":
        return (
            PredicateAtom("l_shipdate", "ge", float(sc.DATE_1994_01_01)),
            PredicateAtom("l_shipdate", "lt", float(sc.DATE_1995_01_01)),
            PredicateAtom("l_discount", "ge", 0.05),
            PredicateAtom("l_discount", "le", 0.07),
            PredicateAtom("l_quantity", "lt", 24.0),
        )
    if method == "run_q1":
        return (PredicateAtom("l_shipdate", "le", float(sc.DATE_1998_09_02)),)
    if method == "run_selection":
        from repro.engines.base import resolve_selection_cached

        try:
            _, thresholds = resolve_selection_cached(
                db, kwargs.get("selectivity"), kwargs.get("thresholds")
            )
        except (ValueError, KeyError):
            return ()  # invalid parameters surface through normal execution
        return tuple(
            PredicateAtom(column, "le", float(threshold))
            for column, threshold in thresholds.items()
        )
    return ()


def plan_atoms(plan) -> tuple[PredicateAtom, ...]:
    """Extract a conjunctive summary from a logical plan's Filter nodes.

    Returns one atom per ``column <op> literal`` conjunct, in plan
    order; any non-atomic predicate yields an empty summary (pruning
    only ever acts on summaries it fully understands).
    """
    from repro.sql import plan as ir

    ops = {"<=": "le", "<": "lt", ">=": "ge", ">": "gt", "=": "eq"}
    atoms: list[PredicateAtom] = []

    def walk(node) -> bool:
        if isinstance(node, ir.Filter):
            for predicate in node.predicates:
                if not (
                    isinstance(predicate, ir.Compare)
                    and predicate.op in ops
                    and isinstance(predicate.left, ir.ColumnExpr)
                    and isinstance(predicate.right, ir.ConstExpr)
                    and isinstance(predicate.right.value, (int, float))
                ):
                    return False
                atoms.append(
                    PredicateAtom(
                        predicate.left.ref.column,
                        ops[predicate.op],
                        float(predicate.right.value),
                    )
                )
        for child_name in ("child", "left", "right"):
            child = getattr(node, child_name, None)
            if child is not None and not walk(child):
                return False
        return True

    if plan is None or not walk(plan):
        return ()
    return tuple(atoms)


# ----------------------------------------------------------------------
# The prune plan
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PrunePlan:
    """Chunk-level pruning decisions for one execution.

    ``kept_segments`` are the coalesced row ranges that must be scanned;
    ``pruned_runs`` are coalesced ``(lo, hi, first_false)`` ranges whose
    partials are synthesized.  Both tile ``[0, n_rows)`` exactly, with
    every boundary a multiple of :data:`~repro.storage.zonemap.CHUNK_ROWS`
    (except ``n_rows`` itself), so any sub-partitioning stays
    morsel-aligned.
    """

    atoms: tuple[PredicateAtom, ...]
    chunk_rows: int
    n_rows: int
    kept_segments: tuple[tuple[int, int], ...]
    pruned_runs: tuple[tuple[int, int, int], ...]
    chunks_total: int
    chunks_pruned: int
    #: Partition-level outcome when the table is range-partitioned
    #: (:mod:`repro.rollup.partition`): how many non-empty partitions
    #: exist and how many were dropped whole (every covered chunk
    #: pruned).  Zero/zero on unpartitioned tables.
    partitions_total: int = 0
    partitions_pruned: int = 0

    @property
    def nothing_pruned(self) -> bool:
        return not self.pruned_runs

    @property
    def kept_rows(self) -> int:
        return sum(hi - lo for lo, hi in self.kept_segments)

    @property
    def rows_pruned(self) -> int:
        return sum(hi - lo for lo, hi, _ in self.pruned_runs)

    def summary(self, db=None, method: str | None = None) -> dict:
        """Pruning decision record for result details / serve stats."""
        out = {
            "morsels_scanned": self.chunks_total - self.chunks_pruned,
            "morsels_pruned": self.chunks_pruned,
            "rows": self.n_rows,
            "rows_pruned": self.rows_pruned,
            "chunk_rows": self.chunk_rows,
        }
        if self.partitions_total:
            out["partitions_total"] = self.partitions_total
            out["partitions_pruned"] = self.partitions_pruned
        if db is not None and method is not None:
            columns = METHOD_SCAN_COLUMNS.get(method)
            if columns is None and method == "run_selection":
                from repro.tpch.schema import PROJECTION_COLUMNS

                columns = tuple(atom.column for atom in self.atoms) + PROJECTION_COLUMNS
            if columns:
                table = db.table("lineitem")
                itemsize = sum(
                    table.column(name).itemsize for name in dict.fromkeys(columns)
                )
                out["bytes_pruned"] = int(self.rows_pruned * itemsize)
        return out


def compute_prune_plan(
    db, atoms: tuple[PredicateAtom, ...], chunk_rows: int = CHUNK_ROWS
) -> PrunePlan | None:
    """Classify every zone-map chunk of lineitem against ``atoms``.

    A chunk is pruned iff walking the atoms in order meets an ALL_FALSE
    verdict while every earlier atom was ALL_TRUE -- the first MIXED
    atom stops the walk (beyond it the engines' masks depend on data the
    statistics cannot see).  Returns None when there is nothing to
    classify.

    On a range-partitioned table (:mod:`repro.rollup.partition`) a
    partition-level pre-pass runs first: chunks wholly inside a
    partition the partition min/max statistics decide inherit that
    verdict, and the per-chunk zone map is consulted -- or built at all
    -- only for atoms with undecided chunks left.  Partition verdicts
    are coarsenings of chunk verdicts (same exact interval logic over a
    superset of rows), so the composition never weakens a decision.
    """
    if not atoms:
        return None
    table = db.table("lineitem")
    n_rows = table.n_rows
    if n_rows <= 0:
        return None
    partitioning = getattr(table, "partitioning", None)
    verdict_rows = []
    for atom in atoms:
        pre = None
        if partitioning is not None and atom.column == partitioning.column:
            pre = partitioning.chunk_verdicts(
                atom.op, atom.threshold, chunk_rows, n_rows
            )
            if not (pre == MIXED).any():
                verdict_rows.append(pre)
                continue
        from_zone_map = table.zone_map(atom.column).classify(
            atom.op, atom.threshold, table.encoding(atom.column)
        )
        if pre is not None:
            from_zone_map = np.where(pre == MIXED, from_zone_map, pre)
        verdict_rows.append(from_zone_map)
    verdicts = np.stack(verdict_rows)
    n_chunks = verdicts.shape[1]
    is_false = verdicts == ALL_FALSE
    prefix_true = np.cumprod(verdicts == ALL_TRUE, axis=0).astype(bool)
    eligible = is_false.copy()
    eligible[1:] &= prefix_true[:-1]
    prunable = eligible.any(axis=0)
    first_false = np.argmax(eligible, axis=0)

    pruned_runs: list[tuple[int, int, int]] = []
    kept_segments: list[tuple[int, int]] = []
    for index in range(n_chunks):
        lo = index * chunk_rows
        hi = min(lo + chunk_rows, n_rows)
        if prunable[index]:
            j = int(first_false[index])
            if pruned_runs and pruned_runs[-1][1] == lo and pruned_runs[-1][2] == j:
                pruned_runs[-1] = (pruned_runs[-1][0], hi, j)
            else:
                pruned_runs.append((lo, hi, j))
        else:
            if kept_segments and kept_segments[-1][1] == lo:
                kept_segments[-1] = (kept_segments[-1][0], hi)
            else:
                kept_segments.append((lo, hi))
    partitions_total = partitions_pruned = 0
    if partitioning is not None:
        for p in range(partitioning.n_partitions):
            lo, hi = partitioning.partition_range(p)
            if hi <= lo:
                continue
            partitions_total += 1
            covered = prunable[lo // chunk_rows: -(-hi // chunk_rows)]
            if covered.size and covered.all():
                partitions_pruned += 1
    return PrunePlan(
        atoms=tuple(atoms),
        chunk_rows=chunk_rows,
        n_rows=n_rows,
        kept_segments=tuple(kept_segments),
        pruned_runs=tuple(pruned_runs),
        chunks_total=n_chunks,
        chunks_pruned=int(prunable.sum()),
        partitions_total=partitions_total,
        partitions_pruned=partitions_pruned,
    )


# ----------------------------------------------------------------------
# Constant-mask substitution
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _PruneOutcomes:
    """Known predicate outcomes for one pruned block's execution."""

    lo: int
    hi: int
    outcomes: dict  # (column, op, float(threshold)) -> bool


_ACTIVE: contextvars.ContextVar[_PruneOutcomes | None] = contextvars.ContextVar(
    "prune_outcomes", default=None
)


def scan_outcome(column: str, op: str, threshold, lo: int, hi: int) -> bool | None:
    """The known constant outcome of a predicate over ``[lo, hi)``, or
    None when no pruned block is executing (the overwhelmingly common
    case: one contextvar read) or the call does not match an atom of the
    active block exactly -- range included, so whole-table evaluations
    inside a pruned block still read the data."""
    active = _ACTIVE.get()
    if active is None or lo != active.lo or hi != active.hi:
        return None
    return active.outcomes.get((column, op, float(threshold)))


# ----------------------------------------------------------------------
# Synthesized partials
# ----------------------------------------------------------------------
def _clone_partial(entry, lo: int, hi: int):
    """A private copy of a memoized pruned partial, re-addressed to
    ``[lo, hi)``.  Everything mergeable is deep-copied (merging consumes
    partial state in place)."""
    from repro.engines.base import QueryResult

    details = {
        "partial": copy.deepcopy(entry.details["partial"]),
        "row_range": (int(lo), int(hi)),
    }
    operators = entry.details.get("operators")
    if operators is not None:
        details["operators"] = {
            name: profile.scaled(1.0) for name, profile in operators.items()
        }
    return QueryResult(
        workload=entry.workload,
        value=entry.value,
        tuples=entry.tuples,
        work=entry.work.scaled(1.0),
        details=details,
    )


def _blocks(lo: int, hi: int, block_rows: int = PRUNED_BLOCK_ROWS):
    while lo < hi:
        end = min(lo + block_rows, hi)
        yield lo, end
        lo = end


def pruned_partials(engine, db, method: str, kwargs, plan: PrunePlan) -> list:
    """Synthesize the partial results of every pruned block.

    One representative block per ``(first_false, block length, position
    signature)`` executes under constant-mask substitution; all other
    blocks receive re-addressed clones of it.
    """
    kwargs = dict(kwargs)
    memo: dict = {}
    partials = []
    for run_lo, run_hi, j in plan.pruned_runs:
        outcomes = {
            atom.key(): index < j for index, atom in enumerate(plan.atoms)
        }
        for lo, hi in _blocks(run_lo, run_hi):
            signature = engine.morsel_position_signature(db, method, kwargs, lo, hi)
            key = (j, hi - lo, signature)
            entry = memo.get(key)
            if entry is None:
                token = _ACTIVE.set(_PruneOutcomes(lo, hi, outcomes))
                try:
                    entry = getattr(engine, method)(db, row_range=(lo, hi), **kwargs)
                finally:
                    _ACTIVE.reset(token)
                memo[key] = entry
            partials.append(_clone_partial(entry, lo, hi))
    return partials


def execute_pruned(engine, db, method: str, kwargs, plan: PrunePlan):
    """Thread-executor pruned path: scan the kept segments for real,
    synthesize the pruned ones, merge exactly.

    Emits one ``morsel`` span per kept segment when tracing is active
    (no-ops otherwise), mirroring the process executor's shape.
    """
    from repro.obs import trace

    kwargs = dict(kwargs)
    partials = pruned_partials(engine, db, method, kwargs, plan)
    for lo, hi in plan.kept_segments:
        with trace.span("morsel", row_range=(lo, hi), stolen=False):
            partials.append(
                getattr(engine, method)(db, row_range=(lo, hi), **kwargs)
            )
    result = engine.merge_morsels(db, method, kwargs, partials)
    result.details["pruning"] = plan.summary(db, method)
    return result


# ----------------------------------------------------------------------
# Virtual-row translation (process executor)
# ----------------------------------------------------------------------
def kept_offsets(segments) -> list[int]:
    """Virtual start offset of each kept segment: the ledger hands
    workers ranges over the *compacted* kept row space, and these prefix
    sums anchor the translation back to actual rows."""
    offsets = []
    total = 0
    for lo, hi in segments:
        offsets.append(total)
        total += hi - lo
    return offsets


def translate_claim(segments, offsets, vlo: int, vhi: int):
    """Map one virtual claim ``[vlo, vhi)`` to actual row ranges.

    A claim that spans a kept-segment boundary splits, so every returned
    range is contiguous in the table and morsel-aligned (segment starts
    are chunk boundaries; virtual claims are 64-aligned)."""
    pieces = []
    while vlo < vhi:
        index = bisect.bisect_right(offsets, vlo) - 1
        seg_lo, seg_hi = segments[index]
        seg_end = offsets[index] + (seg_hi - seg_lo)
        take = min(vhi, seg_end)
        actual_lo = seg_lo + (vlo - offsets[index])
        pieces.append((actual_lo, actual_lo + (take - vlo)))
        vlo = take
    return pieces
