"""Morsel-driven multi-process query execution.

The thread-pooled service (:mod:`repro.serve`) is throughput-bound by
the GIL: engine executions are numpy-heavy but still spend most of
their time holding the interpreter lock, so adding service threads
buys admission concurrency, not CPU parallelism.  This module executes
*one query across many processes* the way Leis et al. (SIGMOD'14)
schedule analytical queries across cores:

- the input table is pre-partitioned into one contiguous row range per
  worker (all ranges aligned to
  :data:`repro.engines.morsel.MORSEL_ALIGN`);
- each worker claims fixed-size **morsels** from its own range and,
  when it runs dry, **steals** the upper half of the largest remaining
  range -- so data skew or a slow worker never idles the pool;
- per-morsel partial results merge exactly (worker-locally first, then
  across workers) into a final :class:`~repro.engines.base.QueryResult`
  that is **bit-identical** -- values, tuple counts, work profiles,
  modeled cycles -- to a single-process run (see
  :mod:`repro.engines.morsel` for the recording contract that makes
  this true).

Workers are persistent spawn-mode processes.  The base data crosses
the process boundary exactly once, through one
:mod:`repro.storage.shm` segment exported at pool construction;
workers attach zero-copy views and never run dbgen (a regression test
pins this).  Only small objects travel the queues: task descriptors
out, merged per-worker partials back.

Crash behaviour: a dead worker surfaces as :class:`WorkerCrashed` from
the in-flight call; :meth:`WorkerPool.close` (also registered via
``atexit`` and run by the context manager on Ctrl-C) terminates
stragglers and unlinks the shared segment.
"""

from __future__ import annotations

import atexit
import inspect
import multiprocessing
import os
import threading
import time
import traceback

from repro.core import pruning
from repro.engines.morsel import MORSEL_ALIGN, morsel_ranges
from repro.obs import metrics as obs_metrics
from repro.obs import trace

#: Rows one claim hands a worker.  Aligned, and large enough that the
#: per-morsel numpy dispatch overhead stays negligible.
DEFAULT_MORSEL_ROWS = 1 << 16

_TPCH_RUNNERS = {"Q1": "run_q1", "Q6": "run_q6", "Q9": "run_q9", "Q18": "run_q18"}


class WorkerCrashed(RuntimeError):
    """A pool worker died or failed while executing a task."""


# ----------------------------------------------------------------------
# Task normalisation
# ----------------------------------------------------------------------
def normalized_call(engine, method: str, args: tuple, kwargs: dict):
    """Resolve one public engine call to ``(method, kwargs_items)``.

    ``run_tpch`` dispatches to the per-query runner (matching
    :meth:`Engine.run_tpch`); all positional arguments become named so
    the items can parameterise morsel runs, the merge finisher, and
    cache keys alike.
    """
    if method == "run_tpch":
        signature = inspect.signature(type(engine).run_tpch)
        bound = signature.bind(engine, None, *args, **kwargs)
        bound.apply_defaults()
        query_id = bound.arguments["query_id"]
        predicated = bound.arguments["predicated"]
        if query_id not in _TPCH_RUNNERS:
            raise ValueError(f"unsupported TPC-H query {query_id!r}")
        if predicated and query_id != "Q6":
            raise ValueError("predication is studied on Q6 only (Section 7)")
        method = _TPCH_RUNNERS[query_id]
        args, kwargs = (), ({"predicated": True} if predicated else {})
    signature = inspect.signature(getattr(type(engine), method))
    if "row_range" not in signature.parameters:
        raise ValueError(f"{type(engine).__name__}.{method} has no morsel support")
    bound = signature.bind(engine, None, *args, **kwargs)
    bound.apply_defaults()
    items = tuple(
        (name, value)
        for name, value in bound.arguments.items()
        if name not in ("self", "db", "row_range")
    )
    return method, items


def merge_worker_partials(partials: list):
    """Fold several morsel partials into one (still partial) result.

    Workers do this locally so only one partial per worker crosses the
    process boundary.  All merge operations are commutative and exact
    (see :func:`repro.engines.morsel.merge_states` and
    :meth:`WorkProfile.merge_partial`), so steal-order does not affect
    the merged bits.  The synthetic row range spans the merged morsels
    (ranges are only used to order partials deterministically).
    """
    from repro.engines.morsel import merge_states

    partials = sorted(partials, key=lambda result: result.details["row_range"])
    first = partials[0]
    state = first.details["partial"]
    work = first.work
    operators = first.details.get("operators")
    tuples = first.tuples
    lo, hi = first.details["row_range"]
    for partial in partials[1:]:
        merge_states(state, partial.details["partial"])
        work.merge_partial(partial.work)
        tuples += partial.tuples
        other_ops = partial.details.get("operators")
        if (operators is None) != (other_ops is None):
            raise ValueError("partial operator profiles are not congruent")
        if operators is not None:
            if operators.keys() != other_ops.keys():
                raise ValueError("partial operator profiles are not congruent")
            for name, profile in operators.items():
                profile.merge_partial(other_ops[name])
        other_lo, other_hi = partial.details["row_range"]
        lo, hi = min(lo, other_lo), max(hi, other_hi)
    first.details["row_range"] = (lo, hi)
    first.tuples = tuples
    return first


# ----------------------------------------------------------------------
# Work-stealing ledger
# ----------------------------------------------------------------------
class MorselLedger:
    """Shared per-worker ``[next, end)`` row ranges with stealing.

    One flat ``multiprocessing.Array('q', 2 * n_workers)`` under its
    built-in lock.  A worker first claims morsels from its own range;
    once dry it steals the **upper half** of the largest remaining
    range (victim keeps the cache-warm lower half it is scanning),
    re-seats its own range there and claims from it.  Split points stay
    :data:`~repro.engines.morsel.MORSEL_ALIGN`-aligned so stolen
    morsels keep the exact-merge guarantees.
    """

    def __init__(self, ctx, n_workers: int):
        self.n_workers = n_workers
        self._ranges = ctx.Array("q", 2 * n_workers)

    def assign(self, ranges) -> None:
        """Install one query's per-worker ranges (parent side)."""
        ranges = list(ranges)
        with self._ranges.get_lock():
            for worker_id in range(self.n_workers):
                if worker_id < len(ranges):
                    lo, hi = ranges[worker_id]
                else:
                    lo = hi = 0
                self._ranges[2 * worker_id] = lo
                self._ranges[2 * worker_id + 1] = hi

    def claim(self, worker_id: int, morsel_rows: int):
        """Next morsel for ``worker_id``: ``(lo, hi, stolen)`` or None."""
        with self._ranges.get_lock():
            lo = self._ranges[2 * worker_id]
            end = self._ranges[2 * worker_id + 1]
            if lo < end:
                hi = min(lo + morsel_rows, end)
                self._ranges[2 * worker_id] = hi
                return lo, hi, False
            victim, best = -1, 0
            for other in range(self.n_workers):
                if other == worker_id:
                    continue
                remaining = self._ranges[2 * other + 1] - self._ranges[2 * other]
                if remaining > best:
                    victim, best = other, remaining
            if victim < 0:
                return None
            victim_lo = self._ranges[2 * victim]
            victim_end = self._ranges[2 * victim + 1]
            if best <= morsel_rows:
                # Too little to split: take the victim's tail outright.
                self._ranges[2 * victim] = victim_end
                return victim_lo, victim_end, True
            mid = victim_lo + (best // 2 // MORSEL_ALIGN) * MORSEL_ALIGN
            if mid <= victim_lo:
                mid = victim_lo + MORSEL_ALIGN
            self._ranges[2 * victim + 1] = mid
            self._ranges[2 * worker_id] = mid
            self._ranges[2 * worker_id + 1] = victim_end
            hi = min(mid + morsel_rows, victim_end)
            self._ranges[2 * worker_id] = hi
            return mid, hi, True

    def remaining(self) -> int:
        with self._ranges.get_lock():
            return sum(
                max(0, self._ranges[2 * i + 1] - self._ranges[2 * i])
                for i in range(self.n_workers)
            )


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _resolve_engine(spec: tuple, cache: dict):
    if spec not in cache:
        import importlib

        module_name, qualname = spec
        obj = importlib.import_module(module_name)
        for part in qualname.split("."):
            obj = getattr(obj, part)
        cache[spec] = obj()
    return cache[spec]


def _worker_metrics(worker_id: int):
    """This worker process's metric handles (module registry is fresh
    per spawned process, so these counters are per-worker by nature)."""
    label = str(worker_id)
    registry = obs_metrics.REGISTRY
    return {
        "morsels": registry.counter(
            "repro_worker_morsels_total", "Morsels executed", ("worker",)
        ).labels(worker=label),
        "steals": registry.counter(
            "repro_worker_steals_total", "Morsels obtained by stealing", ("worker",)
        ).labels(worker=label),
        "rows": registry.counter(
            "repro_worker_rows_total", "Rows scanned in morsels", ("worker",)
        ).labels(worker=label),
        "seconds": registry.histogram(
            "repro_worker_morsel_seconds", "Per-morsel execution time", ("worker",)
        ).labels(worker=label),
    }


def _worker_main(worker_id, manifest, ledger, inbox, results, morsel_rows):
    """Persistent worker loop: attach once, then claim/run/merge/reply."""
    from repro.storage import shm

    attached = shm.attach_database(manifest)
    db = attached.database
    engines: dict = {}
    morsels_run = 0
    steals = 0
    metric = _worker_metrics(worker_id)
    try:
        while True:
            message = inbox.get()
            if message is None or message[0] == "stop":
                break
            kind, task_id = message[0], message[1]
            try:
                if kind == "ping":
                    results.put(("done", task_id, worker_id, "pong"))
                elif kind == "stats":
                    from repro.tpch import dbgen

                    results.put(
                        (
                            "done",
                            task_id,
                            worker_id,
                            {
                                "pid": os.getpid(),
                                "morsels": morsels_run,
                                "steals": steals,
                                "dbgen_runs": dbgen.GENERATION_COUNT,
                            },
                        )
                    )
                elif kind == "metrics":
                    results.put(
                        ("done", task_id, worker_id, obs_metrics.REGISTRY.snapshot())
                    )
                elif kind == "run":
                    _, _, engine_spec, method, kwargs_items, segments = message
                    engine = _resolve_engine(engine_spec, engines)
                    runner = getattr(engine, method)
                    kwargs = dict(kwargs_items)
                    # With pruning active the ledger hands out ranges
                    # over the *compacted* kept-row space; translate
                    # each claim back to actual table rows (a claim
                    # spanning a kept-segment boundary splits).
                    offsets = (
                        pruning.kept_offsets(segments)
                        if segments is not None
                        else None
                    )
                    partials = []
                    records = []
                    while True:
                        claim = ledger.claim(worker_id, morsel_rows)
                        if claim is None:
                            break
                        lo, hi, stolen = claim
                        if segments is None:
                            pieces = ((lo, hi),)
                        else:
                            pieces = pruning.translate_claim(
                                segments, offsets, lo, hi
                            )
                        for piece_lo, piece_hi in pieces:
                            t0 = time.perf_counter()
                            partials.append(
                                runner(db, row_range=(piece_lo, piece_hi), **kwargs)
                            )
                            t1 = time.perf_counter()
                            records.append(
                                (worker_id, piece_lo, piece_hi, bool(stolen), t0, t1)
                            )
                            morsels_run += 1
                            metric["morsels"].inc()
                            metric["rows"].inc(piece_hi - piece_lo)
                            metric["seconds"].observe(t1 - t0)
                        steals += stolen
                        if stolen:
                            metric["steals"].inc()
                    payload = merge_worker_partials(partials) if partials else None
                    results.put(("done", task_id, worker_id, (payload, records)))
                else:
                    results.put(("error", task_id, worker_id, f"unknown task {kind!r}"))
            except BaseException:
                results.put(("error", task_id, worker_id, traceback.format_exc()))
    finally:
        attached.close()


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------
class WorkerPool:
    """Persistent multi-process morsel executor over one database.

    The database is exported into shared memory once, workers are
    spawned once, and every :meth:`run_query` fans one engine call out
    as morsels.  Thread-safe: concurrent callers (the query service's
    admission threads) serialise on an internal lock, so the pool runs
    one query at a time with all workers on it -- intra-query
    parallelism, which is what makes a CPU-bound query mix scale.
    """

    def __init__(
        self,
        db,
        n_workers: int | None = None,
        morsel_rows: int = DEFAULT_MORSEL_ROWS,
        task_timeout_s: float = 120.0,
    ):
        from repro.storage import shm

        if n_workers is None:
            n_workers = max(2, min(8, os.cpu_count() or 2))
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if morsel_rows < MORSEL_ALIGN or morsel_rows % MORSEL_ALIGN:
            raise ValueError(f"morsel_rows must be a positive multiple of {MORSEL_ALIGN}")
        self.n_workers = n_workers
        self.morsel_rows = morsel_rows
        self.task_timeout_s = task_timeout_s
        self.db = db
        self._lock = threading.Lock()
        self._task_counter = 0
        self._closed = False
        self.queries_run = 0

        ctx = multiprocessing.get_context("spawn")
        self._exported = shm.export_database(db)
        # The pool adopts exit-time ownership of the segment: close()
        # (registered below) stops workers FIRST and unlinks LAST, so
        # there is exactly one atexit hook with an explicit order
        # instead of two independent ones racing at interpreter exit.
        self._exported.disown_atexit()
        self._ledger = MorselLedger(ctx, n_workers)
        self._results = ctx.Queue()
        self._inboxes = [ctx.Queue() for _ in range(n_workers)]
        self._processes = []
        try:
            for worker_id in range(n_workers):
                process = ctx.Process(
                    target=_worker_main,
                    args=(
                        worker_id,
                        self._exported.manifest,
                        self._ledger,
                        self._inboxes[worker_id],
                        self._results,
                        morsel_rows,
                    ),
                    name=f"morsel-worker-{worker_id}",
                    daemon=True,
                )
                process.start()
                self._processes.append(process)
        except BaseException:
            self.close()
            raise
        atexit.register(self.close)

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Stop workers and unlink the shared segment.  Idempotent and
        safe from ``finally``/``atexit``/signal paths."""
        if self._closed:
            return
        self._closed = True
        for inbox in self._inboxes:
            try:
                inbox.put_nowait(("stop",))
            except Exception:
                pass
        for process in self._processes:
            process.join(timeout=2.0)
        for process in self._processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
        for queue_ in (*self._inboxes, self._results):
            queue_.cancel_join_thread()
            queue_.close()
        self._exported.unlink()
        atexit.unregister(self.close)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- dispatch ------------------------------------------------------
    def _broadcast_collect(self, build_message):
        """Send one task to every worker; return per-worker payloads."""
        self._task_counter += 1
        task_id = self._task_counter
        for inbox in self._inboxes:
            inbox.put(build_message(task_id))
        payloads: dict[int, object] = {}
        import queue as queue_module
        import time

        deadline = time.monotonic() + self.task_timeout_s
        while len(payloads) < self.n_workers:
            try:
                status, got_task, worker_id, payload = self._results.get(timeout=0.25)
            except queue_module.Empty:
                dead = [p.name for p in self._processes if not p.is_alive()]
                if dead:
                    raise WorkerCrashed(f"worker(s) died: {', '.join(dead)}")
                if time.monotonic() > deadline:
                    raise WorkerCrashed(
                        f"task timed out after {self.task_timeout_s}s"
                    )
                continue
            if got_task != task_id:
                continue  # stale reply from an abandoned task
            if status == "error":
                raise WorkerCrashed(f"worker {worker_id} failed:\n{payload}")
            payloads[worker_id] = payload
        return payloads

    def _dispatch_morsels(self, engine, method: str, kwargs_items: tuple):
        """Prune, assign ledger ranges, broadcast and collect morsels.

        Returns ``(partials, plan)`` where ``partials`` is the list of
        per-worker merged partials (plus synthesized pruned partials)
        and ``plan`` the prune plan, or None when nothing was pruned.
        Shared by :meth:`run_query` (which finishes the merge locally)
        and :meth:`run_partial` (which hands the still-partial state to
        a scatter-gather coordinator).
        """
        engine_cls = type(engine)
        engine_spec = (engine_cls.__module__, engine_cls.__qualname__)
        plan = None
        if pruning.pruning_enabled():
            atoms = pruning.atoms_for(self.db, method, dict(kwargs_items))
            if atoms:
                with trace.span("prune", executor="process"):
                    plan = pruning.compute_prune_plan(self.db, atoms)
                    if plan is not None:
                        trace.annotate(**plan.summary(self.db, method))
        if plan is not None and plan.nothing_pruned:
            plan = None
        segments = plan.kept_segments if plan is not None else None
        with self._lock:
            if plan is not None and plan.kept_rows == 0:
                payloads = {}  # everything pruned: nothing to dispatch
            else:
                if plan is None:
                    n_rows = engine.partition_rows(self.db, method, kwargs_items)
                    self._ledger.assign(morsel_ranges(n_rows, self.n_workers))
                else:
                    self._ledger.assign(
                        morsel_ranges(plan.kept_rows, self.n_workers)
                    )
                payloads = self._broadcast_collect(
                    lambda task_id: (
                        "run", task_id, engine_spec, method, kwargs_items, segments,
                    )
                )
            self.queries_run += 1
        partials = []
        records = []
        for payload in payloads.values():
            partial, worker_records = payload
            if partial is not None:
                partials.append(partial)
            records.extend(worker_records)
        if trace.active():
            # Graft the workers' morsel timings as completed child
            # spans, ordered by row range so the tree is deterministic.
            for worker_id, lo, hi, stolen, t0, t1 in sorted(
                records, key=lambda r: (r[1], r[2])
            ):
                trace.record(
                    "morsel",
                    t0,
                    t1,
                    worker=worker_id,
                    row_range=(lo, hi),
                    stolen=stolen,
                )
        if plan is not None:
            partials.extend(
                pruning.pruned_partials(
                    engine, self.db, method, dict(kwargs_items), plan
                )
            )
        if not partials:
            raise WorkerCrashed("no worker produced a partial result")
        return partials, plan

    def run_query(self, engine, method: str, *args, **kwargs):
        """Execute ``engine.<method>(db, *args, **kwargs)`` morsel-parallel.

        Returns a QueryResult bit-identical to the single-process call.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        method, kwargs_items = normalized_call(engine, method, args, kwargs)
        # Rollup routing happens parent-side: a routed query reads the
        # (tiny) pre-aggregated table, so fanning it out to workers
        # would cost more in dispatch than the scan itself.
        from repro.rollup import router as rollup_router

        routed, decision = rollup_router.attempt(
            self.db, engine, method, dict(kwargs_items), executor="process"
        )
        if routed is not None:
            with self._lock:
                self.queries_run += 1
            return routed
        partials, plan = self._dispatch_morsels(engine, method, kwargs_items)
        result = engine.merge_morsels(self.db, method, kwargs_items, partials)
        if plan is not None:
            result.details["pruning"] = plan.summary(self.db, method)
        if decision is not None:
            result.details["rollup"] = decision
        return result

    def run_partial(self, engine, method: str, *args, **kwargs):
        """Execute one engine call morsel-parallel but stop *before* the
        finisher: return ``(partial, prune_summary)`` where ``partial``
        is a single still-mergeable QueryResult (state under
        ``details["partial"]``, span under ``details["row_range"]``).

        This is the shard-node entry point: a scatter-gather
        coordinator merges such partials across node boundaries with
        the same exact mergers :meth:`run_query` uses within one node,
        so the distributed result stays bit-identical.  Rollup routing
        is intentionally skipped here -- it returns *finished* values,
        which would round per shard; shard-aware rollup routing
        synthesizes partials instead (see ``repro.shard.partial_exec``).
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        method, kwargs_items = normalized_call(engine, method, args, kwargs)
        partials, plan = self._dispatch_morsels(engine, method, kwargs_items)
        partial = merge_worker_partials(partials)
        summary = plan.summary(self.db, method) if plan is not None else None
        return partial, summary

    def ping(self) -> bool:
        with self._lock:
            payloads = self._broadcast_collect(lambda task_id: ("ping", task_id))
        return all(payload == "pong" for payload in payloads.values())

    def metrics_snapshots(self) -> list[dict]:
        """One metrics-registry snapshot per worker process, for
        :func:`repro.obs.merge_snapshots` at scrape time."""
        with self._lock:
            payloads = self._broadcast_collect(lambda task_id: ("metrics", task_id))
        return [payloads[worker_id] for worker_id in sorted(payloads)]

    def stats(self) -> dict:
        """Per-worker counters (morsels, steals, dbgen runs, pids)."""
        with self._lock:
            payloads = self._broadcast_collect(lambda task_id: ("stats", task_id))
        workers = [payloads[worker_id] for worker_id in sorted(payloads)]
        return {
            "n_workers": self.n_workers,
            "morsel_rows": self.morsel_rows,
            "queries_run": self.queries_run,
            "workers": workers,
            "total_morsels": sum(worker["morsels"] for worker in workers),
            "total_steals": sum(worker["steals"] for worker in workers),
            "worker_dbgen_runs": sum(worker["dbgen_runs"] for worker in workers),
        }
