"""Profile reports: the unit of output of the profiler.

A :class:`ProfileReport` bundles what one paper data point shows: the
TMAM cycle breakdown, the response time and the bandwidth utilisation
of one (engine, workload) execution, plus helpers for the normalised
views the paper's figures use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.spec import ServerSpec
from repro.hardware.tmam import COMPONENTS, STALL_COMPONENTS, CycleBreakdown
from repro.core.bandwidth import BandwidthUsage
from repro.core.workprofile import WorkProfile

#: Human-readable component labels, matching the paper's legends.
COMPONENT_LABELS = {
    "retiring": "Retiring",
    "branch_misp": "Branch misp.",
    "icache": "Icache",
    "decoding": "Decoding",
    "dcache": "Dcache",
    "execution": "Execution",
}


@dataclass(frozen=True)
class ProfileReport:
    """One profiled data point.

    ``cached`` marks reports derived from a memoized execution
    (:mod:`repro.core.execcache`), so exported figures never silently
    mix fresh and cache-served measurements.
    """

    engine: str
    workload: str
    breakdown: CycleBreakdown
    bandwidth: BandwidthUsage
    work: WorkProfile
    spec: ServerSpec
    threads: int = 1
    cached: bool = False

    @property
    def label(self) -> str:
        return f"{self.engine}/{self.workload}"

    @property
    def cycles(self) -> float:
        return self.breakdown.total

    @property
    def response_time_ms(self) -> float:
        return self.spec.cycles_to_ms(self.breakdown.total)

    @property
    def stall_ratio(self) -> float:
        return self.breakdown.stall_ratio

    @property
    def retiring_ratio(self) -> float:
        return self.breakdown.retiring_ratio

    def cycle_shares(self) -> dict[str, float]:
        return self.breakdown.cycle_shares()

    def stall_shares(self) -> dict[str, float]:
        return self.breakdown.stall_shares()

    def time_breakdown_ms(self) -> dict[str, float]:
        """Per-component response time in milliseconds (the paper's
        response/stall *time* figures, e.g. Figures 17-20, 26)."""
        return {
            name: self.spec.cycles_to_ms(getattr(self.breakdown, name))
            for name in COMPONENTS
        }

    def stall_time_ms(self) -> dict[str, float]:
        return {
            name: self.spec.cycles_to_ms(getattr(self.breakdown, name))
            for name in STALL_COMPONENTS
        }

    def normalized_to(self, base: "ProfileReport") -> CycleBreakdown:
        """Breakdown scaled so ``base``'s total is 1.0 (Figures 6, 14,
        22, 25)."""
        return self.breakdown.normalized_to(base.breakdown.total)

    def speedup_over(self, other: "ProfileReport") -> float:
        """How many times faster this run is than ``other``."""
        return other.cycles / self.cycles if self.cycles else float("inf")

    def as_row(self) -> dict[str, float | str]:
        """Flat dict for tabular output."""
        row: dict[str, float | str] = {
            "engine": self.engine,
            "workload": self.workload,
            "threads": self.threads,
            "cached": self.cached,
            "response_ms": round(self.response_time_ms, 3),
            "stall_ratio": round(self.stall_ratio, 4),
            "bandwidth_gbps": round(self.bandwidth.gbps, 2),
            "bandwidth_max_gbps": round(self.bandwidth.max_gbps, 2),
            "instructions_per_tuple": round(self.work.instructions_per_tuple(), 2),
        }
        for name, share in self.cycle_shares().items():
            row[f"share_{name}"] = round(share, 4)
        return row
