"""Sampled trace-driven simulation.

The analytic cycle model uses effective parameters (prefetcher
coverage, random-access hit mixes, misprediction rates).  This module
validates those parameters the way a micro-benchmark would on real
hardware: it generates address/branch traces and replays them through
the *structural* models -- set-associative caches with the four
prefetchers (:mod:`repro.hardware.hierarchy`) and a gshare predictor
(:mod:`repro.hardware.branch`).

Traces are sampled (tens of thousands of events), following the
standard sampled-simulation methodology: rates, not absolute counts,
carry over to full-size runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.branch import GSharePredictor
from repro.hardware.hierarchy import CacheHierarchy, HierarchyStats
from repro.hardware.prefetcher import PrefetcherConfig
from repro.hardware.spec import CACHE_LINE_BYTES, ServerSpec


def sequential_trace(n_accesses: int, stride_bytes: int = 8, start: int = 0) -> np.ndarray:
    """Addresses of a dense forward scan (a column read)."""
    if n_accesses < 0 or stride_bytes <= 0:
        raise ValueError("n_accesses must be >= 0, stride positive")
    return start + stride_bytes * np.arange(n_accesses, dtype=np.int64)


def random_trace(
    n_accesses: int, working_set_bytes: int, seed: int = 7, align: int = 8
) -> np.ndarray:
    """Uniform random addresses into a working set (hash probes)."""
    if working_set_bytes < align:
        raise ValueError("working set must hold at least one element")
    rng = np.random.default_rng(seed)
    slots = working_set_bytes // align
    return rng.integers(0, slots, n_accesses) * align


def sparse_trace(
    n_lines: int, density: float, stride_bytes: int = CACHE_LINE_BYTES, seed: int = 7
) -> np.ndarray:
    """One access per touched line of a scan that skips lines with
    probability 1-density (a gather through a selection vector)."""
    if not 0.0 < density <= 1.0:
        raise ValueError("density must be in (0, 1]")
    rng = np.random.default_rng(seed)
    touched = np.flatnonzero(rng.random(n_lines) < density)
    return touched * stride_bytes


@dataclass(frozen=True)
class TraceResult:
    """Replay outcome of one address trace."""

    stats: HierarchyStats
    prefetches_issued: int

    @property
    def demand_memory_rate(self) -> float:
        """Fraction of accesses served by DRAM on demand (not hidden)."""
        return self.stats.memory_miss_rate

    @property
    def avg_latency_cycles(self) -> float:
        return self.stats.avg_latency_cycles


class TraceSimulator:
    """Replays traces against a configured cache hierarchy."""

    def __init__(self, spec: ServerSpec, config: PrefetcherConfig | None = None):
        self.spec = spec
        self.config = config or PrefetcherConfig.all_enabled()

    def replay(self, addresses: np.ndarray) -> TraceResult:
        hierarchy = CacheHierarchy(self.spec, self.config)
        hierarchy.replay(addresses)
        return TraceResult(
            stats=hierarchy.stats,
            prefetches_issued=hierarchy.prefetches_issued(),
        )

    def sequential_coverage(
        self, n_accesses: int = 40_000, stride_bytes: int = 8
    ) -> float:
        """Measured fraction of a scan's would-be DRAM demand misses
        that the configured prefetchers hide.

        Compared against
        :meth:`repro.hardware.prefetcher.PrefetcherConfig.sequential_coverage`
        in the tests.  Note the structural simulator installs
        prefetches instantly, so it measures *coverage* (misses
        removed), not the prefetcher-lag residual the analytic model
        adds on top.
        """
        trace = sequential_trace(n_accesses, stride_bytes)
        baseline = TraceSimulator(self.spec, PrefetcherConfig.all_disabled()).replay(trace)
        configured = self.replay(trace)
        base_misses = baseline.stats.memory_accesses
        if not base_misses:
            return 0.0
        hidden = base_misses - configured.stats.memory_accesses
        return max(0.0, hidden / base_misses)

    def random_latency(
        self, working_set_bytes: int, n_accesses: int = 20_000, seed: int = 7
    ) -> float:
        """Average measured load-to-use latency of uniform random
        probes into a working set (validates
        :meth:`repro.core.cyclemodel.CycleModel.random_latency_cycles`).

        The hierarchy is warmed with a sweep of the working set (up to a
        sampling cap) plus a random pass, so cache-resident working sets
        measure steady-state hit latencies rather than cold misses.
        """
        lines = min(working_set_bytes // CACHE_LINE_BYTES, 150_000)
        sweep = sequential_trace(int(lines), CACHE_LINE_BYTES)
        warmup = random_trace(n_accesses, working_set_bytes, seed=seed + 1)
        probes = random_trace(n_accesses, working_set_bytes, seed=seed)
        hierarchy = CacheHierarchy(self.spec, self.config)
        hierarchy.replay(sweep)
        hierarchy.replay(warmup)
        hierarchy.stats = HierarchyStats()
        hierarchy.replay(probes)
        return hierarchy.stats.avg_latency_cycles


@dataclass(frozen=True)
class ProfileTraceEstimate:
    """Trace-replayed estimate of a work profile's memory behaviour."""

    avg_latency_cycles: float
    memory_miss_rate: float
    l1_hit_rate: float
    sample_accesses: int


def simulate_profile(
    profile,
    spec: ServerSpec,
    config: PrefetcherConfig | None = None,
    sample_accesses: int = 20_000,
    seed: int = 23,
) -> ProfileTraceEstimate:
    """Replay a *sampled* address trace constructed from a work
    profile's access patterns through the structural cache hierarchy.

    The trace interleaves the profile's streams proportionally to their
    access counts: 8-byte sequential loads for the streamed bytes,
    density-thinned line touches for sparse scans, and uniform probes
    into each random pattern's working set (placed in disjoint address
    regions).  This gives a second, structural estimate of the memory
    behaviour the analytic model computes in closed form -- the
    sampled-simulation methodology measurement studies use to sanity-
    check their counters.
    """
    rng = np.random.default_rng(seed)
    streams: list[tuple[float, object]] = []
    warm_regions: list[tuple[int, float]] = []
    region_base = 0
    region_stride = 1 << 36  # keep stream regions disjoint

    seq_count = profile.seq_bytes / 8.0
    if seq_count:
        def sequential_stream(base=region_base):
            position = 0
            while True:
                yield base + position
                position += 8
        streams.append((seq_count, sequential_stream()))
        region_base += region_stride

    for scan in profile.sparse_scans:
        lines = scan.bytes_touched / CACHE_LINE_BYTES
        if lines < 1:
            continue

        def sparse_stream(base=region_base, density=scan.density):
            line = 0
            while True:
                line += max(1, int(round(1.0 / density)))
                yield base + line * CACHE_LINE_BYTES
        streams.append((lines, sparse_stream()))
        region_base += region_stride

    for pattern in profile.random_patterns:
        if pattern.count < 1 or pattern.working_set_bytes < 8:
            continue
        warm_regions.append((region_base, pattern.working_set_bytes))

        def random_stream(base=region_base, ws=int(pattern.working_set_bytes)):
            slots = max(1, ws // 8)
            while True:
                yield base + int(rng.integers(0, slots)) * 8
        streams.append((pattern.count, random_stream()))
        region_base += region_stride

    if not streams:
        return ProfileTraceEstimate(0.0, 0.0, 0.0, 0)

    weights = np.array([count for count, _ in streams], dtype=float)
    weights /= weights.sum()
    choices = rng.choice(len(streams), size=sample_accesses, p=weights)
    hierarchy = CacheHierarchy(spec, config or PrefetcherConfig.all_enabled())
    # Warm each random working set (capped sweep) so cache-resident
    # structures measure steady-state hits rather than cold misses.
    for base, working_set in warm_regions:
        lines = min(int(working_set) // CACHE_LINE_BYTES, 150_000)
        hierarchy.replay(base + CACHE_LINE_BYTES * np.arange(lines, dtype=np.int64))
    hierarchy.stats = HierarchyStats()
    # Materialise the interleaved trace first (the stream generators are
    # cheap), then replay it in one batch.
    addresses = np.fromiter(
        (next(streams[index][1]) for index in choices),
        dtype=np.int64,
        count=len(choices),
    )
    hierarchy.replay(addresses)
    stats = hierarchy.stats
    return ProfileTraceEstimate(
        avg_latency_cycles=stats.avg_latency_cycles,
        memory_miss_rate=stats.memory_miss_rate,
        l1_hit_rate=stats.l1_hits / stats.accesses if stats.accesses else 0.0,
        sample_accesses=stats.accesses,
    )


def gshare_mispredict_rate(
    outcomes: np.ndarray, table_bits: int = 12, history_bits: int = 8, pc: int = 0x40_00
) -> float:
    """Misprediction rate of a gshare predictor on an outcome stream
    (validates the analytic two-bit rate on real predicate streams)."""
    predictor = GSharePredictor(table_bits=table_bits, history_bits=history_bits)
    return predictor.run(pc, np.asarray(outcomes, dtype=bool))


def bernoulli_outcomes(n: int, p_taken: float, seed: int = 11) -> np.ndarray:
    """A Bernoulli branch outcome stream (selection predicate model)."""
    if not 0.0 <= p_taken <= 1.0:
        raise ValueError("p_taken must be in [0, 1]")
    rng = np.random.default_rng(seed)
    return rng.random(n) < p_taken
