"""Regeneration of the multi-core experiments (Figures 27-30 and the
Section 10 headroom discussion)."""

from __future__ import annotations

from repro.engines import TectorwiseEngine, TyperEngine
from repro.core.multicore import (
    THREAD_SWEEP,
    MulticoreModel,
    measured_speedup_curve,
)
from repro.workloads.tpch_queries import run_tpch
from repro.analysis.result import (
    CYCLE_SHARE_COLUMNS,
    STALL_SHARE_COLUMNS,
    FigureResult,
    cycle_share_row,
    stall_share_row,
)


def hpe_engines():
    return (TyperEngine(), TectorwiseEngine())


def _multicore_tpch_reports(db, profiler, threads: int = 14):
    """Per-thread reports of the TPC-H queries at ``threads`` threads."""
    model = MulticoreModel(profiler)
    reports = {}
    for engine in hpe_engines():
        per_query = {}
        for query_id in ("Q1", "Q6", "Q9", "Q18"):
            result = engine.run_tpch(db, query_id)
            per_query[query_id] = model.run(engine, result, threads).per_thread
        reports[engine.name] = per_query
    return reports


def fig27_multicore_tpch_cycles(db, profiler) -> FigureResult:
    """Figure 27: CPU cycles breakdown, TPC-H at 14 threads."""
    reports = _multicore_tpch_reports(db, profiler)
    figure = FigureResult(
        "fig27",
        "CPU cycles breakdown, TPC-H at 14 threads (Typer / Tectorwise)",
        ("engine", "query", "stall_ratio", *CYCLE_SHARE_COLUMNS),
    )
    for engine, per_query in reports.items():
        for query_id, report in per_query.items():
            figure.rows.append(cycle_share_row(report, query=query_id))
    figure.note("Multi-core breakdowns track the single-core ones.")
    return figure


def fig28_multicore_tpch_stalls(db, profiler) -> FigureResult:
    """Figure 28: stall cycles breakdown, TPC-H at 14 threads."""
    reports = _multicore_tpch_reports(db, profiler)
    figure = FigureResult(
        "fig28",
        "Stall cycles breakdown, TPC-H at 14 threads (Typer / Tectorwise)",
        ("engine", "query", "stall_ratio", *STALL_SHARE_COLUMNS),
    )
    for engine, per_query in reports.items():
        for query_id, report in per_query.items():
            figure.rows.append(stall_share_row(report, query=query_id))
    return figure


def _bandwidth_curve_figure(db, profiler, figure_id: str, workload: str) -> FigureResult:
    model = MulticoreModel(profiler)
    title = {
        "projection": "Multi-core bandwidth, projection degree 4",
        "join": "Multi-core bandwidth, large join",
    }[workload]
    figure = FigureResult(
        figure_id, title, ("engine", "threads", "bandwidth_gbps", "max_gbps")
    )
    for engine in hpe_engines():
        if workload == "projection":
            result = engine.run_projection(db, 4)
        else:
            result = engine.run_join(db, "large")
        curve = model.bandwidth_curve(engine, result)
        for threads in THREAD_SWEEP:
            run = model.run(engine, result, threads)
            figure.add_row(
                engine=engine.name,
                threads=threads,
                bandwidth_gbps=curve[threads],
                max_gbps=run.socket_bandwidth.max_gbps,
            )
        saturation = model.saturation_point(
            curve, figure.rows[-1]["max_gbps"]
        )
        figure.note(f"{engine.name} saturation point: {saturation} threads")
    return figure


def fig29_multicore_projection_bandwidth(db, profiler) -> FigureResult:
    """Figure 29: multi-core bandwidth of projection p4: Typer saturates
    the socket at ~8 threads, Tectorwise at ~12."""
    return _bandwidth_curve_figure(db, profiler, "fig29", "projection")


def fig30_multicore_join_bandwidth(db, profiler) -> FigureResult:
    """Figure 30: multi-core bandwidth of the large join: both engines
    leave the socket's random bandwidth underutilised."""
    figure = _bandwidth_curve_figure(db, profiler, "fig30", "join")
    figure.note(
        "Costly hash computations keep memory traffic too low to use the "
        "socket's random-access bandwidth."
    )
    return figure


def sec10_measured_scaling(db, profiler) -> FigureResult:
    """Measured vs modeled multi-core scaling (Figures 29/30 analogue).

    The cycle model predicts how far each engine scales before the
    socket's bandwidth roofs bite; the morsel-driven process executor
    lets us *measure* wall-clock scaling of the same queries on this
    machine.  Overlaying both separates what the model claims about the
    paper's Broadwell socket from what the executor achieves here.
    """
    import os

    worker_counts = tuple(
        n for n in (1, 2, 4) if n <= (os.cpu_count() or 1)
    ) or (1,)
    figure = FigureResult(
        "sec10-measured-scaling",
        "Measured process-executor speedup vs modeled thread scaling",
        ("engine", "query", "workers", "measured_speedup", "modeled_speedup"),
    )
    model = MulticoreModel(profiler)
    for engine in hpe_engines():
        for query_id in ("Q1", "Q6"):
            result = engine.run_tpch(db, query_id)
            modeled = model.speedup_curve(engine, result, worker_counts)
            measured = measured_speedup_curve(
                db, engine, method="run_tpch", args=(query_id,),
                worker_counts=worker_counts,
            )
            for n_workers in worker_counts:
                figure.add_row(
                    engine=engine.name,
                    query=query_id,
                    workers=n_workers,
                    measured_speedup=round(
                        measured["workers"][n_workers]["speedup"], 3
                    ),
                    modeled_speedup=round(modeled[n_workers], 3),
                )
    figure.note(
        "Modeled speedups assume the paper's Broadwell socket; measured "
        "speedups are wall-clock on this machine's process pool, so the "
        "two converge only when the host is not oversubscribed."
    )
    figure.note(
        "Parallel results are bit-identical to single-process runs; only "
        "the wall-clock differs."
    )
    return figure


def sec10_multicore_headroom(db, profiler) -> FigureResult:
    """Section 10 text: SIMD and hyper-threading raise the large join's
    multi-core bandwidth, but it stays below the random-access roof."""
    model = MulticoreModel(profiler)
    typer, tectorwise = hpe_engines()
    threads = profiler.spec.cores_per_socket
    figure = FigureResult(
        "sec10-headroom",
        "Large-join socket bandwidth headroom at 14 threads",
        ("engine", "variant", "bandwidth_gbps", "max_gbps"),
    )
    tw_scalar = tectorwise.run_join(db, "large")
    tw_simd = tectorwise.run_join(db, "large", simd=True)
    ty_result = typer.run_join(db, "large")
    cases = (
        ("Tectorwise", "scalar", tw_scalar, False),
        ("Tectorwise", "SIMD", tw_simd, False),
        ("Typer", "scalar", ty_result, False),
        ("Typer", "hyper-threading", ty_result, True),
        ("Tectorwise", "SIMD + hyper-threading", tw_simd, True),
    )
    for engine_name, variant, result, ht in cases:
        run = model.run(engine_name, result, threads, hyper_threading=ht)
        figure.add_row(
            engine=engine_name,
            variant=variant,
            bandwidth_gbps=run.bandwidth_gbps,
            max_gbps=run.socket_bandwidth.max_gbps,
        )
    figure.note(
        "Improvements are substantial but stay below the random-access "
        "roof: the compute/memory imbalance persists."
    )
    return figure
