"""Ablation study of the cycle model's calibration parameters.

The analytic model has a small set of calibrated constants
(:class:`~repro.core.cyclemodel.CalibrationParams`).  This module
measures how the paper's headline metrics respond when each constant is
scaled up and down, answering two questions the reproduction must be
able to defend:

1. *Robustness* — which qualitative conclusions survive large parameter
   perturbations (they should nearly all survive: the claims are about
   orderings, not absolute values)?
2. *Attribution* — which constant is responsible for which effect
   (e.g. ``prefetch_residual_cycles`` drives the "prefetchers are not
   fast enough" stalls, ``seq_queue_coeff`` the super-linear Dcache
   growth)?
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Callable

from repro.engines import TectorwiseEngine, TyperEngine
from repro.hardware.spec import BROADWELL
from repro.core.cyclemodel import CalibrationParams
from repro.core.profiler import MicroArchProfiler
from repro.analysis.result import FigureResult

#: Parameters with a None default cannot be scaled.
_SCALABLE = tuple(
    field.name
    for field in fields(CalibrationParams)
    if isinstance(getattr(CalibrationParams(), field.name), (int, float))
)


@dataclass(frozen=True)
class Metric:
    """A named scalar the ablation tracks."""

    name: str
    #: Claimed direction of the paper conclusion this metric anchors.
    claim: str
    compute: Callable[[MicroArchProfiler, object], float]


def _typer_p4_stall(profiler, db) -> float:
    engine = TyperEngine()
    return profiler.profile(engine, engine.run_projection(db, 4)).stall_ratio


def _typer_stall_growth(profiler, db) -> float:
    """Typer p4 stall ratio minus p1 stall ratio (positive = grows)."""
    engine = TyperEngine()
    p1 = profiler.profile(engine, engine.run_projection(db, 1)).stall_ratio
    p4 = profiler.profile(engine, engine.run_projection(db, 4)).stall_ratio
    return p4 - p1


def _selection_branch_peak(profiler, db) -> float:
    """Branch share at 50% minus the max share at 10/90% (Typer)."""
    engine = TyperEngine()
    shares = {
        selectivity: profiler.profile(
            engine, engine.run_selection(db, selectivity)
        ).stall_shares()["branch_misp"]
        for selectivity in (0.1, 0.5, 0.9)
    }
    return shares[0.5] - max(shares[0.1], shares[0.9])


def _large_join_dcache_share(profiler, db) -> float:
    engine = TyperEngine()
    return profiler.profile(engine, engine.run_join(db, "large")).stall_shares()["dcache"]


def _tectorwise_vs_typer_bandwidth(profiler, db) -> float:
    """Tectorwise / Typer projection bandwidth (must stay < 1)."""
    typer, tectorwise = TyperEngine(), TectorwiseEngine()
    typer_bw = profiler.profile(typer, typer.run_projection(db, 4)).bandwidth.gbps
    tw_bw = profiler.profile(
        tectorwise, tectorwise.run_projection(db, 4)
    ).bandwidth.gbps
    return tw_bw / typer_bw


METRICS = (
    Metric("typer_p4_stall_ratio", "in [0.25, 0.82]", _typer_p4_stall),
    Metric("typer_stall_growth_p1_to_p4", "> 0", _typer_stall_growth),
    Metric("selection_branch_peak_at_50", "> 0", _selection_branch_peak),
    Metric("large_join_dcache_share", "> 0.5", _large_join_dcache_share),
    Metric("tectorwise_over_typer_bandwidth", "< 1", _tectorwise_vs_typer_bandwidth),
)


class AblationStudy:
    """Scales each calibration parameter and recomputes the metrics."""

    def __init__(self, db, spec=BROADWELL, factors=(0.5, 2.0)):
        self.db = db
        self.spec = spec
        self.factors = factors

    def _profiler(self, params: CalibrationParams) -> MicroArchProfiler:
        return MicroArchProfiler(spec=self.spec, params=params)

    def baseline(self) -> dict[str, float]:
        profiler = self._profiler(CalibrationParams())
        return {metric.name: metric.compute(profiler, self.db) for metric in METRICS}

    def ablate(self, parameter: str) -> FigureResult:
        """Sweep one parameter; returns a figure with one row per factor."""
        if parameter not in _SCALABLE:
            raise ValueError(
                f"unknown or non-scalable parameter {parameter!r}; "
                f"choose from {_SCALABLE}"
            )
        base = CalibrationParams()
        figure = FigureResult(
            f"ablation-{parameter}",
            f"Sensitivity of headline metrics to {parameter}",
            ("factor", "value", *(metric.name for metric in METRICS)),
        )
        for factor in (1.0, *self.factors):
            value = getattr(base, parameter) * factor
            params = replace(base, **{parameter: value})
            profiler = self._profiler(params)
            row = {"factor": factor, "value": value}
            for metric in METRICS:
                row[metric.name] = metric.compute(profiler, self.db)
            figure.rows.append(row)
        return figure

    def run(self, parameters=None) -> dict[str, FigureResult]:
        """Ablate every (or the given) calibration parameter."""
        names = parameters or _SCALABLE
        return {name: self.ablate(name) for name in names}

    def conclusions_survive(self, figure: FigureResult) -> bool:
        """Check that the paper's qualitative claims hold in every row
        of an ablation figure (the robustness question)."""
        for row in figure.rows:
            if not 0.15 <= row["typer_p4_stall_ratio"] <= 0.9:
                return False
            if row["typer_stall_growth_p1_to_p4"] <= -0.02:
                return False
            if row["selection_branch_peak_at_50"] <= 0.0:
                return False
            if row["large_join_dcache_share"] <= 0.4:
                return False
            if row["tectorwise_over_typer_bandwidth"] >= 1.0:
                return False
        return True


def scalable_parameters() -> tuple[str, ...]:
    """Calibration parameters the ablation can scale."""
    return _SCALABLE
