"""Containers for regenerated paper tables and figures."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.report import ProfileReport
from repro.hardware.tmam import COMPONENTS, STALL_COMPONENTS


@dataclass
class FigureResult:
    """One regenerated table/figure: rows of named values plus notes.

    ``rows`` is a list of flat dicts sharing the ``columns`` keys, in
    the order the paper's figure presents its bars/series.
    """

    figure_id: str
    title: str
    columns: tuple[str, ...]
    rows: list[dict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **values) -> None:
        row = {column: values.get(column) for column in self.columns}
        self.rows.append(row)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def column(self, name: str) -> list:
        """All values of one column, in row order."""
        return [row.get(name) for row in self.rows]

    def row_for(self, **match) -> dict:
        """First row matching all given key/value pairs."""
        for row in self.rows:
            if all(row.get(key) == value for key, value in match.items()):
                return row
        raise KeyError(f"no row matching {match} in {self.figure_id}")

    def to_text(self, float_format: str = "{:.3f}") -> str:
        """Render as a fixed-width text table."""
        def fmt(value) -> str:
            if isinstance(value, float):
                return float_format.format(value)
            return str(value)

        header = list(self.columns)
        body = [[fmt(row.get(column)) for column in self.columns] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(line[i]) for line in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [f"== {self.figure_id}: {self.title} =="]
        lines.append("  ".join(header[i].ljust(widths[i]) for i in range(len(header))))
        lines.append("  ".join("-" * widths[i] for i in range(len(header))))
        for line in body:
            lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(header))))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


CYCLE_SHARE_COLUMNS = tuple(f"share_{name}" for name in COMPONENTS)
STALL_SHARE_COLUMNS = tuple(f"stall_share_{name}" for name in STALL_COMPONENTS)
TIME_COLUMNS = tuple(f"{name}_ms" for name in COMPONENTS)


def cycle_share_row(report: ProfileReport, **extra) -> dict:
    """Figure row with the CPU-cycles breakdown shares (Fig 1/3/...)."""
    row = dict(extra)
    row["engine"] = report.engine
    for name, share in report.cycle_shares().items():
        row[f"share_{name}"] = share
    row["stall_ratio"] = report.stall_ratio
    return row


def stall_share_row(report: ProfileReport, **extra) -> dict:
    """Figure row with the stall-cycles breakdown shares (Fig 2/4/...)."""
    row = dict(extra)
    row["engine"] = report.engine
    for name, share in report.stall_shares().items():
        row[f"stall_share_{name}"] = share
    row["stall_ratio"] = report.stall_ratio
    return row


def time_breakdown_row(report: ProfileReport, **extra) -> dict:
    """Figure row with per-component response time in ms (Fig 17-20, 26)."""
    row = dict(extra)
    row["engine"] = report.engine
    for name, ms in report.time_breakdown_ms().items():
        row[f"{name}_ms"] = ms
    row["response_ms"] = report.response_time_ms
    return row
