"""Regeneration of every table and figure of the paper's evaluation."""

from repro.analysis.result import (
    CYCLE_SHARE_COLUMNS,
    STALL_SHARE_COLUMNS,
    TIME_COLUMNS,
    FigureResult,
    cycle_share_row,
    stall_share_row,
    time_breakdown_row,
)
from repro.analysis.ascii_chart import (
    LEGEND,
    bandwidth_chart,
    cycle_chart,
    stacked_bar,
    stall_chart,
)
from repro.analysis.ablation import METRICS, AblationStudy, scalable_parameters
from repro.analysis.export import from_json, to_csv, to_json, to_markdown, write_report
from repro.analysis.registry import (
    DEFAULT_SCALE_FACTOR,
    EXPERIMENTS,
    ExperimentSpec,
    run_experiment,
)

__all__ = [
    "AblationStudy",
    "CYCLE_SHARE_COLUMNS",
    "DEFAULT_SCALE_FACTOR",
    "EXPERIMENTS",
    "ExperimentSpec",
    "FigureResult",
    "LEGEND",
    "STALL_SHARE_COLUMNS",
    "TIME_COLUMNS",
    "bandwidth_chart",
    "cycle_chart",
    "METRICS",
    "cycle_share_row",
    "from_json",
    "run_experiment",
    "scalable_parameters",
    "to_csv",
    "to_json",
    "to_markdown",
    "write_report",
    "stacked_bar",
    "stall_chart",
    "stall_share_row",
    "time_breakdown_row",
]
