"""Text rendering of the paper's stacked-bar figures.

The paper's cycle/stall breakdowns are 100%-stacked bar charts; the
terminal equivalent here renders one bar per row with one glyph per
component, matching the legend ordering of the figures.
"""

from __future__ import annotations

from repro.hardware.tmam import COMPONENTS, STALL_COMPONENTS

#: Glyphs per component, in the paper's legend order.
COMPONENT_GLYPHS = {
    "retiring": "R",
    "execution": "E",
    "dcache": "D",
    "decoding": "o",
    "icache": "I",
    "branch_misp": "B",
}

LEGEND = (
    "R=Retiring  E=Execution  D=Dcache  o=Decoding  I=Icache  B=Branch misp."
)


def stacked_bar(shares: dict[str, float], width: int = 50) -> str:
    """Render one 100%-stacked bar from component shares.

    Components are drawn in the paper's stacking order; rounding
    leftovers go to the largest component so the bar is always exactly
    ``width`` glyphs when shares sum to ~1.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    total = sum(shares.values())
    if total <= 0:
        return " " * width
    ordered = [name for name in COMPONENTS if name in shares]
    ordered += [name for name in shares if name not in ordered]
    cells: list[str] = []
    for name in ordered:
        count = round(shares[name] / total * width)
        cells.append(COMPONENT_GLYPHS.get(name, "?") * count)
    bar = "".join(cells)
    if len(bar) > width:
        bar = bar[:width]
    elif len(bar) < width:
        largest = max(ordered, key=lambda name: shares[name])
        bar += COMPONENT_GLYPHS.get(largest, "?") * (width - len(bar))
    return bar


def cycle_chart(labeled_shares: list[tuple[str, dict[str, float]]], width: int = 50) -> str:
    """Render a labelled set of stacked bars (one paper figure)."""
    if not labeled_shares:
        return LEGEND
    label_width = max(len(label) for label, _ in labeled_shares)
    lines = [
        f"{label.ljust(label_width)} |{stacked_bar(shares, width)}|"
        for label, shares in labeled_shares
    ]
    lines.append(LEGEND)
    return "\n".join(lines)


def bandwidth_chart(
    labeled_gbps: list[tuple[str, float]], max_gbps: float, width: int = 50
) -> str:
    """Render bandwidth bars against the machine's MAX line
    (Figures 5, 21, 24, 29, 30)."""
    if max_gbps <= 0:
        raise ValueError("max_gbps must be positive")
    label_width = max(len(label) for label, _ in labeled_gbps) if labeled_gbps else 0
    lines = []
    for label, gbps in labeled_gbps:
        filled = min(width, round(gbps / max_gbps * width))
        bar = "#" * filled + " " * (width - filled)
        lines.append(f"{label.ljust(label_width)} |{bar}| {gbps:5.1f} GB/s")
    lines.append(f"{'MAX'.ljust(label_width)} |{'#' * width}| {max_gbps:5.1f} GB/s")
    return "\n".join(lines)


def stall_chart(labeled_shares: list[tuple[str, dict[str, float]]], width: int = 50) -> str:
    """Stacked bars over the stall components only (Fig 2/4/8/10/...)."""
    filtered = [
        (label, {name: shares.get(name, 0.0) for name in STALL_COMPONENTS})
        for label, shares in labeled_shares
    ]
    return cycle_chart(filtered, width)
