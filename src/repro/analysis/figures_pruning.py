"""Data-skipping extension: what zone-map pruning buys each engine.

The paper's scan sections stream every tuple whatever the predicate
selects.  The zone-map tier (:mod:`repro.storage.zonemap` +
:mod:`repro.core.pruning`) records per-chunk min/max statistics and
lets the planner discard whole morsel chunks before dispatch when the
data is clustered on a predicate column.  This figure quantifies that
gap on a shipdate-clustered twin of lineitem: chunks and bytes skipped
per engine and workload, the bandwidth-bound modeled speedup, and a
bit-identity check that the pruned execution returns exactly the
result (and recorded work) of the full scan.

The shuffled generator order is the control: its full-range chunks
decide nothing and pruning degenerates to the normal scan -- exactly
the clustered/unclustered contrast the data-skipping literature
predicts.  Measured wall-clock wins live in BENCH_PR6.json (raw
clustered twin, selective predicates); this figure reports the modeled
byte-stream picture, which is layout-stable across hosts.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.result import FigureResult
from repro.core import pruning
from repro.engines import ALL_ENGINES
from repro.hardware.memory import MemorySystem
from repro.storage import ColumnTable, Database
from repro.storage.zonemap import CHUNK_ROWS

#: (method, kwargs, label) pairs the figure prunes.
_WORKLOADS = (
    ("run_q6", {}, "Q6"),
    ("run_selection", {"selectivity": 0.02}, "selection 2%"),
)


def _clustered_twin(db) -> Database:
    """Raw (unencoded) twin of ``db`` with lineitem sorted on
    l_shipdate: the physical design pruning rewards.  Raw keeps the
    byte accounting on 8-byte streams; the encoded twin's sorted
    predicate columns collapse into RLE whose run-granular compares
    leave little for pruning to win (see BENCH_PR6.json)."""
    twin = Database(
        name=f"{db.name}-clustered", scale_factor=db.scale_factor
    )
    for name in db.table_names:
        table = db.table(name)
        columns = {c: np.asarray(table[c]) for c in table.column_names}
        if name == "lineitem":
            order = np.argsort(columns["l_shipdate"], kind="stable")
            columns = {c: values[order] for c, values in columns.items()}
        twin.add_table(ColumnTable(name, columns))
    return twin


def sec_pruning(db, profiler) -> FigureResult:
    """Chunks/bytes skipped and modeled speedup per engine workload."""
    figure = FigureResult(
        "sec-pruning",
        "Zone-map pruning: skipped chunks, bytes and modeled speedup",
        (
            "engine", "workload", "morsels_total", "morsels_pruned",
            "rows_pruned", "bytes_pruned_mb", "modeled_speedup",
            "identical",
        ),
    )
    clustered = _clustered_twin(db)
    memory = MemorySystem(profiler.spec)
    lineitem = clustered.table("lineitem")

    for engine_cls in ALL_ENGINES:
        engine = engine_cls()
        for method, kwargs, label in _WORKLOADS:
            atoms = pruning.atoms_for(clustered, method, kwargs)
            plan = pruning.compute_prune_plan(clustered, atoms)
            baseline = getattr(engine, method)(clustered, **kwargs)
            if plan is None or plan.nothing_pruned:
                figure.add_row(
                    engine=engine.name, workload=label,
                    morsels_total=plan.chunks_total if plan else 0,
                    morsels_pruned=0, rows_pruned=0, bytes_pruned_mb=0.0,
                    modeled_speedup=1.0, identical=True,
                )
                continue
            pruned = pruning.execute_pruned(
                engine, clustered, method, dict(kwargs), plan
            )
            identical = (
                pruned.value == baseline.value
                and pruned.tuples == baseline.tuples
                and pruned.work == baseline.work
            )
            summary = plan.summary(clustered, method)
            scan_columns = pruning.METHOD_SCAN_COLUMNS.get(method)
            if scan_columns is None:  # run_selection: predicate + payload
                from repro.tpch.schema import PROJECTION_COLUMNS

                scan_columns = tuple(
                    atom.column for atom in plan.atoms
                ) + PROJECTION_COLUMNS
            itemsize = sum(
                lineitem.column(c).itemsize
                for c in dict.fromkeys(scan_columns)
            )
            total_bytes = lineitem.n_rows * itemsize
            figure.add_row(
                engine=engine.name, workload=label,
                morsels_total=plan.chunks_total,
                morsels_pruned=plan.chunks_pruned,
                rows_pruned=plan.rows_pruned,
                bytes_pruned_mb=round(summary["bytes_pruned"] / 1e6, 2),
                modeled_speedup=round(
                    memory.pruning_speedup(
                        total_bytes, total_bytes - summary["bytes_pruned"]
                    ),
                    3,
                ),
                identical=bool(identical),
            )

    # Control: the generator's shuffled order prunes nothing.
    control = pruning.compute_prune_plan(
        db, pruning.atoms_for(db, "run_q6", {})
    )
    control_pruned = 0 if control is None else control.chunks_pruned
    figure.note(
        "shuffled-order control: the unsorted generator database prunes "
        f"{control_pruned} of "
        f"{0 if control is None else control.chunks_total} chunks for Q6 "
        "(full-range chunks decide nothing; the runtime falls back to "
        "the normal scan)"
    )
    figure.note(
        f"zone-map chunk = {CHUNK_ROWS} rows; pruned executions "
        "synthesize exact per-chunk partials, so results, tuple counts "
        "and recorded work stay bit-identical ('identical' column)"
    )
    figure.note(
        "modeled_speedup is the bandwidth-bound upper bound on the "
        "workload's scan stream (hardware.memory.pruning_speedup); "
        "measured wall-clock wins are recorded in BENCH_PR6.json"
    )
    return figure
