"""Section 8 extension: what compressed column widths buy each engine.

Section 8 concludes the engines saturate neither bandwidth nor cores
because scans stream full-width values.  The encoded storage tier
(:mod:`repro.storage.encoding`) shrinks the streamed bytes by 2-8x per
column while keeping results and recorded work bit-identical; this
figure quantifies the gap the paper leaves open: raw vs encoded
bytes/tuple on the Q1/Q6 scan streams and the modeled cycle change
when the cycle model is fed the same work profile with the sequential
stream rewritten to the encoded widths
(``WorkProfile.with_sequential_scaled``).

The row store is the control: its slotted pages carry full tuples, so
column encodings do not shrink what it streams -- exactly the DSM/NSM
contrast the compression literature predicts.
"""

from __future__ import annotations

from repro.analysis.result import FigureResult
from repro.engines import ALL_ENGINES
from repro.engines.morsel import bytes_for_rows, encoded_bytes_for_rows
from repro.hardware.memory import MemorySystem

#: The columns each engine streams *sequentially* for Q1/Q6 (gathered
#: measure columns are sparse scans and keep their decoded widths).
_SEQ_COLUMNS = {
    ("Typer", "Q1"): (
        "l_shipdate", "l_returnflag", "l_linestatus", "l_quantity",
        "l_extendedprice", "l_discount", "l_tax",
    ),
    ("Typer", "Q6"): ("l_shipdate", "l_discount", "l_quantity"),
    ("Tectorwise", "Q1"): (
        "l_shipdate", "l_returnflag", "l_linestatus", "l_quantity",
        "l_extendedprice", "l_discount", "l_tax",
    ),
    ("Tectorwise", "Q6"): ("l_shipdate",),
    ("DBMS C", "Q1"): (
        "l_shipdate", "l_returnflag", "l_linestatus", "l_quantity",
        "l_extendedprice", "l_discount", "l_tax",
    ),
    ("DBMS C", "Q6"): (
        "l_shipdate", "l_discount", "l_quantity", "l_extendedprice",
    ),
}


def sec8_compression(db, profiler) -> FigureResult:
    """Raw vs encoded scan bytes/tuple and modeled cycles per engine."""
    figure = FigureResult(
        "sec8-compression",
        "Compressed column widths: bytes/tuple and modeled cycles",
        (
            "engine", "workload", "raw_bytes_per_tuple",
            "encoded_bytes_per_tuple", "byte_reduction",
            "cycles_raw", "cycles_encoded", "modeled_speedup",
        ),
    )
    lineitem = db.table("lineitem")
    n = lineitem.n_rows
    memory = MemorySystem(profiler.spec)

    for engine_cls in ALL_ENGINES:
        engine = engine_cls()
        for workload, runner in (("Q1", engine.run_q1), ("Q6", engine.run_q6)):
            result = runner(db)
            columns = _SEQ_COLUMNS.get((engine.name, workload))
            if columns is None:
                # NSM pages stream full tuples whatever the columns'
                # encodings: no reduction, by construction.
                raw_bpt = encoded_bpt = (
                    db.row_table("lineitem").tuple_bytes if n else 0.0
                )
                ratio = 1.0
            else:
                # Measures whose morph decision chose decode-then-sum
                # stream at logical width; code-domain aggregates and
                # predicate/key columns stream at code width.
                decoded_cols = {
                    measure["column"]
                    for measure in result.details.get("encoded_agg", {}).get(
                        "measures", []
                    )
                    if measure["mode"] == "decoded" and measure["column"]
                }
                raw_bytes = bytes_for_rows(lineitem, columns, 0, n)
                encoded_bytes = encoded_bytes_for_rows(
                    lineitem, columns, 0, n, decoded=decoded_cols
                )
                raw_bpt = raw_bytes / n if n else 0.0
                encoded_bpt = encoded_bytes / n if n else 0.0
                ratio = encoded_bytes / raw_bytes if raw_bytes else 1.0
            cycles_raw = profiler.model.breakdown(
                result.work, profiler.context
            ).total
            cycles_encoded = profiler.model.breakdown(
                result.work.with_sequential_scaled(ratio), profiler.context
            ).total
            figure.add_row(
                engine=engine.name,
                workload=workload,
                raw_bytes_per_tuple=round(raw_bpt, 2),
                encoded_bytes_per_tuple=round(encoded_bpt, 2),
                byte_reduction=round(raw_bpt / encoded_bpt, 2)
                if encoded_bpt
                else 1.0,
                cycles_raw=round(cycles_raw),
                cycles_encoded=round(cycles_encoded),
                modeled_speedup=round(cycles_raw / cycles_encoded, 3)
                if cycles_encoded
                else 1.0,
            )

    encoded_columns = [
        name
        for name in lineitem.column_names
        if lineitem.encoding(name) is not None
    ]
    if encoded_columns:
        summary = ", ".join(
            f"{name}={lineitem.encoding(name).codec_kind}"
            f"({lineitem.column(name).itemsize}->"
            f"{lineitem.encoding(name).scan_itemsize:g}B)"
            for name in encoded_columns
        )
        figure.note(f"lineitem encodings: {summary}")
        figure.note(
            "lineitem stored bytes: "
            f"{lineitem.nbytes / 1e6:.1f} MB raw -> "
            f"{lineitem.encoded_nbytes / 1e6:.1f} MB encoded "
            f"({lineitem.nbytes / lineitem.encoded_nbytes:.1f}x)"
        )
        q6_columns = _SEQ_COLUMNS[("DBMS C", "Q6")]
        figure.note(
            "bandwidth-bound upper bound (Q6 scan stream, 1 core): "
            f"{memory.compression_speedup(bytes_for_rows(lineitem, q6_columns, 0, n), encoded_bytes_for_rows(lineitem, q6_columns, 0, n)):.2f}x"
        )
    else:
        figure.note(
            "database holds no encoded columns (REPRO_ENCODING=off?): "
            "encoded widths equal raw widths"
        )
    figure.note(
        "recorded work profiles always account logical (decoded) widths; "
        "the encoded-width cycles come from rewriting the sequential "
        "stream via WorkProfile.with_sequential_scaled, never from "
        "changing execution"
    )
    return figure
