"""SQL-path equivalence: the frontend reproduces hand-wired profiles.

The SQL subsystem's claim is that ``parse -> plan -> lower`` binds onto
exactly the engines' hand-wired ``run_*`` paths; this figure checks the
claim where it matters for the paper -- the micro-architectural profile
-- by executing every documented workload both ways on every engine
and comparing result value, tuple count and modeled cycles.
"""

from __future__ import annotations

from repro.analysis.result import FigureResult
from repro.engines import ALL_ENGINES
from repro.sql import compile_sql
from repro.tpch.sql import GROUPBY_SQL, JOIN_SQL, TPCH_SQL, projection_sql, selection_sql


def _workloads(db):
    """(name, sql, hand-wired runner) for every documented workload."""
    entries = []
    for degree in (1, 4):
        entries.append((
            f"projection-{degree}", projection_sql(degree),
            lambda engine, degree=degree: engine.run_projection(db, degree),
        ))
    entries.append((
        "selection-50", selection_sql(0.5, db),
        lambda engine: engine.run_selection(db, 0.5),
    ))
    for size, sql in JOIN_SQL.items():
        entries.append((
            f"join-{size}", sql,
            lambda engine, size=size: engine.run_join(db, size),
        ))
    entries.append(("groupby", GROUPBY_SQL, lambda engine: engine.run_groupby(db)))
    for query_id, sql in TPCH_SQL.items():
        entries.append((
            f"tpch-{query_id}", sql,
            lambda engine, query_id=query_id: engine.run_tpch(db, query_id),
        ))
    return entries


def sqlpath_equivalence(db, profiler) -> FigureResult:
    """Every documented statement, SQL path vs hand-wired, all engines."""
    figure = FigureResult(
        "sqlpath",
        "SQL-path vs hand-wired execution (values and modeled cycles)",
        (
            "workload", "engine", "value_equal", "tuples_equal",
            "cycles_sql", "cycles_hand", "cycles_equal",
        ),
    )
    mismatches = 0
    for name, sql, hand_wired in _workloads(db):
        bound = compile_sql(sql)
        for engine_cls in ALL_ENGINES:
            engine = engine_cls()
            result_sql = bound.execute(engine, db)
            result_hand = hand_wired(engine)
            cycles_sql = profiler.profile(engine, result_sql).cycles
            cycles_hand = profiler.profile(engine, result_hand).cycles
            value_equal = repr(result_sql.value) == repr(result_hand.value)
            tuples_equal = result_sql.tuples == result_hand.tuples
            cycles_equal = cycles_sql == cycles_hand
            if not (value_equal and tuples_equal and cycles_equal):
                mismatches += 1
            figure.add_row(
                workload=name,
                engine=engine_cls.name,
                value_equal=value_equal,
                tuples_equal=tuples_equal,
                cycles_sql=cycles_sql,
                cycles_hand=cycles_hand,
                cycles_equal=cycles_equal,
            )
    figure.note(
        "selection thresholds parsed from SQL literals pass through "
        "run_selection(thresholds=...) unchanged"
    )
    figure.note(
        f"{mismatches} mismatching rows"
        if mismatches
        else "all workloads identical through the SQL path on all four engines"
    )
    return figure
