"""Command-line runner for the paper's experiments.

Usage::

    python -m repro.analysis list
    python -m repro.analysis run fig03 [--sf 0.3] [--seed 42]
    python -m repro.analysis run all   [--sf 0.3] [--jobs 4]
    python -m repro.analysis all       [--sf 0.3] [--jobs 4]
    python -m repro.analysis validate  [--sf 0.05]

``--jobs N`` fans the experiments across a process pool.  The parent
pre-generates every distinct database the selected experiments need
(via the dbgen cache), so forked workers inherit the arrays through
copy-on-write pages instead of regenerating per process; results are
printed in registry order regardless of completion order.
"""

from __future__ import annotations

import argparse
import multiprocessing.context
import sys

from repro.analysis.registry import (
    DEFAULT_SCALE_FACTOR,
    DEFAULT_SEED,
    EXPERIMENTS,
    run_experiment,
)

#: (scale_factor, seed) the pool workers run at; set by the parent
#: before forking (module-level so the worker function pickles by name).
_WORKER_PARAMS = {"scale_factor": DEFAULT_SCALE_FACTOR, "seed": DEFAULT_SEED}


def _run_one(experiment_id: str):
    params = _WORKER_PARAMS
    return run_experiment(
        experiment_id,
        scale_factor=params["scale_factor"],
        seed=params["seed"],
    )


class _NonDaemonProcess(multiprocessing.context.ForkProcess):
    """Pool worker that may itself have children: the measured-scaling
    experiment spawns a ``repro.core.parallel.WorkerPool`` inside its
    pool worker, and daemonic processes cannot have children."""

    @property
    def daemon(self):
        return False

    @daemon.setter
    def daemon(self, value):
        pass  # Pool insists on daemonizing its workers; refuse quietly.


class _NonDaemonContext(multiprocessing.context.ForkContext):
    Process = _NonDaemonProcess


def _run_parallel(targets, scale_factor: float, seed: int, jobs: int):
    """Run experiments on a fork pool; yield figures in target order."""
    import multiprocessing.pool

    from repro.tpch.dbgen import generate_database

    # Warm the in-process dbgen memo with every distinct table set so
    # fork children share the generated arrays copy-on-write.
    distinct_tables = {EXPERIMENTS[t].tables for t in targets if EXPERIMENTS[t].tables}
    for tables in sorted(distinct_tables):
        generate_database(scale_factor=scale_factor, seed=seed, tables=tables)

    _WORKER_PARAMS["scale_factor"] = scale_factor
    _WORKER_PARAMS["seed"] = seed
    with multiprocessing.pool.Pool(
        processes=jobs, context=_NonDaemonContext()
    ) as pool:
        yield from pool.imap(_run_one, targets)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Regenerate the paper's tables and figures.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list all experiments")

    def add_run_arguments(subparser, with_experiment: bool):
        if with_experiment:
            subparser.add_argument(
                "experiment", help="experiment id, e.g. fig03, or 'all'"
            )
        subparser.add_argument("--sf", type=float, default=DEFAULT_SCALE_FACTOR,
                               help="TPC-H scale factor")
        subparser.add_argument("--seed", type=int, default=DEFAULT_SEED)
        subparser.add_argument(
            "--jobs", type=int, default=1,
            help="worker processes for multi-experiment runs (default 1)",
        )

    runner = subparsers.add_parser("run", help="run one experiment (or 'all')")
    add_run_arguments(runner, with_experiment=True)
    everything = subparsers.add_parser(
        "all", help="run every experiment (shorthand for 'run all')"
    )
    add_run_arguments(everything, with_experiment=False)

    validator = subparsers.add_parser(
        "validate",
        help="cross-validate the analytic model against the trace simulators",
    )
    validator.add_argument("--sf", type=float, default=0.05)
    validator.add_argument("--seed", type=int, default=DEFAULT_SEED)
    return parser


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "validate":
        from repro.core.validation import ModelValidator
        from repro.tpch import generate_database

        db = generate_database(scale_factor=args.sf, seed=args.seed, tables=("lineitem",))
        report = ModelValidator().run(db)
        print(report.to_text())
        return 0 if report.passed else 1
    if args.command == "list":
        width = max(len(key) for key in EXPERIMENTS)
        for key, spec in EXPERIMENTS.items():
            print(f"{key.ljust(width)}  {spec.title}")
            if spec.paper_claim:
                print(f"{' ' * width}  paper: {spec.paper_claim}")
        return 0

    experiment = "all" if args.command == "all" else args.experiment
    targets = list(EXPERIMENTS) if experiment == "all" else [experiment]
    jobs = max(1, args.jobs)
    if jobs > 1 and len(targets) > 1:
        figures = _run_parallel(targets, args.sf, args.seed, jobs)
    else:
        figures = (
            run_experiment(experiment_id, scale_factor=args.sf, seed=args.seed)
            for experiment_id in targets
        )
    for figure in figures:
        print(figure.to_text())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
