"""Command-line runner for the paper's experiments.

Usage::

    python -m repro.analysis list
    python -m repro.analysis run fig03 [--sf 0.3] [--seed 42]
    python -m repro.analysis run all   [--sf 0.3]
    python -m repro.analysis validate  [--sf 0.05]
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.registry import (
    DEFAULT_SCALE_FACTOR,
    DEFAULT_SEED,
    EXPERIMENTS,
    run_experiment,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Regenerate the paper's tables and figures.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list all experiments")
    runner = subparsers.add_parser("run", help="run one experiment (or 'all')")
    runner.add_argument("experiment", help="experiment id, e.g. fig03, or 'all'")
    runner.add_argument("--sf", type=float, default=DEFAULT_SCALE_FACTOR,
                        help="TPC-H scale factor")
    runner.add_argument("--seed", type=int, default=DEFAULT_SEED)
    validator = subparsers.add_parser(
        "validate",
        help="cross-validate the analytic model against the trace simulators",
    )
    validator.add_argument("--sf", type=float, default=0.05)
    validator.add_argument("--seed", type=int, default=DEFAULT_SEED)
    return parser


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "validate":
        from repro.core.validation import ModelValidator
        from repro.tpch import generate_database

        db = generate_database(scale_factor=args.sf, seed=args.seed, tables=("lineitem",))
        report = ModelValidator().run(db)
        print(report.to_text())
        return 0 if report.passed else 1
    if args.command == "list":
        width = max(len(key) for key in EXPERIMENTS)
        for key, spec in EXPERIMENTS.items():
            print(f"{key.ljust(width)}  {spec.title}")
            if spec.paper_claim:
                print(f"{' ' * width}  paper: {spec.paper_claim}")
        return 0

    targets = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for experiment_id in targets:
        figure = run_experiment(experiment_id, scale_factor=args.sf, seed=args.seed)
        print(figure.to_text())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
