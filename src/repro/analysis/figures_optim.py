"""Regeneration of the SIMD (Figures 22-25) and hardware-prefetcher
(Figure 26, Section 9) experiments.

The SIMD experiments run on the Skylake machine model (the Broadwell
server has no AVX-512); the prefetcher study flips the four prefetchers
through :class:`~repro.hardware.prefetcher.PrefetcherConfig`, mirroring
the paper's MSR manipulation.
"""

from __future__ import annotations

from repro.engines import TectorwiseEngine, TyperEngine
from repro.hardware.prefetcher import PrefetcherConfig
from repro.core.cyclemodel import ExecutionContext
from repro.analysis.result import TIME_COLUMNS, FigureResult, time_breakdown_row

#: The projection/selection cases of Figures 22-24.
SIMD_SCAN_CASES = (
    ("Proj.", "run_projection", {"degree": 4}),
    ("Sel. 10%", "run_selection", {"selectivity": 0.1, "predicated": True}),
    ("Sel. 50%", "run_selection", {"selectivity": 0.5, "predicated": True}),
    ("Sel. 90%", "run_selection", {"selectivity": 0.9, "predicated": True}),
)


def _simd_pair(db, profiler, method: str, **kwargs):
    """Run one workload with and without SIMD on Tectorwise."""
    engine = TectorwiseEngine()
    runner = getattr(engine, method)
    scalar = runner(db, **kwargs, simd=False)
    simd = runner(db, **kwargs, simd=True)
    if abs(scalar.value - simd.value) > 1e-6 * max(1.0, abs(scalar.value)):
        raise AssertionError(f"SIMD changed the result of {method}")
    return profiler.profile(engine, scalar), profiler.profile(engine, simd)


def fig22_simd_response_time(db, profiler) -> FigureResult:
    """Figure 22: normalised response time with/without SIMD
    (Tectorwise, projection + predicated selections, Skylake)."""
    figure = FigureResult(
        "fig22",
        "Normalized response time with and without SIMD (Tectorwise)",
        ("case", "variant", "normalized_response", "normalized_retiring"),
    )
    for label, method, kwargs in SIMD_SCAN_CASES:
        scalar, simd = _simd_pair(db, profiler, method, **kwargs)
        base = scalar.cycles
        for variant, report in (("W/o SIMD", scalar), ("W/ SIMD", simd)):
            figure.add_row(
                case=label,
                variant=variant,
                normalized_response=report.cycles / base,
                normalized_retiring=report.breakdown.retiring / base,
            )
    figure.note(
        "SIMD cuts response time via a 70-87% drop in Retiring time "
        "(fewer retired instructions)."
    )
    return figure


def fig23_simd_stall_time(db, profiler) -> FigureResult:
    """Figure 23: normalised stall time with/without SIMD."""
    figure = FigureResult(
        "fig23",
        "Normalized stall time with and without SIMD (Tectorwise)",
        ("case", "variant", "normalized_stall", "normalized_dcache", "normalized_execution"),
    )
    for label, method, kwargs in SIMD_SCAN_CASES:
        scalar, simd = _simd_pair(db, profiler, method, **kwargs)
        base = scalar.breakdown.stall_cycles or 1.0
        for variant, report in (("W/o SIMD", scalar), ("W/ SIMD", simd)):
            figure.add_row(
                case=label,
                variant=variant,
                normalized_stall=report.breakdown.stall_cycles / base,
                normalized_dcache=report.breakdown.dcache / base,
                normalized_execution=report.breakdown.execution / base,
            )
    figure.note("SIMD increases Dcache stalls while cutting Execution stalls.")
    return figure


def fig24_simd_bandwidth(db, profiler) -> FigureResult:
    """Figure 24: single-core bandwidth with/without SIMD."""
    figure = FigureResult(
        "fig24",
        "Single-core bandwidth with and without SIMD (Tectorwise)",
        ("case", "variant", "bandwidth_gbps", "max_gbps"),
    )
    for label, method, kwargs in SIMD_SCAN_CASES:
        scalar, simd = _simd_pair(db, profiler, method, **kwargs)
        for variant, report in (("W/o SIMD", scalar), ("W/ SIMD", simd)):
            figure.add_row(
                case=label,
                variant=variant,
                bandwidth_gbps=report.bandwidth.gbps,
                max_gbps=report.bandwidth.max_gbps,
            )
    figure.note("SIMD exploits the underutilised bandwidth on most cases.")
    return figure


def fig25_simd_join(db, profiler) -> FigureResult:
    """Figure 25: SIMD on the large join probe: normalised response
    (left) and bandwidth (right)."""
    scalar, simd = _simd_pair(db, profiler, "run_join", size="large")
    base = scalar.cycles
    figure = FigureResult(
        "fig25",
        "Large join with and without SIMD (Tectorwise)",
        ("variant", "normalized_response", "normalized_dcache", "bandwidth_gbps", "max_gbps"),
    )
    for variant, report in (("W/o SIMD", scalar), ("W/ SIMD", simd)):
        figure.add_row(
            variant=variant,
            normalized_response=report.cycles / base,
            normalized_dcache=report.breakdown.dcache / base,
            bandwidth_gbps=report.bandwidth.gbps,
            max_gbps=report.bandwidth.max_gbps,
        )
    figure.note(
        "SIMD gathers parallelise the random probes: fewer retired "
        "instructions, fewer Dcache stalls, ~50% higher bandwidth."
    )
    return figure


def fig26_prefetchers(db, profiler) -> FigureResult:
    """Figure 26: response-time breakdown across the six prefetcher
    configurations (Typer, projection degree 4), plus the Section 9
    join observation."""
    engine = TyperEngine()
    projection = engine.run_projection(db, 4)
    join = engine.run_join(db, "large")
    figure = FigureResult(
        "fig26",
        "Prefetcher configurations (Typer, projection p4)",
        ("config", "response_ms", "dcache_ms", *TIME_COLUMNS),
    )
    baseline = None
    join_baseline = None
    for name, config in PrefetcherConfig.figure26_configs().items():
        context = ExecutionContext(prefetchers=config)
        report = profiler.profile(engine, projection, context)
        row = time_breakdown_row(report, config=name)
        row["dcache_ms"] = report.time_breakdown_ms()["dcache"]
        figure.rows.append({column: row.get(column) for column in figure.columns})
        join_report = profiler.profile(engine, join, context)
        if name == "All disabled":
            baseline = report
            join_baseline = join_report
        elif name == "All enabled":
            speedup = baseline.response_time_ms / report.response_time_ms
            dcache_cut = 1.0 - report.breakdown.dcache / baseline.breakdown.dcache
            join_cut = 1.0 - join_report.response_time_ms / join_baseline.response_time_ms
            figure.note(
                f"All four prefetchers cut projection response {speedup:.1f}x "
                f"and Dcache stalls by {dcache_cut:.0%}; the large join gains "
                f"only {join_cut:.0%} (random accesses)."
            )
    return figure
