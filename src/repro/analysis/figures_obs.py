"""Latency breakdown from the observability layer's span trees.

The paper decomposes where cycles go; this figure decomposes where the
*service's* wall-clock time goes -- admission wait, plan-cache lookup,
execution (with per-morsel detail), result serialization -- using the
per-query traces of :mod:`repro.obs`, and sets the measured execution
time next to the modeled response time the spans carry from the
engines' WorkProfiles.
"""

from __future__ import annotations

from repro.analysis.result import FigureResult
from repro.engines import ALL_ENGINES
from repro.serve.service import QueryService, ServiceConfig
from repro.tpch.sql import TPCH_SQL, projection_sql

def _workload_sql() -> list[tuple[str, str]]:
    """The (label, SQL) pairs the breakdown samples."""
    return [
        ("projection-4", projection_sql(4)),
        ("tpch-Q1", TPCH_SQL["Q1"]),
        ("tpch-Q6", TPCH_SQL["Q6"]),
    ]


def stage_durations(tree: dict) -> dict[str, float]:
    """Total duration (ms) per span name across one trace tree."""
    totals: dict[str, float] = {}

    def visit(node: dict) -> None:
        duration = node.get("duration_ms")
        if duration is not None:
            totals[node["name"]] = totals.get(node["name"], 0.0) + duration
        for child in node.get("children", ()):
            visit(child)

    visit(tree)
    return totals


def _execute_attr(tree: dict, name: str):
    """The ``execute`` span's attribute ``name``, if present."""
    stack = [tree]
    while stack:
        node = stack.pop()
        if node["name"] == "execute":
            return node.get("attrs", {}).get(name)
        stack.extend(node.get("children", ()))
    return None


def obs_latency_breakdown(db, profiler) -> FigureResult:
    """Traced per-stage latency for three workloads on all engines."""
    figure = FigureResult(
        "obs-latency",
        "Per-stage query latency from span trees (measured vs modeled)",
        (
            "workload", "engine", "total_ms", "admission_ms", "plan_cache_ms",
            "execute_ms", "morsel_ms", "morsels", "serialize_ms", "modeled_ms",
        ),
    )
    config = ServiceConfig(
        workers=1, scale_factor=db.scale_factor, executor="thread"
    )
    service = QueryService(config, db=db)
    traced = 0
    with service:
        for workload, sql in _workload_sql():
            for engine_cls in ALL_ENGINES:
                response = service.submit(
                    sql, engine=engine_cls.name, trace_query=True
                )
                if response.get("status") != "ok":
                    figure.note(
                        f"{workload}/{engine_cls.name} failed: "
                        f"{response.get('error')}"
                    )
                    continue
                tree = response["trace"]
                stages = stage_durations(tree)
                morsels = sum(
                    1
                    for child in tree.get("children", ())
                    for grand in child.get("children", ())
                    if grand["name"] == "morsel"
                )
                traced += 1
                figure.add_row(
                    workload=workload,
                    engine=engine_cls.name,
                    total_ms=tree.get("duration_ms"),
                    admission_ms=stages.get("admission", 0.0),
                    plan_cache_ms=stages.get("plan_cache", 0.0),
                    execute_ms=stages.get("execute", 0.0),
                    morsel_ms=stages.get("morsel", 0.0),
                    morsels=morsels,
                    serialize_ms=stages.get("serialize", 0.0),
                    modeled_ms=_execute_attr(tree, "modeled_ms"),
                )
    figure.note(
        f"{traced} traced executions; measured wall-clock stages come from "
        f"repro.obs span trees, modeled_ms from the WorkProfile cycle model"
    )
    figure.note(
        "thread executor: execution is one synthetic morsel on the "
        "service worker thread; the process executor grafts one span per "
        "claimed morsel instead"
    )
    return figure
