"""Regeneration of the results the paper describes but omits as graphs.

The paper repeatedly says "graph not shown" / "we omit the graphs":
the group-by micro-benchmark (Section 2), the prefetcher study on the
other engine/workloads (Section 9) and the multi-core TPC-H bandwidth
(Section 10).  Since this reproduction can regenerate them cheaply,
they are first-class experiments here, each checking the sentence the
paper summarises them with.
"""

from __future__ import annotations

from repro.engines import TectorwiseEngine, TyperEngine
from repro.hardware.prefetcher import PrefetcherConfig
from repro.core.cyclemodel import ExecutionContext
from repro.core.multicore import MulticoreModel
from repro.workloads import run_groupby
from repro.analysis.result import (
    CYCLE_SHARE_COLUMNS,
    FigureResult,
    cycle_share_row,
)


def sec2_groupby_micro(db, profiler) -> FigureResult:
    """Section 2: the group-by micro-benchmark "behaves similarly to
    the join at the micro-architectural level" -- the figure the paper
    omitted, side by side with the large join."""
    engines = (TyperEngine(), TectorwiseEngine())
    groupby_reports = run_groupby(db, engines, profiler)
    figure = FigureResult(
        "sec2-groupby",
        "Group-by micro-benchmark vs the large join (the omitted graph)",
        ("engine", "workload", "stall_ratio", *CYCLE_SHARE_COLUMNS, "dominant_stall"),
    )
    for engine in engines:
        join_report = profiler.profile(engine, engine.run_join(db, "large"))
        for workload, report in (
            ("group-by", groupby_reports[engine.name]),
            ("large join", join_report),
        ):
            row = cycle_share_row(report, workload=workload)
            row["dominant_stall"] = report.breakdown.dominant_stall()
            figure.rows.append(row)
    figure.note(
        "Both workloads share the dominant stall class per engine, which "
        "is why the paper omitted the group-by discussion."
    )
    return figure


def sec9_prefetchers_extended(db, profiler) -> FigureResult:
    """Section 9: "We also examined the projection query on Tectorwise,
    and the branched and branch-free selection queries on Typer and
    Tectorwise.  The results agree with our findings" -- regenerated."""
    cases = []
    typer, tectorwise = TyperEngine(), TectorwiseEngine()
    cases.append(("Tectorwise projection p4", tectorwise, tectorwise.run_projection(db, 4)))
    for engine in (typer, tectorwise):
        cases.append(
            (f"{engine.name} selection 50%", engine, engine.run_selection(db, 0.5))
        )
        cases.append(
            (
                f"{engine.name} selection 50% predicated",
                engine,
                engine.run_selection(db, 0.5, predicated=True),
            )
        )
    figure = FigureResult(
        "sec9-extended",
        "Prefetcher on/off across the omitted workloads",
        ("case", "enabled_ms", "disabled_ms", "slowdown", "dcache_cut"),
    )
    enabled = ExecutionContext(prefetchers=PrefetcherConfig.all_enabled())
    disabled = ExecutionContext(prefetchers=PrefetcherConfig.all_disabled())
    for label, engine, result in cases:
        on = profiler.profile(engine, result, enabled)
        off = profiler.profile(engine, result, disabled)
        dcache_cut = (
            1.0 - on.breakdown.dcache / off.breakdown.dcache
            if off.breakdown.dcache
            else 0.0
        )
        figure.add_row(
            case=label,
            enabled_ms=on.response_time_ms,
            disabled_ms=off.response_time_ms,
            slowdown=off.cycles / on.cycles,
            dcache_cut=dcache_cut,
        )
    figure.note(
        "Every scan-flavoured workload shows the Figure 26 behaviour: "
        "multi-fold slowdowns without prefetchers, driven by Dcache."
    )
    return figure


def sec6_commercial_tpch(db, profiler) -> FigureResult:
    """Section 6: "We, once again, observed orders of magnitude
    difference in the response times of the commercial and high
    performance systems.  Hence, we omit the discussion" -- the omitted
    comparison, regenerated."""
    from repro.engines import ColumnStoreEngine, RowStoreEngine
    from repro.workloads import run_tpch

    engines = (RowStoreEngine(), ColumnStoreEngine(), TyperEngine(), TectorwiseEngine())
    reports = run_tpch(db, engines, profiler)
    figure = FigureResult(
        "sec6-commercial",
        "TPC-H on the commercial systems (the omitted comparison)",
        ("engine", "query", "response_ms", "vs_typer", "share_retiring"),
    )
    for query_id in ("Q1", "Q6", "Q9", "Q18"):
        base = reports["Typer"][query_id].cycles
        for engine in engines:
            report = reports[engine.name][query_id]
            figure.add_row(
                engine=engine.name,
                query=query_id,
                response_ms=report.response_time_ms,
                vs_typer=report.cycles / base,
                share_retiring=report.cycle_shares()["retiring"],
            )
    figure.note(
        "DBMS R stays one to two orders of magnitude behind the "
        "high-performance engines on every query; its Retiring share "
        "carries the instruction-footprint cost."
    )
    return figure


def sec10_speedup_curves(db, profiler) -> FigureResult:
    """Section 10: the systems "all have the highest performance at
    fourteen threads" -- the thread-count sweep behind that sentence."""
    model = MulticoreModel(profiler)
    figure = FigureResult(
        "sec10-speedup",
        "TPC-H speedup vs thread count (one socket)",
        ("engine", "query", "threads", "speedup"),
    )
    for engine in (TyperEngine(), TectorwiseEngine()):
        for query_id in ("Q1", "Q9"):
            result = engine.run_tpch(db, query_id)
            curve = model.speedup_curve(engine, result, (1, 4, 8, 12, 14))
            for threads, speedup in curve.items():
                figure.add_row(
                    engine=engine.name, query=query_id,
                    threads=threads, speedup=speedup,
                )
    figure.note("Speedup keeps improving to 14 threads for every query.")
    return figure


def sec10_tpch_multicore_bandwidth(db, profiler) -> FigureResult:
    """Section 10: multi-core TPC-H bandwidth "varies between the high
    utilization of the projection and the low utilization of the join";
    the predicated Q6 comes close to the sequential roof."""
    model = MulticoreModel(profiler)
    threads = profiler.spec.cores_per_socket
    figure = FigureResult(
        "sec10-tpch-bw",
        f"TPC-H socket bandwidth at {threads} threads",
        ("engine", "query", "bandwidth_gbps", "max_gbps"),
    )
    for engine in (TyperEngine(), TectorwiseEngine()):
        runs = {
            "Q1": engine.run_tpch(db, "Q1"),
            "Q6 (predicated)": engine.run_q6(db, predicated=True),
            "Q9": engine.run_tpch(db, "Q9"),
            "Q18": engine.run_tpch(db, "Q18"),
        }
        for label, result in runs.items():
            run = model.run(engine, result, threads)
            figure.add_row(
                engine=engine.name,
                query=label,
                bandwidth_gbps=run.bandwidth_gbps,
                max_gbps=run.socket_bandwidth.max_gbps,
            )
    figure.note(
        "The predicated Q6 approaches the sequential roof; the hash-heavy "
        "queries sit near the join micro-benchmark's low utilisation."
    )
    return figure
