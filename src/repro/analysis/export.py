"""Export of regenerated figures: Markdown, CSV and JSON.

The text tables of :class:`~repro.analysis.result.FigureResult` are
fine in a terminal; this module renders them for documents and
downstream tooling (the EXPERIMENTS.md tables were produced this way).
"""

from __future__ import annotations

import csv
import io
import json

from repro.analysis.result import FigureResult


def _format(value, float_format: str = "{:.3f}") -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return float_format.format(value)
    if value is None:
        return ""
    return str(value)


def to_markdown(figure: FigureResult, float_format: str = "{:.3f}") -> str:
    """Render a figure as a GitHub-flavoured Markdown table."""
    lines = [f"### {figure.figure_id}: {figure.title}", ""]
    header = "| " + " | ".join(figure.columns) + " |"
    separator = "|" + "|".join("---" for _ in figure.columns) + "|"
    lines.extend([header, separator])
    for row in figure.rows:
        cells = [_format(row.get(column), float_format) for column in figure.columns]
        lines.append("| " + " | ".join(cells) + " |")
    for note in figure.notes:
        lines.extend(["", f"> {note}"])
    return "\n".join(lines)


def to_csv(figure: FigureResult) -> str:
    """Render a figure's rows as CSV (header included)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(figure.columns))
    writer.writeheader()
    for row in figure.rows:
        writer.writerow({column: row.get(column) for column in figure.columns})
    return buffer.getvalue()


def to_json(figure: FigureResult, indent: int | None = 2) -> str:
    """Render a figure (metadata + rows + notes) as JSON."""
    payload = {
        "figure_id": figure.figure_id,
        "title": figure.title,
        "columns": list(figure.columns),
        "rows": figure.rows,
        "notes": list(figure.notes),
    }
    return json.dumps(payload, indent=indent, default=float)


def from_json(text: str) -> FigureResult:
    """Rebuild a figure from its JSON export (round-trip support)."""
    payload = json.loads(text)
    figure = FigureResult(
        figure_id=payload["figure_id"],
        title=payload["title"],
        columns=tuple(payload["columns"]),
        rows=list(payload["rows"]),
        notes=list(payload["notes"]),
    )
    return figure


def write_report(figures, path: str, fmt: str = "markdown") -> int:
    """Write many figures to one file; returns the figure count."""
    renderers = {"markdown": to_markdown, "csv": to_csv, "json": to_json}
    if fmt not in renderers:
        raise ValueError(f"unknown format {fmt!r}; expected one of {sorted(renderers)}")
    render = renderers[fmt]
    blocks = [render(figure) for figure in figures]
    separator = "\n\n" if fmt != "csv" else "\n"
    with open(path, "w") as handle:
        handle.write(separator.join(blocks) + "\n")
    return len(blocks)
