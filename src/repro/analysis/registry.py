"""Experiment registry: every paper table/figure mapped to a callable.

``EXPERIMENTS`` is the index DESIGN.md references: one entry per table,
figure and quantified text claim of the paper's evaluation, with the
machine model it runs on and the TPC-H tables it needs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable

from repro.hardware.spec import BROADWELL, SKYLAKE, ServerSpec
from repro.core.profiler import MicroArchProfiler
from repro.tpch.dbgen import generate_database
from repro.analysis.result import FigureResult
from repro.analysis import (
    figures_compression,
    figures_micro,
    figures_multicore,
    figures_obs,
    figures_omitted,
    figures_optim,
    figures_pruning,
    figures_rollup,
    figures_sql,
    figures_tpch,
)

#: Default scale factor for regenerating figures: large enough that the
#: scanned columns and the large join's hash table exceed the 35 MB L3
#: (the paper uses SF 5 / SF 70 on a 256 GB box).  Override with the
#: REPRO_SF environment variable.
DEFAULT_SCALE_FACTOR = float(os.environ.get("REPRO_SF", "0.3"))
DEFAULT_SEED = 42

SCAN_TABLES = ("lineitem",)
JOIN_TABLES = ("lineitem", "orders", "supplier", "nation", "partsupp")
TPCH_TABLES = ("lineitem", "orders", "supplier", "nation", "partsupp", "part", "customer")


@dataclass(frozen=True)
class ExperimentSpec:
    """One regenerable paper artefact."""

    experiment_id: str
    title: str
    run: Callable
    machine: ServerSpec = BROADWELL
    tables: tuple[str, ...] = SCAN_TABLES
    paper_claim: str = ""

    def execute(self, db=None, scale_factor: float | None = None, seed: int = DEFAULT_SEED) -> FigureResult:
        """Run the experiment, generating data if none is supplied.

        Engine runs served by the in-process execution cache are
        counted and recorded as a figure note, so regenerated artefacts
        always disclose how much of their input was memoized.
        """
        from repro.core.execcache import EXECUTION_CACHE

        if db is None:
            db = generate_database(
                scale_factor=scale_factor or DEFAULT_SCALE_FACTOR,
                seed=seed,
                tables=self.tables,
            )
        profiler = MicroArchProfiler(spec=self.machine)
        hits_before = EXECUTION_CACHE.hits
        figure = self.run(db, profiler)
        served = EXECUTION_CACHE.hits - hits_before
        if served:
            figure.note(
                f"{served} engine runs served from the in-process execution cache"
            )
        return figure


def _spec(experiment_id, title, run, machine=BROADWELL, tables=SCAN_TABLES, claim=""):
    return ExperimentSpec(experiment_id, title, run, machine, tables, claim)


EXPERIMENTS: dict[str, ExperimentSpec] = {
    spec.experiment_id: spec
    for spec in (
        _spec(
            "table1", "Broadwell server parameters",
            figures_micro.table1_server_parameters, tables=(),
            claim="Cache latencies and MLC bandwidths of Table 1.",
        ),
        _spec(
            "fig01", "Projection CPU cycles (DBMS R/C)",
            figures_micro.fig01_projection_commercial_cycles,
            claim="DBMS R ~50% Retiring; DBMS C ~85-90% Retiring.",
        ),
        _spec(
            "fig02", "Projection stall cycles (DBMS R/C)",
            figures_micro.fig02_projection_commercial_stalls,
            claim="Dcache+Execution dominate DBMS R; no Icache problem.",
        ),
        _spec(
            "fig03", "Projection CPU cycles (Typer/Tectorwise)",
            figures_micro.fig03_projection_hpe_cycles,
            claim="Typer stalls grow with projectivity; Tectorwise flat ~60%.",
        ),
        _spec(
            "fig04", "Projection stall cycles (Typer/Tectorwise)",
            figures_micro.fig04_projection_hpe_stalls,
            claim="Typer Dcache-dominated; Tectorwise Dcache~Execution split.",
        ),
        _spec(
            "fig05", "Projection single-core bandwidth",
            figures_micro.fig05_projection_bandwidth,
            claim="Typer near the 12 GB/s roof from p2; Tectorwise lower.",
        ),
        _spec(
            "fig06", "Projection normalized response time",
            figures_micro.fig06_projection_response_time,
            claim="DBMS R ~2 orders, DBMS C ~1 order slower than Typer.",
        ),
        _spec(
            "fig07", "Selection CPU cycles (DBMS R/C)",
            figures_micro.fig07_selection_commercial_cycles,
            claim="Retiring ratio grows with selectivity.",
        ),
        _spec(
            "fig08", "Selection stall cycles (DBMS R/C)",
            figures_micro.fig08_selection_commercial_stalls,
            claim="No major instruction-related stalls.",
        ),
        _spec(
            "fig09", "Selection CPU cycles (Typer/Tectorwise)",
            figures_micro.fig09_selection_hpe_cycles,
            claim="Highest stall ratio at 50% selectivity.",
        ),
        _spec(
            "fig10", "Selection stall cycles (Typer/Tectorwise)",
            figures_micro.fig10_selection_hpe_stalls,
            claim="Branch mispredictions dominate, peak at 50%; Typer "
                  "suffers less than Tectorwise at 10% (conjunction).",
        ),
        _spec(
            "fig11", "Join CPU cycles (DBMS R/C)",
            figures_micro.fig11_join_commercial_cycles, tables=JOIN_TABLES,
            claim="52-72% Retiring across join sizes.",
        ),
        _spec(
            "fig12", "Join CPU cycles (Typer/Tectorwise)",
            figures_micro.fig12_join_hpe_cycles, tables=JOIN_TABLES,
            claim="Stall ratio grows with join size; Retiring down to ~18%.",
        ),
        _spec(
            "fig13", "Join stall cycles (Typer/Tectorwise)",
            figures_micro.fig13_join_hpe_stalls, tables=JOIN_TABLES,
            claim="Dcache dominates large; Execution significant small/medium.",
        ),
        _spec(
            "fig14", "Large join bandwidth + response",
            figures_micro.fig14_join_bandwidth_response, tables=JOIN_TABLES,
            claim="Random bandwidth well below the roof; DBMS R/C several "
                  "times slower with Retiring-heavy breakdowns.",
        ),
        _spec(
            "sec6-chains", "Hash chain statistics (join vs group-by)",
            figures_micro.sec6_hash_chain_stats, tables=JOIN_TABLES,
            claim="Group-by chains 0-7 (mean .23, std .5); join 0-1 "
                  "(mean .44, std .49).",
        ),
        _spec(
            "fig15", "TPC-H CPU cycles (Typer/Tectorwise)",
            figures_tpch.fig15_tpch_cycles, tables=TPCH_TABLES,
            claim="Q1 highest Retiring; Q9 lowest for Typer, Q6 for Tw.",
        ),
        _spec(
            "fig16", "TPC-H stall cycles (Typer/Tectorwise)",
            figures_tpch.fig16_tpch_stalls, tables=TPCH_TABLES,
            claim="Q1 Execution-bound; Q6 Dcache (Typer) vs Branch (Tw); "
                  "Q9/Q18 Dcache + visible branch stalls.",
        ),
        _spec(
            "sec4-bandwidth", "Branched selection bandwidth",
            figures_tpch.selection_branched_bandwidth,
            claim="Typer 3/5/5, Tectorwise 2.5/3/3 GB/s at 10/50/90%.",
        ),
        _spec(
            "fig17", "Predication response time (Typer)",
            figures_tpch.fig17_predication_typer_response,
            claim="Predication hurts at 10%, helps at 50/90%.",
        ),
        _spec(
            "fig18", "Predication stall time (Typer)",
            figures_tpch.fig18_predication_typer_stalls,
            claim="Branch misprediction stalls eliminated.",
        ),
        _spec(
            "fig19", "Predication response time (Tectorwise)",
            figures_tpch.fig19_predication_tectorwise_response,
            claim="Predication helps at every selectivity.",
        ),
        _spec(
            "fig20", "Predication stall time (Tectorwise)",
            figures_tpch.fig20_predication_tectorwise_stalls,
            claim="Selection becomes Dcache/Execution-bound.",
        ),
        _spec(
            "fig21", "Predicated selection bandwidth",
            figures_tpch.fig21_predication_bandwidth,
            claim="Typer high and stable; Tectorwise lower, peak at 50%.",
        ),
        _spec(
            "sec7-q6", "Predicated TPC-H Q6",
            figures_tpch.sec7_predicated_q6,
            claim="Typer -11%, Tectorwise -52% response; bandwidth up.",
        ),
        _spec(
            "fig22", "SIMD normalized response time",
            figures_optim.fig22_simd_response_time, machine=SKYLAKE,
            claim="-21..-42% response; Retiring time down 70-87%.",
        ),
        _spec(
            "fig23", "SIMD normalized stall time",
            figures_optim.fig23_simd_stall_time, machine=SKYLAKE,
            claim="Dcache stalls up, Execution stalls down.",
        ),
        _spec(
            "fig24", "SIMD bandwidth",
            figures_optim.fig24_simd_bandwidth, machine=SKYLAKE,
            claim="SIMD exploits the underutilised bandwidth.",
        ),
        _spec(
            "fig25", "SIMD large join probe",
            figures_optim.fig25_simd_join, machine=SKYLAKE, tables=JOIN_TABLES,
            claim="-27% response, +50% bandwidth, fewer Dcache stalls.",
        ),
        _spec(
            "fig26", "Hardware prefetcher configurations",
            figures_optim.fig26_prefetchers, tables=JOIN_TABLES,
            claim="Prefetchers cut Dcache stalls ~85% and response ~73%; "
                  "the L2 streamer alone matches all four; joins gain ~20%.",
        ),
        _spec(
            "fig27", "Multi-core TPC-H CPU cycles",
            figures_multicore.fig27_multicore_tpch_cycles, tables=TPCH_TABLES,
            claim="Multi-core breakdowns track single-core.",
        ),
        _spec(
            "fig28", "Multi-core TPC-H stall cycles",
            figures_multicore.fig28_multicore_tpch_stalls, tables=TPCH_TABLES,
            claim="Same stall composition as single-core.",
        ),
        _spec(
            "fig29", "Multi-core projection bandwidth",
            figures_multicore.fig29_multicore_projection_bandwidth,
            tables=JOIN_TABLES,
            claim="Typer saturates the socket at ~8 threads, Tectorwise ~12.",
        ),
        _spec(
            "fig30", "Multi-core join bandwidth",
            figures_multicore.fig30_multicore_join_bandwidth, tables=JOIN_TABLES,
            claim="Both engines leave the socket's random bandwidth idle.",
        ),
        _spec(
            "sec10-measured-scaling", "Measured vs modeled multi-core scaling",
            figures_multicore.sec10_measured_scaling, tables=TPCH_TABLES,
            claim="The morsel-driven process executor's measured wall-clock "
                  "speedup tracks the modeled thread-scaling curves.",
        ),
        _spec(
            "sec10-headroom", "Multi-core bandwidth headroom",
            figures_multicore.sec10_multicore_headroom, tables=JOIN_TABLES,
            claim="SIMD: 21->31.5 GB/s; hyper-threading: x1.3 -- still "
                  "below the random-access roof.",
        ),
        _spec(
            "sec8-compression", "Compressed column widths (encoded storage)",
            figures_compression.sec8_compression, tables=SCAN_TABLES,
            claim="Lightweight encodings cut Q1/Q6 scan streams >= 2x for "
                  "the DSM engines; the NSM row store sees none of it.",
        ),
        _spec(
            "sec-pruning", "Zone-map pruning on clustered lineitem",
            figures_pruning.sec_pruning, tables=SCAN_TABLES,
            claim="Clustered predicates skip most morsel chunks with "
                  "bit-identical results; shuffled data prunes nothing.",
        ),
        _spec(
            "sec-rollup", "Rollup routing on partitioned lineitem",
            figures_rollup.sec_rollup, tables=SCAN_TABLES,
            claim="Subsumed aggregates read kilobytes of exact partials "
                  "instead of the base scan stream, bit-identically; "
                  "non-decomposable finishers fall back with a reason.",
        ),
        _spec(
            "sqlpath", "SQL-path vs hand-wired execution",
            figures_sql.sqlpath_equivalence, tables=TPCH_TABLES,
            claim="The SQL frontend lowers every documented workload onto "
                  "the hand-wired engine paths with identical results and "
                  "modeled cycles.",
        ),
        _spec(
            "obs-latency", "Per-stage query latency from span trees",
            figures_obs.obs_latency_breakdown, tables=TPCH_TABLES,
            claim="Traced service queries decompose wall-clock time into "
                  "admission, plan cache, per-morsel execution and "
                  "serialization, with modeled response time alongside.",
        ),
        _spec(
            "sec2-groupby", "Group-by micro-benchmark (omitted graph)",
            figures_omitted.sec2_groupby_micro, tables=JOIN_TABLES,
            claim="Behaves like the join at the micro-architectural level.",
        ),
        _spec(
            "sec9-extended", "Prefetchers on the omitted workloads",
            figures_omitted.sec9_prefetchers_extended, tables=SCAN_TABLES,
            claim="Results agree with the Figure 26 findings.",
        ),
        _spec(
            "sec6-commercial", "TPC-H on the commercial systems (omitted)",
            figures_omitted.sec6_commercial_tpch, tables=TPCH_TABLES,
            claim="Orders of magnitude between commercial and "
                  "high-performance systems on every query.",
        ),
        _spec(
            "sec10-speedup", "TPC-H speedup vs thread count (omitted)",
            figures_omitted.sec10_speedup_curves, tables=TPCH_TABLES,
            claim="All systems peak at fourteen threads.",
        ),
        _spec(
            "sec10-tpch-bw", "Multi-core TPC-H bandwidth (omitted graph)",
            figures_omitted.sec10_tpch_multicore_bandwidth, tables=TPCH_TABLES,
            claim="Varies between the projection's high and the join's low "
                  "utilisation; predicated Q6 approaches the roof.",
        ),
    )
}


def run_experiment(
    experiment_id: str,
    db=None,
    scale_factor: float | None = None,
    seed: int = DEFAULT_SEED,
) -> FigureResult:
    """Regenerate one paper artefact by id (e.g. ``"fig03"``)."""
    try:
        spec = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: "
            f"{sorted(EXPERIMENTS)}"
        ) from None
    return spec.execute(db=db, scale_factor=scale_factor, seed=seed)
