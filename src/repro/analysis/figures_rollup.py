"""Materialized rollups: what routing onto pre-aggregates buys.

The paper's scan-heavy aggregates stream the full lineitem columns on
every execution.  The rollup tier (:mod:`repro.rollup`) materializes
per-(partition, group) exact partials once and lets the router answer
subsumed aggregates from kilobytes instead of the base gigabytes.
This figure quantifies that gap per engine and workload on a
shipdate-partitioned twin of lineitem: rollup rows read, base rows and
bytes avoided, the bandwidth-bound modeled speedup, and a bit-identity
check that the routed value equals the full base-table execution.

Fallbacks are part of the picture: the interpreter engines' Q1
finisher re-derives its per-group reference from base data (numpy
pairwise summation, not reproducible from partials), so DBMS R/DBMS C
fall back on Q1 by design and the figure reports the reason instead of
pretending coverage.  Measured wall-clock wins live in BENCH_PR7.json;
this figure reports the modeled byte-stream picture, which is
layout-stable across hosts.
"""

from __future__ import annotations

from repro.analysis.result import FigureResult
from repro.engines import ALL_ENGINES
from repro.hardware.memory import MemorySystem
from repro.rollup import (
    PartitionSpec,
    build_and_attach,
    partitioned_database,
    route,
)
from repro.tpch.schema import DATE_1998_09_02

#: (method, kwargs, label) triples the figure routes.
_WORKLOADS = (
    ("run_q1", {}, "Q1"),
    ("run_groupby", {}, "group-by"),
    ("run_projection", {"degree": 2}, "projection p2"),
)


def _partitioned_twin(db):
    """Shipdate-partitioned twin of ``db`` with the default rollup
    attached.  The upper break sits just past the Q1 cutoff so the
    predicate is partition-aligned (every partition decides wholly)."""
    twin = partitioned_database(
        db, PartitionSpec("l_shipdate", (2200.0, DATE_1998_09_02 + 0.5))
    )
    build_and_attach(twin)
    return twin


def sec_rollup(db, profiler) -> FigureResult:
    """Routed rows/bytes and modeled speedup per engine workload."""
    figure = FigureResult(
        "sec-rollup",
        "Rollup routing: rows read, base traffic avoided, modeled speedup",
        (
            "engine", "workload", "routed", "reason", "rows_read",
            "base_rows_avoided", "bytes_avoided_mb", "modeled_speedup",
            "identical",
        ),
    )
    twin = _partitioned_twin(db)
    memory = MemorySystem(profiler.spec)

    for engine_cls in ALL_ENGINES:
        engine = engine_cls()
        for method, kwargs, label in _WORKLOADS:
            baseline = getattr(engine, method)(twin, **kwargs)
            result, decision = route(twin, engine, method, kwargs)
            if result is None:
                figure.add_row(
                    engine=engine.name, workload=label, routed=False,
                    reason=decision["reason"], rows_read=0,
                    base_rows_avoided=0, bytes_avoided_mb=0.0,
                    modeled_speedup=1.0, identical=True,
                )
                continue
            base_bytes = decision["base_bytes_avoided"]
            figure.add_row(
                engine=engine.name, workload=label, routed=True,
                reason=decision["reason"],
                rows_read=decision["rows_read"],
                base_rows_avoided=decision["base_rows_avoided"],
                bytes_avoided_mb=round(
                    (base_bytes - decision["bytes_read"]) / 1e6, 2
                ),
                modeled_speedup=round(
                    memory.pruning_speedup(
                        base_bytes, decision["bytes_read"]
                    ),
                    1,
                ),
                identical=bool(result.value == baseline.value),
            )

    rollup = twin.rollup(twin.rollup_names[0])
    figure.note(
        f"rollup {rollup.name!r}: {rollup.n_rows} pre-aggregated "
        f"(partition, group) cells ({rollup.nbytes} bytes) over "
        f"{twin.table('lineitem').n_rows} base rows; partials are exact "
        "unit counts that add integer-exactly and round once, so routed "
        "values are bit-identical to the base scan ('identical' column)"
    )
    figure.note(
        "DBMS R / DBMS C fall back on Q1 by design: their finisher "
        "recomputes the per-group reference from base data with numpy "
        "pairwise summation, which partials cannot reproduce bit-exactly"
    )
    figure.note(
        "modeled_speedup is the bandwidth-bound upper bound of reading "
        "the rollup bytes instead of the base scan stream "
        "(hardware.memory.pruning_speedup); measured wall-clock wins "
        "are recorded in BENCH_PR7.json"
    )
    return figure
