"""Regeneration of the TPC-H and predication figures (15-21, Section 7
text numbers)."""

from __future__ import annotations

from repro.engines import TectorwiseEngine, TyperEngine
from repro.workloads import (
    run_predicated_q6,
    run_predication_comparison,
    run_selection_sweep,
    run_tpch,
)
from repro.analysis.result import (
    CYCLE_SHARE_COLUMNS,
    STALL_SHARE_COLUMNS,
    TIME_COLUMNS,
    FigureResult,
    cycle_share_row,
    stall_share_row,
    time_breakdown_row,
)


def hpe_engines():
    return (TyperEngine(), TectorwiseEngine())


# ----------------------------------------------------------------------
# TPC-H (Figures 15-16)
# ----------------------------------------------------------------------
def fig15_tpch_cycles(db, profiler) -> FigureResult:
    """Figure 15: CPU cycles breakdown, TPC-H queries, Typer/Tectorwise."""
    reports = run_tpch(db, hpe_engines(), profiler)
    figure = FigureResult(
        "fig15",
        "CPU cycles breakdown for TPC-H (Typer / Tectorwise)",
        ("engine", "query", "stall_ratio", *CYCLE_SHARE_COLUMNS),
    )
    for engine, per_query in reports.items():
        for query_id, report in per_query.items():
            figure.rows.append(cycle_share_row(report, query=query_id))
    figure.note(
        "Q1 has the highest Retiring ratio on both engines; Q9 has the "
        "lowest for Typer and Q6 the lowest for Tectorwise."
    )
    return figure


def fig16_tpch_stalls(db, profiler) -> FigureResult:
    """Figure 16: stall cycles breakdown, TPC-H queries, plus the
    Section 6 bandwidth observations."""
    reports = run_tpch(db, hpe_engines(), profiler)
    figure = FigureResult(
        "fig16",
        "Stall cycles breakdown for TPC-H (Typer / Tectorwise)",
        ("engine", "query", "stall_ratio", "bandwidth_gbps", *STALL_SHARE_COLUMNS),
    )
    for engine, per_query in reports.items():
        for query_id, report in per_query.items():
            row = stall_share_row(report, query=query_id)
            row["bandwidth_gbps"] = report.bandwidth.gbps
            figure.rows.append(row)
    figure.note(
        "Q1 is Execution-heavy, Q6 Dcache-bound on Typer but branch-bound "
        "on Tectorwise, Q9/Q18 Dcache-dominated with visible branch stalls."
    )
    return figure


# ----------------------------------------------------------------------
# Predication (Figures 17-21, Section 7)
# ----------------------------------------------------------------------
def _predication_figure(db, profiler, engine, figure_id: str, kind: str) -> FigureResult:
    comparison = run_predication_comparison(db, engine, profiler)
    columns = ("variant", "selectivity", "response_ms", *TIME_COLUMNS)
    title = f"{kind} breakdown, branched vs branch-free selection ({engine.name})"
    figure = FigureResult(figure_id, title, columns)
    for selectivity, variants in comparison.items():
        for variant, report in variants.items():
            row = time_breakdown_row(report, variant=variant, selectivity=selectivity)
            row.pop("engine", None)
            figure.rows.append({column: row.get(column) for column in columns})
    return figure


def fig17_predication_typer_response(db, profiler) -> FigureResult:
    """Figure 17: Typer response time, branched vs branch-free."""
    figure = _predication_figure(db, profiler, TyperEngine(), "fig17", "Response time")
    figure.note(
        "Predication hurts Typer at 10% selectivity and helps at 50/90%."
    )
    return figure


def fig18_predication_typer_stalls(db, profiler) -> FigureResult:
    """Figure 18: Typer stall time, branched vs branch-free."""
    figure = _predication_figure(db, profiler, TyperEngine(), "fig18", "Stall time")
    figure.note("Predication eliminates the branch-misprediction stalls.")
    return figure


def fig19_predication_tectorwise_response(db, profiler) -> FigureResult:
    """Figure 19: Tectorwise response time, branched vs branch-free."""
    figure = _predication_figure(
        db, profiler, TectorwiseEngine(), "fig19", "Response time"
    )
    figure.note("Predication helps Tectorwise at every selectivity.")
    return figure


def fig20_predication_tectorwise_stalls(db, profiler) -> FigureResult:
    """Figure 20: Tectorwise stall time, branched vs branch-free."""
    figure = _predication_figure(
        db, profiler, TectorwiseEngine(), "fig20", "Stall time"
    )
    figure.note(
        "With branches gone, the selection query becomes Dcache- and "
        "Execution-bound like the projection."
    )
    return figure


def fig21_predication_bandwidth(db, profiler) -> FigureResult:
    """Figure 21: single-core bandwidth of the predicated selection."""
    figure = FigureResult(
        "fig21",
        "Single-core bandwidth, predicated selection (Typer / Tectorwise)",
        ("engine", "selectivity", "variant", "bandwidth_gbps", "max_gbps"),
    )
    for engine in hpe_engines():
        comparison = run_predication_comparison(db, engine, profiler)
        for selectivity, variants in comparison.items():
            for variant, report in variants.items():
                figure.add_row(
                    engine=engine.name,
                    selectivity=selectivity,
                    variant=variant,
                    bandwidth_gbps=report.bandwidth.gbps,
                    max_gbps=report.bandwidth.max_gbps,
                )
    figure.note(
        "Predication raises bandwidth for both engines; Typer stays high "
        "and stable, Tectorwise peaks at 50% (prefetcher overshoot)."
    )
    return figure


def sec7_predicated_q6(db, profiler) -> FigureResult:
    """Section 7 text: predicated TPC-H Q6 response/bandwidth changes."""
    figure = FigureResult(
        "sec7-q6",
        "Predicated TPC-H Q6 (Typer / Tectorwise)",
        ("engine", "variant", "response_ms", "bandwidth_gbps", "response_change"),
    )
    for engine in hpe_engines():
        reports = run_predicated_q6(db, engine, profiler)
        base = reports["branched"].response_time_ms
        for variant, report in reports.items():
            figure.add_row(
                engine=engine.name,
                variant=variant,
                response_ms=report.response_time_ms,
                bandwidth_gbps=report.bandwidth.gbps,
                response_change=report.response_time_ms / base - 1.0,
            )
    figure.note(
        "Paper: predication cuts Q6 by 11% (Typer) and 52% (Tectorwise), "
        "raising bandwidth 4.7->6.9 and 1->4.7 GB/s respectively."
    )
    return figure


def selection_branched_bandwidth(db, profiler) -> FigureResult:
    """Section 4/7 text: branched selection bandwidth (Typer 3/5/5,
    Tectorwise 2.5/3/3 GB/s)."""
    reports = run_selection_sweep(db, hpe_engines(), profiler)
    figure = FigureResult(
        "sec4-bandwidth",
        "Branched selection bandwidth",
        ("engine", "selectivity", "bandwidth_gbps"),
    )
    for engine, per_sel in reports.items():
        for selectivity, report in per_sel.items():
            figure.add_row(
                engine=engine,
                selectivity=selectivity,
                bandwidth_gbps=report.bandwidth.gbps,
            )
    return figure
