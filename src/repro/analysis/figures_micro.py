"""Regeneration of Table 1 and the micro-benchmark figures (1-14).

Every function takes the TPC-H database and a profiler and returns a
:class:`~repro.analysis.result.FigureResult` whose rows mirror the
bars/series of the corresponding paper figure.
"""

from __future__ import annotations

from repro.engines import (
    ColumnStoreEngine,
    RowStoreEngine,
    TectorwiseEngine,
    TyperEngine,
)
from repro.hardware.memory import MemoryLatencyChecker
from repro.workloads import (
    hash_chain_comparison,
    normalized_large_join,
    normalized_response_times,
    run_join_sweep,
    run_projection_sweep,
    run_selection_sweep,
)
from repro.analysis.result import (
    CYCLE_SHARE_COLUMNS,
    STALL_SHARE_COLUMNS,
    FigureResult,
    cycle_share_row,
    stall_share_row,
)


def commercial_engines():
    return (RowStoreEngine(), ColumnStoreEngine())


def hpe_engines():
    return (TyperEngine(), TectorwiseEngine())


def all_engines():
    return (*commercial_engines(), *hpe_engines())


def table1_server_parameters(db, profiler) -> FigureResult:
    """Table 1: Broadwell server parameters, with the bandwidth and
    latency rows measured through the MLC-style tool."""
    checker = MemoryLatencyChecker(profiler.spec)
    figure = FigureResult(
        "table1", "Broadwell server parameters", ("parameter", "value")
    )
    for parameter, value in checker.table1_rows().items():
        figure.add_row(parameter=parameter, value=value)
    return figure


# ----------------------------------------------------------------------
# Projection (Figures 1-6)
# ----------------------------------------------------------------------
def fig01_projection_commercial_cycles(db, profiler) -> FigureResult:
    """Figure 1: CPU cycles breakdown for projection, DBMS R and C."""
    reports = run_projection_sweep(db, commercial_engines(), profiler)
    figure = FigureResult(
        "fig01",
        "CPU cycles breakdown for projection (DBMS R / DBMS C)",
        ("engine", "degree", "stall_ratio", *CYCLE_SHARE_COLUMNS),
    )
    for engine, per_degree in reports.items():
        for degree, report in per_degree.items():
            figure.rows.append(cycle_share_row(report, degree=degree))
    return figure


def fig02_projection_commercial_stalls(db, profiler) -> FigureResult:
    """Figure 2: stall cycles breakdown for projection, DBMS R and C."""
    reports = run_projection_sweep(db, commercial_engines(), profiler)
    figure = FigureResult(
        "fig02",
        "Stall cycles breakdown for projection (DBMS R / DBMS C)",
        ("engine", "degree", "stall_ratio", *STALL_SHARE_COLUMNS),
    )
    for engine, per_degree in reports.items():
        for degree, report in per_degree.items():
            figure.rows.append(stall_share_row(report, degree=degree))
    return figure


def fig03_projection_hpe_cycles(db, profiler) -> FigureResult:
    """Figure 3: CPU cycles breakdown for projection, Typer/Tectorwise."""
    reports = run_projection_sweep(db, hpe_engines(), profiler)
    figure = FigureResult(
        "fig03",
        "CPU cycles breakdown for projection (Typer / Tectorwise)",
        ("engine", "degree", "stall_ratio", *CYCLE_SHARE_COLUMNS),
    )
    for engine, per_degree in reports.items():
        for degree, report in per_degree.items():
            figure.rows.append(cycle_share_row(report, degree=degree))
    return figure


def fig04_projection_hpe_stalls(db, profiler) -> FigureResult:
    """Figure 4: stall cycles breakdown for projection, Typer/Tectorwise."""
    reports = run_projection_sweep(db, hpe_engines(), profiler)
    figure = FigureResult(
        "fig04",
        "Stall cycles breakdown for projection (Typer / Tectorwise)",
        ("engine", "degree", "stall_ratio", *STALL_SHARE_COLUMNS),
    )
    for engine, per_degree in reports.items():
        for degree, report in per_degree.items():
            figure.rows.append(stall_share_row(report, degree=degree))
    return figure


def fig05_projection_bandwidth(db, profiler) -> FigureResult:
    """Figure 5: single-core sequential bandwidth during projection."""
    reports = run_projection_sweep(db, hpe_engines(), profiler)
    figure = FigureResult(
        "fig05",
        "Single-core sequential bandwidth, projection (Typer / Tectorwise)",
        ("engine", "degree", "bandwidth_gbps", "max_gbps", "utilization"),
    )
    for engine, per_degree in reports.items():
        for degree, report in per_degree.items():
            figure.add_row(
                engine=engine,
                degree=degree,
                bandwidth_gbps=report.bandwidth.gbps,
                max_gbps=report.bandwidth.max_gbps,
                utilization=report.bandwidth.utilization,
            )
    figure.note("Typer approaches the per-core roof from degree two onwards.")
    return figure


def fig06_projection_response_time(db, profiler) -> FigureResult:
    """Figure 6: normalised response time, projection p4, four systems."""
    reports = run_projection_sweep(db, all_engines(), profiler)
    normalized = normalized_response_times(reports, degree=4)
    figure = FigureResult(
        "fig06",
        "Normalized response time (vs Typer), projection degree 4",
        ("engine", "normalized_response", "response_ms", "share_retiring"),
    )
    for engine, per_degree in reports.items():
        report = per_degree[4]
        figure.add_row(
            engine=engine,
            normalized_response=normalized[engine],
            response_ms=report.response_time_ms,
            share_retiring=report.cycle_shares()["retiring"],
        )
    figure.note(
        "DBMS R is orders of magnitude slower than Typer/Tectorwise; "
        "DBMS C sits an order of magnitude above the high-performance engines."
    )
    return figure


# ----------------------------------------------------------------------
# Selection (Figures 7-10 + the Section 4 bandwidth text numbers)
# ----------------------------------------------------------------------
def fig07_selection_commercial_cycles(db, profiler) -> FigureResult:
    """Figure 7: CPU cycles breakdown for selection, DBMS R and C."""
    reports = run_selection_sweep(db, commercial_engines(), profiler)
    figure = FigureResult(
        "fig07",
        "CPU cycles breakdown for selection (DBMS R / DBMS C)",
        ("engine", "selectivity", "stall_ratio", *CYCLE_SHARE_COLUMNS),
    )
    for engine, per_sel in reports.items():
        for selectivity, report in per_sel.items():
            figure.rows.append(cycle_share_row(report, selectivity=selectivity))
    return figure


def fig08_selection_commercial_stalls(db, profiler) -> FigureResult:
    """Figure 8: stall cycles breakdown for selection, DBMS R and C."""
    reports = run_selection_sweep(db, commercial_engines(), profiler)
    figure = FigureResult(
        "fig08",
        "Stall cycles breakdown for selection (DBMS R / DBMS C)",
        ("engine", "selectivity", "stall_ratio", *STALL_SHARE_COLUMNS),
    )
    for engine, per_sel in reports.items():
        for selectivity, report in per_sel.items():
            figure.rows.append(stall_share_row(report, selectivity=selectivity))
    return figure


def fig09_selection_hpe_cycles(db, profiler) -> FigureResult:
    """Figure 9: CPU cycles breakdown for selection, Typer/Tectorwise."""
    reports = run_selection_sweep(db, hpe_engines(), profiler)
    figure = FigureResult(
        "fig09",
        "CPU cycles breakdown for selection (Typer / Tectorwise)",
        ("engine", "selectivity", "stall_ratio", *CYCLE_SHARE_COLUMNS),
    )
    for engine, per_sel in reports.items():
        for selectivity, report in per_sel.items():
            figure.rows.append(cycle_share_row(report, selectivity=selectivity))
    figure.note("Both engines stall the most at 50% selectivity.")
    return figure


def fig10_selection_hpe_stalls(db, profiler) -> FigureResult:
    """Figure 10: stall cycles breakdown for selection, Typer/Tectorwise,
    plus the Section 4 bandwidth-utilisation text numbers."""
    reports = run_selection_sweep(db, hpe_engines(), profiler)
    figure = FigureResult(
        "fig10",
        "Stall cycles breakdown for selection (Typer / Tectorwise)",
        ("engine", "selectivity", "stall_ratio", "bandwidth_gbps", *STALL_SHARE_COLUMNS),
    )
    for engine, per_sel in reports.items():
        for selectivity, report in per_sel.items():
            row = stall_share_row(report, selectivity=selectivity)
            row["bandwidth_gbps"] = report.bandwidth.gbps
            figure.rows.append(row)
    figure.note(
        "Branch mispredictions dominate and peak at 50%; bandwidth stays "
        "well below the sequential roof (Section 4 text)."
    )
    return figure


# ----------------------------------------------------------------------
# Join (Figures 11-14)
# ----------------------------------------------------------------------
def fig11_join_commercial_cycles(db, profiler) -> FigureResult:
    """Figure 11: CPU cycles breakdown for joins, DBMS R and C."""
    reports = run_join_sweep(db, commercial_engines(), profiler)
    figure = FigureResult(
        "fig11",
        "CPU cycles breakdown for join (DBMS R / DBMS C)",
        ("engine", "size", "stall_ratio", *CYCLE_SHARE_COLUMNS),
    )
    for engine, per_size in reports.items():
        for size, report in per_size.items():
            figure.rows.append(cycle_share_row(report, size=size))
    figure.note(
        "Breakdowns stay similar across join sizes: the interpretation "
        "footprint overshadows the micro-architectural behaviour."
    )
    return figure


def fig12_join_hpe_cycles(db, profiler) -> FigureResult:
    """Figure 12: CPU cycles breakdown for joins, Typer/Tectorwise."""
    reports = run_join_sweep(db, hpe_engines(), profiler)
    figure = FigureResult(
        "fig12",
        "CPU cycles breakdown for join (Typer / Tectorwise)",
        ("engine", "size", "stall_ratio", *CYCLE_SHARE_COLUMNS),
    )
    for engine, per_size in reports.items():
        for size, report in per_size.items():
            figure.rows.append(cycle_share_row(report, size=size))
    figure.note("Stall ratio grows with join size.")
    return figure


def fig13_join_hpe_stalls(db, profiler) -> FigureResult:
    """Figure 13: stall cycles breakdown for joins, Typer/Tectorwise."""
    reports = run_join_sweep(db, hpe_engines(), profiler)
    figure = FigureResult(
        "fig13",
        "Stall cycles breakdown for join (Typer / Tectorwise)",
        ("engine", "size", "stall_ratio", *STALL_SHARE_COLUMNS),
    )
    for engine, per_size in reports.items():
        for size, report in per_size.items():
            figure.rows.append(stall_share_row(report, size=size))
    figure.note(
        "Dcache stalls dominate the large join; Execution stalls are a "
        "significant share for small/medium (hash computations)."
    )
    return figure


def fig14_join_bandwidth_response(db, profiler) -> FigureResult:
    """Figure 14: large-join random bandwidth (left) and normalised
    response time across the four systems (right)."""
    reports = run_join_sweep(db, all_engines(), profiler, sizes=("large",))
    normalized = normalized_large_join(reports)
    figure = FigureResult(
        "fig14",
        "Large join: random-access bandwidth and normalized response time",
        ("engine", "bandwidth_gbps", "max_gbps", "normalized_response", "share_retiring"),
    )
    for engine, per_size in reports.items():
        report = per_size["large"]
        figure.add_row(
            engine=engine,
            bandwidth_gbps=report.bandwidth.gbps,
            max_gbps=report.bandwidth.max_gbps,
            normalized_response=normalized[engine],
            share_retiring=report.cycle_shares()["retiring"],
        )
    figure.note(
        "Typer/Tectorwise leave the single-core random bandwidth "
        "underutilised; the commercial systems pay for their instruction "
        "footprints with high Retiring time."
    )
    return figure


def sec6_hash_chain_stats(db, profiler) -> FigureResult:
    """Section 6 text: hash-chain statistics, join vs group-by table."""
    comparison = hash_chain_comparison(db)
    figure = FigureResult(
        "sec6-chains",
        "Hash chain statistics: join vs group-by",
        ("table", "mean", "std", "max", "load_factor"),
    )
    for label, stats in (("hash join", comparison.join), ("group by", comparison.groupby)):
        figure.add_row(
            table=label,
            mean=stats.mean,
            std=stats.std,
            max=stats.max,
            load_factor=stats.load_factor,
        )
    figure.note(
        "Group-by chains are more irregular than join chains "
        f"(confirmed: {comparison.groupby_more_irregular})."
    )
    return figure
