"""The Top-Down Micro-architecture Analysis hierarchy (TMAM).

The paper's cycle classes come from VTune's general-exploration
analysis, which implements the Top-Down methodology of Yasin [32] as
refined by Sirin et al. [26] (adopted by VTune 2018+).  TMAM organises
pipeline slots hierarchically:

```
level 1: Retiring | Bad Speculation | Frontend Bound | Backend Bound
level 2:            branch misp.      fetch latency    core bound
                                      fetch bandwidth  memory bound
```

The paper flattens this into Retiring plus five stall classes; this
module keeps the full hierarchy as a first-class object so results can
be examined at either level, and provides the exact mapping used
throughout the library:

- Bad Speculation        <-> Branch misp.
- Frontend / latency     <-> Icache
- Frontend / bandwidth   <-> Decoding
- Backend / memory bound <-> Dcache
- Backend / core bound   <-> Execution
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.tmam import CycleBreakdown


@dataclass(frozen=True)
class TopDownNode:
    """One node of the Top-Down tree: a named share of total cycles."""

    name: str
    cycles: float
    children: tuple["TopDownNode", ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError(f"{self.name}: cycles must be non-negative")

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def child(self, name: str) -> "TopDownNode":
        for child in self.children:
            if child.name == name:
                return child
        raise KeyError(f"{self.name} has no child {name!r}")

    def walk(self, depth: int = 0):
        """Yield (depth, node) pairs in pre-order."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)


@dataclass(frozen=True)
class TopDownTree:
    """The four-category level-1 view with the paper's level-2 leaves."""

    root: TopDownNode

    #: Level-1 category names in TMAM order.
    LEVEL1 = ("Retiring", "Bad Speculation", "Frontend Bound", "Backend Bound")

    @classmethod
    def from_breakdown(cls, breakdown: CycleBreakdown) -> "TopDownTree":
        """Lift the flat paper-style breakdown into the TMAM hierarchy."""
        root = TopDownNode(
            "Pipeline Slots",
            breakdown.total,
            (
                TopDownNode("Retiring", breakdown.retiring),
                TopDownNode(
                    "Bad Speculation",
                    breakdown.branch_misp,
                    (TopDownNode("Branch Mispredicts", breakdown.branch_misp),),
                ),
                TopDownNode(
                    "Frontend Bound",
                    breakdown.icache + breakdown.decoding,
                    (
                        TopDownNode("Fetch Latency (Icache)", breakdown.icache),
                        TopDownNode("Fetch Bandwidth (Decoding)", breakdown.decoding),
                    ),
                ),
                TopDownNode(
                    "Backend Bound",
                    breakdown.dcache + breakdown.execution,
                    (
                        TopDownNode("Memory Bound (Dcache)", breakdown.dcache),
                        TopDownNode("Core Bound (Execution)", breakdown.execution),
                    ),
                ),
            ),
        )
        return cls(root)

    def to_breakdown(self) -> CycleBreakdown:
        """Flatten back to the paper's five-stall-class view."""
        frontend = self.root.child("Frontend Bound")
        backend = self.root.child("Backend Bound")
        return CycleBreakdown(
            retiring=self.root.child("Retiring").cycles,
            branch_misp=self.root.child("Bad Speculation").cycles,
            icache=frontend.child("Fetch Latency (Icache)").cycles,
            decoding=frontend.child("Fetch Bandwidth (Decoding)").cycles,
            dcache=backend.child("Memory Bound (Dcache)").cycles,
            execution=backend.child("Core Bound (Execution)").cycles,
        )

    def level1_shares(self) -> dict[str, float]:
        """The classic four-way Top-Down split, as fractions."""
        total = self.root.cycles
        if not total:
            return {name: 0.0 for name in self.LEVEL1}
        return {
            child.name: child.cycles / total for child in self.root.children
        }

    def dominant_category(self) -> str:
        """Level-1 category with the most cycles."""
        return max(self.root.children, key=lambda child: child.cycles).name

    def render(self, width: int = 46) -> str:
        """Indented text rendering of the hierarchy."""
        total = self.root.cycles or 1.0
        lines = []
        for depth, node in self.root.walk():
            share = node.cycles / total
            bar = "#" * round(share * 20)
            label = "  " * depth + node.name
            lines.append(f"{label.ljust(width)} {share:6.1%} {bar}")
        return "\n".join(lines)

    def validate(self, tolerance: float = 1e-6) -> bool:
        """Every parent's cycles must equal the sum of its children."""
        for _, node in self.root.walk():
            if node.children:
                child_sum = sum(child.cycles for child in node.children)
                if abs(child_sum - node.cycles) > tolerance * max(1.0, node.cycles):
                    return False
        return True
