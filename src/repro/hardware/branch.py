"""Branch predictor models.

Two complementary models are provided:

- :func:`two_bit_mispredict_rate` -- the exact steady-state
  misprediction rate of a 2-bit saturating counter observing a Bernoulli
  branch with taken-probability ``p``.  This closed form is what the
  analytic cycle model uses for data-dependent branches (selection
  predicates, hash-probe hit/miss branches).  It peaks at 50%
  selectivity, which is precisely the Section 4 observation ("the
  prediction task is the hardest at the 50% selectivity").
- :class:`GSharePredictor` -- a trace-driven global-history predictor
  used by the sampled trace simulator to validate the closed form on
  real predicate outcome streams.
"""

from __future__ import annotations

import numpy as np


def two_bit_stationary_distribution(p_taken: float) -> np.ndarray:
    """Stationary distribution over the four 2-bit counter states.

    The counter is a birth-death chain on states {0,1,2,3}: a taken
    branch increments (saturating at 3), a not-taken branch decrements
    (saturating at 0).  For a Bernoulli(p) branch the stationary
    probabilities are proportional to ``(p/(1-p))**k``.
    """
    if not 0.0 <= p_taken <= 1.0:
        raise ValueError("p_taken must be in [0, 1]")
    if p_taken == 0.0:
        return np.array([1.0, 0.0, 0.0, 0.0])
    if p_taken == 1.0:
        return np.array([0.0, 0.0, 0.0, 1.0])
    ratio = p_taken / (1.0 - p_taken)
    weights = np.array([ratio**k for k in range(4)])
    return weights / weights.sum()

def two_bit_mispredict_rate(p_taken: float) -> float:
    """Steady-state misprediction rate of a 2-bit counter on a
    Bernoulli(p) branch.

    The counter predicts *taken* in states {2, 3}.  A misprediction
    happens when the branch is taken in a not-taken state or vice
    versa.  The rate is symmetric around p=0.5 where it equals 0.5.
    """
    pi = two_bit_stationary_distribution(p_taken)
    predict_not_taken = pi[0] + pi[1]
    predict_taken = pi[2] + pi[3]
    return p_taken * predict_not_taken + (1.0 - p_taken) * predict_taken


def conjunction_mispredict_rate(selectivities) -> float:
    """Misprediction rate seen by a *compiled* engine evaluating a
    conjunction of predicates as a single short-circuit branch chain.

    A compiled engine like Typer evaluates ``p1 AND p2 AND ...`` at
    once, so (Section 4) the dominant branch observes the *combined*
    selectivity (e.g. 10% x 10% x 10% = 0.1%), which is far easier to
    predict than each individual predicate.  The earlier predicates in
    the short-circuit chain still execute and contribute smaller,
    per-prefix misprediction rates weighted by how often they are
    reached.
    """
    selectivities = list(selectivities)
    if not selectivities:
        return 0.0
    combined = 1.0
    for selectivity in selectivities:
        if not 0.0 <= selectivity <= 1.0:
            raise ValueError("selectivities must be in [0, 1]")
        combined *= selectivity
    return two_bit_mispredict_rate(combined)


class TwoBitCounter:
    """A single 2-bit saturating counter (building block + test target)."""

    def __init__(self, state: int = 1):
        if not 0 <= state <= 3:
            raise ValueError("state must be in [0, 3]")
        self.state = state

    def predict(self) -> bool:
        return self.state >= 2

    def update(self, taken: bool) -> bool:
        """Record the outcome; returns True if the prediction was correct."""
        correct = self.predict() == taken
        if taken:
            self.state = min(3, self.state + 1)
        else:
            self.state = max(0, self.state - 1)
        return correct


class GSharePredictor:
    """Gshare: global history XOR branch address indexes a table of
    2-bit counters.  Trace-driven; vectorised over numpy outcome arrays
    via :meth:`run`."""

    def __init__(self, table_bits: int = 12, history_bits: int = 8):
        if table_bits <= 0 or history_bits < 0:
            raise ValueError("table_bits must be positive, history_bits >= 0")
        self.table_bits = table_bits
        self.history_bits = history_bits
        self._mask = (1 << table_bits) - 1
        self._history_mask = (1 << history_bits) - 1
        self._table = np.ones(1 << table_bits, dtype=np.int8)
        self._history = 0
        self.predictions = 0
        self.mispredictions = 0

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict the branch at ``pc``; returns True if correct."""
        index = (pc ^ (self._history & self._history_mask)) & self._mask
        state = self._table[index]
        prediction = state >= 2
        correct = prediction == taken
        self.predictions += 1
        if not correct:
            self.mispredictions += 1
        if taken:
            if state < 3:
                self._table[index] = state + 1
        elif state > 0:
            self._table[index] = state - 1
        self._history = ((self._history << 1) | int(taken)) & self._history_mask
        return correct

    def run(self, pc: int, outcomes: np.ndarray) -> float:
        """Feed a boolean outcome stream for one static branch; returns
        the misprediction rate over the stream.

        Large streams use the batch kernel in
        :mod:`repro.hardware.fastsim` (identical counts and final
        state); ``REPRO_REFERENCE_SIM=1`` forces the per-event path.
        """
        from repro.hardware import fastsim

        count = len(outcomes)
        if count >= fastsim.MIN_BATCH_EVENTS and not fastsim.use_reference():
            added = fastsim.gshare_run_batch(self, pc, outcomes)
            return added / count
        before = self.mispredictions
        for taken in outcomes:
            self.predict_and_update(pc, bool(taken))
        return (self.mispredictions - before) / count if count else 0.0

    @property
    def mispredict_rate(self) -> float:
        return self.mispredictions / self.predictions if self.predictions else 0.0

    def reset(self) -> None:
        self._table.fill(1)
        self._history = 0
        self.predictions = 0
        self.mispredictions = 0
